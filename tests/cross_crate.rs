//! Cross-crate integration tests: the full pipeline from parallel
//! applications (mp2c, tracer) through the sion library, the serial tool
//! suite, and back — over the in-memory and counting file systems.

use parfs::SimFs;
use simmpi::{Comm, World};
use sionlib::{mp2c, sion, sion_tools, tracer, vfs};
use vfs::{MemFs, Vfs};

#[test]
fn checkpoint_then_tools_pipeline() {
    // mp2c writes a sion checkpoint; the tools dump, split, and defragment
    // it; a restart from the defragmented copy continues identically.
    let cfg = mp2c::SimConfig::default();
    let fs = MemFs::with_block_size(4096);
    let strategy = mp2c::checkpoint::Strategy::Sion { nfiles: 2, compressed: false };

    let reference = World::run(4, |comm| {
        let mut sim = mp2c::Simulation::new(cfg, comm.rank(), comm.size());
        for _ in 0..6 {
            sim.step(comm);
        }
        mp2c::checkpoint::write_checkpoint(&sim, &fs, "ck.sion", strategy, comm).unwrap();
        for _ in 0..4 {
            sim.step(comm);
        }
        sim.global_digest(comm)
    })[0];

    // Tool pass: dump mentions 4 tasks; defrag to a single physical file.
    let dump = sion_tools::dump(&fs, "ck.sion").unwrap();
    assert!(dump.contains("tasks:          4"));
    let out = MemFs::with_block_size(4096);
    sion_tools::defrag(&fs, "ck.sion", &out, "ck-dense.sion", 1).unwrap();

    // Restart from the defragmented checkpoint.
    let restarted = World::run(4, |comm| {
        let mut sim = mp2c::checkpoint::read_checkpoint(
            cfg,
            &out,
            "ck-dense.sion",
            mp2c::checkpoint::Strategy::Sion { nfiles: 1, compressed: false },
            comm,
        )
        .unwrap();
        for _ in 0..4 {
            sim.step(comm);
        }
        sim.global_digest(comm)
    })[0];
    assert_eq!(reference, restarted, "defragmented checkpoint must restart identically");
}

#[test]
fn trace_split_files_decode_as_event_streams() {
    // Traces written through the sion back-end, extracted by sionsplit,
    // must decode as the original task-local trace files would.
    let fs = MemFs::with_block_size(4096);
    let cfg = tracer::SynthConfig::default();
    let backend = tracer::SionBackend::new("tr.sion", 1 << 20, 2);
    World::run(6, |comm| {
        let mut t = tracer::Tracer::new(comm.rank());
        for ev in tracer::synthetic_events(&cfg, comm.rank(), comm.size()) {
            t.record(&ev);
        }
        let mut trace = tracer::TraceBackend::activate(&backend, &fs, comm).unwrap();
        t.finalize(trace.as_mut()).unwrap();
        trace.finalize().unwrap();
    });

    let out = MemFs::new();
    let created = sion_tools::split(&fs, "tr.sion", &out, "t", None).unwrap();
    assert_eq!(created.len(), 6);
    for (rank, path) in created.iter().enumerate() {
        let f = out.open(path).unwrap();
        let mut buf = vec![0u8; f.len().unwrap() as usize];
        f.read_exact_at(&mut buf, 0).unwrap();
        let events = tracer::Event::decode_stream(&buf).unwrap();
        assert_eq!(events, tracer::synthetic_events(&cfg, rank, 6), "rank {rank}");
    }
}

#[test]
fn simfs_counts_the_metadata_story() {
    // The paper's headline claim as a functional assertion: with N tasks
    // and F physical files, the sion path costs F creates where the
    // task-local path costs N — and both store the same bytes.
    let ntasks = 24;
    let nfiles = 3;
    let payload_len = 5_000;

    let fs = SimFs::with_block_size(4096);
    World::run(ntasks, |comm| {
        let params = sion::SionParams::new(4096).with_nfiles(nfiles);
        let mut w = sion::paropen_write(&fs, "multi.sion", &params, comm).unwrap();
        w.write(&vec![comm.rank() as u8; payload_len]).unwrap();
        w.close().unwrap();
    });
    let sion_counters = fs.counters();
    assert_eq!(sion_counters.creates, nfiles as u64);

    let fs2 = SimFs::with_block_size(4096);
    World::run(ntasks, |comm| {
        let f = fs2.create(&format!("task.{:06}", comm.rank())).unwrap();
        f.write_all_at(&vec![comm.rank() as u8; payload_len], 0).unwrap();
    });
    let local_counters = fs2.counters();
    assert_eq!(local_counters.creates, ntasks as u64);

    // Same user payload either way.
    assert!(sion_counters.bytes_written >= local_counters.bytes_written);
    assert_eq!(local_counters.bytes_written, (ntasks * payload_len) as u64);
}

#[test]
fn compressed_checkpoint_smaller_than_plain() {
    let cfg = mp2c::SimConfig { domain: 8, particles_per_cell: 6, ..Default::default() };
    let fs = MemFs::with_block_size(4096);
    World::run(4, |comm| {
        let sim = mp2c::Simulation::new(cfg, comm.rank(), comm.size());
        for (base, compressed) in [("plain.sion", false), ("packed.sion", true)] {
            mp2c::checkpoint::write_checkpoint(
                &sim,
                &fs,
                base,
                mp2c::checkpoint::Strategy::Sion { nfiles: 1, compressed },
                comm,
            )
            .unwrap();
        }
    });
    let plain = sion::Multifile::open(&fs, "plain.sion").unwrap().locations().unwrap().total_stored_bytes();
    let packed =
        sion::Multifile::open(&fs, "packed.sion").unwrap().locations().unwrap().total_stored_bytes();
    // Double-precision particle data is mostly mantissa noise, so the LZSS
    // codec cannot shrink it much — but the stored-block fallback bounds
    // the expansion to the per-frame overhead (the transparency guarantee).
    assert!(
        packed <= plain + plain / 50 + 1024,
        "compression must never blow up storage: {packed} vs {plain}"
    );
}

#[test]
fn simulated_experiments_agree_with_functional_counts() {
    // The timing simulator's workload for a sion create has exactly as many
    // Create ops as the functional run issues creates.
    let ntasks = 32u64;
    let nfiles = 4u32;
    let spec = sion::script::SimSpec::aligned(ntasks, nfiles, 0, 4096);
    let wl = sion::script::sion_create(&spec);
    let script_creates: u64 = wl
        .classes
        .iter()
        .map(|c| {
            c.count
                * c.ops.iter().filter(|o| matches!(o, parfs::IoOp::Create(_))).count() as u64
        })
        .sum();

    let fs = SimFs::with_block_size(4096);
    World::run(ntasks as usize, |comm| {
        let params = sion::SionParams::new(1).with_nfiles(nfiles);
        let w = sion::paropen_write(&fs, "x.sion", &params, comm).unwrap();
        w.close().unwrap();
    });
    assert_eq!(script_creates, fs.counters().creates);
}

//! Stress tests: larger worlds and payloads than the unit suites use, to
//! shake out scaling assumptions (these still run in seconds on MemFs).

use simmpi::{Comm, CommExt, ReduceOp, World};
use sionlib::{sion, vfs};
use vfs::MemFs;

#[test]
fn sixty_four_tasks_multi_megabyte_roundtrip() {
    let fs = MemFs::with_block_size(64 * 1024);
    let ntasks = 64;
    let bytes_per_task = 1 << 20; // 1 MiB each, 64 MiB total
    World::run(ntasks, |comm| {
        let params = sion::SionParams::new(256 * 1024).with_nfiles(8);
        let payload: Vec<u8> =
            (0..bytes_per_task).map(|i| ((i * 131 + comm.rank() * 17) % 251) as u8).collect();
        let mut w = sion::paropen_write(&fs, "big.sion", &params, comm).unwrap();
        for piece in payload.chunks(100_000) {
            w.write(piece).unwrap();
        }
        let stats = w.close().unwrap();
        assert_eq!(stats.user_bytes, bytes_per_task as u64);

        let mut r = sion::paropen_read(&fs, "big.sion", comm).unwrap();
        let mut back = vec![0u8; bytes_per_task];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, payload);
        r.close().unwrap();
    });
    // 8 physical files, not 64.
    assert_eq!(vfs::Vfs::list(&fs, "big.sion").unwrap().len(), 8);
}

#[test]
fn many_collective_rounds_do_not_wedge() {
    // Hammers the collective slot reuse (the bug class behind an early
    // race: post-barrier slot clears clobbering the next collective).
    let out = World::run(16, |comm| {
        let mut acc = 0u64;
        for round in 0..200u64 {
            match round % 5 {
                0 => acc ^= comm.allreduce_u64(round + comm.rank() as u64, ReduceOp::Sum),
                1 => {
                    let got = comm.bcast_u64((comm.rank() == 3).then_some(round), 3);
                    acc = acc.wrapping_add(got);
                }
                2 => {
                    let gathered = comm.gather_u64(round, (round % 16) as usize);
                    if let Some(v) = gathered {
                        acc = acc.wrapping_add(v.iter().sum::<u64>());
                    }
                }
                3 => {
                    let parts = (comm.rank() == 0)
                        .then(|| (0..comm.size()).map(|i| vec![i as u8; 8]).collect());
                    let mine = comm.scatter(parts, 0);
                    acc = acc.wrapping_add(mine[0] as u64);
                }
                _ => acc = acc.wrapping_add(comm.scan_u64(1, ReduceOp::Sum)),
            }
        }
        acc
    });
    // Deterministic: every rank ran the same number of rounds; accumulators
    // differ per rank (scan, scatter) but rounds 0 and 1 are rank-uniform.
    assert_eq!(out.len(), 16);
}

#[test]
fn deep_block_chains_with_tiny_chunks() {
    // 1 KiB chunks, 256 KiB per task: 256 blocks per task.
    let fs = MemFs::with_block_size(1024);
    World::run(4, |comm| {
        let params = sion::SionParams::new(1024);
        let payload = vec![comm.rank() as u8 + 1; 256 * 1024];
        let mut w = sion::paropen_write(&fs, "deep.sion", &params, comm).unwrap();
        w.write(&payload).unwrap();
        let stats = w.close().unwrap();
        assert_eq!(stats.blocks, 256);
    });
    let mf = sion::Multifile::open(&fs, "deep.sion").unwrap();
    assert_eq!(mf.max_blocks(), 256);
    for rank in 0..4 {
        let data = mf.read_rank(rank).unwrap();
        assert_eq!(data.len(), 256 * 1024);
        assert!(data.iter().all(|&b| b == rank as u8 + 1));
    }
}

#[test]
fn repeated_open_close_cycles() {
    // The paper's motivation mentions files "periodically opened and
    // closed during the same run" — make sure nothing leaks or wedges.
    let fs = MemFs::with_block_size(4096);
    World::run(8, |comm| {
        for cycle in 0..20u8 {
            let params = sion::SionParams::new(4096);
            let name = format!("cycle.{:02}.sion", cycle % 3); // re-create some names
            let mut w = sion::paropen_write(&fs, &name, &params, comm).unwrap();
            w.write(&[cycle; 100]).unwrap();
            w.close().unwrap();
            let mut r = sion::paropen_read(&fs, &name, comm).unwrap();
            let mut buf = [0u8; 100];
            r.read_exact(&mut buf).unwrap();
            assert_eq!(buf, [cycle; 100]);
            r.close().unwrap();
        }
    });
}

//! End-to-end tests of the command-line binaries (paper §3.3): build a
//! real multifile on disk, then drive `siondump`, `sionsplit`,
//! `siondefrag`, `sionverify`, `sioncat`, and `sionrepair` as child
//! processes, exactly as a user would.

use simmpi::{Comm, World};
use sion::{paropen_write, SionParams};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};
use vfs::LocalFs;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sion-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Create a rescue-enabled multifile with 4 tasks / 2 physical files.
fn make_multifile(dir: &Path) {
    let fs = LocalFs::with_block_size(dir, 4096);
    World::run(4, |comm| {
        let params = SionParams::new(4096).with_nfiles(2).with_rescue();
        let mut w = paropen_write(&fs, "data.sion", &params, comm).unwrap();
        for i in 0..3 {
            w.write(&vec![(comm.rank() * 8 + i) as u8; 2500]).unwrap();
        }
        w.close().unwrap();
    });
}

fn run_tool(bin: &str, dir: &Path, args: &[&str]) -> Output {
    Command::new(bin)
        .current_dir(dir)
        .args(args)
        .output()
        .expect("tool binary runs")
}

#[test]
fn dump_split_verify_cat_pipeline() {
    let dir = scratch("pipeline");
    make_multifile(&dir);

    // siondump prints the shape.
    let out = run_tool(env!("CARGO_BIN_EXE_siondump"), &dir, &["data.sion"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("tasks:          4"), "{text}");
    assert!(text.contains("rescue=true"));

    // sionverify reports a clean file.
    let out = run_tool(env!("CARGO_BIN_EXE_sionverify"), &dir, &["data.sion"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK: 4 task streams"));

    // sionsplit extracts all four logical files.
    let out = run_tool(env!("CARGO_BIN_EXE_sionsplit"), &dir, &["data.sion", "x/task"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    for rank in 0..4 {
        let path = dir.join(format!("x/task.{rank:06}"));
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 7500, "{path:?}");
    }

    // sioncat streams one rank to stdout.
    let out = run_tool(env!("CARGO_BIN_EXE_sioncat"), &dir, &["data.sion", "2"]);
    assert!(out.status.success());
    assert_eq!(out.stdout.len(), 7500);
    assert_eq!(out.stdout[0], 16); // rank 2, piece 0

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn defrag_then_verify() {
    let dir = scratch("defrag");
    make_multifile(&dir);
    let out = run_tool(env!("CARGO_BIN_EXE_siondefrag"), &dir, &["data.sion", "dense.sion"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("defragmented 4 tasks"));
    let out = run_tool(env!("CARGO_BIN_EXE_sionverify"), &dir, &["dense.sion"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repair_after_crash_via_cli() {
    let dir = scratch("repair");
    make_multifile(&dir);
    // Truncate metablock 2 off the first physical file.
    {
        use std::os::unix::fs::FileExt;
        let path = dir.join("data.sion");
        let f = std::fs::OpenOptions::new().read(true).write(true).open(&path).unwrap();
        let len = f.metadata().unwrap().len();
        let mut tr = [0u8; 24];
        f.read_exact_at(&mut tr, len - 24).unwrap();
        let mb2_off = u64::from_le_bytes(tr[0..8].try_into().unwrap());
        f.set_len(mb2_off).unwrap();
    }
    // dump now fails...
    let out = run_tool(env!("CARGO_BIN_EXE_siondump"), &dir, &["data.sion"]);
    assert!(!out.status.success());
    // ...repair fixes it...
    let out = run_tool(env!("CARGO_BIN_EXE_sionrepair"), &dir, &["data.sion"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 repaired"));
    // ...and verify passes again.
    let out = run_tool(env!("CARGO_BIN_EXE_sionverify"), &dir, &["data.sion"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tools_reject_bad_usage() {
    let dir = scratch("usage");
    for bin in [
        env!("CARGO_BIN_EXE_siondump"),
        env!("CARGO_BIN_EXE_sionsplit"),
        env!("CARGO_BIN_EXE_siondefrag"),
        env!("CARGO_BIN_EXE_sionrepair"),
        env!("CARGO_BIN_EXE_sioncat"),
        env!("CARGO_BIN_EXE_sionverify"),
    ] {
        let out = run_tool(bin, &dir, &[]);
        assert_eq!(out.status.code(), Some(2), "{bin} must exit 2 on bad usage");
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    }
    // Missing file: exit 1.
    let out = run_tool(env!("CARGO_BIN_EXE_siondump"), &dir, &["nope.sion"]);
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_dir_all(&dir).ok();
}

/// User-input hardening: truncated and garbage files must produce a clean
/// diagnostic and a nonzero exit — never a panic — from every tool, and a
/// malformed numeric argument is a usage error.
#[test]
fn tools_survive_garbage_and_truncated_files() {
    let dir = scratch("garbage");
    make_multifile(&dir);
    // Garbage: plausible length, hostile bytes.
    std::fs::write(dir.join("garbage.sion"), vec![0xA5u8; 4096]).unwrap();
    // Truncated: a valid multifile cut mid-header.
    let whole = std::fs::read(dir.join("data.sion")).unwrap();
    std::fs::write(dir.join("trunc.sion"), &whole[..40]).unwrap();

    for bin in [
        env!("CARGO_BIN_EXE_siondump"),
        env!("CARGO_BIN_EXE_sionverify"),
        env!("CARGO_BIN_EXE_sionrepair"),
    ] {
        for file in ["garbage.sion", "trunc.sion"] {
            let out = run_tool(bin, &dir, &[file]);
            assert_eq!(out.status.code(), Some(1), "{bin} on {file} must fail cleanly");
            let err = String::from_utf8_lossy(&out.stderr);
            assert!(!err.contains("panicked"), "{bin} on {file} panicked:\n{err}");
            assert!(!err.is_empty(), "{bin} on {file}: no diagnostic");
        }
    }
    for file in ["garbage.sion", "trunc.sion"] {
        let out = run_tool(env!("CARGO_BIN_EXE_sioncat"), &dir, &[file, "0"]);
        assert_eq!(out.status.code(), Some(1), "sioncat on {file} must fail cleanly");
        assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));
        let out = run_tool(env!("CARGO_BIN_EXE_sionsplit"), &dir, &[file, "y/task"]);
        assert_eq!(out.status.code(), Some(1), "sionsplit on {file} must fail cleanly");
        assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));
        let out = run_tool(env!("CARGO_BIN_EXE_siondefrag"), &dir, &[file, "d.sion"]);
        assert_eq!(out.status.code(), Some(1), "siondefrag on {file} must fail cleanly");
        assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));
    }

    // Malformed numeric arguments are usage errors, not panics.
    let out = run_tool(env!("CARGO_BIN_EXE_siondefrag"), &dir, &["data.sion", "d.sion", "zero"]);
    assert_eq!(out.status.code(), Some(2), "bad nfiles must be a usage error");
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad nfiles"));
    let out = run_tool(env!("CARGO_BIN_EXE_sioncat"), &dir, &["data.sion", "x"]);
    assert_eq!(out.status.code(), Some(2), "bad rank must be a usage error");

    std::fs::remove_dir_all(&dir).ok();
}

//! Serial command-line utilities for multifiles (paper §3.3).
//!
//! "The current version of SIONlib provides three command-line utilities to
//! analyze, split, or defragment multifiles." This crate implements those —
//! [`dump`], [`split`], [`defrag`] — plus two more that the reproduction's
//! extensions enable: `sionrepair` (rescue-based metadata reconstruction,
//! paper §6) and `sioncat` (stream one rank's logical file to stdout).
//!
//! All functionality is available as library functions operating on any
//! [`vfs::Vfs`]; the binaries wrap them over the local file system.

use sion::rescue::{RescueHeader, RESCUE_HEADER_LEN};
use sion::{Multifile, Result, SerialWriter, SionError, SionFlags, SionParams};
use std::fmt::Write as _;
use vfs::Vfs;

/// Human-readable metadata dump of a multifile (the `siondump` tool).
///
/// Prints the global shape, per-file geometry, and a per-task table of
/// chunk locations and fill states.
pub fn dump(vfs: &dyn Vfs, base: &str) -> Result<String> {
    let mf = Multifile::open(vfs, base)?;
    // The per-task table genuinely needs every rank, so this is the one
    // tool that asks for the eager materialization.
    let loc = mf.locations()?;
    let mut out = String::new();
    let _ = writeln!(out, "multifile:      {base}");
    let _ = writeln!(out, "tasks:          {}", loc.ntasks);
    let _ = writeln!(out, "physical files: {}", loc.nfiles);
    let _ = writeln!(out, "fs block size:  {}", loc.fsblksize);
    let _ = writeln!(
        out,
        "flags:          aligned={} compressed={} rescue={}",
        loc.flags.contains(SionFlags::ALIGNED),
        loc.flags.contains(SionFlags::COMPRESSED),
        loc.flags.contains(SionFlags::RESCUE),
    );
    let _ = writeln!(out, "stored bytes:   {}", loc.total_stored_bytes());
    let _ = writeln!(out, "max blocks:     {}", loc.max_blocks());
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:>6} {:>5} {:>6} {:>10} {:>10} {:>12} chunks(block:used)",
        "rank", "file", "ltask", "chunkreq", "capacity", "stored"
    );
    for t in &loc.tasks {
        let chunks: Vec<String> = t
            .chunks
            .iter()
            .filter(|c| c.used > 0)
            .map(|c| format!("{}:{}", c.block, c.used))
            .collect();
        let _ = writeln!(
            out,
            "{:>6} {:>5} {:>6} {:>10} {:>10} {:>12} [{}]",
            t.global_rank,
            t.file,
            t.ltask,
            t.chunksize_req,
            t.capacity,
            t.stored_bytes,
            chunks.join(" ")
        );
    }
    Ok(out)
}

/// Extract logical task files back into physical per-task files (the
/// `sionsplit` tool). Writes `"{prefix}.{rank:06}"` for each selected rank
/// (all ranks if `ranks` is `None`) and returns the created paths.
///
/// The extracted content is the *logical* stream — decompressed if the
/// multifile is compressed — i.e. exactly what the original task-local file
/// would have contained.
pub fn split(
    vfs_in: &dyn Vfs,
    base: &str,
    vfs_out: &dyn Vfs,
    prefix: &str,
    ranks: Option<&[usize]>,
) -> Result<Vec<String>> {
    let mf = Multifile::open(vfs_in, base)?;
    let all: Vec<usize> = (0..mf.ntasks()).collect();
    let selected = ranks.unwrap_or(&all);
    let mut created = Vec::with_capacity(selected.len());
    for &rank in selected {
        if rank >= mf.ntasks() {
            return Err(SionError::InvalidArg(format!(
                "rank {rank} out of range (multifile has {} tasks)",
                mf.ntasks()
            )));
        }
        let path = format!("{prefix}.{rank:06}");
        let out = vfs_out.create(&path)?;
        let mut reader = mf.rank_reader(rank)?;
        let mut at = 0u64;
        let mut buf = vec![0u8; 256 * 1024];
        loop {
            let n = reader.read_some(&mut buf)?;
            if n == 0 {
                break;
            }
            out.write_all_at(&buf[..n], at)?;
            at += n as u64;
        }
        created.push(path);
    }
    Ok(created)
}

/// Outcome of [`defrag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefragStats {
    /// Tasks copied.
    pub ntasks: usize,
    /// Largest block count of any input physical file.
    pub blocks_before: u64,
    /// Stored bytes copied (identical before/after).
    pub stored_bytes: u64,
}

/// Contract a multifile into a single block per task (the `siondefrag`
/// tool): "the new file contains only one chunk per task with the data
/// from all chunks of this task found in the input file. In addition, all
/// gaps in the form of unused file-system blocks are removed."
///
/// Compressed multifiles are copied verbatim (stored bytes move, the
/// `COMPRESSED` flag is preserved), so the output remains readable by the
/// normal API.
pub fn defrag(
    vfs_in: &dyn Vfs,
    base: &str,
    vfs_out: &dyn Vfs,
    out_base: &str,
    nfiles: u32,
) -> Result<DefragStats> {
    let mf = Multifile::open(vfs_in, base)?;
    let ntasks = mf.ntasks();
    let flags = mf.flags();
    // Two streaming passes over the ranks — sizing, then copying — so no
    // full `Locations` is ever materialized. One chunk per task, sized to
    // exactly its stored data.
    let mut chunksizes = Vec::with_capacity(ntasks);
    for rank in 0..ntasks {
        chunksizes.push(mf.location(rank)?.stored_bytes.max(1));
    }
    let mut params = SionParams::new(0).with_nfiles(nfiles);
    if !flags.contains(SionFlags::ALIGNED) {
        params = params.with_alignment(sion::Alignment::None);
    }
    params.rescue = flags.contains(SionFlags::RESCUE);
    // Copy stored bytes verbatim: the writer itself runs uncompressed, but
    // the recorded flags keep the COMPRESSED bit for readers.
    let mut writer =
        SerialWriter::create_with_flags(vfs_out, out_base, &chunksizes, &params, flags)?;
    let mut stored = 0u64;
    let mut buf = vec![0u8; 256 * 1024];
    for rank in 0..ntasks {
        let t = mf.location(rank)?;
        writer.select_rank(rank)?;
        for c in &t.chunks {
            let mut pos = 0u64;
            while pos < c.used {
                let n = mf.read_at(rank, c.block, pos, &mut buf)?;
                if n == 0 {
                    return Err(SionError::Format(format!(
                        "chunk of rank {rank} block {} ended early",
                        c.block
                    )));
                }
                writer.write(&buf[..n])?;
                pos += n as u64;
                stored += n as u64;
            }
        }
    }
    writer.close()?;
    Ok(DefragStats {
        ntasks,
        blocks_before: mf.max_blocks(),
        stored_bytes: stored,
    })
}

/// Accounting of one [`cat_into`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatStats {
    /// Logical bytes streamed into the sink.
    pub bytes: u64,
    /// The reader's I/O counters: on a leasing VFS (MemFs) an uncompressed
    /// cat keeps `bytes_copied` at zero — pages flow from the backing
    /// store straight through the sink.
    pub io: sion::IoCounters,
}

/// Stream one rank's logical content through `sink` (the `sioncat`
/// engine). Uncompressed streams take the borrow-based
/// [`scan_remaining`](sion::RankReader::scan_remaining) pass: each
/// contiguous run is handed to the sink straight from a page lease when
/// the backend supports it, so nothing is staged through an engine-owned
/// buffer. Compressed streams must be decoded, so they go through the
/// copying read path chunk by chunk.
pub fn cat_into(
    vfs: &dyn Vfs,
    base: &str,
    rank: usize,
    sink: &mut dyn FnMut(&[u8]),
) -> Result<CatStats> {
    let mf = Multifile::open(vfs, base)?;
    let mut reader = mf.rank_reader(rank)?;
    let bytes = if mf.flags().contains(SionFlags::COMPRESSED) {
        let mut buf = vec![0u8; 256 * 1024];
        let mut total = 0u64;
        loop {
            let n = reader.read_some(&mut buf)?;
            if n == 0 {
                break total;
            }
            sink(&buf[..n]);
            total += n as u64;
        }
    } else {
        reader.scan_remaining(sink)?
    };
    Ok(CatStats { bytes, io: reader.io_counters() })
}

/// Stream one rank's logical (decompressed) content (the `sioncat` tool).
pub fn cat(vfs: &dyn Vfs, base: &str, rank: usize) -> Result<Vec<u8>> {
    let mut data = Vec::new();
    cat_into(vfs, base, rank, &mut |run| data.extend_from_slice(run))?;
    Ok(data)
}

/// Findings of a [`verify`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Tasks whose logical streams were fully readable.
    pub tasks_ok: usize,
    /// Human-readable problems found (empty = clean).
    pub problems: Vec<String>,
}

impl VerifyReport {
    /// Whether the multifile passed every check.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Integrity-check a multifile (the `sionverify` tool): metadata opens and
/// cross-validates, every chunk's usage fits its capacity, every logical
/// stream is readable end to end (which exercises decompression), and — if
/// rescue headers are present — they agree with metablock 2.
///
/// The strict decoder rejects inconsistent metadata — impossible extents
/// and duplicate ranks at [`Multifile::open`], usage overflowing capacity
/// at the lazy per-rank fetch — which would turn every such defect into
/// an opaque `Err` here. Instead, when either the open or a per-rank
/// fetch fails, verify falls back to a *lenient raw-metadata scan*
/// ([`verify_raw`]) that reads metablocks 1 and 2 directly and reports
/// each inconsistency as a problem in the returned report — so damaged
/// files still yield a diagnosis instead of just an error.
pub fn verify(vfs: &dyn Vfs, base: &str) -> Result<VerifyReport> {
    let mf = match Multifile::open(vfs, base) {
        Ok(mf) => mf,
        Err(open_err) => return verify_raw(vfs, base, open_err),
    };
    let rescue = mf.flags().contains(SionFlags::RESCUE);
    let compressed = mf.flags().contains(SionFlags::COMPRESSED);
    let mut report = VerifyReport::default();
    // Per-file handles for the rescue cross-check, opened on first use.
    let mut handles: Vec<Option<std::sync::Arc<dyn vfs::VfsFile>>> =
        vec![None; mf.nfiles() as usize];

    // Metadata streams one rank at a time — a 64Ki-task multifile is
    // verified without ever materializing the full `Locations`.
    for rank in 0..mf.ntasks() {
        // A per-rank fetch the strict decoder rejects sends the whole
        // report through the raw fallback, exactly like a failed open:
        // without consistent metadata, no stream can be certified.
        let t = match mf.location(rank) {
            Ok(t) => t,
            Err(e) => return verify_raw(vfs, base, e),
        };
        let mut ok = true;
        // Note: per-chunk `used <= usable` needs no check here — metadata
        // violating it cannot pass the strict fetch and is diagnosed by
        // the raw fallback path instead.
        // Certify the logical stream readable end to end. Uncompressed
        // streams go through the borrow-based scan — on a leasing VFS the
        // pass inspects pages in place and copies nothing — while
        // compressed streams must be materialized to exercise
        // decompression.
        let scanned: Result<u64> = if compressed {
            mf.read_rank(rank).map(|data| data.len() as u64)
        } else {
            mf.rank_reader(rank)
                .and_then(|mut r| r.scan_remaining(&mut |_page| {}))
        };
        match scanned {
            Ok(len) => {
                // For uncompressed files the logical length must equal the
                // stored length.
                if !compressed && len != t.stored_bytes {
                    report.problems.push(format!(
                        "rank {rank}: logical length {len} != stored bytes {}",
                        t.stored_bytes
                    ));
                    ok = false;
                }
            }
            Err(e) => {
                report.problems.push(format!("rank {rank}: stream unreadable: {e}"));
                ok = false;
            }
        }
        if ok {
            report.tasks_ok += 1;
        }

        // Rescue-header cross-check, on the same pass.
        if rescue {
            let k = t.file as usize;
            if handles[k].is_none() {
                handles[k] = Some(vfs.open(&sion::physical_name(base, k as u32))?);
            }
            let file = handles[k].as_ref().expect("opened above");
            for c in &t.chunks {
                if c.used == 0 {
                    continue;
                }
                let mut hdr = [0u8; RESCUE_HEADER_LEN as usize];
                let at = c.offset - RESCUE_HEADER_LEN;
                if file.read_exact_at(&mut hdr, at).is_err() {
                    report.problems.push(format!(
                        "rank {rank} block {}: rescue header unreadable",
                        c.block
                    ));
                    continue;
                }
                match RescueHeader::decode(&hdr) {
                    Some(h)
                        if h.global_rank == rank as u64
                            && h.block == c.block
                            && h.used == c.used => {}
                    Some(h) => report.problems.push(format!(
                        "rank {rank} block {}: rescue header disagrees                          (rank {}, block {}, used {})",
                        c.block, h.global_rank, h.block, h.used
                    )),
                    None => report.problems.push(format!(
                        "rank {rank} block {}: rescue header missing",
                        c.block
                    )),
                }
            }
        }
    }
    Ok(report)
}

/// Lenient fallback of [`verify`] for files the strict [`Multifile::open`]
/// rejects: read metablocks 1 and 2 of every physical file directly and
/// report each inconsistency (usage over capacity, impossible extents,
/// duplicate ranks, unreadable metadata) as a problem. Returns `Err` only
/// when even the first file's metablock 1 is unreadable — then there is
/// nothing to diagnose against — propagating the original open error
/// alongside the read failure. `tasks_ok` stays 0: without a consistent
/// open, no stream can be certified readable.
fn verify_raw(vfs: &dyn Vfs, base: &str, open_err: SionError) -> Result<VerifyReport> {
    use sion::format::{MetaBlock1, MetaBlock2};
    use sion::FileLayout;

    let first = vfs
        .open(base)
        .map_err(|e| SionError::Format(format!("{open_err}; base file unreadable: {e}")))?;
    let first_mb1 = MetaBlock1::read_from(first.as_ref())
        .map_err(|e| SionError::Format(format!("{open_err}; metablock 1 unreadable: {e}")))?;
    drop(first);

    let mut report = VerifyReport::default();
    report
        .problems
        .push(format!("strict metadata open failed: {open_err}"));

    let mut seen_ranks = std::collections::BTreeMap::new();
    for k in 0..first_mb1.nfiles {
        let name = sion::physical_name(base, k);
        let file = match vfs.open(&name) {
            Ok(f) => f,
            Err(e) => {
                report.problems.push(format!("{name}: cannot open: {e}"));
                continue;
            }
        };
        let mb1 = match MetaBlock1::read_from(file.as_ref()) {
            Ok(m) => m,
            Err(e) => {
                report.problems.push(format!("{name}: metablock 1 unreadable: {e}"));
                continue;
            }
        };
        if mb1.filenum != k {
            report
                .problems
                .push(format!("{name}: claims file number {} (expected {k})", mb1.filenum));
        }
        for (t, &r) in mb1.global_ranks.iter().enumerate() {
            if let Some(prev) = seen_ranks.insert(r, name.clone()) {
                report
                    .problems
                    .push(format!("{name}: rank {r} (local task {t}) already mapped in {prev}"));
            }
        }
        let layout = FileLayout::from_mb1(&mb1);
        let n = layout.ntasks();
        let mb2 = match MetaBlock2::read_from(file.as_ref(), n) {
            Ok(m) => m,
            Err(e) => {
                report.problems.push(format!("{name}: metablock 2 unreadable: {e}"));
                continue;
            }
        };
        if let Ok(len) = file.len() {
            if let Err(e) = layout.validate_extent(mb2.nblocks, len) {
                report.problems.push(format!("{name}: {e}"));
            }
        }
        for t in 0..n {
            let usable = layout.usable(t);
            for b in 0..mb2.nblocks {
                let used = mb2.used_in(b, t, n);
                if used > usable {
                    report.problems.push(format!(
                        "{name}: rank {} block {b}: {used} used bytes exceed usable \
                         capacity {usable}",
                        mb1.global_ranks[t]
                    ));
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::{Comm, World};
    use sion::paropen_write;
    use vfs::MemFs;

    fn payload(rank: usize, len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i * 11 + rank * 73 + 5) % 241) as u8).collect()
    }

    fn sample_multifile(fs: &MemFs, params: &SionParams, ntasks: usize) {
        World::run(ntasks, |comm| {
            let mut w = paropen_write(fs, "in.sion", params, comm).unwrap();
            // Multiple writes force several blocks when chunks are small.
            for piece in payload(comm.rank(), 3000).chunks(700) {
                w.write(piece).unwrap();
            }
            w.close().unwrap();
        });
    }

    #[test]
    fn dump_reports_shape() {
        let fs = MemFs::with_block_size(512);
        sample_multifile(&fs, &SionParams::new(512).with_nfiles(2), 6);
        let text = dump(&fs, "in.sion").unwrap();
        assert!(text.contains("tasks:          6"));
        assert!(text.contains("physical files: 2"));
        assert!(text.contains("stored bytes:   18000"));
        // Every rank has a row.
        for rank in 0..6 {
            assert!(text.lines().any(|l| l.trim_start().starts_with(&format!("{rank} "))));
        }
    }

    #[test]
    fn split_recreates_task_files_byte_identical() {
        let fs = MemFs::with_block_size(512);
        sample_multifile(&fs, &SionParams::new(512), 4);
        let out = MemFs::new();
        let created = split(&fs, "in.sion", &out, "task", None).unwrap();
        assert_eq!(created.len(), 4);
        for (rank, path) in created.iter().enumerate() {
            let f = out.open(path).unwrap();
            let mut got = vec![0u8; 3000];
            f.read_exact_at(&mut got, 0).unwrap();
            assert_eq!(f.len().unwrap(), 3000);
            assert_eq!(got, payload(rank, 3000));
        }
    }

    #[test]
    fn split_selected_ranks_only() {
        let fs = MemFs::with_block_size(512);
        sample_multifile(&fs, &SionParams::new(512), 5);
        let out = MemFs::new();
        let created = split(&fs, "in.sion", &out, "x", Some(&[1, 3])).unwrap();
        assert_eq!(created, vec!["x.000001".to_string(), "x.000003".to_string()]);
        assert!(split(&fs, "in.sion", &out, "x", Some(&[9])).is_err());
    }

    #[test]
    fn split_decompresses_compressed_multifiles() {
        let fs = MemFs::with_block_size(512);
        sample_multifile(&fs, &SionParams::new(512).with_compression(), 3);
        let out = MemFs::new();
        split(&fs, "in.sion", &out, "t", None).unwrap();
        for rank in 0..3 {
            let f = out.open(&format!("t.{rank:06}")).unwrap();
            let mut got = vec![0u8; 3000];
            f.read_exact_at(&mut got, 0).unwrap();
            assert_eq!(got, payload(rank, 3000));
        }
    }

    #[test]
    fn defrag_contracts_to_one_block_and_preserves_content() {
        let fs = MemFs::with_block_size(512);
        // 512-byte chunks, 3000 bytes/task → 6 blocks in the input.
        sample_multifile(&fs, &SionParams::new(512), 4);
        let before = Multifile::open(&fs, "in.sion").unwrap();
        assert!(before.max_blocks() > 1);
        drop(before);

        let out = MemFs::with_block_size(512);
        let stats = defrag(&fs, "in.sion", &out, "out.sion", 1).unwrap();
        assert_eq!(stats.ntasks, 4);
        assert_eq!(stats.stored_bytes, 12000);
        assert!(stats.blocks_before > 1);

        let mf = Multifile::open(&out, "out.sion").unwrap();
        assert_eq!(mf.max_blocks(), 1, "defragmented file must be one block");
        for rank in 0..4 {
            assert_eq!(mf.read_rank(rank).unwrap(), payload(rank, 3000));
        }
    }

    #[test]
    fn defrag_preserves_compression_verbatim() {
        let fs = MemFs::with_block_size(512);
        sample_multifile(&fs, &SionParams::new(512).with_compression(), 3);
        let stored_in =
            Multifile::open(&fs, "in.sion").unwrap().locations().unwrap().total_stored_bytes();

        let out = MemFs::with_block_size(512);
        let stats = defrag(&fs, "in.sion", &out, "out.sion", 1).unwrap();
        assert_eq!(stats.stored_bytes, stored_in, "stored (compressed) bytes copied verbatim");

        let mf = Multifile::open(&out, "out.sion").unwrap();
        assert!(mf.compressed());
        for rank in 0..3 {
            assert_eq!(mf.read_rank(rank).unwrap(), payload(rank, 3000));
        }
    }

    #[test]
    fn defrag_removes_gap_storage() {
        // One busy task + idle tasks → gappy input; defrag output must be
        // dense.
        let fs = MemFs::with_block_size(512);
        World::run(4, |comm| {
            let params = SionParams::new(512);
            let mut w = paropen_write(&fs, "gappy.sion", &params, comm).unwrap();
            if comm.rank() == 0 {
                w.write(&payload(0, 20 * 512)).unwrap();
            }
            w.close().unwrap();
        });
        let out = MemFs::with_block_size(512);
        defrag(&fs, "gappy.sion", &out, "dense.sion", 1).unwrap();
        let dense = Multifile::open(&out, "dense.sion").unwrap();
        assert_eq!(dense.read_rank(0).unwrap(), payload(0, 20 * 512));
        // Logical footprint shrinks: input spreads over 20 blocks x 4
        // chunks; output is one block with one task-sized chunk + 3 minimal.
        let in_len = fs.stats("gappy.sion").unwrap().len;
        let out_len = out.stats("dense.sion").unwrap().len;
        assert!(out_len < in_len / 2, "in {in_len} out {out_len}");
    }

    #[test]
    fn cat_streams_one_rank() {
        let fs = MemFs::with_block_size(512);
        sample_multifile(&fs, &SionParams::new(512), 3);
        assert_eq!(cat(&fs, "in.sion", 2).unwrap(), payload(2, 3000));
        assert!(cat(&fs, "in.sion", 7).is_err());
    }

    #[test]
    fn cat_into_copies_nothing_on_a_leasing_backend() {
        // The lease-based scan hands MemFs pages straight to the sink:
        // 3000 bytes across six 512-byte chunks, zero memcpys inside the
        // read engine.
        let fs = MemFs::with_block_size(512);
        sample_multifile(&fs, &SionParams::new(512), 3);
        let mut got = Vec::new();
        let stats = cat_into(&fs, "in.sion", 1, &mut |run| got.extend_from_slice(run)).unwrap();
        assert_eq!(got, payload(1, 3000));
        assert_eq!(stats.bytes, 3000);
        assert_eq!(stats.io.bytes_copied, 0, "leases served the whole cat: {:?}", stats.io);
        assert_eq!(stats.io.allocs, 0, "no bounce buffer was needed: {:?}", stats.io);
    }

    #[test]
    fn verify_clean_multifile() {
        let fs = MemFs::with_block_size(512);
        sample_multifile(&fs, &SionParams::new(512).with_rescue(), 4);
        let report = verify(&fs, "in.sion").unwrap();
        assert!(report.is_clean(), "{:?}", report.problems);
        assert_eq!(report.tasks_ok, 4);
    }

    #[test]
    fn verify_clean_compressed_multifile() {
        let fs = MemFs::with_block_size(512);
        sample_multifile(&fs, &SionParams::new(512).with_compression().with_nfiles(2), 4);
        let report = verify(&fs, "in.sion").unwrap();
        assert!(report.is_clean(), "{:?}", report.problems);
    }

    #[test]
    fn verify_detects_usage_overflow() {
        let fs = MemFs::with_block_size(512);
        sample_multifile(&fs, &SionParams::new(512), 2);
        // Corrupt metablock 2: blow up one task's used count. Find it via
        // the v2 trailer ([mb2_off, mb2_len, idx_off, idx_len, magic]).
        let f = fs.open_rw("in.sion").unwrap();
        let len = f.len().unwrap();
        let mut tr = [0u8; 40];
        f.read_exact_at(&mut tr, len - 40).unwrap();
        let mb2_off = u64::from_le_bytes(tr[0..8].try_into().unwrap());
        let idx_off = u64::from_le_bytes(tr[16..24].try_into().unwrap());
        // First usage word lives after magic(8)+nblocks(8)+ntasks(8).
        // 600 bytes exceed the 512-byte chunk capacity.
        f.write_all_at(&600u64.to_le_bytes(), mb2_off + 24).unwrap();
        // Smash the index magic too, so the lazy fetch degrades to the
        // linear metablock-2 path and meets the corrupted row.
        f.write_all_at(b"XXXXXXXX", idx_off).unwrap();
        // The strict per-rank fetch rejects this file, so verify must fall
        // back to the raw-metadata scan and name the overflowing chunk.
        let report = verify(&fs, "in.sion").unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.tasks_ok, 0);
        assert!(
            report.problems.iter().any(|p| p.contains("600") && p.contains("exceed")),
            "{:?}",
            report.problems
        );
    }

    #[test]
    fn verify_detects_clobbered_rescue_header() {
        let fs = MemFs::with_block_size(512);
        sample_multifile(&fs, &SionParams::new(512).with_rescue(), 2);
        let mf = Multifile::open(&fs, "in.sion").unwrap();
        let chunk0 = mf.location(0).unwrap().chunks[0].offset
            - sion::rescue::RESCUE_HEADER_LEN;
        drop(mf);
        let f = fs.open_rw("in.sion").unwrap();
        f.write_all_at(b"XXXXXXXX", chunk0).unwrap(); // smash the magic
        let report = verify(&fs, "in.sion").unwrap();
        assert!(!report.is_clean());
        assert!(report.problems.iter().any(|p| p.contains("rescue header")), "{report:?}");
    }

    #[test]
    fn defrag_multifile_to_different_file_count() {
        let fs = MemFs::with_block_size(512);
        sample_multifile(&fs, &SionParams::new(512).with_nfiles(3), 6);
        let out = MemFs::with_block_size(512);
        defrag(&fs, "in.sion", &out, "two.sion", 2).unwrap();
        let mf = Multifile::open(&out, "two.sion").unwrap();
        assert_eq!(mf.nfiles(), 2);
        for rank in 0..6 {
            assert_eq!(mf.read_rank(rank).unwrap(), payload(rank, 3000));
        }
    }
}

//! `siondefrag <multifile> <output> [nfiles]` — contract all blocks into a
//! single block per task and drop unused gaps (paper §3.3).

use vfs::LocalFs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() > 4 {
        eprintln!("usage: siondefrag <multifile> <output> [nfiles]");
        std::process::exit(2);
    }
    let nfiles: u32 = match args.get(3) {
        None => 1,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("siondefrag: bad nfiles {a:?}");
            std::process::exit(2);
        }),
    };
    let fs = LocalFs::new(".");
    match sion_tools::defrag(&fs, &args[1], &fs, &args[2], nfiles) {
        Ok(stats) => println!(
            "defragmented {} tasks, {} blocks -> 1, {} stored bytes",
            stats.ntasks, stats.blocks_before, stats.stored_bytes
        ),
        Err(e) => {
            eprintln!("siondefrag: {e}");
            std::process::exit(1);
        }
    }
}

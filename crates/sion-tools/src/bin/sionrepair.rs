//! `sionrepair <multifile> [--force]` — rebuild a lost metablock 2 from
//! per-chunk rescue headers (the paper's §6 robustness road map).

use vfs::LocalFs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 2 || args.len() > 3 {
        eprintln!("usage: sionrepair <multifile> [--force]");
        std::process::exit(2);
    }
    let force = args.get(2).map(|a| a == "--force").unwrap_or(false);
    let fs = LocalFs::new(".");
    match sion::rescue::repair(&fs, &args[1], force) {
        Ok(rep) => {
            println!(
                "scanned {} files: {} intact, {} repaired; recovered {} chunks / {} bytes",
                rep.files_scanned,
                rep.files_intact,
                rep.files_repaired,
                rep.chunks_recovered,
                rep.bytes_recovered
            );
            if !rep.is_clean() {
                println!("skipped damage ({} problems):", rep.problems.len());
                for p in &rep.problems {
                    println!("  {p}");
                }
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("sionrepair: {e}");
            std::process::exit(1);
        }
    }
}

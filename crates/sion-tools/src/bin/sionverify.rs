//! `sionverify <multifile>` — integrity-check a multifile: metadata
//! consistency, chunk bounds, stream readability, and rescue headers.

use vfs::LocalFs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 2 {
        eprintln!("usage: sionverify <multifile>");
        std::process::exit(2);
    }
    let fs = LocalFs::new(".");
    match sion_tools::verify(&fs, &args[1]) {
        Ok(report) if report.is_clean() => {
            println!("OK: {} task streams verified", report.tasks_ok);
        }
        Ok(report) => {
            println!(
                "PROBLEMS: {} task streams ok, {} findings:",
                report.tasks_ok,
                report.problems.len()
            );
            for p in &report.problems {
                println!("  {p}");
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("sionverify: {e}");
            std::process::exit(1);
        }
    }
}

//! `sionsplit <multifile> <output-prefix> [rank ...]` — extract logical
//! task-local files back into physical files (paper §3.3).

use vfs::LocalFs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: sionsplit <multifile> <output-prefix> [rank ...]");
        std::process::exit(2);
    }
    let ranks: Vec<usize> = args[3..]
        .iter()
        .map(|a| a.parse().unwrap_or_else(|_| {
            eprintln!("sionsplit: bad rank {a:?}");
            std::process::exit(2);
        }))
        .collect();
    let fs = LocalFs::new(".");
    let selection = (!ranks.is_empty()).then_some(ranks.as_slice());
    match sion_tools::split(&fs, &args[1], &fs, &args[2], selection) {
        Ok(created) => {
            for path in created {
                println!("{path}");
            }
        }
        Err(e) => {
            eprintln!("sionsplit: {e}");
            std::process::exit(1);
        }
    }
}

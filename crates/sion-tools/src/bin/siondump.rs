//! `siondump <multifile>` — print multifile metadata (paper §3.3).

use vfs::LocalFs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 2 {
        eprintln!("usage: siondump <multifile>");
        std::process::exit(2);
    }
    let fs = LocalFs::new(".");
    match sion_tools::dump(&fs, &args[1]) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("siondump: {e}");
            std::process::exit(1);
        }
    }
}

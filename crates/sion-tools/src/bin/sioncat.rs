//! `sioncat <multifile> <rank>` — stream one task's logical (decompressed)
//! file to stdout.

use std::io::Write;
use vfs::LocalFs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: sioncat <multifile> <rank>");
        std::process::exit(2);
    }
    let rank: usize = args[2].parse().unwrap_or_else(|_| {
        eprintln!("sioncat: bad rank {:?}", args[2]);
        std::process::exit(2);
    });
    let fs = LocalFs::new(".");
    // Stream run by run instead of materializing the logical file: the
    // lease-based pass hands each contiguous region straight to stdout.
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut write_err: Option<std::io::Error> = None;
    let res = sion_tools::cat_into(&fs, &args[1], rank, &mut |run| {
        if write_err.is_none() {
            if let Err(e) = out.write_all(run) {
                write_err = Some(e);
            }
        }
    });
    if write_err.is_none() {
        if let Err(e) = out.flush() {
            write_err = Some(e);
        }
    }
    if let Some(e) = write_err {
        // A closed pipe (e.g. `sioncat f 0 | head`) is a normal way for
        // this stream to end, not a crash.
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("sioncat: stdout: {e}");
        std::process::exit(1);
    }
    if let Err(e) = res {
        eprintln!("sioncat: {e}");
        std::process::exit(1);
    }
}

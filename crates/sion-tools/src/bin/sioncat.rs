//! `sioncat <multifile> <rank>` — stream one task's logical (decompressed)
//! file to stdout.

use std::io::Write;
use vfs::LocalFs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: sioncat <multifile> <rank>");
        std::process::exit(2);
    }
    let rank: usize = args[2].parse().unwrap_or_else(|_| {
        eprintln!("sioncat: bad rank {:?}", args[2]);
        std::process::exit(2);
    });
    let fs = LocalFs::new(".");
    match sion_tools::cat(&fs, &args[1], rank) {
        Ok(data) => {
            // A closed pipe (e.g. `sioncat f 0 | head`) is a normal way for
            // this stream to end, not a crash.
            if let Err(e) = std::io::stdout().write_all(&data) {
                if e.kind() == std::io::ErrorKind::BrokenPipe {
                    std::process::exit(0);
                }
                eprintln!("sioncat: stdout: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("sioncat: {e}");
            std::process::exit(1);
        }
    }
}

//! Virtual file-system abstraction for the SIONlib reproduction.
//!
//! SIONlib sits between a parallel application and the underlying (parallel)
//! file system. To keep the library storage-agnostic — and to let the test
//! suite and the timing simulator exercise the exact same code paths as real
//! disks — every component accesses storage through the [`Vfs`] and
//! [`VfsFile`] traits defined here.
//!
//! Three implementations exist:
//!
//! * [`LocalFs`] — thin wrapper over `std::fs`, positioned I/O via
//!   `FileExt::{read_at, write_at}`. Used by the examples and CLI tools.
//! * [`MemFs`] — a thread-safe, *sparse* in-memory file system. Holes (file
//!   ranges never written) consume no memory, mirroring how GPFS/Lustre do
//!   not materialize untouched blocks, which SIONlib's block-per-task layout
//!   relies on. Used throughout the test suite.
//! * `parfs::SimFs` (in the `parfs` crate) — a functional FS backed by the
//!   parallel-file-system simulator's namespace.
//!
//! All offsets and lengths are `u64`; positioned reads of holes yield zero
//! bytes, as POSIX sparse files do.

mod fault;
pub mod guard;
mod local;
mod mem;

pub use fault::{FaultFs, FaultKind, FaultRule, OpRecord};
pub use guard::{BlockGuardFs, BlockViolation};
pub use local::LocalFs;
pub use mem::{MemFs, MemFsStats};

use std::io;
use std::sync::Arc;

/// A handle to an open file supporting positioned (pread/pwrite-style) I/O.
///
/// Handles are cheap to open and independent: several tasks may hold handles
/// to the *same* physical file and write disjoint regions concurrently —
/// this is exactly the SIONlib multifile access pattern.
pub trait VfsFile: Send + Sync {
    /// Read up to `buf.len()` bytes starting at `offset`. Reading past the
    /// end of the file returns fewer bytes (possibly zero); reading a hole
    /// inside the file yields zero bytes.
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize>;

    /// Write all of `buf` at `offset`, extending the file if needed.
    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<usize>;

    /// Truncate or extend (with a hole) the file to `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;

    /// Current file size in bytes (highest written/truncated extent).
    fn len(&self) -> io::Result<u64>;

    /// Whether the file is empty (zero length).
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Flush buffered data to the backing store.
    fn sync(&self) -> io::Result<()>;

    /// Read exactly `buf.len()` bytes at `offset`, failing on short reads.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        let mut done = 0;
        while done < buf.len() {
            let n = self.read_at(&mut buf[done..], offset + done as u64)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "read_exact_at: unexpected end of file",
                ));
            }
            done += n;
        }
        Ok(())
    }

    /// Write all of `buf` at `offset`, failing on short writes.
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        let mut done = 0;
        while done < buf.len() {
            let n = self.write_at(&buf[done..], offset + done as u64)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "write_all_at: wrote zero bytes",
                ));
            }
            done += n;
        }
        Ok(())
    }
}

/// A file namespace: create/open/remove files, query file-system properties.
///
/// Paths are plain `/`-separated strings; implementations normalize them but
/// do not interpret `..`. Directories are implicit (created on demand).
pub trait Vfs: Send + Sync {
    /// Create (or truncate) a file and open it read-write.
    fn create(&self, path: &str) -> io::Result<Arc<dyn VfsFile>>;

    /// Open an existing file read-only.
    fn open(&self, path: &str) -> io::Result<Arc<dyn VfsFile>>;

    /// Open an existing file read-write without truncating.
    fn open_rw(&self, path: &str) -> io::Result<Arc<dyn VfsFile>>;

    /// Remove a file.
    fn remove(&self, path: &str) -> io::Result<()>;

    /// Whether a file exists at `path`.
    fn exists(&self, path: &str) -> bool;

    /// The file system's block size in bytes — what SIONlib discovers via
    /// `fstat()` and aligns chunks to. (GPFS on Jugene: 2 MiB.)
    fn block_size(&self) -> u64;

    /// List files whose path starts with `prefix`, in sorted order.
    fn list(&self, prefix: &str) -> io::Result<Vec<String>>;
}

/// Normalize a path: collapse duplicate slashes, strip a leading `./` and a
/// trailing slash. Keeps the path otherwise verbatim.
pub fn normalize_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len());
    let trimmed = path.strip_prefix("./").unwrap_or(path);
    let mut last_slash = false;
    for c in trimmed.chars() {
        if c == '/' {
            if !last_slash && !out.is_empty() {
                out.push('/');
            }
            last_slash = true;
        } else {
            out.push(c);
            last_slash = false;
        }
    }
    if out.ends_with('/') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_slashes() {
        assert_eq!(normalize_path("a//b///c"), "a/b/c");
        assert_eq!(normalize_path("./x/y"), "x/y");
        assert_eq!(normalize_path("x/y/"), "x/y");
        assert_eq!(normalize_path("plain"), "plain");
    }

    #[test]
    fn normalize_keeps_absolute_paths_rooted() {
        // Leading slash collapses (we treat namespaces as rootless), but the
        // remainder is intact.
        assert_eq!(normalize_path("/tmp//f"), "tmp/f");
    }
}

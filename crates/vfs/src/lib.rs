//! Virtual file-system abstraction for the SIONlib reproduction.
//!
//! SIONlib sits between a parallel application and the underlying (parallel)
//! file system. To keep the library storage-agnostic — and to let the test
//! suite and the timing simulator exercise the exact same code paths as real
//! disks — every component accesses storage through the [`Vfs`] and
//! [`VfsFile`] traits defined here.
//!
//! Three implementations exist:
//!
//! * [`LocalFs`] — thin wrapper over `std::fs`, positioned I/O via
//!   `FileExt::{read_at, write_at}`. Used by the examples and CLI tools.
//! * [`MemFs`] — a thread-safe, *sparse* in-memory file system. Holes (file
//!   ranges never written) consume no memory, mirroring how GPFS/Lustre do
//!   not materialize untouched blocks, which SIONlib's block-per-task layout
//!   relies on. Used throughout the test suite.
//! * `parfs::SimFs` (in the `parfs` crate) — a functional FS backed by the
//!   parallel-file-system simulator's namespace.
//!
//! All offsets and lengths are `u64`; positioned reads of holes yield zero
//! bytes, as POSIX sparse files do.

mod fault;
pub mod guard;
mod local;
mod mem;
mod null;
pub mod order_guard;

pub use fault::{FaultFs, FaultKind, FaultRule, OpRecord};
pub use guard::{BlockGuardFs, BlockViolation};
pub use local::LocalFs;
pub use mem::{MemFs, MemFsStats};
pub use null::NullFile;
pub use order_guard::{AccessKind, AccessSink, FileAccess, OrderGuardFs};

use std::io;
pub use std::io::IoSlice;
use std::sync::Arc;

/// A zero-copy read lease: a refcounted borrow of a contiguous run of a
/// file's backing storage, handed out by [`VfsFile::read_lease`].
///
/// The lease keeps the backing buffer alive (and its contents frozen from
/// the lease holder's point of view — writers replace pages copy-on-write
/// rather than mutating leased ones), so consumers can inspect file bytes
/// without a memcpy into a caller-owned buffer.
pub struct ByteLease {
    buf: Arc<dyn AsRef<[u8]> + Send + Sync>,
    start: usize,
    len: usize,
}

impl ByteLease {
    /// Lease `buf[start..start + len]`. Panics if the range is out of
    /// bounds — backends construct leases from ranges they just validated.
    pub fn new(buf: Arc<dyn AsRef<[u8]> + Send + Sync>, start: usize, len: usize) -> ByteLease {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= buf.as_ref().as_ref().len()),
            "lease range out of bounds"
        );
        ByteLease { buf, start, len }
    }

    /// The leased bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf.as_ref().as_ref()[self.start..self.start + self.len]
    }

    /// Length of the leased run.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }
}

impl std::ops::Deref for ByteLease {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

/// A handle to an open file supporting positioned (pread/pwrite-style) I/O.
///
/// Handles are cheap to open and independent: several tasks may hold handles
/// to the *same* physical file and write disjoint regions concurrently —
/// this is exactly the SIONlib multifile access pattern.
pub trait VfsFile: Send + Sync {
    /// Read up to `buf.len()` bytes starting at `offset`. Reading past the
    /// end of the file returns fewer bytes (possibly zero); reading a hole
    /// inside the file yields zero bytes.
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize>;

    /// Write all of `buf` at `offset`, extending the file if needed.
    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<usize>;

    /// Truncate or extend (with a hole) the file to `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;

    /// Current file size in bytes (highest written/truncated extent).
    fn len(&self) -> io::Result<u64>;

    /// Whether the file is empty (zero length).
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Flush buffered data to the backing store.
    fn sync(&self) -> io::Result<()>;

    /// Read exactly `buf.len()` bytes at `offset`, failing on short reads.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        let mut done = 0;
        while done < buf.len() {
            let n = self.read_at(&mut buf[done..], offset + done as u64)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "read_exact_at: unexpected end of file",
                ));
            }
            done += n;
        }
        Ok(())
    }

    /// Write all of `bufs`, laid end to end, starting at `offset` — the
    /// positioned `pwritev`: one submission for a whole iovec instead of
    /// one call per slice.
    ///
    /// Error semantics match the scalar default below on every backend:
    /// slices persist **in order**, so on failure the file holds some
    /// prefix of the iovec (possibly cut mid-slice) and nothing beyond it.
    /// The crash-consistency harness relies on this prefix guarantee.
    ///
    /// The provided default loops [`write_all_at`](Self::write_all_at) per
    /// slice — correct everywhere; backends override it to batch the
    /// submission ([`MemFs`] applies the whole iovec under one file lock,
    /// [`LocalFs`] coalesces into a single syscall).
    fn write_vectored_at(&self, bufs: &[IoSlice<'_>], offset: u64) -> io::Result<()> {
        let mut at = offset;
        for b in bufs {
            self.write_all_at(b, at)?;
            at += b.len() as u64;
        }
        Ok(())
    }

    /// Borrow up to `max_len` bytes at `offset` straight from the file's
    /// backing storage, without copying. Returns a lease over **at most**
    /// `max_len` bytes — however much of the range one contiguous backing
    /// run can serve (at least one byte) — or `None` when the backend has
    /// no shareable backing storage for the range (real disks, holes, or
    /// `offset` at/past end of file). Callers must treat `None` and short
    /// leases as a cue to fall back to [`read_at`](Self::read_at); the two
    /// paths observe identical bytes.
    fn read_lease(&self, offset: u64, max_len: usize) -> Option<ByteLease> {
        let _ = (offset, max_len);
        None
    }

    /// Write all of `buf` at `offset`, failing on short writes.
    fn write_all_at(&self, buf: &[u8], offset: u64) -> io::Result<()> {
        let mut done = 0;
        while done < buf.len() {
            let n = self.write_at(&buf[done..], offset + done as u64)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "write_all_at: wrote zero bytes",
                ));
            }
            done += n;
        }
        Ok(())
    }
}

/// A file namespace: create/open/remove files, query file-system properties.
///
/// Paths are plain `/`-separated strings; implementations normalize them but
/// do not interpret `..`. Directories are implicit (created on demand).
pub trait Vfs: Send + Sync {
    /// Create (or truncate) a file and open it read-write.
    fn create(&self, path: &str) -> io::Result<Arc<dyn VfsFile>>;

    /// Open an existing file read-only.
    fn open(&self, path: &str) -> io::Result<Arc<dyn VfsFile>>;

    /// Open an existing file read-write without truncating.
    fn open_rw(&self, path: &str) -> io::Result<Arc<dyn VfsFile>>;

    /// Remove a file.
    fn remove(&self, path: &str) -> io::Result<()>;

    /// Whether a file exists at `path`.
    fn exists(&self, path: &str) -> bool;

    /// The file system's block size in bytes — what SIONlib discovers via
    /// `fstat()` and aligns chunks to. (GPFS on Jugene: 2 MiB.)
    fn block_size(&self) -> u64;

    /// List files whose path starts with `prefix`, in sorted order.
    fn list(&self, prefix: &str) -> io::Result<Vec<String>>;

    /// Open a *shadow* handle for `path`: a sink a task writes into when
    /// another task owns the physical bytes of `path` (the aggregated-I/O
    /// member side runs its chunk arithmetic against one of these while the
    /// elected aggregator replays the ops against the real file). The
    /// default discards the bytes ([`NullFile`]); checking decorators
    /// override it to record the shadow extents as *durability
    /// obligations* — bytes the owner must persist before acknowledging.
    fn create_shadow(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let _ = path;
        Ok(Arc::new(NullFile::new()))
    }
}

/// Normalize a path: collapse duplicate slashes, strip a leading `./` and a
/// trailing slash. Keeps the path otherwise verbatim.
pub fn normalize_path(path: &str) -> String {
    let mut out = String::with_capacity(path.len());
    let trimmed = path.strip_prefix("./").unwrap_or(path);
    let mut last_slash = false;
    for c in trimmed.chars() {
        if c == '/' {
            if !last_slash && !out.is_empty() {
                out.push('/');
            }
            last_slash = true;
        } else {
            out.push(c);
            last_slash = false;
        }
    }
    if out.ends_with('/') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_slashes() {
        assert_eq!(normalize_path("a//b///c"), "a/b/c");
        assert_eq!(normalize_path("./x/y"), "x/y");
        assert_eq!(normalize_path("x/y/"), "x/y");
        assert_eq!(normalize_path("plain"), "plain");
    }

    #[test]
    fn normalize_keeps_absolute_paths_rooted() {
        // Leading slash collapses (we treat namespaces as rootless), but the
        // remainder is intact.
        assert_eq!(normalize_path("/tmp//f"), "tmp/f");
    }
}

//! [`MemFs`]: a thread-safe, sparse, in-memory file system.
//!
//! Files are stored as maps of fixed-size pages; ranges never written are
//! *holes* that consume no memory and read back as zeros. This mirrors the
//! sparse-allocation behaviour of GPFS/Lustre that SIONlib's block-per-task
//! layout depends on ("file systems tend not to physically allocate the
//! empty blocks"), and lets tests assert on *physically allocated* bytes
//! (e.g. that `siondefrag` removes gaps).

use crate::{normalize_path, ByteLease, IoSlice, Vfs, VfsFile};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::Arc;

/// Page granularity of the sparse store. Small enough that per-task chunks
/// in tests exercise multi-page paths, large enough to stay fast.
const PAGE: usize = 4096;

/// One backing page: always exactly [`PAGE`] bytes once allocated,
/// refcounted so [`VfsFile::read_lease`] can hand it out without copying.
/// Writers that hit a leased page replace it copy-on-write
/// ([`Arc::make_mut`]), so leases observe a consistent snapshot.
type Page = Arc<Vec<u8>>;

fn blank_page() -> Page {
    Arc::new(vec![0u8; PAGE])
}

#[derive(Default)]
struct FileData {
    /// page index -> page contents (always PAGE bytes once allocated)
    pages: BTreeMap<u64, Page>,
    len: u64,
}

impl FileData {
    fn allocated_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE as u64
    }

    fn read_at(&self, buf: &mut [u8], offset: u64) -> usize {
        if offset >= self.len {
            return 0;
        }
        let n = buf.len().min((self.len - offset) as usize);
        let mut done = 0;
        while done < n {
            let pos = offset + done as u64;
            let page_idx = pos / PAGE as u64;
            let in_page = (pos % PAGE as u64) as usize;
            let take = (PAGE - in_page).min(n - done);
            match self.pages.get(&page_idx) {
                Some(page) => buf[done..done + take].copy_from_slice(&page[in_page..in_page + take]),
                None => buf[done..done + take].fill(0),
            }
            done += take;
        }
        n
    }

    fn write_at(&mut self, buf: &[u8], offset: u64) {
        let mut done = 0;
        while done < buf.len() {
            let pos = offset + done as u64;
            let page_idx = pos / PAGE as u64;
            let in_page = (pos % PAGE as u64) as usize;
            let take = (PAGE - in_page).min(buf.len() - done);
            if in_page == 0 && take == PAGE {
                // Full-page overwrite: build the page straight from the
                // source slice instead of zero-filling and copying over it.
                // Outstanding leases keep the old page alive unchanged.
                self.pages.insert(page_idx, Arc::new(buf[done..done + PAGE].to_vec()));
            } else {
                let page = self.pages.entry(page_idx).or_insert_with(blank_page);
                // Copy-on-write: clones the page only when a lease (or a
                // sibling handle's lease) still holds the old contents.
                Arc::make_mut(page)[in_page..in_page + take]
                    .copy_from_slice(&buf[done..done + take]);
            }
            done += take;
        }
        self.len = self.len.max(offset + buf.len() as u64);
    }

    fn set_len(&mut self, len: u64) {
        if len < self.len {
            // Drop pages fully past the new end and zero the tail of the
            // boundary page, so re-extending reads back zeros (POSIX).
            let boundary_page = len / PAGE as u64;
            let keep_into_boundary = (len % PAGE as u64) as usize;
            self.pages.retain(|&idx, _| {
                idx < boundary_page || (idx == boundary_page && keep_into_boundary > 0)
            });
            if keep_into_boundary > 0 {
                if let Some(page) = self.pages.get_mut(&boundary_page) {
                    Arc::make_mut(page)[keep_into_boundary..].fill(0);
                }
            }
        }
        self.len = len;
    }
}

struct MemFile {
    data: Arc<RwLock<FileData>>,
}

impl VfsFile for MemFile {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        Ok(self.data.read().read_at(buf, offset))
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<usize> {
        self.data.write().write_at(buf, offset);
        Ok(buf.len())
    }

    /// Native vectored write: the whole iovec is applied under ONE file
    /// write-lock (each slice still taking the full-page fast path where
    /// aligned), instead of one lock round-trip per slice.
    fn write_vectored_at(&self, bufs: &[IoSlice<'_>], offset: u64) -> io::Result<()> {
        let mut d = self.data.write();
        let mut at = offset;
        for b in bufs {
            d.write_at(b, at);
            at += b.len() as u64;
        }
        Ok(())
    }

    /// Zero-copy borrow of the backing page: the lease is an `Arc` clone of
    /// the page plus a range — no byte is copied. A lease ends at the page
    /// boundary, at end of file, or at a hole (`None`: holes have no
    /// backing storage to borrow; callers fall back to `read_at`).
    fn read_lease(&self, offset: u64, max_len: usize) -> Option<ByteLease> {
        if max_len == 0 {
            return None;
        }
        let d = self.data.read();
        if offset >= d.len {
            return None;
        }
        let page_idx = offset / PAGE as u64;
        let in_page = (offset % PAGE as u64) as usize;
        let page = d.pages.get(&page_idx)?;
        let take = (PAGE - in_page).min(max_len).min((d.len - offset) as usize);
        Some(ByteLease::new(page.clone(), in_page, take))
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.data.write().set_len(len);
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.data.read().len)
    }

    fn sync(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Per-file accounting exposed by [`MemFs::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemFsStats {
    /// Logical file size in bytes.
    pub len: u64,
    /// Bytes physically backed by pages (hole-free footprint).
    pub allocated: u64,
}

/// Number of independent lock shards the namespace is split into. Tasks of
/// a multifile run open distinct physical files concurrently; hashing paths
/// across shards keeps those opens from serializing on one namespace lock.
const NAMESPACE_SHARDS: usize = 16;

/// A sparse in-memory [`Vfs`].
///
/// The path → file map is sharded across [`NAMESPACE_SHARDS`] independently
/// locked hash maps keyed by a path hash, so concurrent create/open/stat
/// traffic from many simulated tasks does not contend on a single mutex.
/// Per-file data keeps its own `RwLock` as before.
pub struct MemFs {
    shards: [Mutex<HashMap<String, Arc<RwLock<FileData>>>>; NAMESPACE_SHARDS],
    block_size: u64,
}

/// FNV-1a over the normalized path, reduced to a shard index.
fn shard_index(path: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in path.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % NAMESPACE_SHARDS as u64) as usize
}

impl MemFs {
    /// An empty in-memory FS advertising a 64 KiB block size (small enough
    /// that alignment paths get exercised by modest test data).
    pub fn new() -> Self {
        Self::with_block_size(64 * 1024)
    }

    /// An empty in-memory FS advertising the given block size.
    pub fn with_block_size(block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            block_size,
        }
    }

    /// The shard holding `path` (already normalized).
    fn shard(&self, path: &str) -> &Mutex<HashMap<String, Arc<RwLock<FileData>>>> {
        &self.shards[shard_index(path)]
    }

    /// Logical and physically-allocated sizes of `path`.
    pub fn stats(&self, path: &str) -> Option<MemFsStats> {
        let path = normalize_path(path);
        let files = self.shard(&path).lock();
        let data = files.get(&path)?;
        let d = data.read();
        Some(MemFsStats { len: d.len, allocated: d.allocated_bytes() })
    }

    /// Number of files in the namespace.
    pub fn file_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

impl Default for MemFs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs for MemFs {
    fn create(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let path = normalize_path(path);
        let data = Arc::new(RwLock::new(FileData::default()));
        self.shard(&path).lock().insert(path, data.clone());
        Ok(Arc::new(MemFile { data }))
    }

    fn open(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        self.open_rw(path)
    }

    fn open_rw(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let norm = normalize_path(path);
        let files = self.shard(&norm).lock();
        let data = files
            .get(&norm)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no such file: {path}")))?;
        Ok(Arc::new(MemFile { data: data.clone() }))
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        let norm = normalize_path(path);
        self.shard(&norm)
            .lock()
            .remove(&norm)
            .map(|_| ())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no such file: {path}")))
    }

    fn exists(&self, path: &str) -> bool {
        let norm = normalize_path(path);
        self.shard(&norm).lock().contains_key(&norm)
    }

    fn block_size(&self) -> u64 {
        self.block_size
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<String>> {
        let prefix = normalize_path(prefix);
        let mut out: Vec<String> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().keys().filter(|k| k.starts_with(&prefix)).cloned());
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sparse_holes_read_zero_and_cost_nothing() {
        let fs = MemFs::new();
        let f = fs.create("big").unwrap();
        // Write 8 bytes at a 10 MiB offset: only one page allocated.
        f.write_all_at(b"deadbeef", 10 * 1024 * 1024).unwrap();
        let st = fs.stats("big").unwrap();
        assert_eq!(st.len, 10 * 1024 * 1024 + 8);
        assert_eq!(st.allocated, PAGE as u64);
        let mut buf = [1u8; 16];
        f.read_exact_at(&mut buf, 4096).unwrap();
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn cross_page_write_read() {
        let fs = MemFs::new();
        let f = fs.create("x").unwrap();
        let data: Vec<u8> = (0..PAGE * 3 + 17).map(|i| (i % 251) as u8).collect();
        f.write_all_at(&data, PAGE as u64 - 7).unwrap();
        let mut back = vec![0u8; data.len()];
        f.read_exact_at(&mut back, PAGE as u64 - 7).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn truncate_then_extend_zeroes() {
        let fs = MemFs::new();
        let f = fs.create("t").unwrap();
        f.write_all_at(&[0xAB; 100], 0).unwrap();
        f.set_len(10).unwrap();
        f.set_len(100).unwrap();
        let mut buf = [0xCD; 90];
        f.read_exact_at(&mut buf, 10).unwrap();
        assert_eq!(buf, [0u8; 90]);
    }

    #[test]
    fn handles_share_state() {
        let fs = MemFs::new();
        fs.create("s").unwrap();
        let a = fs.open_rw("s").unwrap();
        let b = fs.open_rw("s").unwrap();
        a.write_all_at(b"from-a", 0).unwrap();
        let mut buf = [0u8; 6];
        b.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"from-a");
    }

    #[test]
    fn list_and_remove() {
        let fs = MemFs::new();
        fs.create("d/a").unwrap();
        fs.create("d/b").unwrap();
        fs.create("e/c").unwrap();
        assert_eq!(fs.list("d/").unwrap(), vec!["d/a".to_string(), "d/b".to_string()]);
        assert_eq!(fs.file_count(), 3);
        fs.remove("d/a").unwrap();
        assert!(!fs.exists("d/a"));
        assert!(fs.remove("d/a").is_err());
    }

    #[test]
    fn full_page_aligned_write_allocates_and_roundtrips() {
        let fs = MemFs::new();
        let f = fs.create("fp").unwrap();
        // Exactly two aligned pages: takes the direct-construction path.
        let data: Vec<u8> = (0..2 * PAGE).map(|i| (i % 253) as u8).collect();
        f.write_all_at(&data, 0).unwrap();
        assert_eq!(fs.stats("fp").unwrap().allocated, 2 * PAGE as u64);
        let mut back = vec![0u8; data.len()];
        f.read_exact_at(&mut back, 0).unwrap();
        assert_eq!(back, data);
        // Overwriting a full page replaces it wholesale.
        let page2: Vec<u8> = vec![0xEE; PAGE];
        f.write_all_at(&page2, PAGE as u64).unwrap();
        f.read_exact_at(&mut back, 0).unwrap();
        assert_eq!(&back[..PAGE], &data[..PAGE]);
        assert_eq!(&back[PAGE..], &page2[..]);
    }

    #[test]
    fn namespace_ops_work_across_shards() {
        // Enough files that every shard sees traffic (paths hash ~uniformly).
        let fs = MemFs::new();
        let names: Vec<String> = (0..200).map(|i| format!("dir/f{i:04}")).collect();
        for n in &names {
            fs.create(n).unwrap();
        }
        assert_eq!(fs.file_count(), 200);
        let mut listed = fs.list("dir/").unwrap();
        let mut expect = names.clone();
        listed.sort();
        expect.sort();
        assert_eq!(listed, expect);
        for n in &names {
            assert!(fs.exists(n));
            fs.remove(n).unwrap();
        }
        assert_eq!(fs.file_count(), 0);
    }

    #[test]
    fn concurrent_creates_land_in_their_shards() {
        let fs = std::sync::Arc::new(MemFs::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let fs = fs.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let name = format!("run/t{t}/file{i}");
                        let f = fs.create(&name).unwrap();
                        f.write_all_at(&[t as u8; 16], 0).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fs.file_count(), 8 * 50);
        let mut buf = [0u8; 16];
        let f = fs.open("run/t3/file7").unwrap();
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(buf, [3u8; 16]);
    }

    #[test]
    fn lease_borrows_page_without_copy() {
        let fs = MemFs::new();
        let f = fs.create("l").unwrap();
        let data: Vec<u8> = (0..PAGE).map(|i| (i % 241) as u8).collect();
        f.write_all_at(&data, 0).unwrap();
        // Full-page lease: same bytes, and zero-copy (the lease aliases the
        // live page — dropping the read lock first proves no clone happened).
        let lease = f.read_lease(0, PAGE).unwrap();
        assert_eq!(lease.len(), PAGE);
        assert_eq!(&lease[..], &data[..]);
        // A lease never crosses a page boundary; mid-page start clamps.
        let lease = f.read_lease(100, PAGE).unwrap();
        assert_eq!(lease.len(), PAGE - 100);
        assert_eq!(&lease[..], &data[100..]);
    }

    #[test]
    fn lease_clamps_to_eof_and_skips_holes() {
        let fs = MemFs::new();
        let f = fs.create("l2").unwrap();
        f.write_all_at(b"abcdef", 0).unwrap();
        // Clamped at end of file.
        let lease = f.read_lease(2, 100).unwrap();
        assert_eq!(&lease[..], b"cdef");
        // At/past EOF: no lease.
        assert!(f.read_lease(6, 10).is_none());
        assert!(f.read_lease(600, 10).is_none());
        assert!(f.read_lease(0, 0).is_none());
        // Holes have no backing page to borrow: callers fall back to
        // read_at, which yields zeros.
        f.write_all_at(b"z", 3 * PAGE as u64).unwrap();
        assert!(f.read_lease(PAGE as u64, 10).is_none());
    }

    #[test]
    fn lease_survives_overwrite_copy_on_write() {
        let fs = MemFs::new();
        let f = fs.create("cow").unwrap();
        f.write_all_at(&[0x11; PAGE], 0).unwrap();
        let lease = f.read_lease(0, PAGE).unwrap();
        // Partial overwrite forces COW; full-page overwrite replaces the Arc.
        f.write_all_at(&[0x22; 8], 100).unwrap();
        f.write_all_at(&[0x33; PAGE], 0).unwrap();
        // The lease still sees the snapshot it borrowed.
        assert!(lease.iter().all(|&b| b == 0x11));
        let mut now = [0u8; 8];
        f.read_exact_at(&mut now, 100).unwrap();
        assert_eq!(now, [0x33; 8]);
    }

    #[test]
    fn vectored_write_matches_concatenated_scalar() {
        let fs = MemFs::new();
        let f = fs.create("v").unwrap();
        let a = vec![1u8; 17];
        let b = vec![2u8; PAGE];
        let c = vec![3u8; PAGE / 2];
        f.write_vectored_at(
            &[IoSlice::new(&a), IoSlice::new(&b), IoSlice::new(&c)],
            PAGE as u64 - 5,
        )
        .unwrap();
        let mut flat = a.clone();
        flat.extend_from_slice(&b);
        flat.extend_from_slice(&c);
        assert_eq!(f.len().unwrap(), PAGE as u64 - 5 + flat.len() as u64);
        let mut back = vec![0u8; flat.len()];
        f.read_exact_at(&mut back, PAGE as u64 - 5).unwrap();
        assert_eq!(back, flat);
    }

    #[test]
    fn read_past_eof_is_short() {
        let fs = MemFs::new();
        let f = fs.create("f").unwrap();
        f.write_all_at(b"abc", 0).unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(f.read_at(&mut buf, 0).unwrap(), 3);
        assert_eq!(f.read_at(&mut buf, 3).unwrap(), 0);
        assert_eq!(f.read_at(&mut buf, 100).unwrap(), 0);
    }

    proptest! {
        /// Arbitrary interleavings of positioned writes read back exactly
        /// like a reference flat buffer.
        #[test]
        fn writes_match_reference_model(
            ops in prop::collection::vec(
                (0u64..3 * PAGE as u64, prop::collection::vec(any::<u8>(), 1..200)),
                1..40
            )
        ) {
            let fs = MemFs::new();
            let f = fs.create("p").unwrap();
            let mut model: Vec<u8> = Vec::new();
            for (off, data) in &ops {
                f.write_all_at(data, *off).unwrap();
                let end = *off as usize + data.len();
                if model.len() < end { model.resize(end, 0); }
                model[*off as usize..end].copy_from_slice(data);
            }
            prop_assert_eq!(f.len().unwrap(), model.len() as u64);
            let mut back = vec![0u8; model.len()];
            if !back.is_empty() {
                f.read_exact_at(&mut back, 0).unwrap();
            }
            prop_assert_eq!(back, model);
        }

        /// set_len never corrupts surviving data.
        #[test]
        fn truncate_preserves_prefix(len1 in 1usize..5000, cut in 0u64..6000) {
            let fs = MemFs::new();
            let f = fs.create("q").unwrap();
            let data: Vec<u8> = (0..len1).map(|i| (i % 256) as u8).collect();
            f.write_all_at(&data, 0).unwrap();
            f.set_len(cut).unwrap();
            let keep = (cut as usize).min(len1);
            let mut back = vec![0u8; keep];
            if keep > 0 {
                f.read_exact_at(&mut back, 0).unwrap();
            }
            prop_assert_eq!(&back[..], &data[..keep]);
        }
    }
}

//! [`BlockGuardFs`]: a file-system-block contention sanitizer.
//!
//! The paper's §3.2 alignment argument is that aligning each task's chunk
//! to file-system block boundaries guarantees *no two tasks ever write the
//! same FS block*, which is what makes task-local writes into one shared
//! file contention-free (no block ping-pong between GPFS/Lustre lock
//! managers). This decorator turns that argument into a checked property:
//! it wraps any [`Vfs`] and tracks, per FS-block-sized extent of every
//! file, which *logical writer* last touched it. A write by one writer to
//! a block previously written by a different writer is recorded as a
//! [`BlockViolation`].
//!
//! Logical writer identity is a per-thread label set with [`set_task`] —
//! `sion::par::paropen_write` labels each rank's thread with its global
//! rank, so during a parallel SION write every physical `write_at` is
//! attributed to the rank that issued it (including the coalesced flushes
//! of the buffered stream engine, which run on the owning task's thread).
//! Writes from unlabeled threads (test setup, serial tools) are not
//! tracked.
//!
//! Violation reports are deterministic: they are kept in insertion order
//! per file and sorted by (path, block, tasks) before rendering, so a
//! failing seed reproduces byte-identical output.

use crate::{ByteLease, IoSlice, Vfs, VfsFile};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::sync::Arc;

thread_local! {
    static WRITER_TASK: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Label the current thread's writes with a logical writer id (a rank).
/// Subsequent `write_at` calls through any [`BlockGuardFs`] are attributed
/// to this writer until [`clear_task`] or a new [`set_task`].
pub fn set_task(task: u64) {
    WRITER_TASK.with(|c| c.set(Some(task)));
}

/// Remove the current thread's writer label; its writes are no longer
/// tracked.
pub fn clear_task() {
    WRITER_TASK.with(|c| c.set(None));
}

/// The current thread's writer label, if any.
pub fn current_writer() -> Option<u64> {
    WRITER_TASK.with(|c| c.get())
}

/// One cross-writer FS-block overlap detected by [`BlockGuardFs`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BlockViolation {
    /// File the overlap happened in.
    pub path: String,
    /// FS block index (offset / block size) both writers touched.
    pub block: u64,
    /// Writer that previously owned the block.
    pub prev_task: u64,
    /// Writer whose write overlapped it.
    pub task: u64,
    /// Byte offset of the offending write.
    pub offset: u64,
    /// Length of the offending write.
    pub len: u64,
}

impl fmt::Display for BlockViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {} wrote {} bytes at offset {} of \"{}\", touching FS block {} last \
             written by task {}",
            self.task, self.len, self.offset, self.path, self.block, self.prev_task
        )
    }
}

#[derive(Default)]
struct GuardState {
    /// path → (block index → last labeled writer).
    owners: Mutex<BTreeMap<String, BTreeMap<u64, u64>>>,
    violations: Mutex<Vec<BlockViolation>>,
}

impl GuardState {
    fn record_write(&self, block_size: u64, path: &str, offset: u64, len: usize) {
        let Some(task) = current_writer() else { return };
        if len == 0 {
            return;
        }
        let first = offset / block_size;
        let last = (offset + len as u64 - 1) / block_size;
        let mut owners = self.owners.lock();
        let file = owners.entry(path.to_string()).or_default();
        for block in first..=last {
            match file.insert(block, task) {
                Some(prev) if prev != task => {
                    self.violations.lock().push(BlockViolation {
                        path: path.to_string(),
                        block,
                        prev_task: prev,
                        task,
                        offset,
                        len: len as u64,
                    });
                }
                _ => {}
            }
        }
    }
}

/// Decorator recording FS-block write ownership; see the module docs.
pub struct BlockGuardFs {
    inner: Arc<dyn Vfs>,
    state: Arc<GuardState>,
}

impl BlockGuardFs {
    /// Wrap `inner`, tracking write ownership at `inner.block_size()`
    /// granularity.
    pub fn new(inner: Arc<dyn Vfs>) -> BlockGuardFs {
        BlockGuardFs { inner, state: Arc::new(GuardState::default()) }
    }

    /// All violations recorded so far, in deterministic (sorted) order.
    pub fn violations(&self) -> Vec<BlockViolation> {
        let mut v = self.state.violations.lock().clone();
        v.sort();
        v
    }

    /// Drain the recorded violations (deterministic order), resetting the
    /// log but keeping block ownership.
    pub fn take_violations(&self) -> Vec<BlockViolation> {
        let mut v = std::mem::take(&mut *self.state.violations.lock());
        v.sort();
        v
    }

    /// Panic with a deterministic multi-line report if any cross-writer
    /// block overlap was recorded — the checked form of the paper's §3.2
    /// "no two tasks share an FS block" invariant.
    pub fn assert_exclusive(&self) {
        let v = self.violations();
        if !v.is_empty() {
            let lines: Vec<String> = v.iter().map(|x| format!("  {x}")).collect();
            panic!(
                "simcheck: [block-contention] {} cross-task FS-block overlap(s):\n{}",
                v.len(),
                lines.join("\n")
            );
        }
    }
}

struct GuardFile {
    inner: Arc<dyn VfsFile>,
    path: String,
    block_size: u64,
    state: Arc<GuardState>,
}

impl VfsFile for GuardFile {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        self.inner.read_at(buf, offset)
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<usize> {
        let n = self.inner.write_at(buf, offset)?;
        self.state.record_write(self.block_size, &self.path, offset, n);
        Ok(n)
    }

    /// Forward the whole iovec to the inner backend's batched submission,
    /// then attribute each slice's extent to the current writer — block
    /// ownership is per physical byte range, so the guard sees the same
    /// extents whether the caller submitted them scalar or vectored.
    fn write_vectored_at(&self, bufs: &[IoSlice<'_>], offset: u64) -> io::Result<()> {
        self.inner.write_vectored_at(bufs, offset)?;
        let mut at = offset;
        for b in bufs {
            self.state.record_write(self.block_size, &self.path, at, b.len());
            at += b.len() as u64;
        }
        Ok(())
    }

    fn read_lease(&self, offset: u64, max_len: usize) -> Option<ByteLease> {
        self.inner.read_lease(offset, max_len)
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }

    fn sync(&self) -> io::Result<()> {
        self.inner.sync()
    }
}

impl BlockGuardFs {
    fn wrap(&self, path: &str, file: Arc<dyn VfsFile>) -> Arc<dyn VfsFile> {
        Arc::new(GuardFile {
            inner: file,
            path: crate::normalize_path(path),
            block_size: self.inner.block_size().max(1),
            state: self.state.clone(),
        })
    }
}

impl Vfs for BlockGuardFs {
    fn create(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        // Creation truncates: any previous ownership of the file's blocks is
        // void.
        self.state.owners.lock().remove(&crate::normalize_path(path));
        let f = self.inner.create(path)?;
        Ok(self.wrap(path, f))
    }

    fn open(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let f = self.inner.open(path)?;
        Ok(self.wrap(path, f))
    }

    fn open_rw(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let f = self.inner.open_rw(path)?;
        Ok(self.wrap(path, f))
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.state.owners.lock().remove(&crate::normalize_path(path));
        self.inner.remove(path)
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn block_size(&self) -> u64 {
        self.inner.block_size()
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<String>> {
        self.inner.list(prefix)
    }

    /// Shadow writes never reach the physical file, so they claim no block
    /// ownership; forward unwrapped.
    fn create_shadow(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        self.inner.create_shadow(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    fn guarded() -> BlockGuardFs {
        BlockGuardFs::new(Arc::new(MemFs::with_block_size(64)))
    }

    #[test]
    fn same_task_rewrites_are_fine() {
        let fs = guarded();
        let f = fs.create("a").unwrap();
        set_task(0);
        f.write_all_at(&[1u8; 100], 0).unwrap();
        f.write_all_at(&[2u8; 100], 0).unwrap();
        clear_task();
        assert!(fs.violations().is_empty());
        fs.assert_exclusive();
    }

    #[test]
    fn disjoint_blocks_are_fine() {
        let fs = guarded();
        let f = fs.create("a").unwrap();
        set_task(0);
        f.write_all_at(&[1u8; 64], 0).unwrap();
        set_task(1);
        f.write_all_at(&[2u8; 64], 64).unwrap();
        clear_task();
        assert!(fs.violations().is_empty());
    }

    #[test]
    fn cross_task_overlap_is_flagged() {
        let fs = guarded();
        let f = fs.create("a").unwrap();
        set_task(0);
        f.write_all_at(&[1u8; 64], 0).unwrap();
        set_task(1);
        // Straddles blocks 0 (owned by task 0) and 1.
        f.write_all_at(&[2u8; 64], 32).unwrap();
        clear_task();
        let v = fs.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].block, v[0].prev_task, v[0].task), (0, 0, 1));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fs.assert_exclusive()
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("[block-contention]"), "{msg}");
        assert!(msg.contains("FS block 0"), "{msg}");
    }

    #[test]
    fn vectored_slices_are_attributed_like_scalar_writes() {
        let fs = guarded();
        let f = fs.create("a").unwrap();
        set_task(0);
        f.write_all_at(&[1u8; 64], 0).unwrap();
        set_task(1);
        // Slice 1 tail-ends block 0 (owned by task 0) — flagged; slice 2
        // continues into block 1, which is untouched — fine.
        f.write_vectored_at(&[IoSlice::new(&[2u8; 8]), IoSlice::new(&[3u8; 8])], 56)
            .unwrap();
        clear_task();
        let v = fs.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].block, v[0].prev_task, v[0].task), (0, 0, 1));
        assert_eq!(v[0].offset, 56, "violation is attributed to the slice's own offset");
    }

    #[test]
    fn unlabeled_writes_are_ignored() {
        let fs = guarded();
        let f = fs.create("a").unwrap();
        clear_task();
        f.write_all_at(&[1u8; 256], 0).unwrap();
        set_task(7);
        f.write_all_at(&[2u8; 256], 0).unwrap();
        clear_task();
        assert!(fs.violations().is_empty());
    }

    #[test]
    fn create_truncation_voids_ownership() {
        let fs = guarded();
        let f = fs.create("a").unwrap();
        set_task(0);
        f.write_all_at(&[1u8; 64], 0).unwrap();
        drop(f);
        let f = fs.create("a").unwrap();
        set_task(1);
        f.write_all_at(&[2u8; 64], 0).unwrap();
        clear_task();
        assert!(fs.violations().is_empty());
    }

    #[test]
    fn reports_are_sorted_and_deterministic() {
        let fs = guarded();
        let f = fs.create("z").unwrap();
        let g = fs.create("a").unwrap();
        set_task(0);
        f.write_all_at(&[1u8; 64], 0).unwrap();
        g.write_all_at(&[1u8; 64], 0).unwrap();
        set_task(1);
        f.write_all_at(&[2u8; 8], 0).unwrap();
        g.write_all_at(&[2u8; 8], 0).unwrap();
        clear_task();
        let v = fs.take_violations();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].path, "a");
        assert_eq!(v[1].path, "z");
        assert!(fs.take_violations().is_empty());
    }
}

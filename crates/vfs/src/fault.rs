//! [`FaultFs`]: deterministic failure injection for any [`Vfs`].
//!
//! Wraps another file system and injects failures on selected operations.
//! The SIONlib reproduction uses this to verify that storage errors during
//! collective operations surface as clean errors on *every* task instead of
//! deadlocks, and — via the crash-consistency harness in
//! `crates/sion/tests/crash_consistency.rs` — that the rescue/repair path
//! recovers a consistent prefix of every task's data no matter where a
//! crash lands.
//!
//! All mechanisms are deterministic: they trigger on operation *counters*
//! (global sequence numbers or per-kind occurrence numbers), never on time
//! or randomness, so a failing case is reproducible from its trigger point
//! alone. Harnesses that want randomized coverage derive trigger points
//! from their own seeded RNG and sweep them.
//!
//! ## Knobs
//!
//! * **Rules** ([`inject`](FaultFs::inject)): fail occurrences
//!   `from..from+count` of one [`FaultKind`] (counted per kind). With a
//!   small `count` this models *transient* `EIO`-style errors that a retry
//!   would get past; with `count = u64::MAX` it models a persistently
//!   broken operation.
//! * **Crash** ([`crash_after_ops`](FaultFs::crash_after_ops)): a kill
//!   switch at global operation sequence number N — every op from N on
//!   fails, simulating the process (or node) dying at that instant. Ops are
//!   atomic at the VFS-call boundary: the op *before* the switch completed
//!   fully, everything after persists nothing.
//! * **Torn write** ([`crash_torn_write`](FaultFs::crash_torn_write)): like
//!   the crash switch, but the write op *at* the switch persists only a
//!   prefix of its buffer before erroring — a torn/short write, the way a
//!   real crash can leave a partially persisted sector sequence.
//! * **Quota** ([`set_quota`](FaultFs::set_quota)): after K bytes have been
//!   persisted through writes, further writes fail; the write crossing the
//!   boundary persists exactly up to the quota (short write), mirroring how
//!   `EDQUOT` hits mid-`write(2)`. This is the paper's "file quota
//!   violation" failure.
//! * **Op log** ([`take_log`](FaultFs::take_log)): every operation —
//!   successful, failed, or torn — is recorded in order with its global
//!   sequence number, path, offset, length and persisted byte count. Tests
//!   use it to assert ordering invariants such as "no rescue-header patch
//!   after a failed data flush".
//!
//! [`clear`](FaultFs::clear) disarms everything (rules, crash switch,
//! quota) so a harness can stop injecting and run recovery over the same
//! image.

use crate::{IoSlice, Vfs, VfsFile};
use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which operations a fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// File creations.
    Create,
    /// Opens (read-only and read-write).
    Open,
    /// Positioned writes.
    Write,
    /// Positioned reads.
    Read,
    /// Durability barriers (`sync`).
    Sync,
    /// Truncations/extensions (`set_len`).
    SetLen,
}

/// A single injection rule: fail occurrences `from..from+count` (0-based,
/// counted per kind) of the given kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Operation kind the rule applies to.
    pub kind: FaultKind,
    /// First occurrence (per kind) to fail.
    pub from: u64,
    /// Number of consecutive occurrences to fail (`u64::MAX` = forever).
    pub count: u64,
}

/// One entry of the operation log: what was attempted and what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Global sequence number of the operation (across all kinds).
    pub seq: u64,
    /// Operation kind.
    pub kind: FaultKind,
    /// Path of the file the operation targeted.
    pub path: String,
    /// Byte offset (0 for namespace ops and `sync`; new length for
    /// `set_len`).
    pub offset: u64,
    /// Bytes requested (reads/writes; 0 otherwise).
    pub len: u64,
    /// Bytes actually persisted (writes only; `< len` for torn/quota-cut
    /// writes, 0 for clean failures).
    pub persisted: u64,
    /// Whether the operation succeeded.
    pub ok: bool,
}

/// Sentinel for "disarmed" in the crash/quota atomics.
const DISARMED: u64 = u64::MAX;

#[derive(Default)]
struct Counters {
    create: AtomicU64,
    open: AtomicU64,
    write: AtomicU64,
    read: AtomicU64,
    sync: AtomicU64,
    set_len: AtomicU64,
}

impl Counters {
    fn for_kind(&self, kind: FaultKind) -> &AtomicU64 {
        match kind {
            FaultKind::Create => &self.create,
            FaultKind::Open => &self.open,
            FaultKind::Write => &self.write,
            FaultKind::Read => &self.read,
            FaultKind::Sync => &self.sync,
            FaultKind::SetLen => &self.set_len,
        }
    }
}

/// Shared mutable state: one instance per [`FaultFs`], shared with every
/// file handle it opens, so knobs armed after a file is opened still apply
/// to it and counters are global across the namespace.
struct FaultState {
    rules: Mutex<Vec<FaultRule>>,
    counters: Counters,
    /// Global operation sequence counter (all kinds).
    ops: AtomicU64,
    /// Global op number from which everything fails; [`DISARMED`] = off.
    crash_at: AtomicU64,
    /// Bytes the write op *at* `crash_at` persists before erroring
    /// ([`DISARMED`] = the op at the switch fails cleanly, persisting
    /// nothing).
    crash_keep: AtomicU64,
    /// Total write bytes allowed before quota failures; [`DISARMED`] = off.
    quota: AtomicU64,
    /// Write bytes persisted so far (quota accounting).
    written: AtomicU64,
    /// Serializes the quota check-then-write so a racing write cannot
    /// overshoot the quota.
    quota_lock: Mutex<()>,
    log: Mutex<Vec<OpRecord>>,
}

impl FaultState {
    fn new() -> Self {
        FaultState {
            rules: Mutex::new(Vec::new()),
            counters: Counters::default(),
            ops: AtomicU64::new(0),
            crash_at: AtomicU64::new(DISARMED),
            crash_keep: AtomicU64::new(DISARMED),
            quota: AtomicU64::new(DISARMED),
            written: AtomicU64::new(0),
            quota_lock: Mutex::new(()),
            log: Mutex::new(Vec::new()),
        }
    }

    fn record(&self, rec: OpRecord) {
        self.log.lock().push(rec);
    }

    /// Pre-flight of every op: assign its sequence number, then apply the
    /// crash switch and the per-kind rules. `Err` means the op must fail
    /// without touching the inner FS (except a torn crash write, which the
    /// caller handles via [`torn_budget`](Self::torn_budget)).
    fn admit(&self, kind: FaultKind) -> (u64, io::Result<()>) {
        let seq = self.ops.fetch_add(1, Ordering::SeqCst);
        let n = self.counters.for_kind(kind).fetch_add(1, Ordering::SeqCst);
        let crash_at = self.crash_at.load(Ordering::SeqCst);
        if seq >= crash_at {
            return (
                seq,
                Err(io::Error::other(format!(
                    "injected crash: op #{seq} (crash point {crash_at})"
                ))),
            );
        }
        let rules = self.rules.lock();
        for r in rules.iter() {
            if r.kind == kind && n >= r.from && (n - r.from) < r.count {
                return (seq, Err(io::Error::other(format!("injected fault: {kind:?} #{n}"))));
            }
        }
        (seq, Ok(()))
    }

    /// If the op at `seq` is the torn crash write, the number of prefix
    /// bytes it may persist; `None` for a clean (non-torn) failure.
    fn torn_budget(&self, seq: u64) -> Option<u64> {
        let keep = self.crash_keep.load(Ordering::SeqCst);
        if keep != DISARMED && seq == self.crash_at.load(Ordering::SeqCst) {
            Some(keep)
        } else {
            None
        }
    }
}

/// A failure-injecting [`Vfs`] wrapper. See the module docs for the
/// available knobs; all state (counters, rules, op log) is shared between
/// the namespace handle and every file opened through it.
pub struct FaultFs<F: Vfs> {
    inner: F,
    state: Arc<FaultState>,
}

impl<F: Vfs> FaultFs<F> {
    /// Wrap `inner` with nothing armed.
    pub fn new(inner: F) -> Self {
        FaultFs { inner, state: Arc::new(FaultState::new()) }
    }

    /// Add an injection rule (transient or persistent per-kind failures).
    pub fn inject(&self, rule: FaultRule) {
        self.state.rules.lock().push(rule);
    }

    /// Disarm everything: rules, crash switch, quota. The op log and the
    /// counters are left intact (recovery code running afterwards keeps
    /// appending to the same log).
    pub fn clear(&self) {
        self.state.rules.lock().clear();
        self.state.crash_at.store(DISARMED, Ordering::SeqCst);
        self.state.crash_keep.store(DISARMED, Ordering::SeqCst);
        self.state.quota.store(DISARMED, Ordering::SeqCst);
    }

    /// Arm the kill switch: every operation with global sequence number
    /// `>= n` fails, simulating a crash after exactly `n` completed ops.
    /// `crash_after_ops(0)` fails everything from now on.
    pub fn crash_after_ops(&self, n: u64) {
        self.state.crash_keep.store(DISARMED, Ordering::SeqCst);
        self.state.crash_at.store(n, Ordering::SeqCst);
    }

    /// Arm the kill switch with a torn final write: ops `> n` fail
    /// cleanly, and if op `n` is a write it persists only the first `keep`
    /// bytes of its buffer before erroring (a short/torn write). A non-write
    /// op at `n` fails cleanly.
    pub fn crash_torn_write(&self, n: u64, keep: u64) {
        self.state.crash_keep.store(keep, Ordering::SeqCst);
        self.state.crash_at.store(n, Ordering::SeqCst);
    }

    /// Arm the byte quota: once `bytes` have been persisted through writes
    /// (counted across the whole namespace since construction), further
    /// writes fail; the write crossing the boundary persists exactly up to
    /// the quota and then errors, like `EDQUOT` mid-write.
    pub fn set_quota(&self, bytes: u64) {
        self.state.quota.store(bytes, Ordering::SeqCst);
    }

    /// Total operations seen so far (the next op gets this sequence
    /// number). Run a workload once against an unarmed `FaultFs` to learn
    /// its op count, then sweep [`crash_after_ops`](Self::crash_after_ops)
    /// over `0..=op_count()`.
    pub fn op_count(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// Bytes persisted through writes so far (the quota accounting).
    pub fn bytes_written(&self) -> u64 {
        self.state.written.load(Ordering::SeqCst)
    }

    /// Drain and return the op log accumulated so far.
    pub fn take_log(&self) -> Vec<OpRecord> {
        std::mem::take(&mut *self.state.log.lock())
    }

    /// Access the wrapped file system.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

struct FaultFile {
    inner: Arc<dyn VfsFile>,
    path: String,
    state: Arc<FaultState>,
}

impl FaultFile {
    fn log_op(&self, seq: u64, kind: FaultKind, offset: u64, len: u64, persisted: u64, ok: bool) {
        self.state.record(OpRecord { seq, kind, path: self.path.clone(), offset, len, persisted, ok });
    }

    /// The shared write path: admission, then torn-crash and quota cuts
    /// (both persist a prefix through the inner file before erroring), then
    /// the plain inner write.
    fn do_write(&self, buf: &[u8], offset: u64) -> io::Result<usize> {
        let (seq, admitted) = self.state.admit(FaultKind::Write);
        if let Err(e) = admitted {
            // A torn crash write persists a prefix; any other rejection
            // persists nothing.
            let keep = self.state.torn_budget(seq).map(|k| (k as usize).min(buf.len()));
            if let Some(keep) = keep {
                if keep > 0 {
                    self.inner.write_all_at(&buf[..keep], offset)?;
                    self.state.written.fetch_add(keep as u64, Ordering::SeqCst);
                }
                self.log_op(seq, FaultKind::Write, offset, buf.len() as u64, keep as u64, false);
                return Err(io::Error::other(format!(
                    "injected torn write: {keep} of {} bytes persisted at op #{seq}",
                    buf.len()
                )));
            }
            self.log_op(seq, FaultKind::Write, offset, buf.len() as u64, 0, false);
            return Err(e);
        }

        // Quota: check-then-write under a lock so concurrent writers cannot
        // jointly overshoot the limit.
        let quota = self.state.quota.load(Ordering::SeqCst);
        if quota != DISARMED {
            let _guard = self.state.quota_lock.lock();
            let written = self.state.written.load(Ordering::SeqCst);
            let room = quota.saturating_sub(written);
            if (buf.len() as u64) > room {
                let keep = room as usize;
                if keep > 0 {
                    self.inner.write_all_at(&buf[..keep], offset)?;
                    self.state.written.fetch_add(keep as u64, Ordering::SeqCst);
                }
                self.log_op(seq, FaultKind::Write, offset, buf.len() as u64, keep as u64, false);
                return Err(io::Error::other(format!(
                    "injected quota exceeded: {keep} of {} bytes persisted (quota {quota})",
                    buf.len()
                )));
            }
            let n = self.inner.write_at(buf, offset)?;
            self.state.written.fetch_add(n as u64, Ordering::SeqCst);
            self.log_op(seq, FaultKind::Write, offset, buf.len() as u64, n as u64, true);
            return Ok(n);
        }

        match self.inner.write_at(buf, offset) {
            Ok(n) => {
                self.state.written.fetch_add(n as u64, Ordering::SeqCst);
                self.log_op(seq, FaultKind::Write, offset, buf.len() as u64, n as u64, true);
                Ok(n)
            }
            Err(e) => {
                self.log_op(seq, FaultKind::Write, offset, buf.len() as u64, 0, false);
                Err(e)
            }
        }
    }
}

impl VfsFile for FaultFile {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        let (seq, admitted) = self.state.admit(FaultKind::Read);
        let ok = admitted.is_ok();
        self.log_op(seq, FaultKind::Read, offset, buf.len() as u64, 0, ok);
        admitted?;
        self.inner.read_at(buf, offset)
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<usize> {
        self.do_write(buf, offset)
    }

    /// Vectored writes fan out through the same injected-fault write path,
    /// one op-log entry (and one global sequence number) per submitted
    /// slice. Because slices are admitted in order, an armed crash switch
    /// or byte quota cuts the iovec *mid-stream*: earlier slices persist,
    /// the slice at the trigger may persist a torn prefix, and everything
    /// after persists nothing — exactly the prefix guarantee the trait
    /// documents, so the crash-consistency sweep exercises torn vectored
    /// tails with no extra harness code.
    fn write_vectored_at(&self, bufs: &[IoSlice<'_>], offset: u64) -> io::Result<()> {
        let mut at = offset;
        for b in bufs {
            let mut done = 0;
            while done < b.len() {
                let n = self.do_write(&b[done..], at + done as u64)?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "write_vectored_at: wrote zero bytes",
                    ));
                }
                done += n;
            }
            at += b.len() as u64;
        }
        Ok(())
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        let (seq, admitted) = self.state.admit(FaultKind::SetLen);
        let ok = admitted.is_ok();
        self.log_op(seq, FaultKind::SetLen, len, 0, 0, ok);
        admitted?;
        self.inner.set_len(len)
    }

    fn len(&self) -> io::Result<u64> {
        // Metadata query: never faulted, never counted — recovery tooling
        // sizes files without perturbing op numbering.
        self.inner.len()
    }

    fn sync(&self) -> io::Result<()> {
        let (seq, admitted) = self.state.admit(FaultKind::Sync);
        let ok = admitted.is_ok();
        self.log_op(seq, FaultKind::Sync, 0, 0, 0, ok);
        admitted?;
        self.inner.sync()
    }
}

impl<F: Vfs> FaultFs<F> {
    fn wrap(&self, path: &str, inner: Arc<dyn VfsFile>) -> Arc<dyn VfsFile> {
        Arc::new(FaultFile { inner, path: path.to_string(), state: self.state.clone() })
    }

    fn admit_ns(&self, kind: FaultKind, path: &str) -> io::Result<()> {
        let (seq, admitted) = self.state.admit(kind);
        let ok = admitted.is_ok();
        self.state.record(OpRecord { seq, kind, path: path.to_string(), offset: 0, len: 0, persisted: 0, ok });
        admitted
    }
}

// State is shared between the namespace handle and every open file, so
// knobs armed after a file is opened still apply to it.
impl<F: Vfs> Vfs for FaultFs<F> {
    fn create(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        self.admit_ns(FaultKind::Create, path)?;
        Ok(self.wrap(path, self.inner.create(path)?))
    }

    fn open(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        self.admit_ns(FaultKind::Open, path)?;
        Ok(self.wrap(path, self.inner.open(path)?))
    }

    fn open_rw(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        self.admit_ns(FaultKind::Open, path)?;
        Ok(self.wrap(path, self.inner.open_rw(path)?))
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn block_size(&self) -> u64 {
        self.inner.block_size()
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<String>> {
        self.inner.list(prefix)
    }

    /// Shadow writes are logical, not physical I/O: they consume no fault
    /// budget and are not op-logged, so forward straight to the inner
    /// namespace.
    fn create_shadow(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        self.inner.create_shadow(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    #[test]
    fn create_faults_fire_at_the_right_occurrence() {
        let fs = FaultFs::new(MemFs::new());
        fs.inject(FaultRule { kind: FaultKind::Create, from: 1, count: 1 });
        assert!(fs.create("a").is_ok());
        assert!(fs.create("b").is_err()); // occurrence #1
        assert!(fs.create("c").is_ok());
    }

    #[test]
    fn write_faults_affect_open_files() {
        let fs = FaultFs::new(MemFs::new());
        fs.inject(FaultRule { kind: FaultKind::Write, from: 2, count: u64::MAX });
        let f = fs.create("f").unwrap();
        assert!(f.write_at(b"one", 0).is_ok());
        assert!(f.write_at(b"two", 3).is_ok());
        assert!(f.write_at(b"three", 6).is_err());
        assert!(f.write_at(b"four", 6).is_err());
    }

    #[test]
    fn clear_stops_injection() {
        let fs = FaultFs::new(MemFs::new());
        fs.inject(FaultRule { kind: FaultKind::Open, from: 0, count: u64::MAX });
        fs.create("x").unwrap();
        assert!(fs.open("x").is_err());
        fs.clear();
        assert!(fs.open("x").is_ok());
    }

    #[test]
    fn reads_fault_independently_of_writes() {
        let fs = FaultFs::new(MemFs::new());
        fs.inject(FaultRule { kind: FaultKind::Read, from: 0, count: 1 });
        let f = fs.create("r").unwrap();
        f.write_all_at(b"data", 0).unwrap();
        let mut buf = [0u8; 4];
        assert!(f.read_at(&mut buf, 0).is_err());
        assert!(f.read_at(&mut buf, 0).is_ok());
    }

    #[test]
    fn crash_switch_kills_everything_from_op_n() {
        let fs = FaultFs::new(MemFs::new());
        let f = fs.create("c").unwrap(); // op 0
        f.write_all_at(b"aaaa", 0).unwrap(); // op 1
        fs.crash_after_ops(fs.op_count() + 1); // one more op allowed
        f.write_all_at(b"bbbb", 4).unwrap(); // op 2 — last surviving op
        assert!(f.write_all_at(b"cccc", 8).is_err());
        assert!(f.sync().is_err());
        assert!(fs.open("c").is_err());
        let mut buf = [0u8; 4];
        assert!(f.read_at(&mut buf, 0).is_err());
        // The image holds exactly what completed before the switch.
        fs.clear();
        let g = fs.open("c").unwrap();
        let mut back = [0u8; 8];
        g.read_exact_at(&mut back, 0).unwrap();
        assert_eq!(&back, b"aaaabbbb");
    }

    #[test]
    fn torn_write_persists_prefix_then_errors() {
        let fs = FaultFs::new(MemFs::new());
        let f = fs.create("t").unwrap(); // op 0
        fs.crash_torn_write(1, 3); // op 1 is a torn write keeping 3 bytes
        assert!(f.write_all_at(b"abcdef", 0).is_err());
        assert!(f.write_all_at(b"x", 0).is_err(), "ops after the crash fail");
        fs.clear();
        let g = fs.open("t").unwrap();
        assert_eq!(g.len().unwrap(), 3, "only the torn prefix persisted");
        let mut back = [0u8; 3];
        g.read_exact_at(&mut back, 0).unwrap();
        assert_eq!(&back, b"abc");
    }

    #[test]
    fn quota_cuts_the_crossing_write_short() {
        let fs = FaultFs::new(MemFs::new());
        fs.set_quota(10);
        let f = fs.create("q").unwrap();
        f.write_all_at(b"12345678", 0).unwrap(); // 8 of 10
        let err = f.write_all_at(b"abcdef", 8).unwrap_err();
        assert!(err.to_string().contains("quota"), "{err}");
        assert_eq!(fs.bytes_written(), 10);
        // Subsequent writes fail too: the quota stays exhausted.
        assert!(f.write_all_at(b"z", 20).is_err());
        assert_eq!(f.len().unwrap(), 10, "exactly the quota persisted");
        let mut back = [0u8; 10];
        f.read_exact_at(&mut back, 0).unwrap();
        assert_eq!(&back, b"12345678ab");
    }

    #[test]
    fn vectored_write_logs_one_record_per_slice_and_tears_mid_iovec() {
        let fs = FaultFs::new(MemFs::new());
        let f = fs.create("vt").unwrap(); // op 0
        // Op 1 = slice "aaaa"; op 2 = slice "bbbb", torn after 2 bytes;
        // any later slice fails cleanly past the crash point.
        fs.crash_torn_write(2, 2);
        let err = f
            .write_vectored_at(
                &[IoSlice::new(b"aaaa"), IoSlice::new(b"bbbb"), IoSlice::new(b"cccc")],
                0,
            )
            .unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        fs.clear();
        let g = fs.open("vt").unwrap();
        assert_eq!(g.len().unwrap(), 6, "first slice + torn prefix of second");
        let mut back = [0u8; 6];
        g.read_exact_at(&mut back, 0).unwrap();
        assert_eq!(&back, b"aaaabb");
        // One log record per submitted slice, at the slice's own offset.
        let log = fs.take_log();
        let writes: Vec<&OpRecord> =
            log.iter().filter(|r| r.kind == FaultKind::Write).collect();
        assert_eq!(writes.len(), 2, "third slice was never admitted as a write");
        assert_eq!((writes[0].offset, writes[0].persisted, writes[0].ok), (0, 4, true));
        assert_eq!((writes[1].offset, writes[1].persisted, writes[1].ok), (4, 2, false));
    }

    #[test]
    fn quota_cuts_vectored_write_mid_iovec() {
        let fs = FaultFs::new(MemFs::new());
        fs.set_quota(6);
        let f = fs.create("vq").unwrap();
        let err = f
            .write_vectored_at(&[IoSlice::new(b"1234"), IoSlice::new(b"5678")], 0)
            .unwrap_err();
        assert!(err.to_string().contains("quota"), "{err}");
        assert_eq!(f.len().unwrap(), 6, "exactly the quota persisted");
        let mut back = [0u8; 6];
        f.read_exact_at(&mut back, 0).unwrap();
        assert_eq!(&back, b"123456");
    }

    #[test]
    fn op_log_records_order_and_outcomes() {
        let fs = FaultFs::new(MemFs::new());
        let f = fs.create("log").unwrap();
        f.write_all_at(b"abc", 0).unwrap();
        fs.inject(FaultRule { kind: FaultKind::Write, from: 1, count: 1 });
        assert!(f.write_all_at(b"def", 3).is_err());
        f.sync().unwrap();
        let log = fs.take_log();
        let kinds: Vec<(FaultKind, bool)> = log.iter().map(|r| (r.kind, r.ok)).collect();
        assert_eq!(
            kinds,
            vec![
                (FaultKind::Create, true),
                (FaultKind::Write, true),
                (FaultKind::Write, false),
                (FaultKind::Sync, true),
            ]
        );
        // Sequence numbers are dense and ordered; the failed write
        // persisted nothing.
        assert!(log.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(log[2].persisted, 0);
        assert_eq!(log[1].persisted, 3);
        assert_eq!(log[1].path, "log");
        // take_log drained it.
        assert!(fs.take_log().is_empty());
    }

    #[test]
    fn clear_disarms_crash_and_quota() {
        let fs = FaultFs::new(MemFs::new());
        fs.crash_after_ops(0);
        assert!(fs.create("x").is_err());
        fs.clear();
        let f = fs.create("x").unwrap();
        fs.set_quota(0);
        assert!(f.write_all_at(b"a", 0).is_err());
        fs.clear();
        f.write_all_at(b"a", 0).unwrap();
    }
}

//! [`FaultFs`]: deterministic failure injection for any [`Vfs`].
//!
//! Wraps another file system and fails selected operations — either the
//! n-th operation overall or everything matching an operation kind — with
//! `io::ErrorKind::Other`. The SIONlib reproduction uses this to verify
//! that storage errors during collective operations surface as clean
//! errors on *every* task instead of deadlocks, and that the rescue tools
//! behave when the underlying storage misbehaves.

use crate::{Vfs, VfsFile};
use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which operations a fault rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// File creations.
    Create,
    /// Opens (read-only and read-write).
    Open,
    /// Positioned writes.
    Write,
    /// Positioned reads.
    Read,
}

/// A single injection rule: fail occurrences `from..from+count` (0-based,
/// counted per kind) of the given kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Operation kind the rule applies to.
    pub kind: FaultKind,
    /// First occurrence (per kind) to fail.
    pub from: u64,
    /// Number of consecutive occurrences to fail (`u64::MAX` = forever).
    pub count: u64,
}

#[derive(Default)]
struct Counters {
    create: AtomicU64,
    open: AtomicU64,
    write: AtomicU64,
    read: AtomicU64,
}

/// A failure-injecting [`Vfs`] wrapper.
pub struct FaultFs<F: Vfs> {
    inner: F,
    rules: Arc<Mutex<Vec<FaultRule>>>,
    counters: Arc<Counters>,
}

impl<F: Vfs> FaultFs<F> {
    /// Wrap `inner` with no active rules.
    pub fn new(inner: F) -> Self {
        FaultFs {
            inner,
            rules: Arc::new(Mutex::new(Vec::new())),
            counters: Arc::new(Counters::default()),
        }
    }

    /// Add an injection rule.
    pub fn inject(&self, rule: FaultRule) {
        self.rules.lock().push(rule);
    }

    /// Remove all rules (stop failing).
    pub fn clear(&self) {
        self.rules.lock().clear();
    }

    /// Access the wrapped file system.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    fn check(&self, kind: FaultKind, counter: &AtomicU64) -> io::Result<()> {
        let n = counter.fetch_add(1, Ordering::SeqCst);
        let rules = self.rules.lock();
        for r in rules.iter() {
            if r.kind == kind && n >= r.from && (n - r.from) < r.count {
                return Err(io::Error::other(format!(
                    "injected fault: {kind:?} #{n}"
                )));
            }
        }
        Ok(())
    }
}

struct FaultFile {
    inner: Arc<dyn VfsFile>,
    counters: Arc<Counters>,
    rules: Arc<Mutex<Vec<FaultRule>>>,
}

impl FaultFile {
    fn check(&self, kind: FaultKind, counter: &AtomicU64) -> io::Result<()> {
        let n = counter.fetch_add(1, Ordering::SeqCst);
        let rules = self.rules.lock();
        for r in rules.iter() {
            if r.kind == kind && n >= r.from && (n - r.from) < r.count {
                return Err(io::Error::other(format!(
                    "injected fault: {kind:?} #{n}"
                )));
            }
        }
        Ok(())
    }
}

impl VfsFile for FaultFile {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        self.check(FaultKind::Read, &self.counters.read)?;
        self.inner.read_at(buf, offset)
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<usize> {
        self.check(FaultKind::Write, &self.counters.write)?;
        self.inner.write_at(buf, offset)
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }

    fn sync(&self) -> io::Result<()> {
        self.inner.sync()
    }
}

// Rules are shared between the namespace handle and every open file, so
// rules added after a file is opened still apply to it.
impl<F: Vfs> Vfs for FaultFs<F> {
    fn create(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        self.check(FaultKind::Create, &self.counters.create)?;
        let inner = self.inner.create(path)?;
        Ok(Arc::new(FaultFile {
            inner,
            counters: self.counters.clone(),
            rules: self.rules.clone(),
        }))
    }

    fn open(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        self.check(FaultKind::Open, &self.counters.open)?;
        let inner = self.inner.open(path)?;
        Ok(Arc::new(FaultFile {
            inner,
            counters: self.counters.clone(),
            rules: self.rules.clone(),
        }))
    }

    fn open_rw(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        self.check(FaultKind::Open, &self.counters.open)?;
        let inner = self.inner.open_rw(path)?;
        Ok(Arc::new(FaultFile {
            inner,
            counters: self.counters.clone(),
            rules: self.rules.clone(),
        }))
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn block_size(&self) -> u64 {
        self.inner.block_size()
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<String>> {
        self.inner.list(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemFs;

    #[test]
    fn create_faults_fire_at_the_right_occurrence() {
        let fs = FaultFs::new(MemFs::new());
        fs.inject(FaultRule { kind: FaultKind::Create, from: 1, count: 1 });
        assert!(fs.create("a").is_ok());
        assert!(fs.create("b").is_err()); // occurrence #1
        assert!(fs.create("c").is_ok());
    }

    #[test]
    fn write_faults_affect_open_files() {
        let fs = FaultFs::new(MemFs::new());
        fs.inject(FaultRule { kind: FaultKind::Write, from: 2, count: u64::MAX });
        let f = fs.create("f").unwrap();
        assert!(f.write_at(b"one", 0).is_ok());
        assert!(f.write_at(b"two", 3).is_ok());
        assert!(f.write_at(b"three", 6).is_err());
        assert!(f.write_at(b"four", 6).is_err());
    }

    #[test]
    fn clear_stops_injection() {
        let fs = FaultFs::new(MemFs::new());
        fs.inject(FaultRule { kind: FaultKind::Open, from: 0, count: u64::MAX });
        fs.create("x").unwrap();
        assert!(fs.open("x").is_err());
        fs.clear();
        assert!(fs.open("x").is_ok());
    }

    #[test]
    fn reads_fault_independently_of_writes() {
        let fs = FaultFs::new(MemFs::new());
        fs.inject(FaultRule { kind: FaultKind::Read, from: 0, count: 1 });
        let f = fs.create("r").unwrap();
        f.write_all_at(b"data", 0).unwrap();
        let mut buf = [0u8; 4];
        assert!(f.read_at(&mut buf, 0).is_err());
        assert!(f.read_at(&mut buf, 0).is_ok());
    }
}

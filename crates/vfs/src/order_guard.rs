//! [`OrderGuardFs`]: a byte-extent access recorder for happens-before
//! checking.
//!
//! [`BlockGuardFs`](crate::BlockGuardFs) checks the paper's §3.2 invariant
//! in its strongest static form — one writer per FS block, ever. The
//! aggregated I/O mode is correct under a weaker, *ordering* form: several
//! logical writers may touch the same file (an aggregator replays every
//! member's stream), as long as all conflicting byte-extent accesses are
//! happens-before ordered by the protocol's messages. Whether they are is
//! not a property a [`Vfs`] decorator can decide on its own — it depends on
//! the send/recv edges of the run — so this decorator does the recording
//! half only: every read, write, and shadow write that flows through it is
//! reported to an [`AccessSink`] (the `simcheck` crate's vector-clock
//! engine), attributed to the logical task labeled on the issuing thread
//! via [`guard::set_task`](crate::guard::set_task).
//!
//! Three access kinds are distinguished:
//!
//! * [`AccessKind::Write`] — bytes physically persisted at the path.
//! * [`AccessKind::Read`] — bytes observed from the path.
//! * [`AccessKind::ShadowWrite`] — bytes a task wrote through a
//!   [`Vfs::create_shadow`] handle: *logical* writes whose physical
//!   persistence is another task's obligation (the aggregated-mode member
//!   side). The sink receives them against the shadowed path, so it can
//!   pair each member's logical extents with the aggregator's physical
//!   replay of them.
//!
//! Accesses from unlabeled threads are not reported, mirroring
//! [`BlockGuardFs`](crate::BlockGuardFs): test scaffolding and serial
//! tools stay invisible.

use crate::guard::current_writer;
use crate::{ByteLease, IoSlice, NullFile, Vfs, VfsFile};
use std::fmt;
use std::io;
use std::sync::Arc;

/// How a recorded access touched the file. Ordered so access lists sort
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AccessKind {
    /// Bytes observed from the file.
    Read,
    /// Bytes physically persisted to the file.
    Write,
    /// Bytes logically written through a shadow handle — persisting them
    /// is some other task's obligation.
    ShadowWrite,
}

impl AccessKind {
    /// Stable lowercase label used in rendered reports.
    pub fn label(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::ShadowWrite => "shadow-write",
        }
    }
}

/// One recorded byte-extent access.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FileAccess {
    /// Normalized path of the (shadowed) file.
    pub path: String,
    /// What the access did.
    pub kind: AccessKind,
    /// Logical task the issuing thread was labeled with.
    pub task: u64,
    /// Byte offset of the extent.
    pub offset: u64,
    /// Length of the extent in bytes (never zero).
    pub len: u64,
}

impl FileAccess {
    /// Whether two accesses touch overlapping byte ranges of the same
    /// path.
    pub fn overlaps(&self, other: &FileAccess) -> bool {
        self.path == other.path
            && self.offset < other.offset + other.len
            && other.offset < self.offset + self.len
    }
}

impl fmt::Display for FileAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "task {} {} [{}, {}) of \"{}\"",
            self.task,
            self.kind.label(),
            self.offset,
            self.offset + self.len,
            self.path
        )
    }
}

/// Consumer of the access stream (the `simcheck` happens-before engine).
/// Called synchronously on the accessing thread, after the inner backend
/// succeeded, so the sink observes accesses in each task's program order.
pub trait AccessSink: Send + Sync {
    /// One access flowed through the decorator.
    fn on_access(&self, access: &FileAccess);
}

/// Decorator reporting every labeled byte-extent access to an
/// [`AccessSink`]; see the module docs.
pub struct OrderGuardFs {
    inner: Arc<dyn Vfs>,
    sink: Arc<dyn AccessSink>,
}

impl OrderGuardFs {
    /// Wrap `inner`, reporting labeled accesses to `sink`.
    pub fn new(inner: Arc<dyn Vfs>, sink: Arc<dyn AccessSink>) -> OrderGuardFs {
        OrderGuardFs { inner, sink }
    }

    fn wrap(&self, path: &str, file: Arc<dyn VfsFile>, shadow: bool) -> Arc<dyn VfsFile> {
        Arc::new(OrderGuardFile {
            inner: file,
            path: crate::normalize_path(path),
            shadow,
            sink: self.sink.clone(),
        })
    }
}

struct OrderGuardFile {
    inner: Arc<dyn VfsFile>,
    path: String,
    /// Shadow handles report writes as [`AccessKind::ShadowWrite`] and
    /// reads not at all (a shadow read observes nothing real).
    shadow: bool,
    sink: Arc<dyn AccessSink>,
}

impl OrderGuardFile {
    fn report(&self, kind: AccessKind, offset: u64, len: usize) {
        let Some(task) = current_writer() else { return };
        if len == 0 {
            return;
        }
        self.sink.on_access(&FileAccess {
            path: self.path.clone(),
            kind,
            task,
            offset,
            len: len as u64,
        });
    }

    fn write_kind(&self) -> AccessKind {
        if self.shadow {
            AccessKind::ShadowWrite
        } else {
            AccessKind::Write
        }
    }
}

impl VfsFile for OrderGuardFile {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        let n = self.inner.read_at(buf, offset)?;
        if !self.shadow {
            self.report(AccessKind::Read, offset, n);
        }
        Ok(n)
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<usize> {
        let n = self.inner.write_at(buf, offset)?;
        self.report(self.write_kind(), offset, n);
        Ok(n)
    }

    /// Forward the whole iovec batched, then report per-slice extents —
    /// the same extents a scalar submission would have produced.
    fn write_vectored_at(&self, bufs: &[IoSlice<'_>], offset: u64) -> io::Result<()> {
        self.inner.write_vectored_at(bufs, offset)?;
        let mut at = offset;
        for b in bufs {
            self.report(self.write_kind(), at, b.len());
            at += b.len() as u64;
        }
        Ok(())
    }

    fn read_lease(&self, offset: u64, max_len: usize) -> Option<ByteLease> {
        let lease = self.inner.read_lease(offset, max_len)?;
        if !self.shadow {
            self.report(AccessKind::Read, offset, lease.len());
        }
        Some(lease)
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }

    fn sync(&self) -> io::Result<()> {
        self.inner.sync()
    }
}

impl Vfs for OrderGuardFs {
    fn create(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let f = self.inner.create(path)?;
        Ok(self.wrap(path, f, false))
    }

    fn open(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let f = self.inner.open(path)?;
        Ok(self.wrap(path, f, false))
    }

    fn open_rw(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let f = self.inner.open_rw(path)?;
        Ok(self.wrap(path, f, false))
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn block_size(&self) -> u64 {
        self.inner.block_size()
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<String>> {
        self.inner.list(prefix)
    }

    /// Shadow handles discard bytes (the inner backend never sees them)
    /// but report every write as a [`AccessKind::ShadowWrite`] against the
    /// shadowed path.
    fn create_shadow(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        Ok(self.wrap(path, Arc::new(NullFile::new()), true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{clear_task, set_task};
    use crate::MemFs;
    use parking_lot::Mutex;

    #[derive(Default)]
    struct Log(Mutex<Vec<FileAccess>>);

    impl AccessSink for Log {
        fn on_access(&self, access: &FileAccess) {
            self.0.lock().push(access.clone());
        }
    }

    fn guarded() -> (OrderGuardFs, Arc<Log>) {
        let log = Arc::new(Log::default());
        (OrderGuardFs::new(Arc::new(MemFs::new()), log.clone()), log)
    }

    #[test]
    fn labeled_reads_and_writes_are_reported_in_order() {
        let (fs, log) = guarded();
        let f = fs.create("dir/a").unwrap();
        set_task(3);
        f.write_all_at(&[1u8; 10], 5).unwrap();
        let mut buf = [0u8; 4];
        f.read_at(&mut buf, 7).unwrap();
        clear_task();
        let got = log.0.lock().clone();
        assert_eq!(
            got,
            vec![
                FileAccess {
                    path: "dir/a".into(),
                    kind: AccessKind::Write,
                    task: 3,
                    offset: 5,
                    len: 10
                },
                FileAccess {
                    path: "dir/a".into(),
                    kind: AccessKind::Read,
                    task: 3,
                    offset: 7,
                    len: 4
                },
            ]
        );
    }

    #[test]
    fn unlabeled_and_empty_accesses_are_invisible() {
        let (fs, log) = guarded();
        let f = fs.create("a").unwrap();
        clear_task();
        f.write_all_at(&[1u8; 8], 0).unwrap();
        set_task(0);
        f.write_all_at(&[], 0).unwrap();
        clear_task();
        assert!(log.0.lock().is_empty());
    }

    #[test]
    fn shadow_writes_report_against_the_real_path_and_discard_bytes() {
        let (fs, log) = guarded();
        fs.create("real").unwrap();
        let sh = fs.create_shadow("real").unwrap();
        set_task(9);
        sh.write_all_at(&[7u8; 16], 32).unwrap();
        let mut buf = [1u8; 4];
        sh.read_at(&mut buf, 32).unwrap();
        clear_task();
        let got = log.0.lock().clone();
        // The read reported nothing; the write reported as a shadow write.
        assert_eq!(
            got,
            vec![FileAccess {
                path: "real".into(),
                kind: AccessKind::ShadowWrite,
                task: 9,
                offset: 32,
                len: 16
            }]
        );
        // Shadow bytes never reached the real file.
        assert_eq!(fs.open("real").unwrap().len().unwrap(), 0);
        // NullFile reads yield zeros.
        assert_eq!(buf, [0u8; 4]);
    }

    #[test]
    fn vectored_slices_report_like_scalar_writes() {
        let (fs, log) = guarded();
        let f = fs.create("a").unwrap();
        set_task(1);
        f.write_vectored_at(&[IoSlice::new(&[2u8; 8]), IoSlice::new(&[3u8; 4])], 100)
            .unwrap();
        clear_task();
        let got = log.0.lock().clone();
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].offset, got[0].len), (100, 8));
        assert_eq!((got[1].offset, got[1].len), (108, 4));
    }

    #[test]
    fn overlap_predicate_matches_half_open_extents() {
        let a = FileAccess {
            path: "p".into(),
            kind: AccessKind::Write,
            task: 0,
            offset: 0,
            len: 10,
        };
        let b = FileAccess { offset: 9, len: 1, task: 1, ..a.clone() };
        let c = FileAccess { offset: 10, len: 1, task: 1, ..a.clone() };
        let d = FileAccess { path: "q".into(), offset: 0, len: 10, task: 1, kind: AccessKind::Write };
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!a.overlaps(&d));
    }
}

//! [`LocalFs`]: the real local file system via `std::fs`.

use crate::{IoSlice, Vfs, VfsFile};
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A [`Vfs`] rooted at a directory on the local file system.
///
/// The advertised [`Vfs::block_size`] is configurable because the paper's
/// alignment experiments (Table 1) deliberately configure SIONlib with block
/// sizes that differ from the physical one; `LocalFs::new` defaults to
/// 4 KiB, the common Linux page/block size.
pub struct LocalFs {
    root: PathBuf,
    block_size: u64,
}

impl LocalFs {
    /// A local FS rooted at `root`, advertising a 4 KiB block size.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self::with_block_size(root, 4096)
    }

    /// A local FS advertising a caller-chosen block size (must be > 0).
    pub fn with_block_size(root: impl Into<PathBuf>, block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self { root: root.into(), block_size }
    }

    fn full(&self, path: &str) -> PathBuf {
        self.root.join(path)
    }

    fn ensure_parent(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(())
    }
}

struct LocalFile {
    file: File,
}

#[cfg(unix)]
impl VfsFile for LocalFile {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        use std::os::unix::fs::FileExt;
        self.file.read_at(buf, offset)
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<usize> {
        use std::os::unix::fs::FileExt;
        self.file.write_at(buf, offset)
    }

    /// One submission per iovec. `FileExt::write_vectored_at` (the real
    /// `pwritev`) is unstable on this toolchain and the workspace forbids
    /// `unsafe`, so multi-slice iovecs coalesce into one temporary buffer
    /// and go down as a single `pwrite` — one syscall either way, which is
    /// what the batched submission buys on a kernel FS. Single-slice calls
    /// skip the copy entirely.
    fn write_vectored_at(&self, bufs: &[IoSlice<'_>], offset: u64) -> io::Result<()> {
        match bufs {
            [] => Ok(()),
            [one] => self.write_all_at(one, offset),
            many => {
                let total: usize = many.iter().map(|b| b.len()).sum();
                let mut flat = Vec::with_capacity(total);
                for b in many {
                    flat.extend_from_slice(b);
                }
                self.write_all_at(&flat, offset)
            }
        }
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }
}

impl Vfs for LocalFs {
    fn create(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let full = self.full(path);
        self.ensure_parent(&full)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(full)?;
        Ok(Arc::new(LocalFile { file }))
    }

    fn open(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let file = OpenOptions::new().read(true).open(self.full(path))?;
        Ok(Arc::new(LocalFile { file }))
    }

    fn open_rw(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let file = OpenOptions::new().read(true).write(true).open(self.full(path))?;
        Ok(Arc::new(LocalFile { file }))
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        std::fs::remove_file(self.full(path))
    }

    fn exists(&self, path: &str) -> bool {
        self.full(path).exists()
    }

    fn block_size(&self) -> u64 {
        self.block_size
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<String>> {
        // Walk the directory containing the prefix and filter. The prefix is
        // a path-string prefix, not necessarily a directory.
        let mut out = Vec::new();
        let dir = match prefix.rfind('/') {
            Some(i) => self.root.join(&prefix[..i]),
            None => self.root.clone(),
        };
        if !dir.exists() {
            return Ok(out);
        }
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            for entry in std::fs::read_dir(&d)? {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if let Ok(rel) = path.strip_prefix(&self.root) {
                    let rel = rel.to_string_lossy().into_owned();
                    if rel.starts_with(prefix) {
                        out.push(rel);
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("vfs-local-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn create_write_read_roundtrip() {
        let dir = tmpdir("rw");
        let fs = LocalFs::new(&dir);
        let f = fs.create("sub/file.bin").unwrap();
        f.write_all_at(b"hello world", 5).unwrap();
        assert_eq!(f.len().unwrap(), 16);
        let mut buf = [0u8; 11];
        f.read_exact_at(&mut buf, 5).unwrap();
        assert_eq!(&buf, b"hello world");
        // Hole before offset 5 reads as zeros.
        let mut head = [9u8; 5];
        f.read_exact_at(&mut head, 0).unwrap();
        assert_eq!(head, [0u8; 5]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_handles_to_same_file() {
        let dir = tmpdir("conc");
        let fs = LocalFs::new(&dir);
        fs.create("shared.bin").unwrap();
        let a = fs.open_rw("shared.bin").unwrap();
        let b = fs.open_rw("shared.bin").unwrap();
        a.write_all_at(b"AAAA", 0).unwrap();
        b.write_all_at(b"BBBB", 4).unwrap();
        let mut buf = [0u8; 8];
        a.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"AAAABBBB");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_filters_by_prefix() {
        let dir = tmpdir("list");
        let fs = LocalFs::new(&dir);
        fs.create("run/ckpt.000001").unwrap();
        fs.create("run/ckpt.000002").unwrap();
        fs.create("run/other").unwrap();
        let got = fs.list("run/ckpt.").unwrap();
        assert_eq!(got, vec!["run/ckpt.000001".to_string(), "run/ckpt.000002".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_fails_and_exists_reports() {
        let dir = tmpdir("missing");
        let fs = LocalFs::new(&dir);
        assert!(fs.open("nope").is_err());
        assert!(!fs.exists("nope"));
        fs.create("yes").unwrap();
        assert!(fs.exists("yes"));
        fs.remove("yes").unwrap();
        assert!(!fs.exists("yes"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vectored_write_lands_contiguously() {
        let dir = tmpdir("vec");
        let fs = LocalFs::new(&dir);
        let f = fs.create("v").unwrap();
        let (a, b, c) = ([1u8; 7], [2u8; 4096], [3u8; 13]);
        f.write_vectored_at(&[IoSlice::new(&a), IoSlice::new(&b), IoSlice::new(&c)], 3)
            .unwrap();
        let mut flat = a.to_vec();
        flat.extend_from_slice(&b);
        flat.extend_from_slice(&c);
        let mut back = vec![0u8; flat.len()];
        f.read_exact_at(&mut back, 3).unwrap();
        assert_eq!(back, flat);
        assert_eq!(f.len().unwrap(), 3 + flat.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn set_len_truncates_and_extends() {
        let dir = tmpdir("setlen");
        let fs = LocalFs::new(&dir);
        let f = fs.create("f").unwrap();
        f.write_all_at(b"0123456789", 0).unwrap();
        f.set_len(4).unwrap();
        assert_eq!(f.len().unwrap(), 4);
        f.set_len(100).unwrap();
        assert_eq!(f.len().unwrap(), 100);
        let mut buf = [7u8; 6];
        f.read_exact_at(&mut buf, 4).unwrap();
        assert_eq!(buf, [0u8; 6]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! [`NullFile`]: a data-discarding file handle.
//!
//! Accepts every write, tracks only the resulting file length, and serves
//! reads as holes (zero bytes). `sion`'s aggregated write mode runs each
//! member task's stream engine against a `NullFile` *shadow* so the member
//! performs the exact chunk arithmetic and validation of an independent
//! writer — producing the same `used` vector and the same errors — while
//! the real bytes travel to its aggregator over the communicator instead
//! of down a VFS handle.

use crate::VfsFile;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

/// A write sink that discards data and remembers only the file length.
#[derive(Default)]
pub struct NullFile {
    len: AtomicU64,
}

impl NullFile {
    pub fn new() -> NullFile {
        NullFile::default()
    }
}

impl VfsFile for NullFile {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        let len = self.len.load(Ordering::Relaxed);
        if offset >= len {
            return Ok(0);
        }
        let n = ((len - offset) as usize).min(buf.len());
        buf[..n].fill(0);
        Ok(n)
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<usize> {
        let end = offset + buf.len() as u64;
        self.len.fetch_max(end, Ordering::Relaxed);
        Ok(buf.len())
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.len.store(len, Ordering::Relaxed);
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.len.load(Ordering::Relaxed))
    }

    fn sync(&self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discards_data_but_tracks_length() {
        let f = NullFile::new();
        f.write_all_at(b"hello", 10).unwrap();
        assert_eq!(f.len().unwrap(), 15);
        let mut buf = [1u8; 8];
        let n = f.read_at(&mut buf, 12).unwrap();
        assert_eq!(n, 3);
        assert_eq!(&buf[..3], &[0, 0, 0], "reads see holes");
        f.set_len(4).unwrap();
        assert_eq!(f.len().unwrap(), 4);
        assert_eq!(f.read_at(&mut buf, 4).unwrap(), 0);
        f.sync().unwrap();
    }

    #[test]
    fn vectored_writes_extend_length() {
        let f = NullFile::new();
        let a = [7u8; 3];
        let b = [8u8; 5];
        f.write_vectored_at(&[io::IoSlice::new(&a), io::IoSlice::new(&b)], 100).unwrap();
        assert_eq!(f.len().unwrap(), 108);
    }
}

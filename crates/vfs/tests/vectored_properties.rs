//! Property tests: a backend's batched `write_vectored_at` override must
//! be byte-identical to the trait-default per-slice loop it replaces.
//!
//! For random iovec scripts (slice counts, slice lengths including empty,
//! overlapping offsets), the same script is applied three ways — the
//! backend's native vectored submission, a wrapper that suppresses the
//! override so the trait default runs over the same backend, and a plain
//! in-memory byte model — and the resulting file images are compared.
//! Runs against both overriding backends: [`MemFs`] (whole-iovec under one
//! file lock) and [`LocalFs`] (coalesced single submission).

use proptest::prelude::*;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vfs::{IoSlice, LocalFs, MemFs, Vfs, VfsFile};

/// Forwards scalar I/O to the wrapped handle but deliberately does NOT
/// forward `write_vectored_at`, so the trait's default per-slice loop runs
/// against the same backend — the reference the overrides must match.
struct ScalarOnly(Arc<dyn VfsFile>);

impl VfsFile for ScalarOnly {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        self.0.read_at(buf, offset)
    }
    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<usize> {
        self.0.write_at(buf, offset)
    }
    fn set_len(&self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
    fn len(&self) -> io::Result<u64> {
        self.0.len()
    }
    fn sync(&self) -> io::Result<()> {
        self.0.sync()
    }
}

/// Deterministic bytes for the `i`-th slice of the `k`-th op.
fn slice_bytes(k: usize, i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| ((k * 131 + i * 41 + j * 7 + 3) % 251) as u8).collect()
}

/// One iovec script op: a relative offset step back (overlap) and the
/// lengths of its slices.
type Op = (u64, Vec<usize>);

/// Apply the script to `file` via `write_vectored_at` (native or the
/// suppressed-default wrapper, depending on the handle passed in).
fn apply(file: &dyn VfsFile, ops: &[Op]) {
    let mut offset = 0u64;
    for (k, (back, lens)) in ops.iter().enumerate() {
        offset = offset.saturating_sub(*back);
        let owned: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| slice_bytes(k, i, len))
            .collect();
        let slices: Vec<IoSlice<'_>> = owned.iter().map(|b| IoSlice::new(b)).collect();
        file.write_vectored_at(&slices, offset).unwrap();
        offset += lens.iter().sum::<usize>() as u64;
    }
}

/// Apply the script to a plain byte vector — the ground-truth file image.
fn apply_model(ops: &[Op]) -> Vec<u8> {
    let mut img = Vec::new();
    let mut offset = 0usize;
    for (k, (back, lens)) in ops.iter().enumerate() {
        offset = offset.saturating_sub(*back as usize);
        for (i, &len) in lens.iter().enumerate() {
            if img.len() < offset + len {
                img.resize(offset + len, 0);
            }
            img[offset..offset + len].copy_from_slice(&slice_bytes(k, i, len));
            offset += len;
        }
    }
    img
}

fn image(file: &dyn VfsFile) -> Vec<u8> {
    let mut buf = vec![0u8; file.len().unwrap() as usize];
    file.read_exact_at(&mut buf, 0).unwrap();
    buf
}

static TMP_CASE: AtomicUsize = AtomicUsize::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// MemFs: the one-lock whole-iovec override equals the per-slice
    /// default loop and the byte model, for every script.
    #[test]
    fn memfs_vectored_override_matches_default_loop(
        ops in prop::collection::vec(
            (0u64..64, prop::collection::vec(0usize..200, 0..6)),
            1..12,
        ),
    ) {
        let native_fs = MemFs::with_block_size(512);
        let native = native_fs.create("v.bin").unwrap();
        apply(native.as_ref(), &ops);

        let default_fs = MemFs::with_block_size(512);
        let wrapped = ScalarOnly(default_fs.create("v.bin").unwrap());
        apply(&wrapped, &ops);

        let model = apply_model(&ops);
        prop_assert_eq!(&image(native.as_ref()), &model, "native vs model");
        prop_assert_eq!(&image(&wrapped), &model, "default loop vs model");
    }

    /// LocalFs: the coalesced single-submission override equals the
    /// per-slice default loop and the byte model, for every script.
    #[test]
    fn localfs_vectored_override_matches_default_loop(
        ops in prop::collection::vec(
            (0u64..64, prop::collection::vec(0usize..200, 0..6)),
            1..8,
        ),
    ) {
        let case = TMP_CASE.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir()
            .join(format!("vfs-vectored-{}-{case}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();

        let fs = LocalFs::new(&root);
        let native = fs.create("native.bin").unwrap();
        apply(native.as_ref(), &ops);
        let wrapped = ScalarOnly(fs.create("default.bin").unwrap());
        apply(&wrapped, &ops);

        let model = apply_model(&ops);
        let native_img = image(native.as_ref());
        let default_img = image(&wrapped);
        std::fs::remove_dir_all(&root).unwrap();
        prop_assert_eq!(&native_img, &model, "native vs model");
        prop_assert_eq!(&default_img, &model, "default loop vs model");
    }
}

//! Machine models: parameters of the simulated I/O subsystem, with presets
//! calibrated to the paper's two evaluation systems.
//!
//! The presets encode the *published* characteristics of the machines
//! (paper §4): Jugene's GPFS scratch file system delivers at most 6 GB/s
//! over 32 NSD server nodes with 2 MiB blocks and distributed metadata;
//! Jaguar's Lustre delivers 40 GB/s over 72 OSSes with dedicated metadata
//! servers and per-file-configurable striping. Service times that the
//! paper reports only implicitly (per-create cost, per-open cost) are
//! fitted to the endpoints of Fig. 3; EXPERIMENTS.md documents every
//! fitted constant.

/// Striping of one file across the I/O servers (Lustre: stripe factor and
/// depth are per-file settings; GPFS: a fixed property of the file system).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StripingConfig {
    /// Number of I/O servers one file's data is spread across.
    pub stripe_count: u32,
    /// Stripe depth in bytes (informational; throughput modelling uses the
    /// stripe count).
    pub stripe_depth: u64,
}

/// The simulated machine: metadata service, network, and storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Human-readable name for reports.
    pub name: &'static str,

    // ---- metadata service ----------------------------------------------
    /// Service time of one file *create* in a shared directory. Creates
    /// serialize on the directory's i-node/allocation blocks, so the
    /// effective capacity is `1/create_svc_s` ops/s regardless of client
    /// count (the mechanism behind paper Fig. 3).
    pub create_svc_s: f64,
    /// Service time of one *open* of an existing file.
    pub open_svc_s: f64,
    /// Effective parallelism of the open path (hash-distributed lookups
    /// allow some concurrency; paper §2 cites extendible hashing).
    pub open_parallelism: f64,
    /// Fixed client-side latency added to each metadata phase.
    pub meta_latency_s: f64,

    // ---- network ---------------------------------------------------------
    /// Peak injection bandwidth of a single task (bytes/s) — what one
    /// process can push through its I/O-forwarding path alone.
    pub task_bw: f64,
    /// Tasks per client I/O group (cores per Blue Gene I/O node; cores per
    /// Cray node). Tasks of one group share one group link.
    pub client_group_size: u64,
    /// Bandwidth of one client I/O group link (bytes/s).
    pub client_group_bw: f64,
    /// Number of group links in the machine (I/O nodes / compute nodes).
    pub client_groups_max: u64,
    /// Bandwidth of the designated I/O master for gather/scatter payloads
    /// (bytes/s) — the single-file-sequential bottleneck.
    pub master_nic_bw: f64,
    /// Per-hop latency of the collective tree.
    pub collective_hop_latency_s: f64,

    // ---- storage ----------------------------------------------------------
    /// Number of I/O server nodes (GPFS NSD servers / Lustre OSSes).
    pub nservers: u32,
    /// Per-server write bandwidth (bytes/s).
    pub server_bw_write: f64,
    /// Per-server read bandwidth (bytes/s).
    pub server_bw_read: f64,
    /// Aggregate file-system write cap (bytes/s).
    pub aggregate_bw_write: f64,
    /// Aggregate file-system read cap (bytes/s).
    pub aggregate_bw_read: f64,
    /// Striping applied to shared files unless overridden per run.
    pub striping: StripingConfig,
    /// Striping applied to task-local (own) files.
    pub own_file_striping: StripingConfig,
    /// File-system block size (bytes).
    pub fsblksize: u64,

    // ---- contention models -----------------------------------------------
    /// Concave per-file throughput model (GPFS): a shared file with `c`
    /// writing clients delivers at most `per_file_unit_bw * c^per_file_alpha`
    /// (clamped to the file's stripe capacity). Sub-linear growth in the
    /// client count reproduces Fig. 4(a)'s slow saturation: single-file
    /// throughput is bounded by the file's token/allocation management,
    /// which parallelizes only partially with more clients. Set
    /// `per_file_unit_bw = 0` to disable (Lustre: stripe capacity rules).
    pub per_file_unit_bw: f64,
    /// Exponent of the concave per-file model.
    pub per_file_alpha: f64,
    /// Lower bound on a shared file's throughput (bytes/s) regardless of
    /// client count — a handful of clients still drives the file at a
    /// reasonable fraction of its stripes. 0 disables.
    pub per_file_floor_bw: f64,
    /// Efficiency factor applied to task-local-file transfers (per-file
    /// allocation/bookkeeping overhead of very large file counts).
    pub own_file_efficiency: f64,
    /// Write-bandwidth penalty per doubling of block sharers:
    /// `factor = 1 + w * log2(sharers)` (paper Table 1: GPFS write locks
    /// have FS-block granularity).
    pub sharing_penalty_write_log2: f64,
    /// Same for reads.
    pub sharing_penalty_read_log2: f64,

    // ---- client caching ----------------------------------------------------
    /// Client-side cache per node (bytes) available for re-reads.
    pub cache_per_node: f64,
    /// Cores (tasks) per node, to translate task counts into node counts.
    pub cores_per_node: u32,
    /// Fraction of the ideal cache hit rate actually realized (covers
    /// eviction and cold misses).
    pub cache_effectiveness: f64,
}

impl Machine {
    /// Jugene: IBM Blue Gene/P, 64 Ki cores, GPFS 3.2 scratch file system,
    /// 6 GB/s peak, 2 MiB blocks, 32 NSD server nodes, distributed
    /// metadata (paper §4, "Jugene").
    pub fn jugene() -> Machine {
        Machine {
            name: "jugene",
            // Fitted to Fig. 3(a): 64 Ki creates ≈ 370 s, 64 Ki opens ≈ 60 s.
            create_svc_s: 5.6e-3,
            open_svc_s: 7.4e-3,
            open_parallelism: 8.0,
            meta_latency_s: 2.0e-3,
            // Fitted to Fig. 5(a): 1 Ki tasks engage ~10 I/O nodes at
            // 80 MB/s each ≈ 0.8 GB/s; saturation at ≥ 8 Ki tasks.
            task_bw: 50.0e6,
            client_group_size: 100,
            client_group_bw: 80.0e6,
            client_groups_max: 152,
            master_nic_bw: 40.0e6,
            collective_hop_latency_s: 20.0e-6,
            nservers: 32,
            server_bw_write: 200.0e6,
            server_bw_read: 180.0e6,
            aggregate_bw_write: 6.0e9,
            aggregate_bw_read: 5.0e9,
            striping: StripingConfig { stripe_count: 16, stripe_depth: 2 << 20 },
            own_file_striping: StripingConfig { stripe_count: 16, stripe_depth: 2 << 20 },
            fsblksize: 2 << 20,
            // Fitted to Fig. 4(a): 1 file ≈ 2.8 GB/s at 64 Ki clients,
            // saturation at ≈ 8 files.
            per_file_unit_bw: 3.58e6,
            per_file_alpha: 0.6,
            per_file_floor_bw: 0.55e9,
            own_file_efficiency: 0.85,
            // Fitted to Table 1: 128 sharers → 2.53× write, 1.78× read.
            sharing_penalty_write_log2: 0.218,
            sharing_penalty_read_log2: 0.112,
            cache_per_node: 0.0, // 1 TB working sets defeat BG/P node caches
            cores_per_node: 4,
            cache_effectiveness: 0.0,
        }
    }

    /// Jaguar: Cray XT4 partition, Lustre 1.6, 40 GB/s, 72 OSS nodes,
    /// 3 dedicated MDS nodes, per-file striping (paper §4, "Jaguar").
    pub fn jaguar() -> Machine {
        Machine {
            name: "jaguar",
            // Fitted to Fig. 3(b): 12 Ki creates ≈ 300 s, 12 Ki opens ≈ 20 s.
            create_svc_s: 25.0e-3,
            open_svc_s: 6.8e-3,
            open_parallelism: 4.0,
            meta_latency_s: 1.0e-3,
            // Fitted to Fig. 5(b): 128 tasks on 32 quad-core nodes reach
            // ≈ 13 GB/s.
            task_bw: 420.0e6,
            client_group_size: 4,
            client_group_bw: 420.0e6,
            client_groups_max: 7832,
            master_nic_bw: 1.2e9,
            collective_hop_latency_s: 5.0e-6,
            nservers: 72,
            server_bw_write: 555.0e6,
            server_bw_read: 555.0e6,
            aggregate_bw_write: 40.0e9,
            aggregate_bw_read: 40.0e9,
            // Lustre default: stripe over 4 OSTs, 1 MiB depth.
            striping: StripingConfig { stripe_count: 4, stripe_depth: 1 << 20 },
            own_file_striping: StripingConfig { stripe_count: 4, stripe_depth: 1 << 20 },
            fsblksize: 2 << 20,
            per_file_unit_bw: 0.0,
            per_file_alpha: 0.0,
            per_file_floor_bw: 0.0,
            own_file_efficiency: 0.88,
            // "Preliminary tests on Jaguar did not confirm this effect."
            sharing_penalty_write_log2: 0.0,
            sharing_penalty_read_log2: 0.0,
            cache_per_node: 2.0e9,
            cores_per_node: 4,
            cache_effectiveness: 0.12,
        }
    }

    /// Jaguar with the paper's "optimized" striping: 64 OSTs, 8 MiB depth
    /// (Fig. 4(b), second configuration).
    pub fn jaguar_optimized_striping() -> Machine {
        let mut m = Machine::jaguar();
        m.striping = StripingConfig { stripe_count: 64, stripe_depth: 8 << 20 };
        m
    }

    /// Override the shared-file striping (Lustre `lfs setstripe`).
    pub fn with_striping(mut self, stripe_count: u32, stripe_depth: u64) -> Machine {
        self.striping = StripingConfig { stripe_count, stripe_depth };
        self
    }

    /// The set of servers file `k` is striped over: `stripe_count`
    /// consecutive servers starting at a round-robin offset, mirroring how
    /// both GPFS and Lustre allocate stripes.
    pub fn stripe_servers(&self, filenum: u32, striping: StripingConfig) -> Vec<u32> {
        let n = self.nservers;
        let count = striping.stripe_count.min(n).max(1);
        let start = (filenum * count) % n;
        (0..count).map(|i| (start + i) % n).collect()
    }

    /// Block-sharing penalty factor for a given mean sharer count.
    pub fn sharing_factor(&self, sharers: f64, write: bool) -> f64 {
        if sharers <= 1.0 {
            return 1.0;
        }
        let per_log2 = if write {
            self.sharing_penalty_write_log2
        } else {
            self.sharing_penalty_read_log2
        };
        1.0 + per_log2 * sharers.log2()
    }

    /// Throughput cap of one shared file with `clients` tasks, striped over
    /// `stripe_servers` servers of per-server bandwidth `server_bw`.
    pub fn per_file_cap(&self, clients: u64, nstripes: usize, server_bw: f64) -> f64 {
        let raw = nstripes as f64 * server_bw;
        if self.per_file_unit_bw > 0.0 {
            let concave = self.per_file_unit_bw * (clients.max(1) as f64).powf(self.per_file_alpha);
            raw.min(concave.max(self.per_file_floor_bw))
        } else {
            raw
        }
    }

    /// Aggregate capacity of the client-side injection stage for `ntasks`
    /// tasks: engaged group links times their bandwidth.
    pub fn client_stage_bw(&self, ntasks: u64) -> f64 {
        let groups = ntasks.div_ceil(self.client_group_size).min(self.client_groups_max).max(1);
        groups as f64 * self.client_group_bw
    }

    /// Ideal cache hit fraction for re-reading `data_bytes` with `ntasks`
    /// tasks.
    pub fn cache_hit_fraction(&self, ntasks: u64, data_bytes: u64) -> f64 {
        if data_bytes == 0 || self.cache_per_node <= 0.0 {
            return 0.0;
        }
        let nodes = (ntasks as f64 / self.cores_per_node as f64).max(1.0);
        let cache = nodes * self.cache_per_node;
        self.cache_effectiveness * (cache / data_bytes as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for m in [Machine::jugene(), Machine::jaguar()] {
            assert!(m.create_svc_s > m.open_svc_s / m.open_parallelism);
            assert!(m.aggregate_bw_write <= m.nservers as f64 * m.server_bw_write * 1.2);
            assert!(m.task_bw > 0.0);
            assert!(m.client_group_bw >= m.task_bw || m.client_group_size == 1);
            assert!(m.fsblksize > 0);
        }
    }

    #[test]
    fn fig3_endpoint_fits() {
        let j = Machine::jugene();
        // 64 Ki serialized creates land in the 5-7 minute window.
        let t = 65536.0 * j.create_svc_s;
        assert!((300.0..450.0).contains(&t), "{t}");
        // 64 Ki opens land around a minute.
        let t = 65536.0 * j.open_svc_s / j.open_parallelism;
        assert!((40.0..90.0).contains(&t), "{t}");

        let g = Machine::jaguar();
        let t = 12288.0 * g.create_svc_s;
        assert!((250.0..400.0).contains(&t), "{t}");
        let t = 12288.0 * g.open_svc_s / g.open_parallelism;
        assert!((12.0..30.0).contains(&t), "{t}");
    }

    #[test]
    fn table1_penalty_fit() {
        let j = Machine::jugene();
        // 16 KiB chunks on 2 MiB blocks: 128 sharers.
        let w = j.sharing_factor(128.0, true);
        let r = j.sharing_factor(128.0, false);
        assert!((2.3..2.8).contains(&w), "{w}");
        assert!((1.6..2.0).contains(&r), "{r}");
        assert_eq!(j.sharing_factor(1.0, true), 1.0);
    }

    #[test]
    fn stripe_servers_round_robin() {
        let j = Machine::jaguar();
        let s0 = j.stripe_servers(0, j.striping);
        let s1 = j.stripe_servers(1, j.striping);
        assert_eq!(s0, vec![0, 1, 2, 3]);
        assert_eq!(s1, vec![4, 5, 6, 7]);
        // 18 files of stripe 4 cover all 72 servers disjointly; file 18
        // wraps around.
        let s18 = j.stripe_servers(18, j.striping);
        assert_eq!(s18, vec![0, 1, 2, 3]);
    }

    #[test]
    fn stripe_count_clamped_to_servers() {
        let j = Machine::jugene().with_striping(128, 1 << 20);
        assert_eq!(j.stripe_servers(0, j.striping).len(), 32);
    }

    #[test]
    fn per_file_cap_is_concave_in_clients() {
        let j = Machine::jugene();
        let bw = j.server_bw_write;
        let c1 = j.per_file_cap(65536, 16, bw);
        let c2 = j.per_file_cap(32768, 16, bw);
        // Fig. 4(a) fit: one file with all 64 Ki clients ≈ 2.3-3.2 GB/s.
        assert!((2.0e9..3.3e9).contains(&c1), "{c1:e}");
        // Halving the clients reduces the cap by less than half (concave).
        assert!(c2 > c1 / 2.0 && c2 < c1);
        // Clamped by the stripe capacity for tiny files.
        assert!(j.per_file_cap(1, 16, bw) <= 16.0 * bw);
        // Lustre: stripe capacity only.
        let g = Machine::jaguar();
        assert_eq!(g.per_file_cap(2048, 4, g.server_bw_write), 4.0 * g.server_bw_write);
    }

    #[test]
    fn client_stage_scales_then_saturates() {
        let j = Machine::jugene();
        let b1k = j.client_stage_bw(1024);
        let b8k = j.client_stage_bw(8192);
        let b64k = j.client_stage_bw(65536);
        // ~0.8 GB/s at 1 Ki tasks (Fig. 5(a) left edge).
        assert!((0.6e9..1.0e9).contains(&b1k), "{b1k:e}");
        assert!(b8k > 6.0e9, "8 Ki tasks must exceed the FS cap: {b8k:e}");
        // All 152 I/O nodes engaged at most.
        assert_eq!(b64k, 152.0 * j.client_group_bw);
    }

    #[test]
    fn cache_hit_fraction_bounds() {
        let g = Machine::jaguar();
        assert_eq!(g.cache_hit_fraction(1000, 0), 0.0);
        let h = g.cache_hit_fraction(12288, 4_000_000_000_000);
        assert!(h > 0.0 && h <= g.cache_effectiveness, "{h}");
        let j = Machine::jugene();
        assert_eq!(j.cache_hit_fraction(65536, 1 << 40), 0.0);
    }
}

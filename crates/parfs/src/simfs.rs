//! [`SimFs`]: a functional file system with operation accounting.
//!
//! `SimFs` wraps a sparse in-memory store (the same engine as
//! [`vfs::MemFs`]) and counts metadata and data operations. It lets
//! functional tests assert on the *shape* of the I/O a library performs —
//! e.g. that a SIONlib parallel open issues exactly `nfiles` creates
//! instead of one per task — which is precisely the property the paper's
//! Fig. 3 measures in time.

use parking_lot::Mutex;
use std::io;
use std::sync::Arc;
use vfs::{MemFs, Vfs, VfsFile};

/// Cumulative operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimFsCounters {
    /// Files created.
    pub creates: u64,
    /// Opens of existing files.
    pub opens: u64,
    /// Files removed.
    pub removes: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Write calls.
    pub write_ops: u64,
    /// Read calls.
    pub read_ops: u64,
}

/// A counting, sparse, in-memory [`Vfs`].
pub struct SimFs {
    inner: MemFs,
    counters: Arc<Mutex<SimFsCounters>>,
}

impl SimFs {
    /// An empty simulated FS with the given block size.
    pub fn with_block_size(block_size: u64) -> Self {
        SimFs {
            inner: MemFs::with_block_size(block_size),
            counters: Arc::new(Mutex::new(SimFsCounters::default())),
        }
    }

    /// An empty simulated FS with a 64 KiB block size.
    pub fn new() -> Self {
        Self::with_block_size(64 * 1024)
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> SimFsCounters {
        *self.counters.lock()
    }

    /// Reset all counters to zero.
    pub fn reset_counters(&self) {
        *self.counters.lock() = SimFsCounters::default();
    }

    /// The underlying in-memory store (for sparse-allocation assertions).
    pub fn inner(&self) -> &MemFs {
        &self.inner
    }
}

impl Default for SimFs {
    fn default() -> Self {
        Self::new()
    }
}

struct CountingFile {
    inner: Arc<dyn VfsFile>,
    counters: Arc<Mutex<SimFsCounters>>,
}

impl VfsFile for CountingFile {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> io::Result<usize> {
        let n = self.inner.read_at(buf, offset)?;
        let mut c = self.counters.lock();
        c.read_ops += 1;
        c.bytes_read += n as u64;
        Ok(n)
    }

    fn write_at(&self, buf: &[u8], offset: u64) -> io::Result<usize> {
        let n = self.inner.write_at(buf, offset)?;
        let mut c = self.counters.lock();
        c.write_ops += 1;
        c.bytes_written += n as u64;
        Ok(n)
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }

    fn sync(&self) -> io::Result<()> {
        self.inner.sync()
    }
}

impl Vfs for SimFs {
    fn create(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let inner = self.inner.create(path)?;
        self.counters.lock().creates += 1;
        Ok(Arc::new(CountingFile { inner, counters: self.counters.clone() }))
    }

    fn open(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let inner = self.inner.open(path)?;
        self.counters.lock().opens += 1;
        Ok(Arc::new(CountingFile { inner, counters: self.counters.clone() }))
    }

    fn open_rw(&self, path: &str) -> io::Result<Arc<dyn VfsFile>> {
        let inner = self.inner.open_rw(path)?;
        self.counters.lock().opens += 1;
        Ok(Arc::new(CountingFile { inner, counters: self.counters.clone() }))
    }

    fn remove(&self, path: &str) -> io::Result<()> {
        self.inner.remove(path)?;
        self.counters.lock().removes += 1;
        Ok(())
    }

    fn exists(&self, path: &str) -> bool {
        self.inner.exists(path)
    }

    fn block_size(&self) -> u64 {
        self.inner.block_size()
    }

    fn list(&self, prefix: &str) -> io::Result<Vec<String>> {
        self.inner.list(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_metadata_and_data_ops() {
        let fs = SimFs::new();
        let f = fs.create("a").unwrap();
        f.write_all_at(b"hello", 0).unwrap();
        let g = fs.open("a").unwrap();
        let mut buf = [0u8; 5];
        g.read_exact_at(&mut buf, 0).unwrap();
        fs.remove("a").unwrap();
        let c = fs.counters();
        assert_eq!(c.creates, 1);
        assert_eq!(c.opens, 1);
        assert_eq!(c.removes, 1);
        assert_eq!(c.bytes_written, 5);
        assert_eq!(c.bytes_read, 5);
        assert_eq!(c.write_ops, 1);
        assert_eq!(c.read_ops, 1);
    }

    #[test]
    fn reset_clears_counters() {
        let fs = SimFs::new();
        fs.create("x").unwrap();
        fs.reset_counters();
        assert_eq!(fs.counters(), SimFsCounters::default());
    }

    #[test]
    fn inner_exposes_sparse_stats() {
        let fs = SimFs::with_block_size(4096);
        let f = fs.create("sparse").unwrap();
        f.write_all_at(b"x", 1 << 20).unwrap();
        let st = fs.inner().stats("sparse").unwrap();
        assert!(st.allocated < st.len);
    }
}

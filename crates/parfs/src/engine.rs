//! The discrete-event engine: executes a [`ScriptSet`] on a [`Machine`].
//!
//! Each class is a sequential process; transfer and metadata operations
//! become fluid jobs whose rates the [`FluidSolver`] recomputes at every
//! job arrival/completion; collectives rendezvous across all classes with
//! a log-depth tree latency plus a root-bandwidth term. The result is a
//! [`SimReport`] with the makespan and per-operation start/end times, from
//! which the benchmark harness derives the paper's figures.

use crate::fluid::{FluidJobSpec, FluidSolver, ResourceId};
use crate::machine::Machine;
use crate::workload::{FileRef, IoOp, ScriptSet};
#[cfg(test)]
use crate::workload::ScriptClass;
use std::collections::HashMap;

/// Start/end time of one operation of one class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpTiming {
    /// Class index in the workload.
    pub class: usize,
    /// Operation index within the class script.
    pub op_index: usize,
    /// Virtual time the operation began.
    pub start: f64,
    /// Virtual time it completed.
    pub end: f64,
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Machine name.
    pub machine: &'static str,
    /// Virtual time at which the last class finished (seconds).
    pub makespan: f64,
    /// Per-operation timings, in completion order.
    pub timings: Vec<OpTiming>,
}

impl SimReport {
    /// Duration of one specific operation.
    pub fn op_duration(&self, class: usize, op_index: usize) -> Option<f64> {
        self.timings
            .iter()
            .find(|t| t.class == class && t.op_index == op_index)
            .map(|t| t.end - t.start)
    }

    /// Earliest start and latest end over all ops selected by `pred`
    /// (applied to the workload's op). Returns `None` if nothing matches.
    pub fn phase_bounds(
        &self,
        wl: &ScriptSet,
        pred: impl Fn(&IoOp) -> bool,
    ) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for t in &self.timings {
            let op = &wl.classes[t.class].ops[t.op_index];
            if pred(op) {
                lo = lo.min(t.start);
                hi = hi.max(t.end);
            }
        }
        (lo.is_finite()).then_some((lo, hi))
    }

    /// Aggregate write bandwidth (bytes/s) over the write phase.
    pub fn write_bandwidth(&self, wl: &ScriptSet) -> f64 {
        match self.phase_bounds(wl, |o| matches!(o, IoOp::Write { .. })) {
            Some((lo, hi)) if hi > lo => wl.total_write_bytes() as f64 / (hi - lo),
            _ => 0.0,
        }
    }

    /// Aggregate read bandwidth (bytes/s) over the read phase.
    pub fn read_bandwidth(&self, wl: &ScriptSet) -> f64 {
        match self.phase_bounds(wl, |o| matches!(o, IoOp::Read { .. })) {
            Some((lo, hi)) if hi > lo => wl.total_read_bytes() as f64 / (hi - lo),
            _ => 0.0,
        }
    }

    /// Render the per-operation timeline as TSV (one row per class-op, in
    /// start order) — handy for inspecting what the simulated machine did.
    pub fn timeline_tsv(&self, wl: &ScriptSet) -> String {
        let mut rows = self.timings.clone();
        rows.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.class.cmp(&b.class)));
        let mut out = String::from("class	count	op	start_s	end_s	duration_s
");
        for t in rows {
            let class = &wl.classes[t.class];
            let op = match class.ops[t.op_index] {
                IoOp::Create(_) => "create".to_string(),
                IoOp::Open(_) => "open".to_string(),
                IoOp::Write { bytes, .. } => format!("write[{bytes}B]"),
                IoOp::Read { bytes, .. } => format!("read[{bytes}B]"),
                IoOp::Gather { bytes } => format!("gather[{bytes}B]"),
                IoOp::Scatter { bytes } => format!("scatter[{bytes}B]"),
                IoOp::Bcast { bytes } => format!("bcast[{bytes}B]"),
                IoOp::Barrier => "barrier".to_string(),
                IoOp::Compute { .. } => "compute".to_string(),
            };
            out.push_str(&format!(
                "{}	{}	{}	{:.6}	{:.6}	{:.6}
",
                t.class,
                class.count,
                op,
                t.start,
                t.end,
                t.end - t.start
            ));
        }
        out
    }
}

/// Execution state of one class.
enum ClassState {
    /// Ready to process its next op at the stored local time.
    Ready(f64),
    /// Blocked in a fluid job (index into `active`).
    InFluid,
    /// Arrived at its next collective at the stored time.
    AtCollective(f64),
    /// Script finished at the stored time.
    Done(f64),
}

struct ActiveJob {
    class: usize,
    op_index: usize,
    start: f64,
    remaining_per_flow: f64,
    /// Extra latency added after the fluid work completes.
    tail_latency: f64,
    spec: FluidJobSpec,
}

/// Resource ids for one run.
struct Resources {
    solver: FluidSolver,
    mds_create: ResourceId,
    mds_open: ResourceId,
    client_stage: ResourceId,
    agg_write: ResourceId,
    agg_read: ResourceId,
    server_write: Vec<ResourceId>,
    server_read: Vec<ResourceId>,
    /// Token-degradation resource per shared file, by file index.
    per_file: HashMap<u32, ResourceId>,
}

fn shared_file_clients(wl: &ScriptSet) -> HashMap<u32, u64> {
    let mut clients: HashMap<u32, u64> = HashMap::new();
    for c in &wl.classes {
        let mut touched: Vec<u32> = c
            .ops
            .iter()
            .filter_map(|o| match o {
                IoOp::Create(FileRef::Shared(k))
                | IoOp::Open(FileRef::Shared(k))
                | IoOp::Write { file: FileRef::Shared(k), .. }
                | IoOp::Read { file: FileRef::Shared(k), .. } => Some(*k),
                _ => None,
            })
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for k in touched {
            *clients.entry(k).or_insert(0) += c.count;
        }
    }
    clients
}

fn build_resources(machine: &Machine, wl: &ScriptSet) -> Resources {
    let mut solver = FluidSolver::new();
    let mds_create = solver.add_resource(1.0 / machine.create_svc_s);
    let mds_open = solver.add_resource(machine.open_parallelism / machine.open_svc_s);
    let client_stage = solver.add_resource(machine.client_stage_bw(wl.ntasks));
    let agg_write = solver.add_resource(machine.aggregate_bw_write);
    let agg_read = solver.add_resource(machine.aggregate_bw_read);
    let server_write =
        (0..machine.nservers).map(|_| solver.add_resource(machine.server_bw_write)).collect();
    let server_read =
        (0..machine.nservers).map(|_| solver.add_resource(machine.server_bw_read)).collect();
    let mut per_file = HashMap::new();
    for (&k, &clients) in &shared_file_clients(wl) {
        let stripes = machine.stripe_servers(k, machine.striping);
        let cap = machine.per_file_cap(
            clients,
            stripes.len(),
            machine.server_bw_write.max(machine.server_bw_read),
        );
        per_file.insert(k, solver.add_resource(cap));
    }
    Resources {
        solver,
        mds_create,
        mds_open,
        client_stage,
        agg_write,
        agg_read,
        server_write,
        server_read,
        per_file,
    }
}

/// Build the fluid job for a transfer op, or `None` if the op is not a
/// fluid op.
#[allow(clippy::too_many_arguments)]
fn fluid_spec(
    machine: &Machine,
    res: &Resources,
    op: &IoOp,
    class_count: u64,
    cache_hit: f64,
) -> Option<(FluidJobSpec, f64, f64)> {
    // Returns (spec, work_per_flow, tail_latency).
    match *op {
        IoOp::Create(_) => Some((
            FluidJobSpec {
                weight: class_count as f64,
                rate_cap_per_flow: 1.0 / machine.create_svc_s,
                usage: vec![(res.mds_create, 1.0)],
            },
            1.0,
            machine.meta_latency_s,
        )),
        IoOp::Open(file) => {
            // Opening N *distinct* files contends on the directory's
            // metadata; N opens of the *same* physical file hit one cached
            // dentry and proceed in parallel at the per-open service time.
            let usage = match file {
                FileRef::Own => vec![(res.mds_open, 1.0)],
                FileRef::Shared(_) => Vec::new(),
            };
            Some((
                FluidJobSpec {
                    weight: class_count as f64,
                    rate_cap_per_flow: 1.0 / machine.open_svc_s,
                    usage,
                },
                1.0,
                machine.meta_latency_s,
            ))
        }
        IoOp::Write { file, bytes, sharers } => {
            if bytes == 0 {
                return None;
            }
            let eff = bytes as f64 * machine.sharing_factor(sharers, true);
            let mut usage = vec![(res.client_stage, 1.0), (res.agg_write, 1.0)];
            match file {
                FileRef::Shared(k) => {
                    let stripes = machine.stripe_servers(k, machine.striping);
                    let coeff = 1.0 / stripes.len() as f64;
                    for s in stripes {
                        usage.push((res.server_write[s as usize], coeff));
                    }
                    usage.push((res.per_file[&k], 1.0));
                }
                FileRef::Own => {
                    // Task-local files spread round-robin over all servers.
                    let coeff = 1.0 / machine.nservers as f64;
                    for &r in &res.server_write {
                        usage.push((r, coeff));
                    }
                }
            }
            let eff = if matches!(file, FileRef::Own) {
                eff / machine.own_file_efficiency
            } else {
                eff
            };
            Some((
                FluidJobSpec {
                    weight: class_count as f64,
                    rate_cap_per_flow: machine.task_bw,
                    usage,
                },
                eff,
                0.0,
            ))
        }
        IoOp::Read { file, bytes, sharers } => {
            if bytes == 0 {
                return None;
            }
            let eff = bytes as f64 * machine.sharing_factor(sharers, false);
            // Cache hits bypass the storage stages: scale storage
            // coefficients by the miss fraction.
            let miss = (1.0 - cache_hit).max(0.0);
            let mut usage =
                vec![(res.client_stage, 1.0), (res.agg_read, miss.max(1e-9))];
            match file {
                FileRef::Shared(k) => {
                    let stripes = machine.stripe_servers(k, machine.striping);
                    let coeff = miss.max(1e-9) / stripes.len() as f64;
                    for s in stripes {
                        usage.push((res.server_read[s as usize], coeff));
                    }
                    usage.push((res.per_file[&k], 1.0));
                }
                FileRef::Own => {
                    let coeff = miss.max(1e-9) / machine.nservers as f64;
                    for &r in &res.server_read {
                        usage.push((r, coeff));
                    }
                }
            }
            let eff = if matches!(file, FileRef::Own) {
                eff / machine.own_file_efficiency
            } else {
                eff
            };
            Some((
                FluidJobSpec {
                    weight: class_count as f64,
                    rate_cap_per_flow: machine.task_bw,
                    usage,
                },
                eff,
                0.0,
            ))
        }
        _ => None,
    }
}

/// Duration of a collective op over `ntasks` tasks.
fn collective_duration(machine: &Machine, op: &IoOp, ntasks: u64) -> f64 {
    let hops = (ntasks.max(2) as f64).log2().ceil();
    let tree = hops * machine.collective_hop_latency_s;
    match *op {
        IoOp::Gather { bytes } | IoOp::Scatter { bytes } => {
            // The root's link carries every task's payload.
            tree + (ntasks as f64 * bytes as f64) / machine.master_nic_bw
        }
        IoOp::Bcast { bytes } => tree + bytes as f64 / machine.master_nic_bw,
        IoOp::Barrier => tree,
        _ => 0.0,
    }
}

/// Run the workload on the machine and report timings.
///
/// Panics if the workload fails [`ScriptSet::validate`].
pub fn simulate(machine: &Machine, wl: &ScriptSet) -> SimReport {
    wl.validate().expect("invalid workload");
    let res = build_resources(machine, wl);
    let cache_hit = machine.cache_hit_fraction(wl.ntasks, wl.total_read_bytes());

    let nclasses = wl.classes.len();
    let mut state: Vec<ClassState> = wl.classes.iter().map(|_| ClassState::Ready(0.0)).collect();
    let mut next_op: Vec<usize> = vec![0; nclasses];
    let mut timings: Vec<OpTiming> = Vec::new();
    let mut active: Vec<ActiveJob> = Vec::new();
    let mut clock = 0.0f64;

    loop {
        // Phase 1: drive every Ready class forward until it blocks.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for ci in 0..nclasses {
                let ClassState::Ready(t) = state[ci] else { continue };
                progressed = true;
                let mut t = t;
                loop {
                    let oi = next_op[ci];
                    if oi >= wl.classes[ci].ops.len() {
                        state[ci] = ClassState::Done(t);
                        break;
                    }
                    let op = wl.classes[ci].ops[oi];
                    if op.is_collective() {
                        state[ci] = ClassState::AtCollective(t);
                        break;
                    }
                    if let IoOp::Compute { seconds } = op {
                        timings.push(OpTiming { class: ci, op_index: oi, start: t, end: t + seconds });
                        t += seconds;
                        next_op[ci] += 1;
                        continue;
                    }
                    match fluid_spec(machine, &res, &op, wl.classes[ci].count, cache_hit) {
                        Some((spec, work, tail)) => {
                            active.push(ActiveJob {
                                class: ci,
                                op_index: oi,
                                start: t,
                                remaining_per_flow: work,
                                tail_latency: tail,
                                spec,
                            });
                            state[ci] = ClassState::InFluid;
                            break;
                        }
                        None => {
                            // Degenerate op (0 bytes): instantaneous.
                            timings.push(OpTiming { class: ci, op_index: oi, start: t, end: t });
                            next_op[ci] += 1;
                        }
                    }
                }
            }
        }

        // Termination check.
        if state.iter().all(|s| matches!(s, ClassState::Done(_))) {
            break;
        }

        // Phase 2: resolve a collective if every unfinished class arrived.
        let arrived: Vec<usize> = (0..nclasses)
            .filter(|&ci| matches!(state[ci], ClassState::AtCollective(_)))
            .collect();
        let unfinished = state.iter().filter(|s| !matches!(s, ClassState::Done(_))).count();
        if !arrived.is_empty() && arrived.len() == unfinished {
            let t0 = arrived
                .iter()
                .map(|&ci| match state[ci] {
                    ClassState::AtCollective(t) => t,
                    _ => unreachable!(),
                })
                .fold(clock, f64::max);
            let dur = arrived
                .iter()
                .map(|&ci| {
                    collective_duration(machine, &wl.classes[ci].ops[next_op[ci]], wl.ntasks)
                })
                .fold(0.0, f64::max);
            for &ci in &arrived {
                let start = match state[ci] {
                    ClassState::AtCollective(t) => t,
                    _ => unreachable!(),
                };
                timings.push(OpTiming { class: ci, op_index: next_op[ci], start, end: t0 + dur });
                next_op[ci] += 1;
                state[ci] = ClassState::Ready(t0 + dur);
            }
            clock = t0 + dur;
            continue;
        }

        // Phase 3: advance the fluid system to its next event — either a
        // job activation (a job submitted with a start time in the future,
        // e.g. after a Compute op) or the earliest completion among the
        // currently running jobs.
        assert!(
            !active.is_empty(),
            "deadlock: classes waiting at a collective while others are blocked"
        );
        let next_activation = active
            .iter()
            .filter(|j| j.start > clock + 1e-15)
            .map(|j| j.start)
            .fold(f64::INFINITY, f64::min);
        let running: Vec<usize> = (0..active.len())
            .filter(|&i| active[i].start <= clock + 1e-15)
            .collect();
        if running.is_empty() {
            // Nothing flows until the next job activates.
            clock = next_activation;
            continue;
        }
        let specs: Vec<FluidJobSpec> = running.iter().map(|&i| active[i].spec.clone()).collect();
        let rates = res.solver.rates(&specs);
        let (winner_pos, dt) = running
            .iter()
            .enumerate()
            .map(|(pos, &i)| (pos, active[i].remaining_per_flow / rates[pos].max(1e-30)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("running non-empty");
        if clock + dt > next_activation {
            // A new job joins first: progress everyone up to the activation
            // and recompute rates next round.
            let step = next_activation - clock;
            for (pos, &i) in running.iter().enumerate() {
                active[i].remaining_per_flow -= rates[pos] * step;
            }
            clock = next_activation;
            continue;
        }
        let now = clock + dt;
        for (pos, &i) in running.iter().enumerate() {
            active[i].remaining_per_flow -= rates[pos] * dt;
        }
        let job = active.swap_remove(running[winner_pos]);
        timings.push(OpTiming {
            class: job.class,
            op_index: job.op_index,
            start: job.start,
            end: now + job.tail_latency,
        });
        next_op[job.class] += 1;
        state[job.class] = ClassState::Ready(now + job.tail_latency);
        clock = now;
    }

    let makespan = state
        .iter()
        .map(|s| match s {
            ClassState::Done(t) => *t,
            _ => unreachable!(),
        })
        .fold(0.0, f64::max);
    SimReport { machine: machine.name, makespan, timings }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(classes: Vec<ScriptClass>) -> ScriptSet {
        let ntasks = classes.iter().map(|c| c.count).sum();
        ScriptSet { ntasks, classes }
    }

    #[test]
    fn serialized_creates_scale_linearly() {
        let m = Machine::jugene();
        let t_4k = simulate(
            &m,
            &wl(vec![ScriptClass { count: 4096, ops: vec![IoOp::Create(FileRef::Own)] }]),
        )
        .makespan;
        let t_64k = simulate(
            &m,
            &wl(vec![ScriptClass { count: 65536, ops: vec![IoOp::Create(FileRef::Own)] }]),
        )
        .makespan;
        let ratio = t_64k / t_4k;
        assert!((14.0..18.0).contains(&ratio), "expected ~16x, got {ratio}");
        // 64 Ki creates take minutes (paper: "more than five minutes").
        assert!(t_64k > 300.0, "{t_64k}");
    }

    #[test]
    fn opens_are_much_faster_than_creates() {
        let m = Machine::jugene();
        let creates = simulate(
            &m,
            &wl(vec![ScriptClass { count: 65536, ops: vec![IoOp::Create(FileRef::Own)] }]),
        )
        .makespan;
        let opens = simulate(
            &m,
            &wl(vec![ScriptClass { count: 65536, ops: vec![IoOp::Open(FileRef::Own)] }]),
        )
        .makespan;
        assert!(creates / opens > 4.0, "create {creates} open {opens}");
    }

    #[test]
    fn write_bandwidth_saturates_aggregate() {
        let m = Machine::jugene();
        // 16 Ki tasks write 16 MiB each to a 32-file multifile: client
        // injection (0.8 MB/s * 16 Ki = 13 GB/s) exceeds the 6 GB/s cap.
        let classes: Vec<ScriptClass> = (0..32)
            .map(|k| ScriptClass {
                count: 512,
                ops: vec![IoOp::Write {
                    file: FileRef::Shared(k),
                    bytes: 16 << 20,
                    sharers: 1.0,
                }],
            })
            .collect();
        let w = wl(classes);
        let rep = simulate(&m, &w);
        let bw = rep.write_bandwidth(&w);
        assert!(
            (4.0e9..6.05e9).contains(&bw),
            "expected saturation near 6 GB/s, got {bw:.3e}"
        );
    }

    #[test]
    fn few_tasks_are_client_limited() {
        let m = Machine::jugene();
        // 1 Ki tasks over 32 files (the Fig. 5(a) configuration): the
        // client injection stage (~10 I/O-node links) is the bottleneck.
        let w = wl((0..32)
            .map(|k| ScriptClass {
                count: 32,
                ops: vec![IoOp::Write {
                    file: FileRef::Shared(k),
                    bytes: 16 << 20,
                    sharers: 1.0,
                }],
            })
            .collect());
        let rep = simulate(&m, &w);
        let bw = rep.write_bandwidth(&w);
        // ~11 I/O-node links * 80 MB/s ≈ 0.88 GB/s.
        assert!((0.6e9..1.0e9).contains(&bw), "{bw:.3e}");
    }

    #[test]
    fn block_sharing_halves_bandwidth() {
        let m = Machine::jugene();
        let mk = |sharers: f64| {
            wl((0..16)
                .map(|k| ScriptClass {
                    count: 2048,
                    ops: vec![IoOp::Write { file: FileRef::Shared(k), bytes: 8 << 20, sharers }],
                })
                .collect())
        };
        let aligned = mk(1.0);
        let misaligned = mk(128.0);
        let bw_a = simulate(&m, &aligned).write_bandwidth(&aligned);
        let bw_m = simulate(&m, &misaligned).write_bandwidth(&misaligned);
        let ratio = bw_a / bw_m;
        assert!((2.0..3.0).contains(&ratio), "Table 1 write ratio ≈ 2.5, got {ratio}");
    }

    #[test]
    fn collectives_rendezvous_classes() {
        let m = Machine::jugene();
        let w = wl(vec![
            ScriptClass {
                count: 1,
                ops: vec![IoOp::Compute { seconds: 5.0 }, IoOp::Barrier],
            },
            ScriptClass { count: 7, ops: vec![IoOp::Barrier] },
        ]);
        let rep = simulate(&m, &w);
        // Fast class waits for the slow one: barrier ends after 5 s.
        for t in &rep.timings {
            if matches!(w.classes[t.class].ops[t.op_index], IoOp::Barrier) {
                assert!(t.end >= 5.0);
            }
        }
        assert!(rep.makespan >= 5.0);
    }

    #[test]
    fn gather_cost_scales_with_root_payload() {
        let m = Machine::jugene();
        let mk = |bytes: u64| {
            wl(vec![ScriptClass { count: 1024, ops: vec![IoOp::Gather { bytes }] }])
        };
        let small = simulate(&m, &mk(8)).makespan;
        let big = simulate(&m, &mk(1 << 20)).makespan;
        assert!(big > small * 100.0, "small {small} big {big}");
    }

    #[test]
    fn more_files_help_until_servers_saturate() {
        let m = Machine::jugene();
        let bw_for = |nfiles: u32| {
            let per = 65536 / nfiles as u64;
            let w = wl((0..nfiles)
                .map(|k| ScriptClass {
                    count: per,
                    ops: vec![IoOp::Write {
                        file: FileRef::Shared(k),
                        bytes: (1u64 << 40) / 65536,
                        sharers: 1.0,
                    }],
                })
                .collect());
            simulate(&m, &w).write_bandwidth(&w)
        };
        let b1 = bw_for(1);
        let b4 = bw_for(4);
        let b32 = bw_for(32);
        assert!(b1 < b4 && b4 <= b32 * 1.01, "1:{b1:.3e} 4:{b4:.3e} 32:{b32:.3e}");
        assert!(b32 <= 6.05e9);
    }

    #[test]
    fn timeline_lists_every_op_in_start_order() {
        let m = Machine::jugene();
        let w = wl(vec![ScriptClass {
            count: 16,
            ops: vec![
                IoOp::Create(FileRef::Shared(0)),
                IoOp::Write { file: FileRef::Shared(0), bytes: 1 << 20, sharers: 1.0 },
                IoOp::Barrier,
            ],
        }]);
        let rep = simulate(&m, &w);
        let tsv = rep.timeline_tsv(&w);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 ops
        assert!(lines[1].contains("create"));
        assert!(lines[2].contains("write[1048576B]"));
        assert!(lines[3].contains("barrier"));
        // Start times are non-decreasing.
        let starts: Vec<f64> = lines[1..]
            .iter()
            .map(|l| l.split('\t').nth(3).unwrap().parse().unwrap())
            .collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn makespan_covers_all_ops() {
        let m = Machine::jaguar();
        let w = wl(vec![ScriptClass {
            count: 128,
            ops: vec![
                IoOp::Create(FileRef::Shared(0)),
                IoOp::Write { file: FileRef::Shared(0), bytes: 1 << 20, sharers: 1.0 },
                IoOp::Barrier,
                IoOp::Read { file: FileRef::Shared(0), bytes: 1 << 20, sharers: 1.0 },
            ],
        }]);
        let rep = simulate(&m, &w);
        assert_eq!(rep.timings.len(), 4);
        for t in &rep.timings {
            assert!(t.end <= rep.makespan + 1e-9);
            assert!(t.start <= t.end);
        }
        // Ops of one class are sequential.
        let mut sorted = rep.timings.clone();
        sorted.sort_by_key(|a| a.op_index);
        for pair in sorted.windows(2) {
            assert!(pair[1].start >= pair[0].end - 1e-9);
        }
    }
}

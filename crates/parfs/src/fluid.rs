//! Weighted max-min fair fluid bandwidth allocation.
//!
//! Concurrent transfers are modelled as *flow classes*: `weight` identical
//! flows, each demanding a rate `r`, traversing a set of resources. A flow
//! using resource `R` with coefficient `c` consumes capacity `c · r` there
//! (e.g. a file striped over 4 servers puts `r/4` on each). Rates are
//! assigned max-min fairly by progressive filling: all flows rise together
//! until a resource saturates or a per-flow cap binds; bound flows freeze,
//! the rest keep rising.
//!
//! This is the textbook bottleneck-fairness model of link sharing and is a
//! faithful first-order model of how GPFS and Lustre servers divide
//! bandwidth among symmetric clients.

/// Identifies a capacity-constrained resource registered with the solver.
pub type ResourceId = usize;

/// A flow class submitted to the solver.
#[derive(Debug, Clone)]
pub struct FluidJobSpec {
    /// Number of identical parallel flows in this class.
    pub weight: f64,
    /// Upper bound on each flow's rate (e.g. client injection bandwidth,
    /// or `1/service_time` for metadata operations). Use `f64::INFINITY`
    /// for none, but only when `usage` is non-empty.
    pub rate_cap_per_flow: f64,
    /// `(resource, coefficient)` pairs: capacity consumed at the resource
    /// per unit of per-flow rate is `weight * coefficient * rate`.
    pub usage: Vec<(ResourceId, f64)>,
}

/// Max-min fair rate solver over a fixed set of resources.
pub struct FluidSolver {
    capacities: Vec<f64>,
}

impl FluidSolver {
    /// A solver with no resources (add them with [`add_resource`]).
    ///
    /// [`add_resource`]: FluidSolver::add_resource
    pub fn new() -> Self {
        FluidSolver { capacities: Vec::new() }
    }

    /// Register a resource with the given capacity (units/s) and return its
    /// id.
    pub fn add_resource(&mut self, capacity: f64) -> ResourceId {
        assert!(capacity > 0.0, "capacity must be positive");
        self.capacities.push(capacity);
        self.capacities.len() - 1
    }

    /// Number of registered resources.
    pub fn num_resources(&self) -> usize {
        self.capacities.len()
    }

    /// Compute the max-min fair per-flow rate of every job.
    ///
    /// Progressive filling: all jobs' rates rise uniformly from zero; when
    /// a resource saturates, every job using it freezes at the current
    /// level; when a job reaches its per-flow cap it freezes there. Runs in
    /// `O(jobs² · usage)`.
    pub fn rates(&self, jobs: &[FluidJobSpec]) -> Vec<f64> {
        let n = jobs.len();
        let mut rate = vec![0.0f64; n];
        if n == 0 {
            return rate;
        }
        for (i, j) in jobs.iter().enumerate() {
            assert!(j.weight > 0.0, "job {i} has non-positive weight");
            assert!(
                j.rate_cap_per_flow.is_finite() || !j.usage.is_empty(),
                "job {i} is unconstrained"
            );
            for &(r, c) in &j.usage {
                assert!(r < self.capacities.len(), "job {i} uses unknown resource {r}");
                assert!(c > 0.0, "job {i} has non-positive coefficient");
            }
        }

        let mut frozen = vec![false; n];
        // Remaining capacity after subtracting frozen jobs' consumption.
        let mut slack = self.capacities.clone();

        loop {
            // Aggregate unfrozen demand per resource.
            let mut demand = vec![0.0f64; self.capacities.len()];
            let mut any_unfrozen = false;
            for (i, j) in jobs.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                any_unfrozen = true;
                for &(r, c) in &j.usage {
                    demand[r] += j.weight * c;
                }
            }
            if !any_unfrozen {
                break;
            }

            // Lowest level at which a constraint binds.
            let mut level = f64::INFINITY;
            for (r, &d) in demand.iter().enumerate() {
                if d > 0.0 {
                    level = level.min(slack[r].max(0.0) / d);
                }
            }
            for (i, j) in jobs.iter().enumerate() {
                if !frozen[i] {
                    level = level.min(j.rate_cap_per_flow);
                }
            }
            debug_assert!(level.is_finite(), "some job must be constrained");

            // Decide the freeze set against the pre-round slack/demand,
            // then apply the capacity decrements in one batch (mutating
            // slack mid-decision would mis-freeze jobs that share resources
            // with already-frozen ones).
            let eps = 1e-9 * (1.0 + level.abs());
            let binding_resource: Vec<bool> = demand
                .iter()
                .enumerate()
                .map(|(r, &d)| d > 0.0 && slack[r].max(0.0) / d <= level + eps)
                .collect();
            let mut to_freeze = Vec::new();
            for (i, j) in jobs.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                let cap_bound = j.rate_cap_per_flow <= level + eps;
                let res_bound = j.usage.iter().any(|&(r, _)| binding_resource[r]);
                if cap_bound || res_bound {
                    to_freeze.push(i);
                }
            }
            let newly_frozen = !to_freeze.is_empty();
            for &i in &to_freeze {
                frozen[i] = true;
                rate[i] = level;
                for &(r, c) in &jobs[i].usage {
                    slack[r] -= jobs[i].weight * c * level;
                }
            }
            debug_assert!(newly_frozen, "progressive filling must freeze a job per round");
            if !newly_frozen {
                // Numerical fallback: freeze everything at the level.
                for (i, j) in jobs.iter().enumerate() {
                    if !frozen[i] {
                        frozen[i] = true;
                        rate[i] = level;
                        for &(r, c) in &j.usage {
                            slack[r] -= j.weight * c * level;
                        }
                    }
                }
                break;
            }
        }
        rate
    }
}

impl Default for FluidSolver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn job(weight: f64, cap: f64, usage: Vec<(usize, f64)>) -> FluidJobSpec {
        FluidJobSpec { weight, rate_cap_per_flow: cap, usage }
    }

    #[test]
    fn single_job_single_resource() {
        let mut s = FluidSolver::new();
        let r = s.add_resource(100.0);
        let rates = s.rates(&[job(4.0, f64::INFINITY, vec![(r, 1.0)])]);
        // 4 flows share 100 units/s → 25 each.
        assert!((rates[0] - 25.0).abs() < 1e-9);
    }

    #[test]
    fn per_flow_cap_binds_first() {
        let mut s = FluidSolver::new();
        let r = s.add_resource(1000.0);
        let rates = s.rates(&[job(4.0, 10.0, vec![(r, 1.0)])]);
        assert!((rates[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn capped_job_leaves_capacity_to_others() {
        let mut s = FluidSolver::new();
        let r = s.add_resource(100.0);
        let jobs = [
            job(1.0, 10.0, vec![(r, 1.0)]),          // capped at 10
            job(1.0, f64::INFINITY, vec![(r, 1.0)]), // takes the rest
        ];
        let rates = s.rates(&jobs);
        assert!((rates[0] - 10.0).abs() < 1e-9);
        assert!((rates[1] - 90.0).abs() < 1e-9);
    }

    #[test]
    fn coefficients_spread_load() {
        // One class striped over 4 servers (coeff 1/4 each), servers of
        // capacity 25 → total 100, flow rate can hit 100.
        let mut s = FluidSolver::new();
        let servers: Vec<_> = (0..4).map(|_| s.add_resource(25.0)).collect();
        let usage: Vec<_> = servers.iter().map(|&r| (r, 0.25)).collect();
        let rates = s.rates(&[job(1.0, f64::INFINITY, usage)]);
        assert!((rates[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_fairness_two_links() {
        // Classic max-min example: flows A (link1+link2), B (link1), C
        // (link2). link1 cap 10, link2 cap 20.
        let mut s = FluidSolver::new();
        let l1 = s.add_resource(10.0);
        let l2 = s.add_resource(20.0);
        let jobs = [
            job(1.0, f64::INFINITY, vec![(l1, 1.0), (l2, 1.0)]), // A
            job(1.0, f64::INFINITY, vec![(l1, 1.0)]),            // B
            job(1.0, f64::INFINITY, vec![(l2, 1.0)]),            // C
        ];
        let rates = s.rates(&jobs);
        // A and B split link1 (5 each); C gets link2's remainder (15).
        assert!((rates[0] - 5.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 5.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[2] - 15.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn weights_count_flows() {
        let mut s = FluidSolver::new();
        let r = s.add_resource(90.0);
        let jobs = [
            job(2.0, f64::INFINITY, vec![(r, 1.0)]),
            job(1.0, f64::INFINITY, vec![(r, 1.0)]),
        ];
        let rates = s.rates(&jobs);
        // 3 flows total, all equal: 30 per flow.
        assert!((rates[0] - 30.0).abs() < 1e-9);
        assert!((rates[1] - 30.0).abs() < 1e-9);
    }

    proptest! {
        /// Conservation: no resource is overcommitted; every job is either
        /// at its cap or limited by a saturated resource.
        #[test]
        fn feasibility_and_maximality(
            caps in prop::collection::vec(1.0f64..1000.0, 1..6),
            specs in prop::collection::vec(
                (1.0f64..32.0, 0.5f64..500.0, prop::collection::vec((0usize..6, 0.1f64..1.0), 0..4)),
                1..8
            ),
        ) {
            let mut s = FluidSolver::new();
            for &c in &caps { s.add_resource(c); }
            let jobs: Vec<FluidJobSpec> = specs
                .iter()
                .map(|(w, cap, usage)| FluidJobSpec {
                    weight: *w,
                    rate_cap_per_flow: *cap,
                    usage: usage
                        .iter()
                        .map(|&(r, c)| (r % caps.len(), c))
                        .collect(),
                })
                .collect();
            let rates = s.rates(&jobs);
            // Feasibility.
            let mut usage = vec![0.0f64; caps.len()];
            for (j, rate) in jobs.iter().zip(&rates) {
                prop_assert!(*rate <= j.rate_cap_per_flow + 1e-6);
                prop_assert!(*rate >= 0.0);
                for &(r, c) in &j.usage {
                    usage[r] += j.weight * c * rate;
                }
            }
            for (r, (&u, &c)) in usage.iter().zip(&caps).enumerate() {
                prop_assert!(u <= c * (1.0 + 1e-6), "resource {r} overcommitted: {u} > {c}");
            }
            // Maximality: every job is cap-bound or touches a resource with
            // (near-)zero slack.
            for (j, rate) in jobs.iter().zip(&rates) {
                let cap_bound = *rate >= j.rate_cap_per_flow - 1e-6;
                let res_bound = j.usage.iter().any(|&(r, _)| usage[r] >= caps[r] * (1.0 - 1e-6));
                prop_assert!(cap_bound || res_bound, "job neither capped nor bottlenecked");
            }
        }
    }
}

//! `parfs` — a discrete-event parallel file-system simulator.
//!
//! The SIONlib paper's evaluation runs on two petascale machines (Jugene:
//! Blue Gene/P + GPFS; Jaguar: Cray XT4 + Lustre) at up to 64 K tasks. This
//! crate is the reproduction's substitute for that hardware: it simulates
//! the *mechanisms* the paper's results rest on —
//!
//! * **metadata contention**: file creates in one directory serialize on
//!   directory-block locking; GPFS (distributed metadata, every node may
//!   manage it) and Lustre (dedicated MDS) get different service models;
//! * **block-granularity write locks**: chunks of two tasks sharing one FS
//!   block contend like false-shared cache lines (paper Table 1);
//! * **striping and server parallelism**: each file is striped over a
//!   subset of the I/O servers; per-file and aggregate capacities bound
//!   throughput (paper Fig. 4);
//! * **bandwidth sharing**: concurrent transfers share client injection
//!   links, I/O servers, and the aggregate backplane max-min fairly, via a
//!   fluid-flow model ([`fluid`]);
//! * **client-side read caching**: re-reads may exceed the file-system
//!   maximum (paper Fig. 5(b)).
//!
//! Workloads are [`ScriptSet`]s: per-*class* operation sequences (a class
//! is a group of tasks with identical behaviour — grouping keeps a
//! 64 K-task simulation at a handful of flow classes instead of 64 K
//! flows). The `sion::script` module generates these scripts from the
//! *actual* SIONlib layout code, so the simulated access pattern is exactly
//! the library's.
//!
//! [`SimFs`] additionally provides a functional [`vfs::Vfs`] with operation
//! accounting, for tests that want to count creates/opens/bytes without
//! timing.
//!
//! ```
//! use parfs::{Machine, IoOp, FileRef, ScriptClass, ScriptSet, simulate};
//!
//! // 1024 tasks each create their own file in one directory.
//! let wl = ScriptSet {
//!     ntasks: 1024,
//!     classes: vec![ScriptClass {
//!         count: 1024,
//!         ops: vec![IoOp::Create(FileRef::Own)],
//!     }],
//! };
//! let report = simulate(&Machine::jugene(), &wl);
//! // Serialized creates: roughly 1024 * per-create service time.
//! assert!(report.makespan > 1.0);
//! ```

mod engine;
mod fluid;
mod machine;
mod simfs;
mod workload;

pub use engine::{simulate, OpTiming, SimReport};
pub use fluid::{FluidJobSpec, FluidSolver, ResourceId};
pub use machine::{Machine, StripingConfig};
pub use simfs::{SimFs, SimFsCounters};
pub use workload::{FileRef, IoOp, ScriptClass, ScriptSet};

//! Workload description consumed by the simulator.
//!
//! A workload ([`ScriptSet`]) is a set of task *classes*; all tasks of a
//! class execute the same operation sequence in lockstep (they are
//! symmetric, so in a fluid model their flows stay identical forever).
//! Collective operations rendezvous across **all** classes, mirroring the
//! bulk-synchronous structure of the SIONlib open/close protocol.

/// Which physical file an operation targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileRef {
    /// A shared multifile component, identified by its index. All tasks
    /// (across classes) referring to `Shared(k)` touch the same file.
    Shared(u32),
    /// Each task's own private file (the multiple-file-parallel baseline:
    /// one physical file per task).
    Own,
}

/// One operation of a task's script.
///
/// Transfer sizes are *per task*; a class of `count` tasks performing
/// `Write { bytes, .. }` moves `count * bytes` in total.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IoOp {
    /// Create a file in the shared directory (metadata-intensive).
    Create(FileRef),
    /// Open an existing file (cheaper metadata path than create).
    Open(FileRef),
    /// Write `bytes` to the target file. `sharers` is the mean number of
    /// tasks whose chunks overlap each touched FS block (1.0 when the
    /// layout is block-aligned); values above 1 trigger the lock-contention
    /// penalty.
    Write { file: FileRef, bytes: u64, sharers: f64 },
    /// Read `bytes` from the target file; same `sharers` semantics (read
    /// locks are cheaper but not free on GPFS).
    Read { file: FileRef, bytes: u64, sharers: f64 },
    /// Collective gather: every task contributes `bytes` to a root.
    Gather { bytes: u64 },
    /// Collective scatter: the root distributes `bytes` per task.
    Scatter { bytes: u64 },
    /// Broadcast of `bytes` from a root to all tasks.
    Bcast { bytes: u64 },
    /// Pure synchronization.
    Barrier,
    /// Local computation for a fixed time (keeps tasks busy between I/O
    /// phases, e.g. simulation steps between checkpoints).
    Compute { seconds: f64 },
}

impl IoOp {
    /// Whether this op is a collective (rendezvous across all classes).
    pub fn is_collective(&self) -> bool {
        matches!(
            self,
            IoOp::Gather { .. } | IoOp::Scatter { .. } | IoOp::Bcast { .. } | IoOp::Barrier
        )
    }
}

/// A group of `count` symmetric tasks sharing one script.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptClass {
    /// Number of tasks in this class.
    pub count: u64,
    /// The operation sequence each of them executes.
    pub ops: Vec<IoOp>,
}

/// A complete workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptSet {
    /// Total number of application tasks (must equal the sum of class
    /// counts).
    pub ntasks: u64,
    /// The task classes.
    pub classes: Vec<ScriptClass>,
}

impl ScriptSet {
    /// Validate counts and the collective-sequence contract: every class
    /// must contain the same sequence of collective operation *kinds* so
    /// that rendezvous points match up.
    pub fn validate(&self) -> Result<(), String> {
        let total: u64 = self.classes.iter().map(|c| c.count).sum();
        if total != self.ntasks {
            return Err(format!(
                "class counts sum to {total}, but ntasks is {}",
                self.ntasks
            ));
        }
        if self.classes.iter().any(|c| c.count == 0) {
            return Err("empty class".into());
        }
        let collective_seq = |c: &ScriptClass| -> Vec<u8> {
            c.ops
                .iter()
                .filter(|o| o.is_collective())
                .map(|o| match o {
                    IoOp::Gather { .. } => 0,
                    IoOp::Scatter { .. } => 1,
                    IoOp::Bcast { .. } => 2,
                    IoOp::Barrier => 3,
                    _ => unreachable!(),
                })
                .collect()
        };
        if let Some(first) = self.classes.first() {
            let want = collective_seq(first);
            for (i, c) in self.classes.iter().enumerate().skip(1) {
                if collective_seq(c) != want {
                    return Err(format!(
                        "class {i} has a different collective sequence than class 0"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Total bytes written across all classes.
    pub fn total_write_bytes(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| {
                c.count
                    * c.ops
                        .iter()
                        .map(|o| match o {
                            IoOp::Write { bytes, .. } => *bytes,
                            _ => 0,
                        })
                        .sum::<u64>()
            })
            .sum()
    }

    /// Total bytes read across all classes.
    pub fn total_read_bytes(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| {
                c.count
                    * c.ops
                        .iter()
                        .map(|o| match o {
                            IoOp::Read { bytes, .. } => *bytes,
                            _ => 0,
                        })
                        .sum::<u64>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(count: u64, ops: Vec<IoOp>) -> ScriptClass {
        ScriptClass { count, ops }
    }

    #[test]
    fn validate_checks_counts() {
        let wl = ScriptSet { ntasks: 10, classes: vec![class(4, vec![])] };
        assert!(wl.validate().is_err());
        let wl = ScriptSet {
            ntasks: 10,
            classes: vec![class(4, vec![]), class(6, vec![IoOp::Barrier])],
        };
        // collective mismatch: class 0 has no barrier
        assert!(wl.validate().is_err());
        let wl = ScriptSet {
            ntasks: 10,
            classes: vec![class(4, vec![IoOp::Barrier]), class(6, vec![IoOp::Barrier])],
        };
        assert!(wl.validate().is_ok());
    }

    #[test]
    fn collective_sequences_must_match_in_kind() {
        let a = class(1, vec![IoOp::Gather { bytes: 8 }, IoOp::Barrier]);
        let b = class(1, vec![IoOp::Scatter { bytes: 8 }, IoOp::Barrier]);
        let wl = ScriptSet { ntasks: 2, classes: vec![a.clone(), b] };
        assert!(wl.validate().is_err());
        let wl = ScriptSet { ntasks: 2, classes: vec![a.clone(), a] };
        assert!(wl.validate().is_ok());
    }

    #[test]
    fn byte_totals() {
        let wl = ScriptSet {
            ntasks: 6,
            classes: vec![
                class(
                    2,
                    vec![
                        IoOp::Write { file: FileRef::Shared(0), bytes: 100, sharers: 1.0 },
                        IoOp::Read { file: FileRef::Shared(0), bytes: 40, sharers: 1.0 },
                    ],
                ),
                class(4, vec![IoOp::Write { file: FileRef::Own, bytes: 10, sharers: 1.0 }]),
            ],
        };
        assert_eq!(wl.total_write_bytes(), 240);
        assert_eq!(wl.total_read_bytes(), 80);
    }
}

//! Property tests of the discrete-event engine: for random (valid)
//! workloads, the simulation must respect basic physical laws — makespans
//! bounded below by critical-path and capacity arguments, per-class op
//! ordering, and monotonicity in offered load.

use parfs::{simulate, FileRef, IoOp, Machine, ScriptClass, ScriptSet};
use proptest::prelude::*;

fn machine() -> Machine {
    Machine::jugene()
}

/// A generator of small valid workloads without collectives (collective
/// sequences must match across classes; transfer-only workloads sidestep
/// that constraint while still exercising the fluid engine).
fn workload_strategy() -> impl Strategy<Value = ScriptSet> {
    let op = prop_oneof![
        Just(IoOp::Create(FileRef::Own)),
        Just(IoOp::Open(FileRef::Own)),
        (0u32..4, 1u64..64 << 20).prop_map(|(k, bytes)| IoOp::Write {
            file: FileRef::Shared(k),
            bytes,
            sharers: 1.0,
        }),
        (0u32..4, 1u64..64 << 20).prop_map(|(k, bytes)| IoOp::Read {
            file: FileRef::Shared(k),
            bytes,
            sharers: 1.0,
        }),
        (1u64..32 << 20).prop_map(|bytes| IoOp::Write {
            file: FileRef::Own,
            bytes,
            sharers: 1.0,
        }),
        (0.001f64..0.1).prop_map(|seconds| IoOp::Compute { seconds }),
    ];
    prop::collection::vec((1u64..64, prop::collection::vec(op, 1..5)), 1..4).prop_map(
        |classes| {
            let classes: Vec<ScriptClass> = classes
                .into_iter()
                .map(|(count, ops)| ScriptClass { count, ops })
                .collect();
            let ntasks = classes.iter().map(|c| c.count).sum();
            ScriptSet { ntasks, classes }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The makespan is at least each class's critical path under ideal
    /// conditions (every transfer at the single-task cap, every metadata op
    /// at its bare service time, compute at face value).
    #[test]
    fn makespan_at_least_critical_path(wl in workload_strategy()) {
        let m = machine();
        let rep = simulate(&m, &wl);
        for class in &wl.classes {
            let mut lower = 0.0f64;
            for op in &class.ops {
                lower += match *op {
                    IoOp::Create(_) => m.create_svc_s,
                    IoOp::Open(_) => m.open_svc_s,
                    IoOp::Write { bytes, .. } | IoOp::Read { bytes, .. } => {
                        bytes as f64 / m.task_bw
                    }
                    IoOp::Compute { seconds } => seconds,
                    _ => 0.0,
                };
            }
            prop_assert!(
                rep.makespan >= lower * 0.999,
                "makespan {} below class critical path {}",
                rep.makespan,
                lower
            );
        }
    }

    /// The makespan is at least total-bytes / aggregate-capacity.
    #[test]
    fn makespan_at_least_capacity_bound(wl in workload_strategy()) {
        let m = machine();
        let rep = simulate(&m, &wl);
        let write_bound = wl.total_write_bytes() as f64 / m.aggregate_bw_write;
        let read_bound = wl.total_read_bytes() as f64 / m.aggregate_bw_read;
        prop_assert!(rep.makespan >= (write_bound + read_bound) * 0.999);
    }

    /// Per-class op timings are sequential and non-negative, and everything
    /// ends by the makespan.
    #[test]
    fn timings_are_sequential(wl in workload_strategy()) {
        let rep = simulate(&machine(), &wl);
        for (ci, class) in wl.classes.iter().enumerate() {
            let mut t = 0.0f64;
            for oi in 0..class.ops.len() {
                let d = rep
                    .op_duration(ci, oi);
                prop_assert!(d.is_some(), "class {ci} op {oi} missing");
                let timing = rep
                    .timings
                    .iter()
                    .find(|x| x.class == ci && x.op_index == oi)
                    .unwrap();
                prop_assert!(timing.start >= t - 1e-9, "op started before predecessor ended");
                prop_assert!(timing.end >= timing.start);
                prop_assert!(timing.end <= rep.makespan + 1e-9);
                t = timing.end;
            }
        }
    }

    /// Doubling the per-task payload never shortens the makespan.
    #[test]
    fn monotone_in_load(count in 1u64..512, bytes in 1u64..32 << 20) {
        let m = machine();
        let mk = |b: u64| ScriptSet {
            ntasks: count,
            classes: vec![ScriptClass {
                count,
                ops: vec![IoOp::Write { file: FileRef::Shared(0), bytes: b, sharers: 1.0 }],
            }],
        };
        let small = simulate(&m, &mk(bytes)).makespan;
        let big = simulate(&m, &mk(bytes * 2)).makespan;
        prop_assert!(big >= small * 0.999, "more data finished faster: {big} < {small}");
    }
}

#[test]
fn collectives_with_mixed_classes_terminate() {
    // A deterministic smoke test of collective rendezvous with skewed
    // classes (one heavy, one light).
    let m = machine();
    let wl = ScriptSet {
        ntasks: 100,
        classes: vec![
            ScriptClass {
                count: 1,
                ops: vec![
                    IoOp::Compute { seconds: 2.0 },
                    IoOp::Gather { bytes: 1 << 20 },
                    IoOp::Write { file: FileRef::Shared(0), bytes: 1 << 30, sharers: 1.0 },
                    IoOp::Barrier,
                ],
            },
            ScriptClass {
                count: 99,
                ops: vec![IoOp::Gather { bytes: 1 << 20 }, IoOp::Barrier],
            },
        ],
    };
    let rep = simulate(&m, &wl);
    // The barrier must end no earlier than the heavy class's write.
    let write_end = rep
        .timings
        .iter()
        .find(|t| t.class == 0 && t.op_index == 2)
        .unwrap()
        .end;
    for t in rep.timings.iter().filter(|t| {
        matches!(wl.classes[t.class].ops[t.op_index], IoOp::Barrier)
    }) {
        assert!(t.end >= write_end);
    }
}

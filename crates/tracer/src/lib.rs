//! `tracer` — a Scalasca-like event-tracing library.
//!
//! The paper's second use case (§5.2) integrates SIONlib into the Scalasca
//! performance tool: "each task first records local events in a collection
//! buffer and writes them to a task-local file at measurement finalization
//! according to the multiple-file parallel method". Experiment *activation*
//! (creating the trace files and initializing the tracing library) was the
//! scalability bottleneck SIONlib removed (Table 2: 369.1 s → 28.1 s at
//! 32 Ki tasks).
//!
//! This crate reproduces that substrate:
//!
//! * a compact binary [`Event`] model (region enter/exit, message send/
//!   receive) with a self-delimiting wire format;
//! * a per-task [`Tracer`] collection buffer;
//! * two interchangeable trace back-ends — [`TaskLocalBackend`] (one
//!   physical file per task, the original Scalasca scheme) and
//!   [`SionBackend`] (a SIONlib multifile, optionally compressed as the
//!   paper's §6 suggests);
//! * a postmortem [`analyze`] pass in the spirit of Scalasca's wait-state
//!   search (per-region time profile plus late-sender detection), reading
//!   traces through either back-end.

mod analyze;
mod backend;
mod event;
mod report;
mod synth;

pub use analyze::{analyze, load_rank_events, AnalysisReport, RegionStats, TraceSource};
pub use backend::{ActiveTrace, SionBackend, TaskLocalBackend, TraceBackend};
pub use sion::{CloseStats, IoCounters};
pub use event::{DecodeError, Event};
pub use report::{format_profile, MessageStats, RegionRegistry};
pub use synth::{synthetic_events, SynthConfig, REGION_ITERATION, REGION_LEVEL0, REGION_MAIN};

use sion::Result;

/// A per-task collection buffer: events are encoded on record and flushed
/// to a back-end at finalization (Scalasca's measurement workflow).
pub struct Tracer {
    rank: usize,
    buf: Vec<u8>,
    nevents: u64,
}

impl Tracer {
    /// A fresh collection buffer for `rank`.
    pub fn new(rank: usize) -> Self {
        Tracer { rank, buf: Vec::new(), nevents: 0 }
    }

    /// Record one event into the collection buffer.
    pub fn record(&mut self, ev: &Event) {
        ev.encode(&mut self.buf);
        self.nevents += 1;
    }

    /// This task's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of recorded events.
    pub fn len(&self) -> u64 {
        self.nevents
    }

    /// Whether no event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nevents == 0
    }

    /// Size of the encoded buffer in bytes.
    pub fn buffer_bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Flush the buffer into an activated trace and consume the tracer
    /// (measurement finalization).
    pub fn finalize(self, trace: &mut dyn ActiveTrace) -> Result<()> {
        trace.write_events(&self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_accumulates_encoded_events() {
        let mut t = Tracer::new(3);
        assert!(t.is_empty());
        t.record(&Event::Enter { time: 10, region: 1 });
        t.record(&Event::Exit { time: 20, region: 1 });
        assert_eq!(t.len(), 2);
        assert!(t.buffer_bytes() > 0);
        assert_eq!(t.rank(), 3);
    }
}

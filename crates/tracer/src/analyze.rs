//! Postmortem trace analysis in the spirit of Scalasca's wait-state
//! search (paper §5.2, Fig. 7).
//!
//! Scalasca loads the task-local traces into a parallel analyzer and
//! searches for inefficiency patterns. We implement the serial equivalent
//! over both storage back-ends: a per-region time profile (inclusive time,
//! visit counts) and the classic **late-sender** pattern — a receive that
//! completes after it began waiting because the matching send started
//! late. The analyzer reads multifile traces through the task-local-view
//! serial interface ([`sion::Multifile::rank_reader`]), exactly the access
//! mode the paper describes for the Scalasca integration.

use crate::backend::TaskLocalBackend;
use crate::event::Event;
use sion::{Multifile, Result, SionError};
use std::collections::HashMap;
use vfs::Vfs;

/// Aggregated statistics of one region across all ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    /// Number of times the region was entered.
    pub visits: u64,
    /// Total inclusive time spent in the region (ns, summed over ranks).
    pub inclusive_ns: u64,
    /// Exclusive time: inclusive minus the time spent in nested regions
    /// (Scalasca's "self" time).
    pub exclusive_ns: u64,
}

/// Result of a trace analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// Ranks analyzed.
    pub nranks: usize,
    /// Events processed.
    pub events: u64,
    /// Per-region profile.
    pub regions: HashMap<u32, RegionStats>,
    /// Number of matched point-to-point message pairs.
    pub messages_matched: u64,
    /// Messages whose send was recorded after the matching receive's
    /// predecessor event — the late-sender wait-state count.
    pub late_senders: u64,
    /// Total late-sender waiting time (ns).
    pub late_sender_wait_ns: u64,
}

/// Where to load traces from.
pub enum TraceSource<'a> {
    /// Task-local files written by [`TaskLocalBackend`].
    TaskLocal(&'a TaskLocalBackend, usize),
    /// A SIONlib multifile.
    Sion(&'a str),
}

/// Load the decoded event stream of one rank from either back-end.
pub fn load_rank_events(vfs: &dyn Vfs, source: &TraceSource<'_>, rank: usize) -> Result<Vec<Event>> {
    let bytes = match source {
        TraceSource::TaskLocal(backend, _) => {
            let f = vfs.open(&backend.path_of(rank))?;
            let mut buf = vec![0u8; f.len()? as usize];
            f.read_exact_at(&mut buf, 0)?;
            buf
        }
        TraceSource::Sion(base) => Multifile::open(vfs, base)?.read_rank(rank)?,
    };
    Event::decode_stream(&bytes)
        .map_err(|e| SionError::Format(format!("rank {rank} trace: {e}")))
}

/// Analyze all ranks' traces: region profile + late-sender search.
pub fn analyze(vfs: &dyn Vfs, source: &TraceSource<'_>) -> Result<AnalysisReport> {
    let nranks = match source {
        TraceSource::TaskLocal(_, n) => *n,
        TraceSource::Sion(base) => Multifile::open(vfs, base)?.ntasks(),
    };
    let mut report = AnalysisReport { nranks, ..Default::default() };
    // (src, dst, tag) -> FIFO of send times, matching MPI ordering.
    let mut sends: HashMap<(u32, u32, u32), Vec<u64>> = HashMap::new();
    // Collect receives to match after all sends are known (traces are
    // per-rank, so matching must be global).
    let mut recvs: Vec<(u32, u32, u32, u64, u64)> = Vec::new(); // (src, dst, tag, recv_time, wait_start)

    for rank in 0..nranks {
        let events = load_rank_events(vfs, source, rank)?;
        report.events += events.len() as u64;
        // Stack frames carry (region, enter time, child inclusive time), so
        // exclusive time = inclusive - children.
        let mut stack: Vec<(u32, u64, u64)> = Vec::new();
        let mut prev_time = 0u64;
        for ev in &events {
            match *ev {
                Event::Enter { time, region } => stack.push((region, time, 0)),
                Event::Exit { time, region } => {
                    if let Some((r, t0, child_ns)) = stack.pop() {
                        if r == region {
                            let inclusive = time.saturating_sub(t0);
                            let st = report.regions.entry(region).or_default();
                            st.visits += 1;
                            st.inclusive_ns += inclusive;
                            st.exclusive_ns += inclusive.saturating_sub(child_ns);
                            if let Some(parent) = stack.last_mut() {
                                parent.2 += inclusive;
                            }
                        }
                    }
                }
                Event::Send { time, peer, tag, .. } => {
                    sends.entry((rank as u32, peer, tag)).or_default().push(time);
                }
                Event::Recv { time, peer, tag, .. } => {
                    // The wait began when the task finished its previous
                    // event (Scalasca's late-sender definition).
                    recvs.push((peer, rank as u32, tag, time, prev_time));
                }
            }
            prev_time = ev.time();
        }
    }

    // Sort receives by completion time so FIFO send matching is stable.
    recvs.sort_by_key(|&(.., time, _)| time);
    let mut cursors: HashMap<(u32, u32, u32), usize> = HashMap::new();
    for (src, dst, tag, recv_time, wait_start) in recvs {
        let key = (src, dst, tag);
        let Some(times) = sends.get(&key) else { continue };
        let cur = cursors.entry(key).or_insert(0);
        if *cur >= times.len() {
            continue;
        }
        let send_time = times[*cur];
        *cur += 1;
        report.messages_matched += 1;
        if send_time > wait_start {
            report.late_senders += 1;
            report.late_sender_wait_ns += (send_time.min(recv_time)).saturating_sub(wait_start);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{SionBackend, TraceBackend};
    use crate::synth::{synthetic_events, SynthConfig, REGION_MAIN};
    use crate::Tracer;
    use simmpi::{Comm, World};
    use vfs::MemFs;

    fn record_run(backend: &dyn TraceBackend, fs: &MemFs, ntasks: usize, cfg: &SynthConfig) {
        World::run(ntasks, |comm| {
            let mut tracer = Tracer::new(comm.rank());
            for ev in synthetic_events(cfg, comm.rank(), comm.size()) {
                tracer.record(&ev);
            }
            let mut trace = backend.activate(fs, comm).unwrap();
            tracer.finalize(trace.as_mut()).unwrap();
            trace.finalize().unwrap();
        });
    }

    #[test]
    fn both_backends_yield_identical_analysis() {
        let cfg = SynthConfig::default();
        let ntasks = 8;

        let fs_a = MemFs::new();
        let tl = TaskLocalBackend::new("tr/run");
        record_run(&tl, &fs_a, ntasks, &cfg);
        let rep_a = analyze(&fs_a, &TraceSource::TaskLocal(&tl, ntasks)).unwrap();

        let fs_b = MemFs::with_block_size(4096);
        record_run(&SionBackend::new("tr.sion", 1 << 20, 2), &fs_b, ntasks, &cfg);
        let rep_b = analyze(&fs_b, &TraceSource::Sion("tr.sion")).unwrap();

        // The storage layer must be invisible to the analysis.
        assert_eq!(rep_a, rep_b);
        assert_eq!(rep_a.nranks, ntasks);
        assert!(rep_a.events > 0);
        assert!(rep_a.messages_matched > 0);
        assert_eq!(rep_a.regions[&REGION_MAIN].visits, ntasks as u64);
    }

    #[test]
    fn compressed_multifile_analyzes_identically() {
        let cfg = SynthConfig::default();
        let fs1 = MemFs::with_block_size(4096);
        record_run(&SionBackend::new("p.sion", 1 << 20, 1), &fs1, 4, &cfg);
        let plain = analyze(&fs1, &TraceSource::Sion("p.sion")).unwrap();

        let fs2 = MemFs::with_block_size(4096);
        record_run(&SionBackend::new("c.sion", 1 << 20, 1).with_compression(), &fs2, 4, &cfg);
        let compressed = analyze(&fs2, &TraceSource::Sion("c.sion")).unwrap();
        assert_eq!(plain, compressed);
    }

    #[test]
    fn late_sender_detected_in_crafted_trace() {
        // Rank 1 receives at t=100 having been idle since t=10, but rank 0
        // only sends at t=80: 70 ns of late-sender waiting.
        let fs = MemFs::new();
        let tl = TaskLocalBackend::new("ls");
        World::run(2, |comm| {
            let mut tracer = Tracer::new(comm.rank());
            if comm.rank() == 0 {
                tracer.record(&Event::Enter { time: 0, region: 1 });
                tracer.record(&Event::Send { time: 80, peer: 1, tag: 5, bytes: 8 });
                tracer.record(&Event::Exit { time: 90, region: 1 });
            } else {
                tracer.record(&Event::Enter { time: 10, region: 1 });
                tracer.record(&Event::Recv { time: 100, peer: 0, tag: 5, bytes: 8 });
                tracer.record(&Event::Exit { time: 110, region: 1 });
            }
            let mut trace = tl.activate(&fs, comm).unwrap();
            tracer.finalize(trace.as_mut()).unwrap();
            trace.finalize().unwrap();
        });
        let rep = analyze(&fs, &TraceSource::TaskLocal(&tl, 2)).unwrap();
        assert_eq!(rep.messages_matched, 1);
        assert_eq!(rep.late_senders, 1);
        assert_eq!(rep.late_sender_wait_ns, 70);
    }

    #[test]
    fn region_profile_times_add_up() {
        let fs = MemFs::new();
        let tl = TaskLocalBackend::new("prof");
        World::run(1, |comm| {
            let mut tracer = Tracer::new(0);
            tracer.record(&Event::Enter { time: 0, region: 9 });
            tracer.record(&Event::Enter { time: 10, region: 8 });
            tracer.record(&Event::Exit { time: 30, region: 8 });
            tracer.record(&Event::Exit { time: 100, region: 9 });
            let mut trace = tl.activate(&fs, comm).unwrap();
            tracer.finalize(trace.as_mut()).unwrap();
            trace.finalize().unwrap();
        });
        let rep = analyze(&fs, &TraceSource::TaskLocal(&tl, 1)).unwrap();
        assert_eq!(
            rep.regions[&9],
            RegionStats { visits: 1, inclusive_ns: 100, exclusive_ns: 80 }
        );
        assert_eq!(
            rep.regions[&8],
            RegionStats { visits: 1, inclusive_ns: 20, exclusive_ns: 20 }
        );
    }

    #[test]
    fn exclusive_times_sum_to_root_inclusive() {
        // For a single-rank trace with one root region, the sum of all
        // exclusive times equals the root's inclusive time.
        let fs = MemFs::new();
        let tl = TaskLocalBackend::new("sum");
        let cfg = SynthConfig::default();
        World::run(1, |comm| {
            let mut tracer = Tracer::new(0);
            for ev in synthetic_events(&cfg, 0, 1) {
                tracer.record(&ev);
            }
            let mut trace = tl.activate(&fs, comm).unwrap();
            tracer.finalize(trace.as_mut()).unwrap();
            trace.finalize().unwrap();
        });
        let rep = analyze(&fs, &TraceSource::TaskLocal(&tl, 1)).unwrap();
        let root = rep.regions[&crate::synth::REGION_MAIN];
        let total_exclusive: u64 = rep.regions.values().map(|s| s.exclusive_ns).sum();
        assert_eq!(total_exclusive, root.inclusive_ns);
        // And exclusive never exceeds inclusive anywhere.
        for st in rep.regions.values() {
            assert!(st.exclusive_ns <= st.inclusive_ns);
        }
    }
}

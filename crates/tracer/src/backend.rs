//! Trace storage back-ends: task-local physical files vs a SIONlib
//! multifile.
//!
//! *Activation* (paper §5.2) is the creation of the trace files plus
//! library initialization — the step Table 2 measures. Both back-ends
//! separate activation ([`TraceBackend::activate`], collective) from the
//! flush at finalization ([`ActiveTrace::write_events`]), mirroring how
//! Scalasca creates its files up front and writes buffers at the end of
//! the measurement.

use simmpi::Comm;
use sion::{paropen_write, CloseStats, Result, SionParams, SionParWriter};
use std::sync::Arc;
use vfs::{Vfs, VfsFile};

/// An activated (open) trace one task can flush its buffer into.
pub trait ActiveTrace {
    /// Append encoded events to this task's trace.
    fn write_events(&mut self, data: &[u8]) -> Result<()>;

    /// Finish the trace. Collective for the multifile back-end, which also
    /// reports its close statistics (bytes, blocks, write coalescing
    /// counters); the task-local back-end has none to report.
    fn finalize(self: Box<Self>) -> Result<Option<CloseStats>>;
}

/// Strategy for storing per-task traces.
pub trait TraceBackend: Send + Sync {
    /// Collectively create/initialize this task's trace storage.
    fn activate(&self, vfs: &dyn Vfs, comm: &dyn Comm) -> Result<Box<dyn ActiveTrace>>;

    /// Path prefix (for reporting).
    fn describe(&self) -> String;
}

/// One physical file per task: `"{prefix}.{rank:06}"` — the
/// multiple-file-parallel scheme Scalasca originally used.
pub struct TaskLocalBackend {
    /// Path prefix for the per-task files.
    pub prefix: String,
}

impl TaskLocalBackend {
    /// Back-end writing `"{prefix}.{rank:06}"` files.
    pub fn new(prefix: impl Into<String>) -> Self {
        TaskLocalBackend { prefix: prefix.into() }
    }

    /// The trace file path of `rank`.
    pub fn path_of(&self, rank: usize) -> String {
        format!("{}.{rank:06}", self.prefix)
    }
}

struct TaskLocalActive {
    file: Arc<dyn VfsFile>,
    at: u64,
}

impl ActiveTrace for TaskLocalActive {
    fn write_events(&mut self, data: &[u8]) -> Result<()> {
        self.file.write_all_at(data, self.at)?;
        self.at += data.len() as u64;
        Ok(())
    }

    fn finalize(self: Box<Self>) -> Result<Option<CloseStats>> {
        self.file.sync()?;
        Ok(None)
    }
}

impl TraceBackend for TaskLocalBackend {
    fn activate(&self, vfs: &dyn Vfs, comm: &dyn Comm) -> Result<Box<dyn ActiveTrace>> {
        // Every task creates its own file — the contention the paper's
        // Fig. 3 and Table 2 quantify.
        let file = vfs.create(&self.path_of(comm.rank()))?;
        Ok(Box::new(TaskLocalActive { file, at: 0 }))
    }

    fn describe(&self) -> String {
        format!("task-local files at {}.*", self.prefix)
    }
}

/// All traces in one SIONlib multifile (the paper's integration): a chunk
/// size equal to the expected buffer size means a single block of chunks,
/// exactly as §5.2 describes for the zlib-compressed Scalasca buffers.
pub struct SionBackend {
    /// Multifile base name.
    pub base: String,
    /// Expected (maximum) per-task buffer size — the chunk request.
    pub chunksize: u64,
    /// Number of underlying physical files (the paper used 16 for the
    /// 1470 GB SMG2000 trace).
    pub nfiles: u32,
    /// Transparent compression (paper §6 road map).
    pub compressed: bool,
}

impl SionBackend {
    /// Multifile back-end with the given base name and chunk request.
    pub fn new(base: impl Into<String>, chunksize: u64, nfiles: u32) -> Self {
        SionBackend { base: base.into(), chunksize, nfiles, compressed: false }
    }

    /// Enable transparent compression of the trace streams.
    pub fn with_compression(mut self) -> Self {
        self.compressed = true;
        self
    }
}

struct SionActive {
    writer: SionParWriter,
}

impl ActiveTrace for SionActive {
    fn write_events(&mut self, data: &[u8]) -> Result<()> {
        self.writer.write(data)
    }

    fn finalize(self: Box<Self>) -> Result<Option<CloseStats>> {
        Ok(Some(self.writer.close()?))
    }
}

impl TraceBackend for SionBackend {
    fn activate(&self, vfs: &dyn Vfs, comm: &dyn Comm) -> Result<Box<dyn ActiveTrace>> {
        let mut params = SionParams::new(self.chunksize).with_nfiles(self.nfiles);
        if self.compressed {
            params = params.with_compression();
        }
        let writer = paropen_write(vfs, &self.base, &params, comm)?;
        Ok(Box::new(SionActive { writer }))
    }

    fn describe(&self) -> String {
        format!(
            "sion multifile at {} ({} physical files{})",
            self.base,
            self.nfiles,
            if self.compressed { ", compressed" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::Tracer;
    use simmpi::World;
    use vfs::MemFs;

    fn run_measurement(backend: &dyn TraceBackend, fs: &MemFs, ntasks: usize) {
        World::run(ntasks, |comm| {
            let mut tracer = Tracer::new(comm.rank());
            for i in 0..50u64 {
                tracer.record(&Event::Enter { time: i * 10, region: comm.rank() as u32 });
                tracer.record(&Event::Exit { time: i * 10 + 5, region: comm.rank() as u32 });
            }
            let mut trace = backend.activate(fs, comm).unwrap();
            tracer.finalize(trace.as_mut()).unwrap();
            trace.finalize().unwrap();
        });
    }

    #[test]
    fn task_local_backend_one_file_per_task() {
        let fs = MemFs::new();
        run_measurement(&TaskLocalBackend::new("traces/run"), &fs, 4);
        assert_eq!(fs.list("traces/").unwrap().len(), 4);
        let f = fs.open("traces/run.000002").unwrap();
        let mut buf = vec![0u8; f.len().unwrap() as usize];
        f.read_exact_at(&mut buf, 0).unwrap();
        let evs = Event::decode_stream(&buf).unwrap();
        assert_eq!(evs.len(), 100);
        assert!(matches!(evs[0], Event::Enter { region: 2, .. }));
    }

    #[test]
    fn sion_backend_single_multifile() {
        let fs = MemFs::with_block_size(1024);
        run_measurement(&SionBackend::new("traces.sion", 64 * 1024, 2), &fs, 6);
        assert_eq!(fs.list("traces.sion").unwrap().len(), 2);
        let mf = sion::Multifile::open(&fs, "traces.sion").unwrap();
        for rank in 0..6 {
            let evs = Event::decode_stream(&mf.read_rank(rank).unwrap()).unwrap();
            assert_eq!(evs.len(), 100, "rank {rank}");
        }
    }

    #[test]
    fn compressed_sion_backend_roundtrip_and_shrinks() {
        let fs = MemFs::with_block_size(1024);
        run_measurement(&SionBackend::new("c.sion", 64 * 1024, 1).with_compression(), &fs, 3);
        let mf = sion::Multifile::open(&fs, "c.sion").unwrap();
        assert!(mf.compressed());
        let logical = mf.read_rank(0).unwrap();
        let evs = Event::decode_stream(&logical).unwrap();
        assert_eq!(evs.len(), 100);
        // Repetitive event streams compress well.
        let stored = mf.location(0).unwrap().stored_bytes;
        assert!(stored < logical.len() as u64 / 2, "stored {stored} logical {}", logical.len());
    }

    #[test]
    fn sion_backend_reports_coalesced_close_stats() {
        let fs = MemFs::with_block_size(1024);
        let backend = SionBackend::new("stats.sion", 64 * 1024, 1);
        World::run(2, |comm| {
            let mut trace = backend.activate(&fs, comm).unwrap();
            // Many small event flushes: the stream engine should coalesce
            // them into far fewer VFS writes.
            for _ in 0..64 {
                trace.write_events(&[comm.rank() as u8; 64]).unwrap();
            }
            let stats = trace.finalize().unwrap().expect("multifile reports stats");
            assert_eq!(stats.user_bytes, 64 * 64);
            assert_eq!(stats.write_io.user_calls, 64);
            assert!(
                stats.write_io.vfs_calls * 5 <= stats.write_io.user_calls,
                "expected ≥5× coalescing, got {:?}",
                stats.write_io
            );
        });
        // Task-local backend reports no stats.
        let local = TaskLocalBackend::new("tl/run");
        World::run(1, |comm| {
            let mut trace = local.activate(&fs, comm).unwrap();
            trace.write_events(b"x").unwrap();
            assert!(trace.finalize().unwrap().is_none());
        });
    }

    #[test]
    fn describe_strings() {
        assert!(TaskLocalBackend::new("p").describe().contains("task-local"));
        assert!(SionBackend::new("b", 1, 4).describe().contains("4 physical"));
        assert!(SionBackend::new("b", 1, 4).with_compression().describe().contains("compressed"));
    }
}

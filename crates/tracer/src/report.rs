//! Human-readable analysis reports: region-name registry, formatted
//! profiles, and message statistics — the presentation layer a Scalasca
//! user would see after the wait-state search.

use crate::analyze::AnalysisReport;
use crate::event::Event;
use std::collections::HashMap;

/// Maps numeric region ids to names (Scalasca's definition records).
#[derive(Debug, Default, Clone)]
pub struct RegionRegistry {
    names: HashMap<u32, String>,
}

impl RegionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or rename) a region.
    pub fn register(&mut self, region: u32, name: impl Into<String>) {
        self.names.insert(region, name.into());
    }

    /// The name of `region`, or a placeholder.
    pub fn name(&self, region: u32) -> String {
        self.names
            .get(&region)
            .cloned()
            .unwrap_or_else(|| format!("region#{region}"))
    }

    /// Registry pre-loaded with the synthetic workload's regions.
    pub fn for_synthetic() -> Self {
        let mut r = Self::new();
        r.register(crate::synth::REGION_MAIN, "main");
        r.register(crate::synth::REGION_ITERATION, "solver_iteration");
        for level in 0..16 {
            r.register(crate::synth::REGION_LEVEL0 + level, format!("mg_level_{level}"));
        }
        r
    }
}

/// Render an [`AnalysisReport`] as a profile table, regions sorted by
/// inclusive time (descending).
pub fn format_profile(report: &AnalysisReport, registry: &RegionRegistry) -> String {
    let mut rows: Vec<_> = report.regions.iter().collect();
    rows.sort_by_key(|(region, st)| (std::cmp::Reverse(st.inclusive_ns), **region));
    let total: u64 = rows.iter().map(|(_, st)| st.inclusive_ns).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "trace profile: {} ranks, {} events, {} messages matched\n",
        report.nranks, report.events, report.messages_matched
    ));
    out.push_str(&format!(
        "late senders: {} ({} ns waiting)\n",
        report.late_senders, report.late_sender_wait_ns
    ));
    out.push_str(&format!(
        "{:<20} {:>10} {:>14} {:>7}\n",
        "region", "visits", "inclusive(ns)", "share"
    ));
    for (region, st) in rows {
        let share = if total > 0 {
            100.0 * st.inclusive_ns as f64 / total as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<20} {:>10} {:>14} {:>6.1}%\n",
            registry.name(*region),
            st.visits,
            st.inclusive_ns,
            share
        ));
    }
    out
}

/// Point-to-point message statistics of one or more event streams.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct MessageStats {
    /// Sends observed.
    pub sends: u64,
    /// Receives observed.
    pub recvs: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Smallest message (bytes).
    pub min_bytes: u32,
    /// Largest message (bytes).
    pub max_bytes: u32,
    /// Histogram over power-of-two size buckets: `buckets[i]` counts sends
    /// with `2^i <= bytes < 2^(i+1)` (bucket 0 additionally holds empty
    /// messages).
    pub buckets: [u64; 32],
}

impl MessageStats {
    /// Accumulate one event stream.
    pub fn accumulate(&mut self, events: &[Event]) {
        for ev in events {
            match *ev {
                Event::Send { bytes, .. } => {
                    if self.sends == 0 {
                        self.min_bytes = bytes;
                        self.max_bytes = bytes;
                    } else {
                        self.min_bytes = self.min_bytes.min(bytes);
                        self.max_bytes = self.max_bytes.max(bytes);
                    }
                    self.sends += 1;
                    self.bytes_sent += bytes as u64;
                    let bucket = if bytes == 0 { 0 } else { 31 - bytes.leading_zeros() as usize };
                    self.buckets[bucket.min(31)] += 1;
                }
                Event::Recv { .. } => self.recvs += 1,
                _ => {}
            }
        }
    }

    /// Mean send size in bytes (0 when no sends).
    pub fn mean_bytes(&self) -> f64 {
        if self.sends == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.sends as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::RegionStats;

    #[test]
    fn registry_names_and_placeholders() {
        let mut r = RegionRegistry::new();
        r.register(3, "solve");
        assert_eq!(r.name(3), "solve");
        assert_eq!(r.name(9), "region#9");
        let synth = RegionRegistry::for_synthetic();
        assert_eq!(synth.name(crate::synth::REGION_MAIN), "main");
        assert_eq!(synth.name(crate::synth::REGION_LEVEL0 + 2), "mg_level_2");
    }

    #[test]
    fn profile_sorted_by_time_with_shares() {
        let mut report = AnalysisReport { nranks: 2, events: 8, ..Default::default() };
        report
            .regions
            .insert(1, RegionStats { visits: 2, inclusive_ns: 300, exclusive_ns: 300 });
        report
            .regions
            .insert(2, RegionStats { visits: 1, inclusive_ns: 700, exclusive_ns: 400 });
        let mut reg = RegionRegistry::new();
        reg.register(1, "small");
        reg.register(2, "big");
        let text = format_profile(&report, &reg);
        let big_at = text.find("big").unwrap();
        let small_at = text.find("small").unwrap();
        assert!(big_at < small_at, "regions must be sorted by inclusive time");
        assert!(text.contains("70.0%"));
        assert!(text.contains("30.0%"));
    }

    #[test]
    fn message_stats_histogram() {
        let mut stats = MessageStats::default();
        stats.accumulate(&[
            Event::Send { time: 0, peer: 1, tag: 0, bytes: 1 },
            Event::Send { time: 1, peer: 1, tag: 0, bytes: 1024 },
            Event::Send { time: 2, peer: 1, tag: 0, bytes: 1500 },
            Event::Recv { time: 3, peer: 1, tag: 0, bytes: 1024 },
            Event::Enter { time: 4, region: 0 },
        ]);
        assert_eq!(stats.sends, 3);
        assert_eq!(stats.recvs, 1);
        assert_eq!(stats.bytes_sent, 2525);
        assert_eq!(stats.min_bytes, 1);
        assert_eq!(stats.max_bytes, 1500);
        assert_eq!(stats.buckets[0], 1); // 1 byte
        assert_eq!(stats.buckets[10], 2); // 1024 and 1500
        assert!((stats.mean_bytes() - 2525.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats() {
        let stats = MessageStats::default();
        assert_eq!(stats.mean_bytes(), 0.0);
    }
}

//! The event model and its wire format.
//!
//! Scalasca-style traces are self-contained binary streams of timestamped
//! records. The format here is deliberately simple and fixed-width:
//!
//! ```text
//! kind: u8 | time: u64 | kind-specific fields (u32 each)
//! ```
//!
//! Records are self-delimiting (the kind byte determines the length), so a
//! stream can be decoded incrementally — which is what lets the analyzer
//! read a trace through a chunked multifile without any framing layer.

/// Why decoding a record failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended inside a record.
    Truncated,
    /// The kind byte is not a known event kind.
    UnknownKind(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "event stream truncated"),
            DecodeError::UnknownKind(k) => write!(f, "unknown event kind {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const KIND_ENTER: u8 = 1;
const KIND_EXIT: u8 = 2;
const KIND_SEND: u8 = 3;
const KIND_RECV: u8 = 4;

/// One trace event. Times are in nanoseconds since measurement start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Entering an instrumented region (function, loop, phase).
    Enter {
        /// Timestamp (ns).
        time: u64,
        /// Region identifier.
        region: u32,
    },
    /// Leaving an instrumented region.
    Exit {
        /// Timestamp (ns).
        time: u64,
        /// Region identifier.
        region: u32,
    },
    /// A message send.
    Send {
        /// Timestamp (ns).
        time: u64,
        /// Destination rank.
        peer: u32,
        /// Message tag.
        tag: u32,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// A message receive (completion time).
    Recv {
        /// Timestamp (ns).
        time: u64,
        /// Source rank.
        peer: u32,
        /// Message tag.
        tag: u32,
        /// Payload size in bytes.
        bytes: u32,
    },
}

impl Event {
    /// The event's timestamp.
    pub fn time(&self) -> u64 {
        match *self {
            Event::Enter { time, .. }
            | Event::Exit { time, .. }
            | Event::Send { time, .. }
            | Event::Recv { time, .. } => time,
        }
    }

    /// Append the wire encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Event::Enter { time, region } => {
                out.push(KIND_ENTER);
                out.extend_from_slice(&time.to_le_bytes());
                out.extend_from_slice(&region.to_le_bytes());
            }
            Event::Exit { time, region } => {
                out.push(KIND_EXIT);
                out.extend_from_slice(&time.to_le_bytes());
                out.extend_from_slice(&region.to_le_bytes());
            }
            Event::Send { time, peer, tag, bytes } => {
                out.push(KIND_SEND);
                out.extend_from_slice(&time.to_le_bytes());
                out.extend_from_slice(&peer.to_le_bytes());
                out.extend_from_slice(&tag.to_le_bytes());
                out.extend_from_slice(&bytes.to_le_bytes());
            }
            Event::Recv { time, peer, tag, bytes } => {
                out.push(KIND_RECV);
                out.extend_from_slice(&time.to_le_bytes());
                out.extend_from_slice(&peer.to_le_bytes());
                out.extend_from_slice(&tag.to_le_bytes());
                out.extend_from_slice(&bytes.to_le_bytes());
            }
        }
    }

    /// Encoded length of one record of this kind.
    pub fn encoded_len(&self) -> usize {
        match self {
            Event::Enter { .. } | Event::Exit { .. } => 1 + 8 + 4,
            Event::Send { .. } | Event::Recv { .. } => 1 + 8 + 12,
        }
    }

    /// Decode one record from the front of `bytes`; returns the event and
    /// the number of bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(Event, usize), DecodeError> {
        if bytes.is_empty() {
            return Err(DecodeError::Truncated);
        }
        let kind = bytes[0];
        let need = match kind {
            KIND_ENTER | KIND_EXIT => 13,
            KIND_SEND | KIND_RECV => 21,
            other => return Err(DecodeError::UnknownKind(other)),
        };
        if bytes.len() < need {
            return Err(DecodeError::Truncated);
        }
        let time = u64::from_le_bytes(bytes[1..9].try_into().unwrap());
        let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
        let ev = match kind {
            KIND_ENTER => Event::Enter { time, region: u32_at(9) },
            KIND_EXIT => Event::Exit { time, region: u32_at(9) },
            KIND_SEND => Event::Send { time, peer: u32_at(9), tag: u32_at(13), bytes: u32_at(17) },
            _ => Event::Recv { time, peer: u32_at(9), tag: u32_at(13), bytes: u32_at(17) },
        };
        Ok((ev, need))
    }

    /// Decode a complete stream of records.
    pub fn decode_stream(mut bytes: &[u8]) -> Result<Vec<Event>, DecodeError> {
        let mut out = Vec::new();
        while !bytes.is_empty() {
            let (ev, used) = Event::decode(bytes)?;
            out.push(ev);
            bytes = &bytes[used..];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Vec<Event> {
        vec![
            Event::Enter { time: 0, region: 7 },
            Event::Send { time: 5, peer: 3, tag: 9, bytes: 4096 },
            Event::Recv { time: 11, peer: 2, tag: 1, bytes: 128 },
            Event::Exit { time: 20, region: 7 },
        ]
    }

    #[test]
    fn stream_roundtrip() {
        let mut buf = Vec::new();
        for ev in sample() {
            ev.encode(&mut buf);
        }
        assert_eq!(Event::decode_stream(&buf).unwrap(), sample());
    }

    #[test]
    fn encoded_len_matches() {
        for ev in sample() {
            let mut buf = Vec::new();
            ev.encode(&mut buf);
            assert_eq!(buf.len(), ev.encoded_len());
        }
    }

    #[test]
    fn truncation_and_bad_kind_detected() {
        let mut buf = Vec::new();
        sample()[0].encode(&mut buf);
        assert_eq!(Event::decode(&buf[..5]).unwrap_err(), DecodeError::Truncated);
        let mut bad = buf.clone();
        bad[0] = 0xEE;
        assert_eq!(Event::decode(&bad).unwrap_err(), DecodeError::UnknownKind(0xEE));
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_events(
            evs in prop::collection::vec(
                prop_oneof![
                    (any::<u64>(), any::<u32>()).prop_map(|(t, r)| Event::Enter { time: t, region: r }),
                    (any::<u64>(), any::<u32>()).prop_map(|(t, r)| Event::Exit { time: t, region: r }),
                    (any::<u64>(), any::<u32>(), any::<u32>(), any::<u32>())
                        .prop_map(|(t, p, g, b)| Event::Send { time: t, peer: p, tag: g, bytes: b }),
                    (any::<u64>(), any::<u32>(), any::<u32>(), any::<u32>())
                        .prop_map(|(t, p, g, b)| Event::Recv { time: t, peer: p, tag: g, bytes: b }),
                ],
                0..100,
            )
        ) {
            let mut buf = Vec::new();
            for ev in &evs {
                ev.encode(&mut buf);
            }
            prop_assert_eq!(Event::decode_stream(&buf).unwrap(), evs);
        }
    }
}

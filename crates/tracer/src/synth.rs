//! Synthetic SMG2000-like event workload.
//!
//! The paper's Table 2 traces a fully instrumented run of the ASC SMG2000
//! benchmark (a semicoarsening multigrid solver) on 32 Ki cores. We cannot
//! run SMG2000 itself, so this module produces event streams with the same
//! *shape*: deeply nested solver regions, per-iteration halo exchanges
//! with a small set of neighbour ranks, and mildly rank-dependent timing
//! jitter (which is what makes wait states worth tracing in the first
//! place).

use crate::event::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of the synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthConfig {
    /// Number of solver iterations.
    pub iterations: u32,
    /// Multigrid levels (nesting depth per iteration).
    pub levels: u32,
    /// Neighbours each rank exchanges halos with per level.
    pub neighbours: u32,
    /// Mean halo message size in bytes.
    pub halo_bytes: u32,
    /// RNG seed (per-run; the rank is mixed in separately).
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { iterations: 10, levels: 4, neighbours: 4, halo_bytes: 4096, seed: 42 }
    }
}

/// Region ids used by the generator.
pub const REGION_MAIN: u32 = 0;
/// Region id of one solver iteration.
pub const REGION_ITERATION: u32 = 1;
/// Region ids of multigrid levels start here (level `l` = `REGION_LEVEL0 + l`).
pub const REGION_LEVEL0: u32 = 10;

/// Generate `rank`'s event stream for an SMG2000-like run of `nranks`
/// tasks. Deterministic in `(config, rank, nranks)`.
pub fn synthetic_events(config: &SynthConfig, rank: usize, nranks: usize) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(
        config.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut events = Vec::new();
    let mut t = 0u64;
    events.push(Event::Enter { time: t, region: REGION_MAIN });
    for _ in 0..config.iterations {
        t += rng.gen_range(100..200);
        events.push(Event::Enter { time: t, region: REGION_ITERATION });
        for level in 0..config.levels {
            t += rng.gen_range(50..150);
            events.push(Event::Enter { time: t, region: REGION_LEVEL0 + level });
            // Halo exchange: sends then receives, like a nearest-neighbour
            // stencil. Neighbour ranks are ±1, ±2, ... with wraparound.
            for n in 0..config.neighbours {
                let offset = (n / 2 + 1) as isize * if n % 2 == 0 { 1 } else { -1 };
                let peer =
                    (rank as isize + offset).rem_euclid(nranks as isize) as u32;
                let bytes = config.halo_bytes / 2 + rng.gen_range(0..config.halo_bytes);
                t += rng.gen_range(1..20);
                events.push(Event::Send { time: t, peer, tag: level, bytes });
            }
            for n in 0..config.neighbours {
                let offset = (n / 2 + 1) as isize * if n % 2 == 0 { -1 } else { 1 };
                let peer =
                    (rank as isize + offset).rem_euclid(nranks as isize) as u32;
                let bytes = config.halo_bytes / 2 + rng.gen_range(0..config.halo_bytes);
                // Rank-dependent jitter produces late senders.
                t += rng.gen_range(1..40) + (rank as u64 % 7) * 3;
                events.push(Event::Recv { time: t, peer, tag: level, bytes });
            }
            // Smoothing work on this level.
            t += rng.gen_range(200..400) >> level.min(4);
            events.push(Event::Exit { time: t, region: REGION_LEVEL0 + level });
        }
        t += rng.gen_range(20..60);
        events.push(Event::Exit { time: t, region: REGION_ITERATION });
    }
    t += 50;
    events.push(Event::Exit { time: t, region: REGION_MAIN });
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_rank() {
        let c = SynthConfig::default();
        assert_eq!(synthetic_events(&c, 3, 16), synthetic_events(&c, 3, 16));
        assert_ne!(synthetic_events(&c, 3, 16), synthetic_events(&c, 4, 16));
    }

    #[test]
    fn timestamps_monotone_and_regions_balanced() {
        let c = SynthConfig::default();
        for rank in [0usize, 7, 15] {
            let evs = synthetic_events(&c, rank, 16);
            let mut last = 0u64;
            let mut depth = 0i64;
            for ev in &evs {
                assert!(ev.time() >= last, "timestamps must be monotone");
                last = ev.time();
                match ev {
                    Event::Enter { .. } => depth += 1,
                    Event::Exit { .. } => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0, "exit without enter");
            }
            assert_eq!(depth, 0, "unbalanced enters/exits");
        }
    }

    #[test]
    fn event_count_scales_with_config() {
        let small = SynthConfig { iterations: 2, ..SynthConfig::default() };
        let big = SynthConfig { iterations: 20, ..SynthConfig::default() };
        let n_small = synthetic_events(&small, 0, 8).len();
        let n_big = synthetic_events(&big, 0, 8).len();
        assert!(n_big > 8 * n_small);
    }

    #[test]
    fn peers_in_range() {
        let c = SynthConfig { neighbours: 6, ..SynthConfig::default() };
        for ev in synthetic_events(&c, 0, 4) {
            if let Event::Send { peer, .. } | Event::Recv { peer, .. } = ev {
                assert!(peer < 4);
            }
        }
    }
}

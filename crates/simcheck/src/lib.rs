//! `simcheck` — deterministic model checking and runtime sanitizers for
//! the `simmpi`/`sion` stack.
//!
//! Parallel SIONlib code has three classic failure classes, all mapped to
//! invariants of the SC'09 paper:
//!
//! * **protocol bugs** — mismatched collectives (one rank calls `bcast`
//!   while another calls `barrier`, or roots disagree), user point-to-point
//!   sends into the reserved collective tag namespace, and messages still
//!   sitting in a mailbox at teardown (§3.1 requires the metadata exchange
//!   to be deadlock- and mismatch-free);
//! * **deadlocks** — every rank blocked in a receive that nothing will
//!   satisfy;
//! * **layout bugs** — two tasks writing into the same filesystem block
//!   during a parallel SION write, violating the §3.2 alignment invariant
//!   that makes lock-free parallel writes safe.
//!
//! This crate provides two ways to catch them:
//!
//! 1. **[`CheckedWorld`]** — a schedule-exploring harness. It runs a
//!    `simmpi` program under a seeded deterministic scheduler
//!    ([`ScheduleCfg`]: seed + preemption bound) that serializes every
//!    mailbox operation and decides, at quiescence, which rank runs next.
//!    Failures come back as a [`CheckFailure`] carrying the findings, the
//!    whole-world deadlock verdict (with per-rank pending operations and
//!    backtraces), and the full decision trace; re-running the same
//!    [`ScheduleCfg`] replays the failure with a byte-identical
//!    [`CheckFailure::stable_report`]. Sweep the space with
//!    [`CheckedWorld::explore`] over [`schedules`].
//!
//! 2. **`SIMCHECK=1`** — zero-code-change passive mode. With the
//!    environment variable set, `World::run` and `FlatWorld::run` install a
//!    [`Sanitizer`] that performs the same collective/tag/leak checks and
//!    converts silent hangs into watchdog-reported deadlocks
//!    (`SIMCHECK_TIMEOUT_MS`, default 20s). Production runs without the
//!    variable pay nothing.
//!
//! The filesystem-level check is independent of both: wrap any
//! [`vfs::Vfs`] in a [`BlockGuardFs`] and every FS block that two
//! different labeled tasks write is reported as a [`BlockViolation`]
//! ([`BlockGuardFs::assert_exclusive`] panics with the sorted list).
//! `sion::paropen_write` labels each rank's writes automatically.
//!
//! All diagnostics are deterministic — stable rank ordering, no hash-map
//! iteration — so failing reports can be golden-file tested.

pub mod dpor;
pub mod hb;
mod report;
mod sched;

pub use dpor::{Dpor, DporHarness, DporOutcome, HookChain, SinkChain};
pub use hb::{AckViolation, HbEngine, HbRace, RaceSite, VClock};
pub use report::{CheckFailure, DeadlockInfo, PendingOp, ScheduleCfg, TraceEv};
pub use sched::{schedules, seed_budget, CheckedTaskWorld, CheckedWorld};

pub use simmpi::{
    current_task, decode_coll_tag, describe_tag, is_agg_tag, is_reserved_tag,
    simcheck_env_enabled, Aborted, CheckHook, CollKind, CommCtx, Finding, FindingKind, LeakedMsg,
    Sanitizer, AGG_ACK_TAG_PREFIX, AGG_SHIP_TAG_PREFIX, COLL_TAG_MASK, COLL_TAG_PREFIX,
};
pub use vfs::{AccessKind, AccessSink, BlockGuardFs, BlockViolation, FileAccess, OrderGuardFs};

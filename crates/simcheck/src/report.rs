//! Deterministic failure reports for checked runs.
//!
//! Everything rendered here must be byte-identical between a failing run
//! and its replay (same [`ScheduleCfg`]): reports are built from sorted or
//! insertion-ordered state only — no map iteration order, no addresses, no
//! timestamps. The one nondeterministic ingredient, per-rank backtraces of
//! a deadlock's pending receives, is kept out of [`CheckFailure::
//! stable_report`] and only appears in the human-facing `Display`.

use simmpi::Finding;
use std::collections::BTreeMap;
use std::fmt;

/// One point of the schedule space: the interleaving is a pure function of
/// this configuration and the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleCfg {
    /// Seeded random exploration (CHESS-style iterative context bounding).
    Seeded {
        /// Seed of the scheduler's pseudo-random choice stream.
        seed: u64,
        /// Maximum number of *preemptions* — decisions that switch away
        /// from a task that could have kept running. Once exhausted the
        /// scheduler always continues the last task while it remains
        /// runnable.
        preemption_bound: usize,
    },
    /// Systematic dynamic-partial-order-reduced exploration of the serial
    /// task scheduler: every schedule distinct up to independent-step
    /// commutation is run exactly once (see [`crate::dpor`]). A failure
    /// found this way replays from [`CheckFailure::schedule`], not from a
    /// seed.
    Dpor,
}

impl fmt::Display for ScheduleCfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScheduleCfg::Seeded { seed, preemption_bound } => {
                write!(f, "seed={seed:#018x}, preemption-bound={preemption_bound}")
            }
            ScheduleCfg::Dpor => write!(f, "dpor"),
        }
    }
}

/// One scheduling decision of a checked run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEv {
    /// Decision ordinal (0-based).
    pub step: usize,
    /// World task chosen to run.
    pub task: usize,
    /// The operation the task was released into.
    pub op: String,
}

/// One rank's pending operation at deadlock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingOp {
    /// World task id.
    pub task: usize,
    /// Structural name of the communicator the operation is on.
    pub comm: String,
    /// Description of the blocked operation (decoded tag included).
    pub op: String,
}

/// A whole-world deadlock verdict: every live rank blocked in a receive
/// with no deliverable message.
#[derive(Debug, Clone, Default)]
pub struct DeadlockInfo {
    /// Blocked ranks in ascending task order.
    pub pending: Vec<PendingOp>,
    /// Backtrace of each blocked rank's pending receive, captured lazily by
    /// the rank itself as it was released to unwind. Not part of the stable
    /// report (addresses differ between runs).
    pub backtraces: BTreeMap<usize, String>,
}

/// Everything known about a failed checked run: the findings, the deadlock
/// verdict if there was one, and the full decision trace that reproduces it.
#[derive(Debug)]
pub struct CheckFailure {
    /// The schedule point that produced the failure; re-running the same
    /// program under this configuration replays it exactly.
    pub cfg: ScheduleCfg,
    /// All sanitizer findings, in (deterministic) detection order.
    pub findings: Vec<Finding>,
    /// Present when the failure was a whole-world deadlock.
    pub deadlock: Option<DeadlockInfo>,
    /// Every scheduling decision of the run, in order.
    pub trace: Vec<TraceEv>,
    /// For [`ScheduleCfg::Dpor`] failures: the full decision sequence
    /// (chosen task per step) of the failing run. Forcing it as the
    /// decision prefix of a driven serial run replays the failure exactly.
    /// Empty for seeded failures (the seed is the replay handle there).
    pub schedule: Vec<usize>,
}

impl CheckFailure {
    /// Deterministic rendering: byte-identical between a failing seed and
    /// its replay, suitable for golden-file comparison. Excludes
    /// backtraces.
    pub fn stable_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("simcheck failure ({})\n", self.cfg));
        if !self.schedule.is_empty() {
            out.push_str(&format!("replay schedule: {:?}\n", self.schedule));
        }
        out.push_str(&format!("findings ({}):\n", self.findings.len()));
        for f in &self.findings {
            out.push_str(&format!("  {f}\n"));
        }
        if let Some(d) = &self.deadlock {
            out.push_str(&format!(
                "deadlock: {} rank(s) blocked with no deliverable message:\n",
                d.pending.len()
            ));
            for p in &d.pending {
                out.push_str(&format!("  rank {}: {} on \"{}\"\n", p.task, p.op, p.comm));
            }
        }
        out.push_str(&format!("trace ({} decisions):\n", self.trace.len()));
        for ev in &self.trace {
            out.push_str(&format!("  #{} task {}: {}\n", ev.step, ev.task, ev.op));
        }
        out
    }
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.stable_report())?;
        if let Some(d) = &self.deadlock {
            for (task, bt) in &d.backtraces {
                writeln!(f, "backtrace of rank {task}'s pending receive:\n{bt}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for CheckFailure {}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::FindingKind;

    #[test]
    fn stable_report_is_reproducible_text() {
        let fail = CheckFailure {
            cfg: ScheduleCfg::Seeded { seed: 7, preemption_bound: 2 },
            findings: vec![Finding {
                kind: FindingKind::Deadlock,
                message: "whole-world deadlock: 2 task(s) blocked".into(),
            }],
            deadlock: Some(DeadlockInfo {
                pending: vec![PendingOp {
                    task: 0,
                    comm: "world".into(),
                    op: "recv(src=1, tag=0x2)".into(),
                }],
                backtraces: BTreeMap::from([(0, "0: somewhere".into())]),
            }),
            trace: vec![TraceEv { step: 0, task: 1, op: "send(to=0, tag=0x1, len=3)".into() }],
            schedule: Vec::new(),
        };
        let a = fail.stable_report();
        let b = fail.stable_report();
        assert_eq!(a, b);
        assert!(a.contains("seed=0x0000000000000007"), "{a}");
        assert!(!a.contains("replay schedule"), "seeded failures have no forced schedule: {a}");
        assert!(a.contains("#0 task 1"), "{a}");
        assert!(!a.contains("somewhere"), "stable report must exclude backtraces: {a}");
        let full = fail.to_string();
        assert!(full.contains("somewhere"), "{full}");
    }
}

//! Vector-clock happens-before engine.
//!
//! [`HbEngine`] is a **passive** [`CheckHook`] + [`AccessSink`] pair: it
//! listens to every `simmpi` event (sends, completed receives, collective
//! entry/exit brackets, task finishes) to maintain one vector clock per
//! world task, and to every byte-extent access an [`OrderGuardFs`]
//! (`vfs::OrderGuardFs`) reports, to decide whether conflicting accesses
//! are *ordered* by the protocol. Two conflicting extents with no
//! happens-before path between them are a data race — exactly the
//! ordering form of the paper's §3.2 invariant that the aggregated I/O
//! mode relies on (several logical writers per file, serialized by the
//! ship/ack message edges rather than by block ownership).
//!
//! # The happens-before relation
//!
//! * **program order** — every observed event of a task ticks the task's
//!   own clock component, so a task's later events dominate its earlier
//!   ones;
//! * **message edges** — [`on_send`](CheckHook::on_send) pushes the
//!   sender's clock snapshot onto a per-`(comm, from, to, tag)` FIFO;
//!   [`on_recv_done`](CheckHook::on_recv_done) pops and joins it. Mailbox
//!   matching is FIFO per `(source, tag)`, so the queues pair each receive
//!   with its true send. This covers user messages *and* the runtimes'
//!   internal collective tree frames;
//! * **collective brackets** — the flat runtimes' slot-based collectives
//!   exchange no mailbox messages, so the engine also joins, at each
//!   rank's collective *exit* ([`on_collective_done`]
//!   (CheckHook::on_collective_done)), the accumulated entry clocks of
//!   that `(comm, seq)` collective: every entry happens-before every
//!   exit. For rendezvous collectives this is exact; for tree collectives
//!   it is a sound superset of the true dependence (the real tree edges
//!   are already covered by the message rule).
//!
//! # Shadow writes and ack durability
//!
//! Aggregated-mode members write their chunk arithmetic through a
//! [`Vfs::create_shadow`](vfs::Vfs) handle; under `OrderGuardFs` those
//! surface as [`AccessKind::ShadowWrite`] extents against the real path —
//! *logical* writes whose physical persistence is the elected aggregator's
//! obligation. The engine turns the ship/ack framing contract
//! ([`AGG_SHIP_TAG_PREFIX`]/[`AGG_ACK_TAG_PREFIX`]) into a durability
//! check: a member's pending shadow extents are bound to the shipment
//! sequence number the moment its `0xA6` frame is sent, and when the
//! aggregator sends the matching `0xA7` success ack, every bound extent
//! must already be covered by physical writes at that path. An aggregator
//! acking a shipment *before* its bytes reach the VFS is reported with the
//! member's shadow site and the uncovered byte range.
//!
//! Shadow-vs-physical overlaps are exempt from the race check (they are
//! ordered by the ship edge and checked by the obligation rule instead);
//! shadow-vs-shadow overlaps between two members are a race — two members
//! believe they own the same logical bytes.

use simmpi::hook::{CheckHook, CollKind, CommCtx};
use simmpi::{AGG_ACK_TAG_PREFIX, AGG_SHIP_TAG_PREFIX, COLL_TAG_MASK};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Mutex;
use vfs::{AccessKind, AccessSink, FileAccess};

/// A vector clock over world task ids. Sparse: absent components are zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(BTreeMap<u64, u64>);

impl VClock {
    /// This task's own component.
    pub fn get(&self, task: u64) -> u64 {
        self.0.get(&task).copied().unwrap_or(0)
    }

    fn tick(&mut self, task: u64) {
        *self.0.entry(task).or_insert(0) += 1;
    }

    fn join(&mut self, other: &VClock) {
        for (&t, &v) in &other.0 {
            let e = self.0.entry(t).or_insert(0);
            if *e < v {
                *e = v;
            }
        }
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (t, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}:{v}")?;
        }
        write!(f, "}}")
    }
}

/// One side of a reported race: the access and the issuing task's clock at
/// the moment it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceSite {
    /// The recorded access.
    pub access: FileAccess,
    /// The issuing task's vector clock when the access was recorded.
    pub clock: VClock,
}

impl fmt::Display for RaceSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.access, self.clock)
    }
}

/// Two conflicting, overlapping byte-extent accesses with no
/// happens-before path between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HbRace {
    /// The earlier-recorded access.
    pub a: RaceSite,
    /// The later-recorded access.
    pub b: RaceSite,
}

impl fmt::Display for HbRace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unordered {}/{} overlap on \"{}\":\n  a: {}\n  b: {}",
            self.a.access.kind.label(),
            self.b.access.kind.label(),
            self.a.access.path,
            self.a,
            self.b
        )
    }
}

/// A `0xA7` success ack sent while some of the acked shipment's shadow
/// extents had not physically reached the VFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AckViolation {
    /// The member's shadow extent the ack vouched for.
    pub obligation: FileAccess,
    /// Shipment sequence number the member bound the extent to.
    pub seq: u64,
    /// Acking task (the aggregator), if the event carried one.
    pub acker: Option<u64>,
    /// First unwritten byte range inside the obligated extent.
    pub missing: (u64, u64),
}

impl fmt::Display for AckViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let acker = match self.acker {
            Some(t) => format!("task {t}"),
            None => "<unlabeled>".to_string(),
        };
        write!(
            f,
            "ack for shipment seq {} sent by {} before bytes [{}, {}) of \"{}\" reached the \
             VFS (obligation: {})",
            self.seq, acker, self.missing.0, self.missing.1, self.obligation.path, self.obligation
        )
    }
}

/// Cap on retained races/violations — dense bugs repeat the same site;
/// the totals keep counting past the cap.
const KEEP: usize = 32;

#[derive(Default)]
struct HbState {
    /// Per world task vector clocks.
    clocks: BTreeMap<u64, VClock>,
    /// In-flight send snapshots, FIFO per `(comm, from, to, tag)`.
    chan: BTreeMap<(u64, usize, usize, u64), VecDeque<VClock>>,
    /// Accumulated entry clocks per `(comm, seq)` collective.
    coll: BTreeMap<(u64, u64), VClock>,
    /// Recorded accesses per path, in observation order.
    accesses: BTreeMap<String, Vec<RaceSite>>,
    /// Physically written byte intervals per path (start → end, merged).
    written: BTreeMap<String, BTreeMap<u64, u64>>,
    /// Shadow extents a task has written but not yet bound to a shipment.
    pending_shadow: BTreeMap<u64, Vec<FileAccess>>,
    /// Shipment obligations: `(comm, member local rank, seq)` → extents.
    obligations: BTreeMap<(u64, usize, u64), Vec<FileAccess>>,
    races: Vec<HbRace>,
    races_total: usize,
    acks: Vec<AckViolation>,
    acks_total: usize,
}

impl HbState {
    fn clock(&mut self, task: u64) -> &mut VClock {
        self.clocks.entry(task).or_default()
    }

    /// Record `[start, end)` as physically written at `path`, merging with
    /// adjacent/overlapping intervals.
    fn mark_written(&mut self, path: &str, start: u64, end: u64) {
        let iv = self.written.entry(path.to_string()).or_default();
        let mut s = start;
        let mut e = end;
        // Absorb every interval that overlaps or abuts [s, e).
        let keys: Vec<u64> = iv.range(..=e).map(|(&k, _)| k).collect();
        for k in keys {
            let ke = iv[&k];
            if ke >= s {
                s = s.min(k);
                e = e.max(ke);
                iv.remove(&k);
            }
        }
        iv.insert(s, e);
    }

    /// First sub-range of `[start, end)` at `path` not covered by physical
    /// writes, or `None` if fully covered.
    fn first_uncovered(&self, path: &str, start: u64, end: u64) -> Option<(u64, u64)> {
        let Some(iv) = self.written.get(path) else { return Some((start, end)) };
        let mut at = start;
        while at < end {
            match iv.range(..=at).next_back() {
                Some((_, &ke)) if ke > at => at = ke,
                _ => {
                    let gap_end =
                        iv.range(at..end).next().map(|(&k, _)| k).unwrap_or(end);
                    return Some((at, gap_end));
                }
            }
        }
        None
    }
}

/// Whether two access kinds conflict when their extents overlap and the
/// tasks differ. Shadow-vs-physical pairs are exempt: the ship edge orders
/// them and the ack-durability rule checks them instead.
fn conflicts(a: AccessKind, b: AccessKind) -> bool {
    use AccessKind::*;
    matches!(
        (a, b),
        (Write, Write) | (Read, Write) | (Write, Read) | (ShadowWrite, ShadowWrite)
    )
}

/// The happens-before engine; see the module docs. Install the same
/// instance as the run's [`CheckHook`] (or chain it from one) and as the
/// [`OrderGuardFs`](vfs::OrderGuardFs) sink.
#[derive(Default)]
pub struct HbEngine {
    inner: Mutex<HbState>,
}

impl HbEngine {
    pub fn new() -> HbEngine {
        HbEngine::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HbState> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Races found so far, sorted for stable rendering.
    pub fn races(&self) -> Vec<HbRace> {
        let g = self.lock();
        let mut r = g.races.clone();
        r.sort_by(|x, y| {
            (&x.a.access, &x.b.access).cmp(&(&y.a.access, &y.b.access))
        });
        r
    }

    /// Ack-durability violations found so far, sorted for stable rendering.
    pub fn ack_violations(&self) -> Vec<AckViolation> {
        let g = self.lock();
        let mut v = g.acks.clone();
        v.sort_by(|x, y| (&x.obligation, x.seq).cmp(&(&y.obligation, y.seq)));
        v
    }

    /// Whether any race or ack-durability violation was recorded.
    pub fn is_clean(&self) -> bool {
        let g = self.lock();
        g.races_total == 0 && g.acks_total == 0
    }

    /// Deterministic rendering of every finding. `ctx` names the run (the
    /// `ScheduleCfg` that replays it); byte-identical across replays of
    /// the same schedule.
    pub fn stable_report(&self, ctx: &str) -> String {
        let races = self.races();
        let acks = self.ack_violations();
        let g = self.lock();
        let mut out = String::new();
        out.push_str(&format!(
            "hb report ({ctx}): {} race(s), {} ack-durability violation(s)\n",
            g.races_total, g.acks_total
        ));
        drop(g);
        for (i, r) in races.iter().enumerate() {
            out.push_str(&format!("race {}: {r}\n", i + 1));
        }
        for (i, v) in acks.iter().enumerate() {
            out.push_str(&format!("violation {}: {v}\n", i + 1));
        }
        out
    }

    /// Panic with the [`stable_report`](Self::stable_report) unless the
    /// run was race- and violation-free.
    pub fn assert_race_free(&self, ctx: &str) {
        if !self.is_clean() {
            panic!("simcheck hb: {}", self.stable_report(ctx));
        }
    }

    fn acting_task() -> Option<u64> {
        simmpi::current_task().map(|t| t as u64)
    }
}

impl CheckHook for HbEngine {
    fn on_send(&self, comm: &CommCtx, from: usize, to: usize, tag: u64, payload: &[u8]) {
        let Some(task) = Self::acting_task() else { return };
        let mut g = self.lock();
        g.clock(task).tick(task);
        let snap = g.clock(task).clone();
        g.chan.entry((comm.id, from, to, tag)).or_default().push_back(snap);
        let ns = tag & COLL_TAG_MASK;
        if ns == AGG_SHIP_TAG_PREFIX && payload.len() >= 8 {
            // Bind the member's pending shadow extents to this shipment.
            let seq = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            let pending = g.pending_shadow.remove(&task).unwrap_or_default();
            g.obligations.entry((comm.id, from, seq)).or_default().extend(pending);
        } else if ns == AGG_ACK_TAG_PREFIX && payload.len() >= 16 {
            let seq = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
            let status = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
            // `to` is the member being acked; a failed channel (nonzero
            // status) promises no durability.
            let obligations = g.obligations.remove(&(comm.id, to, seq)).unwrap_or_default();
            if status == 0 {
                for ob in obligations {
                    let missing =
                        g.first_uncovered(&ob.path, ob.offset, ob.offset + ob.len);
                    if let Some(missing) = missing {
                        g.acks_total += 1;
                        if g.acks.len() < KEEP {
                            let v = AckViolation {
                                obligation: ob,
                                seq,
                                acker: Some(task),
                                missing,
                            };
                            g.acks.push(v);
                        }
                    }
                }
            }
        }
    }

    fn on_recv_done(&self, comm: &CommCtx, rank: usize, src: usize, tag: u64, _payload: &[u8]) {
        let Some(task) = Self::acting_task() else { return };
        let mut g = self.lock();
        let snap = g
            .chan
            .get_mut(&(comm.id, src, rank, tag))
            .and_then(|q| q.pop_front());
        let clock = g.clock(task);
        if let Some(snap) = snap {
            clock.join(&snap);
        }
        clock.tick(task);
    }

    fn on_collective(
        &self,
        comm: &CommCtx,
        _rank: usize,
        seq: u64,
        _kind: CollKind,
        _root: Option<usize>,
    ) {
        let Some(task) = Self::acting_task() else { return };
        let mut g = self.lock();
        g.clock(task).tick(task);
        let snap = g.clock(task).clone();
        g.coll.entry((comm.id, seq)).or_default().join(&snap);
    }

    fn on_collective_done(&self, comm: &CommCtx, _rank: usize, seq: u64) {
        let Some(task) = Self::acting_task() else { return };
        let mut g = self.lock();
        let acc = g.coll.get(&(comm.id, seq)).cloned();
        let clock = g.clock(task);
        if let Some(acc) = acc {
            clock.join(&acc);
        }
        clock.tick(task);
    }

    fn on_task_finish(&self, task: usize, _panicked: bool) {
        let mut g = self.lock();
        g.clock(task as u64).tick(task as u64);
    }
}

impl AccessSink for HbEngine {
    fn on_access(&self, access: &FileAccess) {
        let task = access.task;
        let mut g = self.lock();
        g.clock(task).tick(task);
        let site = RaceSite { access: access.clone(), clock: g.clock(task).clone() };
        match access.kind {
            AccessKind::Write => {
                g.mark_written(&access.path, access.offset, access.offset + access.len);
            }
            AccessKind::ShadowWrite => {
                g.pending_shadow.entry(task).or_default().push(access.clone());
            }
            AccessKind::Read => {}
        }
        // Race check against every prior conflicting access of the path.
        // Prior sites were recorded (under this lock) before `site`, so the
        // only possible ordering is prior-happens-before-site; absent that
        // edge the pair is concurrent.
        let prior = g.accesses.entry(access.path.clone()).or_default();
        let mut found: Vec<HbRace> = Vec::new();
        for p in prior.iter() {
            if p.access.task != task
                && conflicts(p.access.kind, access.kind)
                && p.access.overlaps(&site.access)
                && p.clock.get(p.access.task) > site.clock.get(p.access.task)
            {
                found.push(HbRace { a: p.clone(), b: site.clone() });
            }
        }
        prior.push(site);
        g.races_total += found.len();
        let room = KEEP.saturating_sub(g.races.len());
        g.races.extend(found.into_iter().take(room));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simmpi::CoComm;
    use std::sync::Arc;

    fn ctx(name: &str, size: usize) -> CommCtx {
        CommCtx { id: 0x1000 + size as u64, name: name.into(), size }
    }

    fn access(task: u64, kind: AccessKind, offset: u64, len: u64) -> FileAccess {
        FileAccess { path: "f".into(), kind, task, offset, len }
    }

    /// Drive hook events as if `task` were the acting rank. The engine
    /// reads `simmpi::current_task()`, which is unset on plain test
    /// threads — so these tests run inside a 1-task world per acting rank.
    fn as_task<R: Send>(task: usize, f: impl Fn() -> R + Send + Sync) -> R {
        let run = simmpi::TaskWorld::run_checked(
            simmpi::SchedPolicy::WorkSteal { workers: 1 },
            task + 1,
            Arc::new(simmpi::Sanitizer::new()),
            |c| {
                let f = &f;
                async move { (c.rank() == task).then(f) }
            },
        );
        run.results
            .into_iter()
            .last()
            .expect("world has ranks")
            .expect("no panic")
            .expect("acting rank produced the value")
    }

    #[test]
    fn unordered_overlapping_writes_race() {
        let eng = Arc::new(HbEngine::new());
        eng.on_access(&access(0, AccessKind::Write, 0, 10));
        eng.on_access(&access(1, AccessKind::Write, 5, 10));
        let races = eng.races();
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!(races[0].a.access.task, 0);
        assert_eq!(races[0].b.access.task, 1);
        assert!(!eng.is_clean());
        let report = eng.stable_report("test");
        assert!(report.contains("unordered write/write overlap"), "{report}");
        assert_eq!(report, eng.stable_report("test"));
    }

    #[test]
    fn disjoint_or_same_task_accesses_do_not_race() {
        let eng = HbEngine::new();
        eng.on_access(&access(0, AccessKind::Write, 0, 10));
        eng.on_access(&access(1, AccessKind::Write, 10, 10)); // adjacent, disjoint
        eng.on_access(&access(0, AccessKind::Write, 5, 5)); // same task
        eng.on_access(&access(2, AccessKind::Read, 40, 8));
        eng.on_access(&access(3, AccessKind::Read, 40, 8)); // read/read
        eng.assert_race_free("test");
    }

    #[test]
    fn a_message_edge_orders_the_writes() {
        let eng = Arc::new(HbEngine::new());
        let c = ctx("world", 2);
        eng.on_access(&access(0, AccessKind::Write, 0, 10));
        as_task(0, || eng.on_send(&c, 0, 1, 7, b"go"));
        as_task(1, || eng.on_recv_done(&c, 1, 0, 7, b"go"));
        eng.on_access(&access(1, AccessKind::Write, 5, 10));
        eng.assert_race_free("test");
        // ... but an access the sender makes *after* the send is not
        // ordered before the receiver's.
        eng.on_access(&access(0, AccessKind::Write, 100, 8));
        eng.on_access(&access(1, AccessKind::Write, 100, 8));
        assert_eq!(eng.races().len(), 1);
    }

    #[test]
    fn collective_brackets_order_across_the_barrier() {
        let eng = Arc::new(HbEngine::new());
        let c = ctx("world", 2);
        eng.on_access(&access(0, AccessKind::Write, 0, 10));
        as_task(0, || eng.on_collective(&c, 0, 1, CollKind::Barrier, None));
        as_task(1, || eng.on_collective(&c, 1, 1, CollKind::Barrier, None));
        as_task(0, || eng.on_collective_done(&c, 0, 1));
        as_task(1, || eng.on_collective_done(&c, 1, 1));
        eng.on_access(&access(1, AccessKind::Write, 0, 10));
        eng.assert_race_free("test");
    }

    #[test]
    fn shadow_vs_physical_is_exempt_but_shadow_vs_shadow_races() {
        let eng = HbEngine::new();
        eng.on_access(&access(1, AccessKind::ShadowWrite, 0, 64));
        eng.on_access(&access(0, AccessKind::Write, 0, 64)); // aggregator replay
        eng.assert_race_free("test");
        eng.on_access(&access(2, AccessKind::ShadowWrite, 32, 64)); // overlaps member 1
        assert_eq!(eng.races().len(), 1);
    }

    #[test]
    fn ack_before_physical_write_is_a_violation() {
        let eng = Arc::new(HbEngine::new());
        let c = ctx("lcom", 2);
        let mut ship = 5u64.to_le_bytes().to_vec(); // seq 5
        ship.extend_from_slice(b"ops");
        let ok_ack: Vec<u8> =
            [5u64.to_le_bytes(), 0u64.to_le_bytes()].concat();
        // Member (local rank 1) shadow-writes, ships; aggregator (local 0)
        // acks WITHOUT writing.
        eng.on_access(&access(1, AccessKind::ShadowWrite, 0, 64));
        as_task(1, || eng.on_send(&c, 1, 0, AGG_SHIP_TAG_PREFIX | 1, &ship));
        as_task(0, || eng.on_send(&c, 0, 1, AGG_ACK_TAG_PREFIX | 1, &ok_ack));
        let v = eng.ack_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].seq, 5);
        assert_eq!(v[0].missing, (0, 64));
        assert!(eng.stable_report("s").contains("before bytes [0, 64)"));
    }

    #[test]
    fn ack_after_covering_writes_is_clean_even_with_gappy_merging() {
        let eng = Arc::new(HbEngine::new());
        let c = ctx("lcom", 2);
        let ship = 0u64.to_le_bytes().to_vec();
        let ok_ack: Vec<u8> = [0u64.to_le_bytes(), 0u64.to_le_bytes()].concat();
        eng.on_access(&access(1, AccessKind::ShadowWrite, 10, 20));
        as_task(1, || eng.on_send(&c, 1, 0, AGG_SHIP_TAG_PREFIX, &ship));
        // Aggregator covers [10, 30) in two out-of-order pieces.
        eng.on_access(&access(0, AccessKind::Write, 20, 10));
        eng.on_access(&access(0, AccessKind::Write, 5, 15));
        as_task(0, || eng.on_send(&c, 0, 1, AGG_ACK_TAG_PREFIX, &ok_ack));
        assert!(eng.is_clean(), "{}", eng.stable_report("s"));
    }

    #[test]
    fn failed_channel_acks_promise_nothing() {
        let eng = Arc::new(HbEngine::new());
        let c = ctx("lcom", 2);
        let ship = 1u64.to_le_bytes().to_vec();
        let bad_ack: Vec<u8> = [1u64.to_le_bytes(), 9u64.to_le_bytes()].concat();
        eng.on_access(&access(1, AccessKind::ShadowWrite, 0, 8));
        as_task(1, || eng.on_send(&c, 1, 0, AGG_SHIP_TAG_PREFIX, &ship));
        as_task(0, || eng.on_send(&c, 0, 1, AGG_ACK_TAG_PREFIX, &bad_ack));
        assert!(eng.is_clean());
    }

    #[test]
    fn interval_merge_covers_exactly() {
        let mut st = HbState::default();
        st.mark_written("p", 0, 10);
        st.mark_written("p", 20, 30);
        assert_eq!(st.first_uncovered("p", 0, 30), Some((10, 20)));
        st.mark_written("p", 10, 20); // bridges the gap
        assert_eq!(st.first_uncovered("p", 0, 30), None);
        assert_eq!(st.first_uncovered("p", 29, 31), Some((30, 31)));
        assert_eq!(st.first_uncovered("q", 0, 1), Some((0, 1)));
    }
}

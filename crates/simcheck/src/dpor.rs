//! Dynamic partial-order reduction over the serial task scheduler.
//!
//! [`ScheduleCfg::Seeded`](crate::ScheduleCfg) samples the schedule space;
//! this module *enumerates* it. A [`Dpor`] explorer repeatedly runs the
//! program under a driven serial schedule ([`simmpi::ScheduleDriver`]),
//! recording for every decision the candidate set and the *footprint* of
//! the step that followed it — channel operations, collective rounds, and
//! byte-extent file accesses (via [`AccessSink`]). Two steps are
//! *dependent* when their footprints touch a shared resource (same channel
//! key — except two poll misses, which commute — or overlapping extents
//! with at least one write); independent steps commute, so schedules
//! differing only in their order are equivalent and only one
//! representative needs running.
//!
//! The exploration is the classic race-reversal scheme with a
//! happens-before filter: after each run, build the trace's causal order
//! ([`TraceHb`]: program order, send→receive edges, collective brackets),
//! then for every step `j` find the latest earlier step `i` of a
//! *different* task whose footprint is dependent with `j`'s and whose
//! order is not forced through a third step. Reversing that pair may
//! expose new behaviour, so the prefix `decisions[..i]` extended with
//! `j`'s task (or, when `j`'s task was not runnable at `i`, with every
//! other candidate — the conservative fallback) is queued as a backtrack
//! point. A prefix-memoization set plays the role of sleep sets: a branch
//! already dispatched at a node is never dispatched twice, and the hits
//! are reported as [`DporOutcome::pruned`]. Beyond the forced prefix the
//! driver always continues the lowest runnable task id, so every run is a
//! pure function of its prefix and exploration is deterministic —
//! explored-schedule counts and decision traces can be pinned in golden
//! files.
//!
//! Failures surface as ordinary [`CheckFailure`]s with
//! [`CheckFailure::schedule`] carrying the failing run's full decision
//! sequence; [`Dpor::replay`] forces that sequence as the prefix and
//! reproduces the failure exactly.
//!
//! Only the task runtimes support driven schedules. The thread runtimes
//! ([`CheckedWorld`](crate::CheckedWorld)) park OS threads and cannot hand
//! each decision to a driver — but they share the whole protocol layer
//! (`sion::par`, collectives, framing) with the task runtimes, so DPOR
//! coverage of the protocol transfers.

use crate::report::{CheckFailure, ScheduleCfg};
use crate::sched::digest_task_run;
use simmpi::hook::{CheckHook, CollKind, CommCtx, LeakedMsg};
use simmpi::{Sanitizer, ScheduleDriver};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use vfs::{AccessKind, AccessSink, FileAccess};

/// What a channel footprint entry did on its mailbox key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChanOp {
    /// Pushed a message (FIFO per key).
    Send,
    /// Consumed a matched message (blocking receive or a `try_recv` hit).
    Recv,
    /// A `try_recv` miss: observed the key empty, consumed nothing.
    Poll,
}

/// One resource touched by a scheduled step.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Res {
    /// A message-channel operation on the `(comm, from, to, tag)` mailbox
    /// key.
    Chan { comm: u64, from: usize, to: usize, tag: u64, op: ChanOp },
    /// A collective bracket event on `(comm, seq)` — never a *conflict*
    /// (entries commute, and no scheduler can move an exit before an
    /// entry), but the entry→exit edges feed the happens-before filter.
    Coll { comm: u64, seq: u64, exit: bool },
    /// A byte-extent file access. `shadow` marks writes that land in a
    /// per-task shadow stream rather than the shared physical file.
    Extent { path: String, offset: u64, len: u64, write: bool, shadow: bool },
}

impl Res {
    fn conflicts(&self, other: &Res) -> bool {
        match (self, other) {
            (
                Res::Chan { comm: ca, from: fa, to: ta, tag: ga, op: oa },
                Res::Chan { comm: cb, from: fb, to: tb, tag: gb, op: ob },
            ) => {
                // Two misses both observe "empty" — they commute. Any
                // other same-key pair does not: send/send changes FIFO
                // order, send/recv and send/poll flip what is observable,
                // recv/recv changes who gets which message.
                (ca, fa, ta, ga) == (cb, fb, tb, gb)
                    && !(*oa == ChanOp::Poll && *ob == ChanOp::Poll)
            }
            (
                Res::Extent { path: pa, offset: oa, len: la, write: wa, shadow: sa },
                Res::Extent { path: pb, offset: ob, len: lb, write: wb, shadow: sb },
            ) => {
                // A shadow write touches a private buffer, not the shared
                // file — it can only interfere with another shadow access,
                // never with the physical bytes (mirrors the HbEngine's
                // shadow-vs-physical exemption).
                sa == sb && (*wa || *wb) && pa == pb && oa < &(ob + lb) && ob < &(oa + la)
            }
            _ => false,
        }
    }
}

/// One scheduling decision with everything the analysis needs: who ran,
/// who *could* have run, and what the step touched.
#[derive(Debug, Clone)]
struct StepRec {
    chosen: usize,
    candidates: Vec<usize>,
    fp: Vec<Res>,
}

impl StepRec {
    fn dependent(&self, other: &StepRec) -> bool {
        self.fp.iter().any(|a| other.fp.iter().any(|b| a.conflicts(b)))
    }
}

#[derive(Default)]
struct RecState {
    prefix: Vec<usize>,
    steps: Vec<StepRec>,
}

/// The per-run instrument: schedule driver (forces the current prefix,
/// then lowest-candidate), passive hook (channel/collective footprints)
/// and access sink (extent footprints) in one object.
#[derive(Default)]
pub struct Recorder {
    st: Mutex<RecState>,
}

impl Recorder {
    fn reset(&self, prefix: Vec<usize>) {
        let mut g = self.st.lock().expect("recorder lock");
        g.prefix = prefix;
        g.steps.clear();
    }

    fn take(&self) -> Vec<StepRec> {
        std::mem::take(&mut self.st.lock().expect("recorder lock").steps)
    }

    fn touch(&self, r: Res) {
        let mut g = self.st.lock().expect("recorder lock");
        if let Some(s) = g.steps.last_mut() {
            s.fp.push(r);
        }
    }
}

impl ScheduleDriver for Recorder {
    fn choose(&self, step: usize, candidates: &[usize]) -> usize {
        let mut g = self.st.lock().expect("recorder lock");
        debug_assert_eq!(step, g.steps.len(), "driver calls arrive in step order");
        let chosen = g
            .prefix
            .get(step)
            .copied()
            .filter(|c| candidates.contains(c))
            .unwrap_or(candidates[0]);
        g.steps.push(StepRec { chosen, candidates: candidates.to_vec(), fp: Vec::new() });
        chosen
    }
}

impl CheckHook for Recorder {
    fn on_send(&self, comm: &CommCtx, from: usize, to: usize, tag: u64, _payload: &[u8]) {
        self.touch(Res::Chan { comm: comm.id, from, to, tag, op: ChanOp::Send });
    }

    fn on_recv_done(&self, comm: &CommCtx, rank: usize, src: usize, tag: u64, _payload: &[u8]) {
        self.touch(Res::Chan { comm: comm.id, from: src, to: rank, tag, op: ChanOp::Recv });
    }

    fn on_try_recv(&self, comm: &CommCtx, rank: usize, src: usize, tag: u64, hit: bool) {
        // A hit is followed by `on_recv_done`, which records the consume;
        // only the miss needs its own entry (it is still dependent with
        // the send that would have satisfied it — reordering them flips
        // the poll's outcome — but two misses commute).
        if !hit {
            self.touch(Res::Chan { comm: comm.id, from: src, to: rank, tag, op: ChanOp::Poll });
        }
    }

    fn on_collective(
        &self,
        comm: &CommCtx,
        _rank: usize,
        seq: u64,
        _kind: CollKind,
        _root: Option<usize>,
    ) {
        self.touch(Res::Coll { comm: comm.id, seq, exit: false });
    }

    fn on_collective_done(&self, comm: &CommCtx, _rank: usize, seq: u64) {
        self.touch(Res::Coll { comm: comm.id, seq, exit: true });
    }
}

impl AccessSink for Recorder {
    fn on_access(&self, access: &FileAccess) {
        self.touch(Res::Extent {
            path: access.path.clone(),
            offset: access.offset,
            len: access.len,
            write: !matches!(access.kind, AccessKind::Read),
            shadow: matches!(access.kind, AccessKind::ShadowWrite),
        });
    }
}

/// Fan-out of one [`OrderGuardFs`](vfs::OrderGuardFs) sink slot to several
/// sinks — driven runs need the extent stream in both the
/// [`HbEngine`](crate::HbEngine) (race verdicts) and the [`Recorder`]
/// (schedule footprints).
pub struct SinkChain(Vec<Arc<dyn AccessSink>>);

impl SinkChain {
    /// Chain `sinks`; every access is forwarded to each in order.
    pub fn new(sinks: Vec<Arc<dyn AccessSink>>) -> Self {
        SinkChain(sinks)
    }
}

impl AccessSink for SinkChain {
    fn on_access(&self, access: &FileAccess) {
        for s in &self.0 {
            s.on_access(access);
        }
    }
}

/// The happens-before relation of one executed trace: program order,
/// send→receive message edges (FIFO per channel key) and collective
/// entry→exit barriers, transitively closed with vector clocks. A
/// dependent pair already ordered *through a third step* can never be
/// reversed by any legal schedule, so queueing a backtrack point for it is
/// pure waste — this filter is what keeps the aggregation protocol's
/// exploration finite.
struct TraceHb {
    /// `ordered[i][j]` (for `i < j`): step `i` happens-before step `j`.
    ordered: Vec<Vec<bool>>,
}

type Clock = std::collections::BTreeMap<usize, usize>;

fn join(into: &mut Clock, other: &Clock) {
    for (t, k) in other {
        let e = into.entry(*t).or_default();
        *e = (*e).max(*k);
    }
}

impl TraceHb {
    fn build(steps: &[StepRec]) -> TraceHb {
        use std::collections::{BTreeMap, VecDeque};
        let mut task_clock: BTreeMap<usize, Clock> = BTreeMap::new();
        let mut sends: BTreeMap<(u64, usize, usize, u64), VecDeque<Clock>> = BTreeMap::new();
        let mut coll_entries: BTreeMap<(u64, u64), Clock> = BTreeMap::new();
        let mut clocks: Vec<Clock> = Vec::with_capacity(steps.len());
        // Step `s` is the `nth[s]`-th step (1-based) of its task.
        let mut nth: Vec<usize> = Vec::with_capacity(steps.len());
        for s in steps {
            let mut c = task_clock.get(&s.chosen).cloned().unwrap_or_default();
            for r in &s.fp {
                match r {
                    Res::Chan { comm, from, to, tag, op: ChanOp::Recv } => {
                        // FIFO per key: this receive consumed the oldest
                        // unconsumed send, inheriting its clock.
                        if let Some(sc) =
                            sends.get_mut(&(*comm, *from, *to, *tag)).and_then(VecDeque::pop_front)
                        {
                            join(&mut c, &sc);
                        }
                    }
                    Res::Coll { comm, seq, exit: true } => {
                        // A collective exit is ordered after every entry of
                        // the same round.
                        if let Some(e) = coll_entries.get(&(*comm, *seq)) {
                            join(&mut c, e);
                        }
                    }
                    _ => {}
                }
            }
            *c.entry(s.chosen).or_default() += 1;
            for r in &s.fp {
                match r {
                    Res::Chan { comm, from, to, tag, op: ChanOp::Send } => {
                        sends.entry((*comm, *from, *to, *tag)).or_default().push_back(c.clone());
                    }
                    Res::Coll { comm, seq, exit: false } => {
                        join(coll_entries.entry((*comm, *seq)).or_default(), &c);
                    }
                    _ => {}
                }
            }
            nth.push(c[&s.chosen]);
            clocks.push(c.clone());
            task_clock.insert(s.chosen, c);
        }
        let n = steps.len();
        let mut ordered = vec![vec![false; n]; n];
        for j in 0..n {
            for i in 0..j {
                ordered[i][j] = clocks[j].get(&steps[i].chosen).copied().unwrap_or(0) >= nth[i];
            }
        }
        TraceHb { ordered }
    }

    /// Is the dependent pair `(i, j)` a *reversible* race — ordered by no
    /// third step `z` with `i → z → j`? A pair ordered only by its own
    /// direct edge (a send and the receive/poll that consumed it) still
    /// swaps to a legal schedule in which the consumer runs first and
    /// misses; a pair ordered through an intermediate step cannot be
    /// reversed at all.
    fn reversible(&self, i: usize, j: usize) -> bool {
        !(i + 1..j).any(|z| self.ordered[i][z] && self.ordered[z][j])
    }
}

/// Handle passed to the per-run closure: the three faces of the shared
/// [`Recorder`], ready to wire into `run_driven`, a [`HookChain`], and an
/// [`OrderGuardFs`](vfs::OrderGuardFs).
pub struct DporHarness {
    rec: Arc<Recorder>,
}

impl DporHarness {
    /// The schedule driver for `TaskWorld::run_driven` /
    /// `FlatTaskWorld::run_driven`.
    pub fn driver(&self) -> Arc<dyn ScheduleDriver> {
        self.rec.clone()
    }

    /// The footprint-recording hook; chain it with a fresh [`Sanitizer`]
    /// (and any other passive hook) via [`HookChain`].
    pub fn recorder(&self) -> Arc<dyn CheckHook> {
        self.rec.clone()
    }

    /// The extent sink for an `OrderGuardFs` when the program does file
    /// I/O.
    pub fn sink(&self) -> Arc<dyn AccessSink> {
        self.rec.clone()
    }
}

/// What an exploration did: how many inequivalent schedules ran, how much
/// of the naive tree the reductions cut, and the first failure if any.
#[derive(Debug, Default)]
pub struct DporOutcome {
    /// Schedules actually executed.
    pub explored: usize,
    /// Backtrack prefixes skipped because an identical prefix was already
    /// dispatched (the sleep-set analogue).
    pub pruned: usize,
    /// Backtrack points queued across all runs.
    pub branch_points: usize,
    /// Length of the longest decision sequence seen.
    pub max_depth: usize,
    /// Exploration stopped at [`Dpor::max_schedules`] with work remaining.
    pub capped: bool,
    /// Decision trace of the first (unforced) run, one rendered line per
    /// step — the golden-file anchor for scheduler determinism.
    pub first_trace: Vec<String>,
    /// First failing run, with [`CheckFailure::schedule`] set for replay.
    pub failure: Option<Box<CheckFailure>>,
}

impl DporOutcome {
    /// One-line deterministic summary, suitable for golden files.
    pub fn summary(&self) -> String {
        format!(
            "dpor: explored {} schedule(s), pruned {}, {} branch point(s), max depth {}{}",
            self.explored,
            self.pruned,
            self.branch_points,
            self.max_depth,
            if self.capped { " (capped)" } else { "" }
        )
    }
}

/// The exhaustive explorer. See the module docs for the algorithm.
pub struct Dpor {
    /// Hard cap on executed schedules; hitting it sets
    /// [`DporOutcome::capped`] instead of looping forever on a state space
    /// larger than the reductions can collapse.
    pub max_schedules: usize,
}

impl Default for Dpor {
    fn default() -> Self {
        Dpor { max_schedules: 10_000 }
    }
}

impl Dpor {
    /// Run `run_once` under every inequivalent schedule. The closure must
    /// wire the harness's driver **and** recorder into a driven serial run
    /// (plus the sink, when file I/O matters), perform exactly one run,
    /// and return its failure verdict; exploration stops at the first
    /// failure or when no unexplored backtrack point remains.
    pub fn explore(
        &self,
        mut run_once: impl FnMut(&DporHarness) -> Option<Box<CheckFailure>>,
    ) -> DporOutcome {
        let h = DporHarness { rec: Arc::new(Recorder::default()) };
        let mut out = DporOutcome::default();
        let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
        seen.insert(Vec::new());
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        while let Some(prefix) = stack.pop() {
            if out.explored >= self.max_schedules {
                out.capped = true;
                break;
            }
            h.rec.reset(prefix);
            let failure = run_once(&h);
            let steps = h.rec.take();
            out.explored += 1;
            out.max_depth = out.max_depth.max(steps.len());
            if out.explored == 1 {
                out.first_trace = steps
                    .iter()
                    .enumerate()
                    .map(|(i, s)| format!("#{i} task {} of {:?}", s.chosen, s.candidates))
                    .collect();
            }
            if let Some(mut f) = failure {
                f.schedule = steps.iter().map(|s| s.chosen).collect();
                out.failure = Some(f);
                break;
            }
            let hb = TraceHb::build(&steps);
            for j in 0..steps.len() {
                // Latest earlier dependent step of a different task whose
                // order is actually reversible: the race to reverse.
                // (Same-task pairs are program-ordered; pairs ordered
                // through a third step are frozen in every schedule.)
                let Some(i) = (0..j).rev().find(|&i| {
                    steps[i].chosen != steps[j].chosen
                        && steps[i].dependent(&steps[j])
                        && hb.reversible(i, j)
                }) else {
                    continue;
                };
                let base: Vec<usize> = steps[..i].iter().map(|s| s.chosen).collect();
                let alts: Vec<usize> = if steps[i].candidates.contains(&steps[j].chosen) {
                    vec![steps[j].chosen]
                } else {
                    // `j`'s task was not yet runnable at `i`; conservative
                    // fallback — try every other choice at that point.
                    steps[i].candidates.clone()
                };
                for alt in alts {
                    if alt == steps[i].chosen {
                        continue;
                    }
                    let mut p = base.clone();
                    p.push(alt);
                    if seen.insert(p.clone()) {
                        out.branch_points += 1;
                        stack.push(p);
                    } else {
                        out.pruned += 1;
                    }
                }
            }
        }
        out
    }

    /// Run `run_once` exactly once with `schedule` forced as the decision
    /// prefix — the replay side of [`CheckFailure::schedule`]. Returns the
    /// run's verdict; a faithfully replayed failure returns `Some` with an
    /// identical stable report.
    pub fn replay(
        schedule: &[usize],
        run_once: impl FnOnce(&DporHarness) -> Option<Box<CheckFailure>>,
    ) -> Option<Box<CheckFailure>> {
        let h = DporHarness { rec: Arc::new(Recorder::default()) };
        h.rec.reset(schedule.to_vec());
        let mut failure = run_once(&h);
        if let Some(f) = &mut failure {
            f.schedule = h.rec.take().iter().map(|s| s.chosen).collect();
        }
        failure
    }

    /// [`Dpor::replay`] specialized to a plain `TaskWorld` program with a
    /// fresh [`Sanitizer`]: the one-call replay for failures found by
    /// [`CheckedTaskWorld::run`](crate::CheckedTaskWorld) under
    /// [`ScheduleCfg::Dpor`].
    pub fn replay_task_world<T, F, Fut>(
        ntasks: usize,
        schedule: &[usize],
        f: F,
    ) -> Result<Vec<T>, Box<CheckFailure>>
    where
        T: Send,
        F: Fn(simmpi::TaskComm) -> Fut,
        Fut: std::future::Future<Output = T> + Send,
    {
        let mut vals = None;
        let failure = Self::replay(schedule, |h| {
            let san = Arc::new(Sanitizer::new());
            let hook: Arc<dyn CheckHook> = Arc::new(HookChain::new(vec![h.recorder(), san.clone()]));
            let run = simmpi::TaskWorld::run_driven(ntasks, hook, h.driver(), &f);
            match digest_task_run(ntasks, ScheduleCfg::Dpor, &san, run) {
                Ok(v) => {
                    vals = Some(v);
                    None
                }
                Err(e) => Some(e),
            }
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(vals.expect("replay ran exactly once")),
        }
    }
}

/// Fan-out of one runtime hook slot to several passive hooks — the driven
/// runs need the [`Recorder`]'s footprints *and* the [`Sanitizer`]'s
/// diagnoses (and, under `SIMCHECK`, an `HbEngine`) from the same run.
pub struct HookChain(Vec<Arc<dyn CheckHook>>);

impl HookChain {
    /// Chain `hooks`; every event is forwarded to each in order.
    pub fn new(hooks: Vec<Arc<dyn CheckHook>>) -> Self {
        HookChain(hooks)
    }
}

impl CheckHook for HookChain {
    fn scheduling(&self) -> bool {
        self.0.iter().any(|h| h.scheduling())
    }

    fn on_collective(
        &self,
        comm: &CommCtx,
        rank: usize,
        seq: u64,
        kind: CollKind,
        root: Option<usize>,
    ) {
        for h in &self.0 {
            h.on_collective(comm, rank, seq, kind, root);
        }
    }

    fn on_collective_done(&self, comm: &CommCtx, rank: usize, seq: u64) {
        for h in &self.0 {
            h.on_collective_done(comm, rank, seq);
        }
    }

    fn on_send(&self, comm: &CommCtx, from: usize, to: usize, tag: u64, payload: &[u8]) {
        for h in &self.0 {
            h.on_send(comm, from, to, tag, payload);
        }
    }

    fn on_recv_done(&self, comm: &CommCtx, rank: usize, src: usize, tag: u64, payload: &[u8]) {
        for h in &self.0 {
            h.on_recv_done(comm, rank, src, tag, payload);
        }
    }

    fn on_try_recv(&self, comm: &CommCtx, rank: usize, src: usize, tag: u64, hit: bool) {
        for h in &self.0 {
            h.on_try_recv(comm, rank, src, tag, hit);
        }
    }

    fn on_reserved_tag(&self, comm: &CommCtx, rank: usize, dest: usize, tag: u64) {
        for h in &self.0 {
            h.on_reserved_tag(comm, rank, dest, tag);
        }
    }

    fn on_teardown(&self, comm: &CommCtx, rank: usize, leaked: &[LeakedMsg]) {
        for h in &self.0 {
            h.on_teardown(comm, rank, leaked);
        }
    }

    fn should_abort(&self) -> Option<String> {
        self.0.iter().find_map(|h| h.should_abort())
    }

    fn on_stuck(&self, comm: &CommCtx, rank: usize, src: usize, tag: u64, waited: Duration) {
        for h in &self.0 {
            h.on_stuck(comm, rank, src, tag, waited);
        }
    }

    fn before_send(&self, comm: &CommCtx, from: usize, to: usize, tag: u64, len: usize) {
        for h in &self.0 {
            h.before_send(comm, from, to, tag, len);
        }
    }

    fn before_recv(&self, comm: &CommCtx, rank: usize, src: usize, tag: u64) {
        for h in &self.0 {
            h.before_recv(comm, rank, src, tag);
        }
    }

    fn on_recv_blocked(&self, comm: &CommCtx, rank: usize, src: usize, tag: u64) {
        for h in &self.0 {
            h.on_recv_blocked(comm, rank, src, tag);
        }
    }

    fn on_consumed(&self, comm: &CommCtx, rank: usize, from: usize, tag: u64) {
        for h in &self.0 {
            h.on_consumed(comm, rank, from, tag);
        }
    }

    fn on_task_finish(&self, task: usize, panicked: bool) {
        for h in &self.0 {
            h.on_task_finish(task, panicked);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheckedTaskWorld, ScheduleCfg};
    use simmpi::CoComm;

    /// Two tasks each do one barrier: the only decisions are which task
    /// polls first at each quiescent point, and all of them commute except
    /// the collective entries. The count must be stable run over run.
    #[test]
    fn exploration_is_deterministic() {
        let count = |_| {
            let r = CheckedTaskWorld::run(2, ScheduleCfg::Dpor, |c| async move {
                c.barrier().await;
                c.rank()
            })
            .expect("barrier world is clean");
            r
        };
        assert_eq!(count(()), count(()));
        assert_eq!(count(()), vec![0, 1]);
    }

    /// An order-dependent program: rank 1's value depends on whether rank
    /// 0's send landed before its poll. DPOR must execute both outcomes.
    #[test]
    fn dpor_explores_both_sides_of_a_poll_race() {
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        let outcomes: Mutex<BTreeSet<bool>> = Mutex::new(BTreeSet::new());
        let out = Dpor::default().explore(|h| {
            let san = Arc::new(Sanitizer::new());
            let hook: Arc<dyn CheckHook> =
                Arc::new(HookChain::new(vec![h.recorder(), san.clone()]));
            let run = simmpi::TaskWorld::run_driven(2, hook, h.driver(), |c| async move {
                if c.rank() == 0 {
                    c.send(1, 7, b"x");
                    true
                } else {
                    let hit = c.try_recv(0, 7).is_some();
                    if !hit {
                        // Drain the message either way: no leaks.
                        c.recv(0, 7).await;
                    }
                    hit
                }
            });
            let vals =
                digest_task_run(2, ScheduleCfg::Dpor, &san, run).expect("clean program");
            outcomes.lock().unwrap().insert(vals[1]);
            None
        });
        assert!(out.failure.is_none());
        assert!(out.explored >= 2, "{}", out.summary());
        assert_eq!(
            *outcomes.lock().unwrap(),
            BTreeSet::from([false, true]),
            "both poll outcomes must be scheduled: {}",
            out.summary()
        );
    }

    /// A failure found by exploration replays exactly from its recorded
    /// schedule.
    #[test]
    fn failures_carry_a_replayable_schedule() {
        let prog = |c: simmpi::TaskComm| async move {
            if c.rank() == 0 {
                c.send(1, 7, b"x");
            } else {
                // Racy: losing the poll race is a panic finding (and the
                // unreceived message then leaks on teardown).
                assert!(c.try_recv(0, 7).is_some(), "lost the poll race");
            }
            c.rank()
        };
        let err = match CheckedTaskWorld::run(2, ScheduleCfg::Dpor, prog) {
            Err(e) => e,
            Ok(_) => panic!("the leaky interleaving must be found"),
        };
        assert!(!err.schedule.is_empty());
        assert_eq!(err.cfg, ScheduleCfg::Dpor);
        let replayed = Dpor::replay_task_world(2, &err.schedule, prog)
            .expect_err("forced schedule reproduces the failure");
        assert_eq!(replayed.stable_report(), err.stable_report());
    }
}

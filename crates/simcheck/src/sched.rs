//! The deterministic schedule-exploring scheduler.
//!
//! [`CheckedWorld::run`] executes a `simmpi` program under a scheduling
//! [`CheckHook`]: every mailbox operation (send, receive attempt, blocked
//! receive) is a *schedule point* where the issuing rank parks, and a
//! single serialized decision stream — a pure function of
//! [`ScheduleCfg`] — chooses which rank runs next. The design follows the
//! CHESS/loom lineage:
//!
//! * **quiescence decisions** — a decision is made only when every rank is
//!   parked (arrived at a schedule point, blocked on a receive, or
//!   finished), so the candidate set is a deterministic function of the
//!   history, never of thread timing;
//! * **seeded choice** — among the sorted candidates, a splitmix64 stream
//!   seeded from `cfg.seed` picks the next rank;
//! * **bounded preemption** — at most `cfg.preemption_bound` decisions may
//!   switch away from a rank that could have continued; after that the
//!   scheduler always continues the last rank while it remains runnable.
//!   Sweeping seeds at small bounds covers the orderings most likely to
//!   expose protocol bugs (most concurrency bugs need few preemptions);
//! * **replay** — re-running the same program under the failing
//!   [`ScheduleCfg`] reproduces the identical decision trace and the
//!   byte-identical [`stable_report`](crate::CheckFailure::stable_report).
//!
//! The scheduler also owns the whole-world deadlock verdict: it models
//! every in-flight message (recorded when a send is released, consumed
//! when the receiver physically drains it), so "all live ranks blocked
//! with no deliverable message" is decided exactly, not by watchdog. The
//! blocked ranks then capture their own backtraces as they are released to
//! unwind, giving a per-rank backtrace of the pending operation.
//!
//! Passive protocol checks (collective matching, reserved tags, teardown
//! leaks) are delegated to the same [`Sanitizer`] the `SIMCHECK=1` env
//! mode uses, so diagnoses are identical across modes.

use crate::report::{CheckFailure, DeadlockInfo, PendingOp, ScheduleCfg, TraceEv};
use simmpi::hook::{current_task, describe_tag, Aborted, CheckHook, CollKind, CommCtx, LeakedMsg};
use simmpi::{Comm, Communicator, Finding, FindingKind, Sanitizer, World};
use std::backtrace::Backtrace;
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Hard cap on scheduling decisions per run — a backstop against livelock
/// in the checked program (or a checker bug), far above any workload in
/// this repository.
const DECISION_CAP: usize = 500_000;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Where one world task currently stands, from the scheduler's viewpoint.
enum TState {
    /// Released and running (or not yet arrived at its first schedule
    /// point during startup).
    Executing,
    /// Parked at a schedule point, runnable as soon as chosen.
    Arrived {
        /// Description of the operation it will perform when released.
        op: String,
    },
    /// Parked in a receive with an empty mailbox; runnable only when a
    /// matching message is deliverable.
    Blocked { comm_id: u64, comm_name: Arc<str>, local: usize, src: usize, tag: u64 },
    /// Task closure (and communicator teardown) completed.
    Finished,
}

/// One modeled in-flight message. Recorded when the sending rank is
/// released from its send schedule point (the physical mailbox push
/// happens immediately after, before the sender can reach another schedule
/// point), consumed when the receiving rank physically drains it — so at
/// every decision point the model matches the mailboxes exactly.
struct MsgRec {
    comm_id: u64,
    from: usize,
    to: usize,
    tag: u64,
    consumed: bool,
}

struct SchedState {
    tasks: Vec<TState>,
    /// Number of tasks currently running (not parked, not finished).
    /// Decisions happen only at zero.
    executing: usize,
    msgs: Vec<MsgRec>,
    rng: u64,
    preemptions: usize,
    last: Option<usize>,
    trace: Vec<TraceEv>,
    /// Set once on the first world-level failure; parked tasks unwind with
    /// an [`Aborted`] panic when they see it.
    abort: Option<String>,
    /// Per-task release tokens.
    released: Vec<bool>,
    deadlock: Option<DeadlockInfo>,
}

struct Scheduler {
    /// Preemption budget of the seeded configuration.
    bound: usize,
    san: Sanitizer,
    inner: Mutex<SchedState>,
    cv: Condvar,
}

impl Scheduler {
    /// Build a scheduler for a seeded configuration. DPOR configurations
    /// never reach here: the thread runtimes share their protocol layer
    /// with the task runtimes byte-for-byte, so systematic exploration
    /// runs on the serial task executor (see [`crate::dpor`]).
    fn new(ntasks: usize, cfg: ScheduleCfg) -> Scheduler {
        let ScheduleCfg::Seeded { seed, preemption_bound } = cfg else {
            panic!(
                "ScheduleCfg::Dpor drives the serial task scheduler; \
                 use CheckedTaskWorld (or simcheck::dpor) instead of CheckedWorld"
            )
        };
        Scheduler {
            bound: preemption_bound,
            san: Sanitizer::new(),
            inner: Mutex::new(SchedState {
                tasks: (0..ntasks).map(|_| TState::Executing).collect(),
                executing: ntasks,
                msgs: Vec::new(),
                rng: seed,
                preemptions: 0,
                last: None,
                trace: Vec::new(),
                abort: None,
                released: vec![false; ntasks],
                deadlock: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.inner.lock().expect("scheduler state never poisoned")
    }

    /// First schedule point of every task, called before any user code
    /// runs. Parking here means the startup burst ends with all tasks
    /// parked, so from the very first decision exactly one task executes at
    /// a time — every hook callback (collective checks, teardown) is
    /// serialized and the whole run is deterministic.
    fn startup(&self, task: usize) {
        self.pause(task, TState::Arrived { op: "start".to_string() });
    }

    /// Park `task` at a schedule point in state `st` until released (runs
    /// again) or the world aborts (unwinds with [`Aborted`]).
    fn pause(&self, task: usize, st: TState) {
        let mut g = self.lock();
        g.tasks[task] = st;
        g.executing -= 1;
        if g.executing == 0 {
            self.decide(&mut g);
        }
        loop {
            if g.released[task] {
                g.released[task] = false;
                return;
            }
            if let Some(reason) = g.abort.clone() {
                // Deadlocked receives capture their own backtrace on the
                // way out — lazily, only when a deadlock was actually
                // declared, so the hot path never pays for capture.
                if g.deadlock.is_some() && matches!(g.tasks[task], TState::Blocked { .. }) {
                    let bt = Backtrace::force_capture().to_string();
                    if let Some(d) = &mut g.deadlock {
                        d.backtraces.insert(task, bt);
                    }
                }
                drop(g);
                std::panic::panic_any(Aborted(reason));
            }
            g = self.cv.wait(g).expect("scheduler state never poisoned");
        }
    }

    /// Whether a message matching `task`'s blocked receive is in flight and
    /// not yet drained.
    fn deliverable(g: &SchedState, comm_id: u64, local: usize, src: usize, tag: u64) -> bool {
        g.msgs.iter().any(|m| {
            !m.consumed && m.comm_id == comm_id && m.to == local && m.from == src && m.tag == tag
        })
    }

    /// Choose and release the next task. Called with every task parked
    /// (`executing == 0`); the candidate set — and therefore the whole
    /// decision stream — is a deterministic function of the history and the
    /// seed.
    fn decide(&self, g: &mut SchedState) {
        if g.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        let mut cands: Vec<usize> = Vec::new();
        let mut all_finished = true;
        for (t, st) in g.tasks.iter().enumerate() {
            match st {
                TState::Arrived { .. } => {
                    all_finished = false;
                    cands.push(t);
                }
                TState::Blocked { comm_id, local, src, tag, .. } => {
                    all_finished = false;
                    if Self::deliverable(g, *comm_id, *local, *src, *tag) {
                        cands.push(t);
                    }
                }
                TState::Executing => all_finished = false,
                TState::Finished => {}
            }
        }
        if cands.is_empty() {
            if !all_finished {
                self.declare_deadlock(g);
            }
            return;
        }
        if g.trace.len() >= DECISION_CAP {
            let f = self.san.record_deadlock(format!(
                "decision budget ({DECISION_CAP}) exceeded — livelock or runaway schedule"
            ));
            g.abort = Some(f.to_string());
            self.cv.notify_all();
            return;
        }
        // cands is in ascending task order by construction.
        let choice = match g.last {
            Some(last)
                if cands.contains(&last) && g.preemptions >= self.bound =>
            {
                // Preemption budget spent: keep running the last task while
                // it remains runnable.
                last
            }
            _ => {
                let pick = cands[(splitmix64(&mut g.rng) % cands.len() as u64) as usize];
                if let Some(last) = g.last {
                    if pick != last && cands.contains(&last) {
                        g.preemptions += 1;
                    }
                }
                pick
            }
        };
        let op = match &g.tasks[choice] {
            TState::Arrived { op } => op.clone(),
            TState::Blocked { comm_name, local, src, tag, .. } => format!(
                "deliver to recv(src={src}, tag={}) as rank {local} on \"{comm_name}\"",
                describe_tag(*tag)
            ),
            _ => unreachable!("candidates are parked tasks"),
        };
        g.trace.push(TraceEv { step: g.trace.len(), task: choice, op });
        g.last = Some(choice);
        g.tasks[choice] = TState::Executing;
        g.executing += 1;
        g.released[choice] = true;
        self.cv.notify_all();
    }

    /// Every live rank is blocked with no deliverable message: record the
    /// verdict with each rank's pending operation and release them all to
    /// unwind (capturing their backtraces on the way out).
    fn declare_deadlock(&self, g: &mut SchedState) {
        let mut pending = Vec::new();
        for (t, st) in g.tasks.iter().enumerate() {
            if let TState::Blocked { comm_name, local, src, tag, .. } = st {
                pending.push(PendingOp {
                    task: t,
                    comm: comm_name.to_string(),
                    op: format!(
                        "recv(src={src}, tag={}) as rank {local}",
                        describe_tag(*tag)
                    ),
                });
            }
        }
        let desc: Vec<String> = pending
            .iter()
            .map(|p| format!("rank {} in {} on \"{}\"", p.task, p.op, p.comm))
            .collect();
        let f = self.san.record_deadlock(format!(
            "whole-world deadlock: {} task(s) blocked with no deliverable message: {}",
            pending.len(),
            desc.join("; ")
        ));
        g.deadlock = Some(DeadlockInfo { pending, backtraces: BTreeMap::new() });
        g.abort = Some(f.to_string());
        self.cv.notify_all();
    }

    fn abort_world(&self, reason: String) {
        let mut g = self.lock();
        if g.abort.is_none() {
            g.abort = Some(reason);
        }
        self.cv.notify_all();
    }

    fn world_task(&self) -> usize {
        current_task().expect("scheduled operation outside a checked world task")
    }
}

impl CheckHook for Scheduler {
    fn scheduling(&self) -> bool {
        true
    }

    fn on_collective(
        &self,
        comm: &CommCtx,
        rank: usize,
        seq: u64,
        kind: CollKind,
        root: Option<usize>,
    ) {
        if let Some(f) = self.san.check_collective(comm, rank, seq, kind, root) {
            self.abort_world(f.to_string());
            panic!("simcheck: {f}");
        }
    }

    fn on_reserved_tag(&self, comm: &CommCtx, rank: usize, dest: usize, tag: u64) {
        let f = self.san.check_reserved_tag(comm, rank, dest, tag);
        self.abort_world(f.to_string());
        panic!("simcheck: {f} — tags with top byte 0xC3 are reserved for internal collectives");
    }

    fn on_teardown(&self, comm: &CommCtx, rank: usize, leaked: &[LeakedMsg]) {
        // After a world abort every parked task unwinds concurrently and
        // in-flight messages are expected leftovers; recording them would
        // add noise in nondeterministic order. The primary finding is
        // already recorded.
        if self.lock().abort.is_some() {
            return;
        }
        let f = self.san.check_teardown(comm, rank, leaked);
        self.abort_world(f.to_string());
        if !std::thread::panicking() {
            panic!("simcheck: {f}");
        }
    }

    fn should_abort(&self) -> Option<String> {
        self.lock().abort.clone()
    }

    fn before_send(&self, comm: &CommCtx, from: usize, to: usize, tag: u64, len: usize) {
        let task = self.world_task();
        let op = format!(
            "send(to={to}, tag={}, len={len}) as rank {from} on \"{}\"",
            describe_tag(tag),
            comm.name
        );
        self.pause(task, TState::Arrived { op });
        // Released: the physical push follows immediately (before this task
        // can reach another schedule point), so record the message now.
        self.lock().msgs.push(MsgRec { comm_id: comm.id, from, to, tag, consumed: false });
    }

    fn before_recv(&self, comm: &CommCtx, rank: usize, src: usize, tag: u64) {
        let task = self.world_task();
        let op = format!(
            "recv(src={src}, tag={}) as rank {rank} on \"{}\"",
            describe_tag(tag),
            comm.name
        );
        self.pause(task, TState::Arrived { op });
    }

    fn on_recv_blocked(&self, comm: &CommCtx, rank: usize, src: usize, tag: u64) {
        let task = self.world_task();
        self.pause(
            task,
            TState::Blocked {
                comm_id: comm.id,
                comm_name: comm.name.clone(),
                local: rank,
                src,
                tag,
            },
        );
    }

    fn on_consumed(&self, comm: &CommCtx, rank: usize, from: usize, tag: u64) {
        let mut g = self.lock();
        if let Some(m) = g.msgs.iter_mut().find(|m| {
            !m.consumed && m.comm_id == comm.id && m.to == rank && m.from == from && m.tag == tag
        }) {
            m.consumed = true;
        }
    }

    fn on_task_finish(&self, task: usize, _panicked: bool) {
        let mut g = self.lock();
        let was_executing = matches!(g.tasks[task], TState::Executing);
        g.tasks[task] = TState::Finished;
        if was_executing {
            g.executing -= 1;
            if g.executing == 0 {
                self.decide(&mut g);
            }
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Launcher executing `simmpi` programs under the deterministic scheduler.
pub struct CheckedWorld;

impl CheckedWorld {
    /// Run `f` as an `ntasks`-rank world under the schedule defined by
    /// `cfg`. On success returns the per-rank results; on any finding
    /// (collective mismatch, reserved tag, message leak, deadlock, rank
    /// panic) returns the full [`CheckFailure`] — deterministic and
    /// replayable by re-running with the same `cfg`.
    pub fn run<T, F>(ntasks: usize, cfg: ScheduleCfg, f: F) -> Result<Vec<T>, Box<CheckFailure>>
    where
        T: Send,
        F: Fn(&Communicator) -> T + Send + Sync,
    {
        let sched = Arc::new(Scheduler::new(ntasks, cfg));
        let inner = sched.clone();
        let results = World::run_checked(ntasks, sched.clone(), move |comm| {
            inner.startup(comm.rank());
            f(comm)
        });
        let mut findings = sched.san.findings();
        let mut vals = Vec::new();
        for (rank, r) in results.into_iter().enumerate() {
            match r {
                Ok(v) => vals.push(v),
                // Secondary unwinds of ranks released from a failed world;
                // the primary diagnosis is already in `findings`.
                Err(p) if p.is::<Aborted>() => {}
                Err(p) => {
                    let msg = panic_message(p.as_ref());
                    // Finding panics carry the finding text; it is already
                    // recorded by the sanitizer.
                    if !msg.starts_with("simcheck:") {
                        findings.push(Finding {
                            kind: FindingKind::Panic,
                            message: format!("rank {rank} panicked: {msg}"),
                        });
                    }
                }
            }
        }
        findings.extend(sched.san.incomplete_collectives());
        if findings.is_empty() && vals.len() != ntasks {
            findings.push(Finding {
                kind: FindingKind::Panic,
                message: format!(
                    "{} of {ntasks} rank(s) unwound without a recorded finding",
                    ntasks - vals.len()
                ),
            });
        }
        if findings.is_empty() {
            return Ok(vals);
        }
        let mut g = sched.lock();
        Err(Box::new(CheckFailure {
            cfg,
            findings,
            deadlock: g.deadlock.take(),
            trace: std::mem::take(&mut g.trace),
            schedule: Vec::new(),
        }))
    }

    /// Run `f` once per configuration, stopping at the first failure (whose
    /// [`CheckFailure::cfg`] replays it). Returns the number of schedules
    /// explored.
    pub fn explore<T, F>(
        ntasks: usize,
        cfgs: impl IntoIterator<Item = ScheduleCfg>,
        f: F,
    ) -> Result<usize, Box<CheckFailure>>
    where
        T: Send,
        F: Fn(&Communicator) -> T + Send + Sync,
    {
        let mut explored = 0;
        for cfg in cfgs {
            Self::run(ntasks, cfg, &f)?;
            explored += 1;
        }
        Ok(explored)
    }
}

/// Launcher executing programs written for the **task runtime**
/// ([`simmpi::TaskWorld`]) under deterministic seeded schedules.
///
/// Where [`CheckedWorld`] serializes OS threads with a parking scheduler,
/// the task runtime *is* a scheduler — so checking it needs no thread
/// choreography at all: [`simmpi::SchedPolicy::Serial`] replays the same
/// seeded-splitmix64, preemption-bounded decision procedure at poll
/// granularity, and the executor's exact quiescence detection supplies the
/// deadlock verdict (no watchdog, no in-flight message model needed — an
/// undeliverable receive simply never wakes). The passive [`Sanitizer`]
/// provides the identical collective/tag/leak diagnoses, so a
/// [`CheckFailure`] from either checker reads the same.
pub struct CheckedTaskWorld;

impl CheckedTaskWorld {
    /// Run `f` as an `ntasks` task world under the schedule defined by
    /// `cfg` (seed + preemption bound, both honored by the serial policy).
    /// On success returns per-rank results; on any finding returns the
    /// [`CheckFailure`], replayable by re-running with the same `cfg`.
    pub fn run<T, F, Fut>(
        ntasks: usize,
        cfg: ScheduleCfg,
        f: F,
    ) -> Result<Vec<T>, Box<CheckFailure>>
    where
        T: Send,
        F: Fn(simmpi::TaskComm) -> Fut,
        Fut: std::future::Future<Output = T> + Send,
    {
        match cfg {
            ScheduleCfg::Seeded { seed, preemption_bound } => {
                let san = Arc::new(Sanitizer::new());
                let policy = simmpi::SchedPolicy::Serial { seed, preemption_bound };
                let run = simmpi::TaskWorld::run_checked(policy, ntasks, san.clone(), f);
                digest_task_run(ntasks, cfg, &san, run)
            }
            ScheduleCfg::Dpor => {
                let mut vals = None;
                let outcome = crate::dpor::Dpor::default().explore(|h| {
                    let san = Arc::new(Sanitizer::new());
                    let hook: Arc<dyn simmpi::CheckHook> =
                        Arc::new(crate::dpor::HookChain::new(vec![h.recorder(), san.clone()]));
                    let run = simmpi::TaskWorld::run_driven(ntasks, hook, h.driver(), &f);
                    match digest_task_run(ntasks, cfg, &san, run) {
                        Ok(v) => {
                            vals = Some(v);
                            None
                        }
                        Err(e) => Some(e),
                    }
                });
                match outcome.failure {
                    Some(e) => Err(e),
                    None => Ok(vals.expect("dpor explores at least one schedule")),
                }
            }
        }
    }

    /// Run `f` once per configuration, stopping at the first failure (whose
    /// [`CheckFailure::cfg`] replays it). Returns the number of schedules
    /// explored.
    pub fn explore<T, F, Fut>(
        ntasks: usize,
        cfgs: impl IntoIterator<Item = ScheduleCfg>,
        f: F,
    ) -> Result<usize, Box<CheckFailure>>
    where
        T: Send,
        F: Fn(simmpi::TaskComm) -> Fut,
        Fut: std::future::Future<Output = T> + Send,
    {
        let mut explored = 0;
        for cfg in cfgs {
            Self::run(ntasks, cfg, &f)?;
            explored += 1;
        }
        Ok(explored)
    }
}

/// Turn a finished task-runtime run into the checked verdict: sanitizer
/// findings + deadlock verdict + per-rank panics, or the per-rank values
/// when clean. Shared by the seeded path, the DPOR explorer, and DPOR
/// replay; for [`ScheduleCfg::Dpor`] the decision trace doubles as the
/// replay [`CheckFailure::schedule`].
pub(crate) fn digest_task_run<T: Send>(
    ntasks: usize,
    cfg: ScheduleCfg,
    san: &Sanitizer,
    run: simmpi::TaskRun<T>,
) -> Result<Vec<T>, Box<CheckFailure>> {
    let mut findings = san.findings();
    let deadlock = run.deadlock.map(|d| {
        san.record_deadlock(format!(
            "whole-world deadlock: {} task(s) parked with no runnable peer",
            d.parked.len()
        ));
        DeadlockInfo {
            pending: d
                .parked
                .into_iter()
                .map(|p| PendingOp { task: p.world_rank, comm: p.comm, op: p.op })
                .collect(),
            backtraces: BTreeMap::new(),
        }
    });
    if deadlock.is_some() {
        findings = san.findings();
    }
    let mut vals = Vec::new();
    for (rank, r) in run.results.into_iter().enumerate() {
        match r {
            Ok(v) => vals.push(v),
            Err(p) if p.is::<Aborted>() => {}
            Err(p) => {
                let msg = panic_message(p.as_ref());
                if !msg.starts_with("simcheck:") {
                    findings.push(Finding {
                        kind: FindingKind::Panic,
                        message: format!("rank {rank} panicked: {msg}"),
                    });
                }
            }
        }
    }
    findings.extend(san.incomplete_collectives());
    if findings.is_empty() && vals.len() != ntasks {
        findings.push(Finding {
            kind: FindingKind::Panic,
            message: format!(
                "{} of {ntasks} rank(s) unwound without a recorded finding",
                ntasks - vals.len()
            ),
        });
    }
    if findings.is_empty() {
        return Ok(vals);
    }
    let schedule =
        if matches!(cfg, ScheduleCfg::Dpor) { run.trace.clone() } else { Vec::new() };
    Err(Box::new(CheckFailure {
        cfg,
        findings,
        deadlock,
        trace: run
            .trace
            .into_iter()
            .enumerate()
            .map(|(step, task)| TraceEv { step, task, op: "poll".to_string() })
            .collect(),
        schedule,
    }))
}

/// The standard schedule sweep: `seeds` seeds at each preemption bound
/// (iterative context bounding — low bounds first, where most concurrency
/// bugs live).
pub fn schedules(seeds: u64, bounds: &[usize]) -> Vec<ScheduleCfg> {
    let mut out = Vec::new();
    for &preemption_bound in bounds {
        for seed in 0..seeds {
            out.push(ScheduleCfg::Seeded { seed, preemption_bound });
        }
    }
    out
}

/// Seed budget for exploration sweeps: `SIMCHECK_SEEDS` in the environment
/// (CI's `--quick` budget sets it low), default 16.
pub fn seed_budget() -> u64 {
    std::env::var("SIMCHECK_SEEDS").ok().and_then(|v| v.parse().ok()).unwrap_or(16)
}

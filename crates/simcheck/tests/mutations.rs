//! Mutation tests: each seeded bug class from the issue — mismatched
//! collective root, user tag colliding with the reserved namespace,
//! misaligned chunk start violating the §3.2 block-exclusivity invariant,
//! and a cyclic-receive deadlock — must be flagged by the checker, with a
//! replayable [`ScheduleCfg`] and a byte-identical report on replay.

use simcheck::{
    BlockGuardFs, CheckFailure, CheckedWorld, FindingKind, ScheduleCfg, COLL_TAG_PREFIX,
};
use simmpi::Comm;
use sion::{paropen_write, Alignment, FileLayout, SionParams};
use std::sync::Arc;
use vfs::MemFs;

const CFG: ScheduleCfg = ScheduleCfg::Seeded { seed: 11, preemption_bound: 2 };

fn assert_replayable(a: &CheckFailure, b: &CheckFailure) {
    assert_eq!(
        a.stable_report(),
        b.stable_report(),
        "replay under the same ScheduleCfg must reproduce the byte-identical report"
    );
}

/// Bug class 1: ranks disagree on a collective's root.
#[test]
fn mismatched_root_is_flagged() {
    let run = || {
        CheckedWorld::run(4, CFG, |c| {
            // Every rank names itself as the root: a classic index bug.
            c.bcast(Some(vec![1, 2, 3]), c.rank());
        })
        .expect_err("mismatched bcast roots must not pass")
    };
    let fail = run();
    assert!(
        fail.findings.iter().any(|f| f.kind == FindingKind::CollectiveMismatch),
        "expected a collective-mismatch finding:\n{fail}"
    );
    assert!(
        fail.findings.iter().any(|f| f.message.contains("bcast(root=")),
        "finding must name the mismatching operations:\n{fail}"
    );
    assert_replayable(&fail, &run());
}

/// Bug class 1b: ranks disagree on *which* collective they are in.
#[test]
fn mismatched_kind_is_flagged() {
    let fail = CheckedWorld::run(2, CFG, |c| {
        if c.rank() == 0 {
            c.barrier();
        } else {
            c.allgather(&[9]);
        }
    })
    .expect_err("barrier-vs-allgather must not pass");
    assert!(
        fail.findings.iter().any(|f| f.kind == FindingKind::CollectiveMismatch),
        "expected a collective-mismatch finding:\n{fail}"
    );
}

/// Bug class 2: a user point-to-point tag colliding with the reserved
/// collective namespace (top byte 0xC3).
#[test]
fn reserved_tag_collision_is_flagged() {
    // Craft the exact wire tag of an internal barrier (kind 1, seq 0,
    // round 0) — the strongest possible collision.
    let crafted = COLL_TAG_PREFIX | (1u64 << 48);
    let run = || {
        CheckedWorld::run(2, CFG, |c| {
            if c.rank() == 0 {
                c.send(1, crafted, b"oops");
            }
        })
        .expect_err("reserved-namespace tag must be rejected")
    };
    let fail = run();
    assert!(
        fail.findings.iter().any(|f| f.kind == FindingKind::ReservedTag),
        "expected a reserved-tag finding:\n{fail}"
    );
    assert_replayable(&fail, &run());
}

/// Bug class 3: misaligned chunk starts — an unaligned layout packs two
/// tasks' chunks into the same filesystem block, violating the invariant
/// (§3.2) that makes lock-free parallel writes safe. The block-contention
/// sanitizer must observe cross-task overlap, and the layout math must
/// agree that sharing exists.
#[test]
fn misaligned_chunks_trigger_block_contention() {
    const FS_BLOCK: u64 = 4096;
    let ntasks = 4;
    // Chunks far smaller than an FS block, no alignment: guaranteed sharing.
    let params = SionParams::new(600).with_alignment(Alignment::None);

    // The layout math predicts the overlap...
    let layout =
        FileLayout::compute(&vec![600; ntasks], FS_BLOCK, Alignment::None, false).unwrap();
    let predicted = layout.shared_fs_blocks(FS_BLOCK);
    assert!(
        !predicted.is_empty(),
        "test premise broken: unaligned 600-byte chunks should share {FS_BLOCK}-byte FS blocks"
    );

    // ...and the sanitizer observes it happening on the wire.
    let fs = BlockGuardFs::new(Arc::new(MemFs::with_block_size(FS_BLOCK)));
    CheckedWorld::run(ntasks, CFG, |comm| {
        let mut w = paropen_write(&fs, "out/misaligned.sion", &params, comm).unwrap();
        w.write(&vec![comm.rank() as u8; 600]).unwrap();
        w.close().unwrap();
    })
    .unwrap_or_else(|fail| panic!("protocol layer is fine, only blocks overlap:\n{fail}"));

    let violations = fs.violations();
    assert!(
        !violations.is_empty(),
        "expected cross-task FS-block overlap with unaligned chunks"
    );
    // Every report names two distinct tasks on one block.
    for v in &violations {
        assert_ne!(v.prev_task, v.task, "violation must be cross-task: {v}");
    }

    // The aligned control: same workload, aligned layout, zero violations.
    let aligned = SionParams::new(FS_BLOCK);
    let fs2 = BlockGuardFs::new(Arc::new(MemFs::with_block_size(FS_BLOCK)));
    CheckedWorld::run(ntasks, CFG, |comm| {
        let mut w = paropen_write(&fs2, "out/aligned.sion", &aligned, comm).unwrap();
        w.write(&vec![comm.rank() as u8; 600]).unwrap();
        w.close().unwrap();
    })
    .unwrap_or_else(|fail| panic!("aligned control run flagged:\n{fail}"));
    fs2.assert_exclusive();
}

/// Bug class 4: whole-world deadlock — both ranks receive first. The
/// checker must name each rank's pending operation and produce a stable
/// report that replays byte-for-byte and matches the golden file.
#[test]
fn cyclic_recv_deadlocks_with_golden_report() {
    let run = || {
        CheckedWorld::run(2, ScheduleCfg::Seeded { seed: 5, preemption_bound: 1 }, |c| {
            // Both ranks recv before anyone sends: classic head-to-head.
            let _ = c.recv(1 - c.rank(), 7);
            c.send(1 - c.rank(), 7, b"late");
        })
        .expect_err("cyclic receives must deadlock")
    };
    let fail = run();
    assert!(
        fail.findings.iter().any(|f| f.kind == FindingKind::Deadlock),
        "expected a deadlock finding:\n{fail}"
    );
    let dl = fail.deadlock.as_ref().expect("deadlock details must be present");
    assert_eq!(dl.pending.len(), 2, "both ranks are blocked:\n{fail}");
    for (rank, p) in dl.pending.iter().enumerate() {
        assert_eq!(p.task, rank, "pending ops are in stable rank order");
        assert!(p.op.contains("recv("), "pending op names the receive: {}", p.op);
    }
    // Backtraces of the blocked receives were captured per rank.
    assert_eq!(dl.backtraces.len(), 2, "per-rank backtraces:\n{fail}");

    assert_replayable(&fail, &run());

    // Golden-file pin of the exact report bytes (bless with
    // SIMCHECK_BLESS=1 after an intentional diagnostic change).
    let golden_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/deadlock_report.txt");
    let got = fail.stable_report();
    if std::env::var_os("SIMCHECK_BLESS").is_some() {
        std::fs::write(golden_path, &got).unwrap();
    }
    let want = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run once with SIMCHECK_BLESS=1");
    assert_eq!(got, want, "deadlock report drifted from the golden file");
}

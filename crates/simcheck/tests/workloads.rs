//! Unmutated workloads must pass the checker clean: the real SION parallel
//! open/write/close/read path and a crash-consistency-style workload, run
//! under [`CheckedWorld`] across a sweep of schedules, with the
//! block-contention sanitizer watching the filesystem.

use simcheck::{schedules, seed_budget, BlockGuardFs, CheckFailure, CheckedWorld, ScheduleCfg};
use simmpi::Comm;
use sion::{paropen_read, paropen_write, Multifile, SionParams};
use std::sync::Arc;
use vfs::{FaultFs, MemFs, Vfs};

/// Deterministic per-rank payload.
fn payload(rank: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 31 + rank * 131 + 7) % 251) as u8).collect()
}

#[test]
fn parallel_roundtrip_clean_across_schedules() {
    let ntasks = 4;
    let len = 3_000;
    // FS-block-aligned params: the §3.2 invariant must hold, so the
    // block-contention sanitizer must stay silent.
    let params = SionParams::new(4096).with_nfiles(2);
    let fs = BlockGuardFs::new(Arc::new(MemFs::with_block_size(4096)));
    let cfgs = schedules(seed_budget().min(8), &[0, 2]);
    let explored = CheckedWorld::explore(ntasks, cfgs, |comm| {
        let fs: &dyn Vfs = &fs;
        let data = payload(comm.rank(), len);
        let mut w = paropen_write(fs, "out/data.sion", &params, comm).unwrap();
        for piece in data.chunks(700 + comm.rank() * 13 + 1) {
            w.write(piece).unwrap();
        }
        let stats = w.close().unwrap();
        assert_eq!(stats.user_bytes, len as u64);

        let mut r = paropen_read(fs, "out/data.sion", comm).unwrap();
        let mut back = vec![0u8; len];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data, "rank {} read-back mismatch", comm.rank());
        r.close().unwrap();
    })
    .unwrap_or_else(|fail| panic!("clean workload flagged:\n{fail}"));
    assert!(explored >= 2, "schedule sweep too small: {explored}");

    // No two tasks ever touched the same FS block (§3.2).
    fs.assert_exclusive();

    // The image is valid after all those interleavings.
    let mf = Multifile::open(&fs, "out/data.sion").unwrap();
    for rank in 0..ntasks {
        assert_eq!(mf.read_rank(rank).unwrap(), payload(rank, len), "rank {rank}");
    }
}

/// Crash-consistency-style workload (buffered rescue-enabled write, kill
/// switch armed mid-run, writers dropped without close — a crash never
/// closes): the checker must not produce false positives. Every error is
/// swallowed by the workload exactly like `sion`'s crash sweep does, so
/// there is no mismatch, no leak and no deadlock to report.
#[test]
fn crash_workload_clean_under_checker() {
    let ntasks = 4;
    let params = SionParams::new(256).with_nfiles(2).with_rescue().with_write_buffer(128);

    fn crashy_run(
        ntasks: usize,
        fs: &FaultFs<MemFs>,
        params: &SionParams,
        cfg: ScheduleCfg,
    ) -> Result<Vec<()>, Box<CheckFailure>> {
        CheckedWorld::run(ntasks, cfg, |comm| {
            let Ok(mut w) = paropen_write(fs, "crash.sion", params, comm) else {
                return;
            };
            for piece in payload(comm.rank(), 700).chunks(100) {
                if w.write(piece).is_err() {
                    return;
                }
            }
            let _ = w.flush();
        })
    }

    // Probe run: learn the op count so the kill switch lands mid-write.
    let probe = FaultFs::new(MemFs::with_block_size(256));
    let cfg = ScheduleCfg::Seeded { seed: 1, preemption_bound: 2 };
    crashy_run(ntasks, &probe, &params, cfg)
        .unwrap_or_else(|fail| panic!("probe run flagged:\n{fail}"));
    let total_ops = probe.op_count();
    assert!(total_ops > 20, "workload too small: {total_ops} ops");

    // Crash at a mid-write point, across several schedules.
    for cfg in schedules(seed_budget().min(4), &[0, 2]) {
        let fs = FaultFs::new(MemFs::with_block_size(256));
        fs.crash_after_ops(total_ops / 2);
        crashy_run(ntasks, &fs, &params, cfg)
            .unwrap_or_else(|fail| panic!("crashed workload flagged ({cfg}):\n{fail}"));
        // The torn image must still be repairable, as in the crash sweep.
        fs.clear();
        let report = sion::rescue::repair(&fs, "crash.sion", false).unwrap();
        assert!(report.is_clean(), "repair not clean at {cfg}: {report:?}");
    }
}

//! Mutation tests on the **task runtime**: the same seeded bug classes as
//! `mutations.rs` (mismatched collective root, reserved-tag collision,
//! cyclic-receive deadlock), but executed as resumable rank tasks under
//! [`CheckedTaskWorld`] — proving the checker's diagnoses survive the move
//! from thread-per-rank to the coroutine executor. The clean control is
//! the real `sion::par` open/write/close/read protocol swept across
//! schedules, which must pass without a finding.

use simcheck::{
    schedules, seed_budget, CheckFailure, CheckedTaskWorld, FindingKind, ScheduleCfg,
    COLL_TAG_PREFIX,
};
use simmpi::CoComm;
use sion::{paropen_read_co, paropen_write_co, Multifile, SionParams};
use vfs::MemFs;

const CFG: ScheduleCfg = ScheduleCfg::Seeded { seed: 11, preemption_bound: 2 };

fn assert_replayable(a: &CheckFailure, b: &CheckFailure) {
    assert_eq!(
        a.stable_report(),
        b.stable_report(),
        "replay under the same ScheduleCfg must reproduce the byte-identical report"
    );
}

/// Deterministic per-rank payload.
fn payload(rank: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 31 + rank * 131 + 7) % 251) as u8).collect()
}

/// Clean control: the full SION parallel protocol as coroutines, across a
/// schedule sweep (including tight preemption bounds), with zero findings.
#[test]
fn parallel_roundtrip_clean_across_task_schedules() {
    let ntasks = 4;
    let len = 3_000;
    let params = SionParams::new(4096).with_nfiles(2);
    let cfgs = schedules(seed_budget().min(8), &[0, 2]);
    let ncfgs = cfgs.len();
    let mut verified = 0;
    for cfg in cfgs {
        let fs = MemFs::with_block_size(4096);
        CheckedTaskWorld::run(ntasks, cfg, |c| {
            let fs = &fs;
            let params = &params;
            async move {
                let data = payload(c.rank(), len);
                let mut w = paropen_write_co(fs, "out/data.sion", params, &c).await.unwrap();
                for piece in data.chunks(700 + c.rank() * 13 + 1) {
                    w.write(piece).unwrap();
                }
                let stats = w.close_co().await.unwrap();
                assert_eq!(stats.user_bytes, len as u64);

                let mut r = paropen_read_co(fs, "out/data.sion", &c).await.unwrap();
                let mut back = vec![0u8; len];
                r.read_exact(&mut back).unwrap();
                assert_eq!(back, data, "rank {} read-back mismatch", c.rank());
                r.close_co().await.unwrap();
            }
        })
        .unwrap_or_else(|fail| panic!("clean task workload flagged:\n{fail}"));

        // The image is valid after this interleaving.
        let mf = Multifile::open(&fs, "out/data.sion").unwrap();
        for rank in 0..ntasks {
            assert_eq!(mf.read_rank(rank).unwrap(), payload(rank, len), "rank {rank}");
        }
        verified += 1;
    }
    assert!(verified == ncfgs && verified >= 2, "schedule sweep too small: {verified}");
}

/// Bug class 1: ranks disagree on a collective's root — same index bug as
/// the thread-runtime test, diagnosed identically on the task runtime.
#[test]
fn mismatched_root_is_flagged_on_task_runtime() {
    let run = || {
        CheckedTaskWorld::run(4, CFG, |c| async move {
            // Every rank names itself as the root: a classic index bug.
            c.bcast(Some(vec![1, 2, 3]), c.rank()).await;
        })
        .expect_err("mismatched bcast roots must not pass")
    };
    let fail = run();
    assert!(
        fail.findings.iter().any(|f| f.kind == FindingKind::CollectiveMismatch),
        "expected a collective-mismatch finding:\n{fail}"
    );
    assert!(
        fail.findings.iter().any(|f| f.message.contains("bcast(root=")),
        "finding must name the mismatching operations:\n{fail}"
    );
    assert_replayable(&fail, &run());
}

/// Bug class 2: a user point-to-point tag colliding with the reserved
/// collective namespace (top byte 0xC3).
#[test]
fn reserved_tag_collision_is_flagged_on_task_runtime() {
    let crafted = COLL_TAG_PREFIX | (1u64 << 48);
    let run = || {
        CheckedTaskWorld::run(2, CFG, |c| async move {
            if c.rank() == 0 {
                c.send(1, crafted, b"oops");
            }
        })
        .expect_err("reserved-namespace tag must be rejected")
    };
    let fail = run();
    assert!(
        fail.findings.iter().any(|f| f.kind == FindingKind::ReservedTag),
        "expected a reserved-tag finding:\n{fail}"
    );
    assert_replayable(&fail, &run());
}

/// Bug class 4 (the deadlock satellite): both ranks receive first. The
/// executor's exact quiescence detection — no watchdog — must name each
/// rank's pending operation, and the report must replay byte-for-byte.
#[test]
fn cyclic_recv_deadlocks_on_task_runtime() {
    let run = || {
        CheckedTaskWorld::run(2, ScheduleCfg::Seeded { seed: 5, preemption_bound: 1 }, |c| async move {
            // Both ranks recv before anyone sends: classic head-to-head.
            let _ = c.recv(1 - c.rank(), 7).await;
            c.send(1 - c.rank(), 7, b"late");
        })
        .expect_err("cyclic receives must deadlock")
    };
    let fail = run();
    assert!(
        fail.findings.iter().any(|f| f.kind == FindingKind::Deadlock),
        "expected a deadlock finding:\n{fail}"
    );
    let dl = fail.deadlock.as_ref().expect("deadlock details must be present");
    assert_eq!(dl.pending.len(), 2, "both ranks are blocked:\n{fail}");
    for (rank, p) in dl.pending.iter().enumerate() {
        assert_eq!(p.task, rank, "pending ops are in stable rank order");
        assert!(p.op.contains("recv("), "pending op names the receive: {}", p.op);
    }
    // Poll-granularity futures park by returning, not by blocking a
    // thread, so there is no stack to walk: backtraces are empty by
    // design on the task runtime (the op text carries the diagnosis).
    assert!(dl.backtraces.is_empty(), "task runtime reports no backtraces:\n{fail}");
    // The poll trace that led here is part of the replayable evidence.
    assert!(!fail.trace.is_empty(), "decision trace must be recorded:\n{fail}");

    assert_replayable(&fail, &run());
}

/// A preemption bound of zero is the strictest schedule — run each task
/// until it parks, never preempting a runnable one — and a correct
/// collective program must still complete under it.
#[test]
fn preemption_bound_zero_still_completes() {
    for seed in 0..4 {
        let cfg = ScheduleCfg::Seeded { seed, preemption_bound: 0 };
        let sums = CheckedTaskWorld::run(6, cfg, |c| async move {
            let all = c.allgather_u64(c.rank() as u64 * 3).await;
            c.barrier().await;
            all.iter().sum::<u64>()
        })
        .unwrap_or_else(|fail| panic!("bound-0 schedule flagged (seed {seed}):\n{fail}"));
        assert_eq!(sums, vec![45; 6], "seed {seed}");
    }
}

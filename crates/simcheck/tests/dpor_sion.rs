//! Exhaustive DPOR exploration of `sion::par` open/write/close.
//!
//! Small configurations of the real collective write protocol are run
//! under [`simcheck::Dpor`] on the driven serial task runtime, in both
//! I/O modes. Every run carries the full checker stack: the [`Sanitizer`]
//! (collective/tag/leak discipline), an [`HbEngine`] fed by an
//! [`OrderGuardFs`] (byte-extent races and ack durability), and the DPOR
//! recorder itself — so "explored exhaustively" means every inequivalent
//! schedule was deadlock-, finding-, race- and violation-free.
//!
//! The explored-schedule counts are pinned: a drift means the protocol's
//! visible-event structure changed, which is exactly what this suite
//! exists to notice (re-measure with `bench --bin dpor_stats`). The
//! first run's decision trace for the aggregated 3-rank case is pinned
//! as a golden file (bless with `SIMCHECK_BLESS=1`).
//!
//! Four ranks is where exhaustion honestly ends on a CI box: the 4-rank
//! *independent* space is already 163 837 classes (~4 min), and one
//! aggregator with three members blows a 200 k cap — `dpor_stats`
//! reports those growth rates; nothing here truncates silently.

use simcheck::{Dpor, DporOutcome, HbEngine, HookChain, OrderGuardFs, Sanitizer, SinkChain};
use simmpi::{CheckHook, CoComm, TaskWorld};
use sion::{paropen_write_co, IoMode, SionParams};
use std::sync::Arc;
use vfs::{MemFs, Vfs};

/// Run the collective write protocol (open, two 40-byte writes, close)
/// under exhaustive DPOR with the full checker stack installed. Panics on
/// any sanitizer finding, deadlock, rank panic, race, ack violation, or
/// a capped exploration; returns the exploration report.
fn explore_par_write(ntasks: usize, io_mode: IoMode) -> DporOutcome {
    let out = Dpor::default().explore(|h| {
        let engine = Arc::new(HbEngine::new());
        let san = Arc::new(Sanitizer::new());
        // Extents feed both the race checker and the DPOR footprint
        // recorder: file conflicts are schedule-relevant too.
        let sink = Arc::new(SinkChain::new(vec![engine.clone(), h.sink()]));
        let fs: Arc<dyn Vfs> =
            Arc::new(OrderGuardFs::new(Arc::new(MemFs::with_block_size(256)), sink));
        let hook: Arc<dyn CheckHook> =
            Arc::new(HookChain::new(vec![h.recorder(), san.clone(), engine.clone()]));
        let params =
            SionParams::new(96).with_alignment(sion::Alignment::None).with_io_mode(io_mode);
        let run = TaskWorld::run_driven(ntasks, hook, h.driver(), |c| {
            let fs = fs.clone();
            let params = params.clone();
            async move {
                let rank = c.rank();
                let mut w = paropen_write_co(fs.as_ref(), "dpor/m.sion", &params, &c)
                    .await
                    .expect("collective open succeeds");
                w.write(&[rank as u8 + 1; 40]).expect("write succeeds");
                w.write(&[rank as u8 + 129; 40]).expect("write succeeds");
                w.close_co().await.expect("collective close succeeds")
            }
        });
        assert!(run.deadlock.is_none(), "deadlock under DPOR schedule");
        for r in run.results {
            r.unwrap_or_else(|p| {
                panic!("rank panicked under DPOR schedule: {:?}", p.downcast_ref::<String>())
            });
        }
        let findings = san.findings();
        assert!(findings.is_empty(), "sanitizer findings under DPOR schedule: {findings:?}");
        engine.assert_race_free(&format!("par write, {ntasks} ranks"));
        None
    });
    assert!(out.failure.is_none());
    assert!(!out.capped, "exploration hit the schedule cap: {}", out.summary());
    out
}

#[test]
fn independent_mode_explores_exhaustively() {
    let two = explore_par_write(2, IoMode::Independent);
    let three = explore_par_write(3, IoMode::Independent);
    println!("independent 2 ranks: {}", two.summary());
    println!("independent 3 ranks: {}", three.summary());
    // Two ranks: every dependent pair is order-forced (the collective
    // tree between two ranks leaves no reversible race whose loser is
    // runnable), so one schedule covers the space.
    assert_eq!(two.explored, 1, "{}", two.summary());
    // Three ranks: the tree's first interior choice appears.
    assert_eq!(three.explored, 256, "{}", three.summary());
    assert_eq!(three.pruned, 769, "{}", three.summary());
}

#[test]
fn aggregated_mode_explores_exhaustively() {
    // Alignment::None leaves no FS-block-clean interior boundary, so the
    // election collapses to one aggregator per file regardless of
    // tasks_per_aggregator: these cases are one aggregator serving
    // (ranks - 1) remote members over the ship/ack protocol.
    let two = explore_par_write(2, IoMode::Aggregated { tasks_per_aggregator: 2 });
    let three = explore_par_write(3, IoMode::Aggregated { tasks_per_aggregator: 3 });
    println!("aggregated 2 ranks: {}", two.summary());
    println!("aggregated 3 ranks: {}", three.summary());
    // One remote member: ship, replay, ack happen under a schedule with
    // no reversible race left runnable — one schedule covers it.
    assert_eq!(two.explored, 1, "{}", two.summary());
    // Two remote members racing their shipments into one aggregator.
    assert_eq!(three.explored, 704, "{}", three.summary());
    assert_eq!(three.pruned, 2881, "{}", three.summary());
}

/// The first (unforced) run's decision trace is a pure function of the
/// program — pin it. A drift here means the scheduler's default order or
/// the protocol's schedule-point structure changed.
#[test]
fn aggregated_decision_trace_matches_golden() {
    let out = explore_par_write(3, IoMode::Aggregated { tasks_per_aggregator: 3 });
    let mut rendered = format!("{}\n", out.summary());
    rendered.push_str(&out.first_trace.join("\n"));
    rendered.push('\n');
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/dpor_trace_agg3.txt");
    if std::env::var_os("SIMCHECK_BLESS").is_some() {
        std::fs::write(golden, &rendered).expect("bless golden");
    } else {
        let want =
            std::fs::read_to_string(golden).expect("golden exists; SIMCHECK_BLESS=1 to create");
        assert_eq!(rendered, want, "DPOR decision trace drifted from golden");
    }
}

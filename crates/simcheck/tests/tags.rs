//! Tag-discipline properties: the reserved namespaces (collectives, top
//! byte 0xC3; aggregation ship/ack, top bytes 0xA6/0xA7) and user tags can
//! never collide, the wire encoding round-trips, and the runtime rejects
//! crafted collisions.

use proptest::prelude::*;
use simcheck::{
    decode_coll_tag, describe_tag, is_agg_tag, is_reserved_tag, CollKind, AGG_ACK_TAG_PREFIX,
    AGG_SHIP_TAG_PREFIX, COLL_TAG_MASK, COLL_TAG_PREFIX,
};

/// Build a collective wire tag the way the runtime does: prefix, op-kind
/// byte, 40-bit sequence number, round byte.
fn make_coll_tag(kind: CollKind, seq: u64, round: u8) -> u64 {
    COLL_TAG_PREFIX | ((kind.code() as u64) << 48) | ((seq & 0xFF_FFFF_FFFF) << 8) | round as u64
}

const KINDS: [CollKind; 7] = [
    CollKind::Barrier,
    CollKind::Bcast,
    CollKind::Gather,
    CollKind::Scatter,
    CollKind::Allgather,
    CollKind::Reduce,
    CollKind::Split,
];

proptest! {
    /// A user tag outside the reserved namespace is never reserved, never
    /// decodes as a collective, and can never equal any collective tag.
    #[test]
    fn user_tags_cannot_collide(user in any::<u64>(), kind_sel in 0usize..7, seq in any::<u64>(), round in any::<u8>()) {
        prop_assume!(user & COLL_TAG_MASK != COLL_TAG_PREFIX && !is_agg_tag(user));
        prop_assert!(!is_reserved_tag(user));
        prop_assert!(decode_coll_tag(user).is_none());
        let coll = make_coll_tag(KINDS[kind_sel], seq, round);
        prop_assert!(is_reserved_tag(coll));
        // Disjoint namespaces cannot intersect.
        prop_assert_ne!(user, coll);
        // The ship/ack namespaces are reserved like 0xC3 but are not
        // collectives: they never decode, and they render by name (a leak
        // report must say "agg-ship", not raw hex).
        for ns in [AGG_SHIP_TAG_PREFIX, AGG_ACK_TAG_PREFIX] {
            let agg = ns | (user & !COLL_TAG_MASK);
            prop_assert!(is_agg_tag(agg) && is_reserved_tag(agg));
            prop_assert!(decode_coll_tag(agg).is_none());
            prop_assert_ne!(agg, coll);
            let shown = describe_tag(agg);
            prop_assert!(shown.starts_with("agg-ship:") || shown.starts_with("agg-ack:"), "{}", shown);
        }
    }

    /// The wire encoding round-trips through the decoder.
    #[test]
    fn coll_tag_roundtrips(kind_sel in 0usize..7, seq in any::<u64>(), round in any::<u8>()) {
        let kind = KINDS[kind_sel];
        let tag = make_coll_tag(kind, seq, round);
        let (k, s, r) = decode_coll_tag(tag).expect("crafted collective tag must decode");
        prop_assert_eq!(k, kind);
        prop_assert_eq!(s, seq & 0xFF_FFFF_FFFF);
        prop_assert_eq!(r, round);
        // The human-readable form names the op and round.
        let shown = describe_tag(tag);
        prop_assert!(shown.contains(kind.name()), "{}", shown);
    }
}

/// The runtime rejects a crafted collision outright — in the env-gated
/// passive mode exactly as in the scheduled mode (covered in mutations.rs).
#[test]
fn runtime_rejects_crafted_collision() {
    use simcheck::{CheckedWorld, FindingKind, ScheduleCfg};
    use simmpi::Comm;
    for kind in KINDS {
        let crafted = make_coll_tag(kind, 3, 1);
        let fail = CheckedWorld::run(2, ScheduleCfg::Seeded { seed: 0, preemption_bound: 0 }, move |c| {
            if c.rank() == 1 {
                c.send(0, crafted, &[1]);
            }
        })
        .expect_err("crafted collision must be rejected");
        assert!(
            fail.findings.iter().any(|f| f.kind == FindingKind::ReservedTag),
            "kind {kind:?}: expected reserved-tag finding:\n{fail}"
        );
    }
}

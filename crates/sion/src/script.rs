//! I/O-script generation for the timing simulator.
//!
//! The paper's timing experiments run at up to 64 Ki tasks — far beyond
//! what we can execute as real threads. This module derives `parfs`
//! workloads ([`ScriptSet`]) from the *same layout and protocol code* the
//! real library executes: the collective open/close message pattern of
//! [`crate::par`], chunk capacities and block sharing from
//! [`crate::layout`], and the baseline access patterns the paper compares
//! against (one-file-per-task and single-file-sequential). Because the
//! scripts are generated from the production code paths, the simulated
//! access pattern cannot drift from the implementation.
//!
//! All generators produce symmetric task *classes* (e.g. "file masters"
//! and "workers"), which is what keeps 64 Ki-task simulations cheap.

use crate::format::MetaBlock1;
use crate::layout::{align_up, Alignment, FileLayout};
use parfs::{FileRef, IoOp, ScriptClass, ScriptSet};

/// Parameters of a simulated multifile experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimSpec {
    /// Total number of application tasks.
    pub ntasks: u64,
    /// Number of physical files of the multifile.
    pub nfiles: u32,
    /// Per-task chunk-size request (bytes).
    pub chunk_req: u64,
    /// User bytes each task writes/reads.
    pub bytes_per_task: u64,
    /// Alignment unit SIONlib is configured with (its `fsblksize`
    /// parameter). Equal to `real_fsblk` when correctly configured; the
    /// paper's Table 1 deliberately sets 16 KiB on a 2 MiB file system.
    pub align_unit: u64,
    /// The file system's real block size (write-lock granularity).
    pub real_fsblk: u64,
}

impl SimSpec {
    /// A correctly-aligned spec writing `bytes_per_task` with one chunk per
    /// task on a machine with block size `real_fsblk`.
    pub fn aligned(ntasks: u64, nfiles: u32, bytes_per_task: u64, real_fsblk: u64) -> SimSpec {
        SimSpec {
            ntasks,
            nfiles,
            chunk_req: bytes_per_task.max(1),
            bytes_per_task,
            align_unit: real_fsblk,
            real_fsblk,
        }
    }

    /// Tasks mapped to the first (largest) physical file under the blocked
    /// mapping.
    fn ntasks_local(&self) -> u64 {
        self.ntasks.div_ceil(self.nfiles as u64)
    }

    /// The chunk layout of one physical file, computed with the real
    /// production layout code.
    pub fn layout(&self) -> FileLayout {
        let reqs = vec![self.chunk_req.max(1); self.ntasks_local() as usize];
        FileLayout::compute(&reqs, self.real_fsblk, Alignment::Fixed(self.align_unit), false)
            .expect("valid spec")
    }

    /// Mean number of tasks sharing each real FS block (1.0 when aligned).
    pub fn sharers(&self) -> f64 {
        self.layout().block_sharing(self.real_fsblk).mean_sharers
    }

    /// Stored bytes a task's data occupies on disk, including the
    /// block-allocation floor: with block-aligned chunks, a file system
    /// materializes whole blocks, so even tiny per-task data costs one
    /// block (the MP2C effect in the paper's Fig. 6).
    pub fn effective_bytes(&self) -> u64 {
        if self.bytes_per_task == 0 {
            return 0;
        }
        if self.align_unit.is_multiple_of(self.real_fsblk) {
            align_up(self.bytes_per_task, self.real_fsblk)
        } else {
            self.bytes_per_task
        }
    }

    /// Size of metablock 1 for one physical file.
    pub fn mb1_bytes(&self) -> u64 {
        MetaBlock1::encoded_len(self.ntasks_local() as usize)
    }

    /// Size of metablock 2 for one physical file holding `nblocks` blocks.
    pub fn mb2_bytes(&self, nblocks: u64) -> u64 {
        crate::format::MB2_FIXED_LEN
            + 8 * nblocks * self.ntasks_local()
            + crate::format::TRAILER_LEN
    }

    /// Number of blocks a task needs for its data.
    pub fn nblocks(&self) -> u64 {
        if self.bytes_per_task == 0 {
            1
        } else {
            self.bytes_per_task.div_ceil(self.layout().usable(0).max(1))
        }
    }
}

/// Per-task payload sizes of the open/close metadata exchange (bytes):
/// chunk-size request up, chunk geometry down, per-block usage up.
const REQ_BYTES: u64 = 8;
const GEOM_BYTES: u64 = 6 * 8;

/// Ops of the collective open in write mode, from the perspective of a
/// file master / a worker (mirrors [`crate::par::paropen_write`]).
fn open_write_ops(spec: &SimSpec, file: u32, master: bool) -> Vec<IoOp> {
    let mut ops = vec![
        IoOp::Gather { bytes: REQ_BYTES },  // chunk-size requests
        IoOp::Gather { bytes: REQ_BYTES },  // global ranks
    ];
    if master {
        ops.push(IoOp::Create(FileRef::Shared(file)));
        ops.push(IoOp::Write {
            file: FileRef::Shared(file),
            bytes: spec.mb1_bytes(),
            sharers: 1.0,
        });
    }
    ops.push(IoOp::Bcast { bytes: 8 }); // master status word
    ops.push(IoOp::Scatter { bytes: GEOM_BYTES });
    if !master {
        ops.push(IoOp::Open(FileRef::Shared(file)));
    }
    ops
}

/// Ops of the collective close (mirrors `SionParWriter::close`).
fn close_ops(spec: &SimSpec, file: u32, master: bool, nblocks: u64) -> Vec<IoOp> {
    let mut ops = vec![IoOp::Gather { bytes: 8 * nblocks }];
    if master {
        ops.push(IoOp::Write {
            file: FileRef::Shared(file),
            bytes: spec.mb2_bytes(nblocks),
            sharers: 1.0,
        });
    }
    ops.push(IoOp::Bcast { bytes: 8 });
    ops.push(IoOp::Barrier);
    ops
}

/// Build per-file master/worker classes for a multifile workload. `mid`
/// produces the data-phase ops each task runs against its own physical
/// file. One master class (count 1) and one worker class (count
/// `local - 1`) are emitted per physical file, so per-file striping and
/// client-sharing effects are simulated per file (the paper's Fig. 4
/// depends on exactly this).
fn multifile_classes(
    spec: &SimSpec,
    write_mode: bool,
    mid: impl Fn(u32) -> Vec<IoOp>,
) -> ScriptSet {
    let nb = spec.nblocks();
    let nfiles = (spec.nfiles as u64).min(spec.ntasks) as u32;
    let mk = |file: u32, master: bool| {
        let mut ops = if write_mode {
            open_write_ops(spec, file, master)
        } else {
            open_read_ops(spec, file, master)
        };
        ops.extend(mid(file));
        ops.extend(if write_mode {
            close_ops(spec, file, master, nb)
        } else {
            vec![IoOp::Barrier]
        });
        ops
    };
    // Blocked mapping: the first `rem` files hold one extra task.
    let base = spec.ntasks / nfiles as u64;
    let rem = spec.ntasks % nfiles as u64;
    let mut classes = Vec::with_capacity(2 * nfiles as usize);
    for k in 0..nfiles {
        let local = base + if (k as u64) < rem { 1 } else { 0 };
        classes.push(ScriptClass { count: 1, ops: mk(k, true) });
        if local > 1 {
            classes.push(ScriptClass { count: local - 1, ops: mk(k, false) });
        }
    }
    ScriptSet { ntasks: spec.ntasks, classes }
}

/// Ops of the collective open in read mode (mirrors
/// [`crate::par::paropen_read`]): the global master reads every metablock,
/// broadcasts the rank map, file masters scatter geometry and usage.
fn open_read_ops(spec: &SimSpec, file: u32, master: bool) -> Vec<IoOp> {
    let mut ops = Vec::new();
    if master {
        // Approximation: every file master stands in for the discovery
        // reads of its own file's metablocks.
        ops.push(IoOp::Open(FileRef::Shared(file)));
        ops.push(IoOp::Read {
            file: FileRef::Shared(file),
            bytes: spec.mb1_bytes(),
            sharers: 1.0,
        });
        ops.push(IoOp::Read {
            file: FileRef::Shared(file),
            bytes: spec.mb2_bytes(spec.nblocks()),
            sharers: 1.0,
        });
    }
    // Status word plus the full rank map from the global master.
    ops.push(IoOp::Bcast { bytes: 8 + 8 * spec.ntasks });
    ops.push(IoOp::Scatter { bytes: GEOM_BYTES + 8 * spec.nblocks() });
    if !master {
        ops.push(IoOp::Open(FileRef::Shared(file)));
    }
    ops
}

/// SIONlib parallel write: collective open, every task writes its data,
/// collective close. The data op's `sharers` comes from the real layout.
pub fn sion_par_write(spec: &SimSpec) -> ScriptSet {
    let (bytes, sharers) = (spec.effective_bytes(), spec.sharers());
    multifile_classes(spec, true, move |file| {
        if bytes > 0 {
            vec![IoOp::Write { file: FileRef::Shared(file), bytes, sharers }]
        } else {
            Vec::new()
        }
    })
}

/// SIONlib parallel read of the same multifile.
pub fn sion_par_read(spec: &SimSpec) -> ScriptSet {
    let (bytes, sharers) = (spec.effective_bytes(), spec.sharers());
    multifile_classes(spec, false, move |file| {
        if bytes > 0 {
            vec![IoOp::Read { file: FileRef::Shared(file), bytes, sharers }]
        } else {
            Vec::new()
        }
    })
}

/// SIONlib multifile creation only (open + close without data) — the
/// "SION create files" series of the paper's Fig. 3.
pub fn sion_create(spec: &SimSpec) -> ScriptSet {
    let mut s = *spec;
    s.bytes_per_task = 0;
    multifile_classes(&s, true, |_| Vec::new())
}

/// The multiple-file-parallel baseline: every task creates its own file in
/// one shared directory (Fig. 3 "create files").
pub fn task_local_create(ntasks: u64) -> ScriptSet {
    ScriptSet {
        ntasks,
        classes: vec![ScriptClass { count: ntasks, ops: vec![IoOp::Create(FileRef::Own)] }],
    }
}

/// Opening pre-existing task-local files in parallel (Fig. 3 "open
/// existing files").
pub fn task_local_open(ntasks: u64) -> ScriptSet {
    ScriptSet {
        ntasks,
        classes: vec![ScriptClass { count: ntasks, ops: vec![IoOp::Open(FileRef::Own)] }],
    }
}

/// Task-local-file write: create own file, write the payload.
pub fn task_local_write(ntasks: u64, bytes_per_task: u64, real_fsblk: u64) -> ScriptSet {
    ScriptSet {
        ntasks,
        classes: vec![ScriptClass {
            count: ntasks,
            ops: vec![
                IoOp::Create(FileRef::Own),
                IoOp::Write {
                    file: FileRef::Own,
                    bytes: align_up(bytes_per_task.max(1), real_fsblk),
                    sharers: 1.0,
                },
            ],
        }],
    }
}

/// Task-local-file read: open own file, read the payload.
pub fn task_local_read(ntasks: u64, bytes_per_task: u64, real_fsblk: u64) -> ScriptSet {
    ScriptSet {
        ntasks,
        classes: vec![ScriptClass {
            count: ntasks,
            ops: vec![
                IoOp::Open(FileRef::Own),
                IoOp::Read {
                    file: FileRef::Own,
                    bytes: align_up(bytes_per_task.max(1), real_fsblk),
                    sharers: 1.0,
                },
            ],
        }],
    }
}

/// The single-file-sequential baseline (paper §1; MP2C's original
/// checkpoint path): a designated I/O task gathers all data in
/// buffer-limited rounds and writes it serially to one file.
pub fn single_file_seq_write(
    ntasks: u64,
    bytes_per_task: u64,
    master_buffer: u64,
) -> ScriptSet {
    let total = ntasks * bytes_per_task;
    let rounds = total.div_ceil(master_buffer).max(1);
    let per_round = bytes_per_task.div_ceil(rounds);
    let mut master = vec![IoOp::Create(FileRef::Shared(0))];
    let mut worker = Vec::new();
    for _ in 0..rounds {
        master.push(IoOp::Gather { bytes: per_round });
        master.push(IoOp::Write {
            file: FileRef::Shared(0),
            bytes: per_round * ntasks,
            sharers: 1.0,
        });
        worker.push(IoOp::Gather { bytes: per_round });
    }
    master.push(IoOp::Barrier);
    worker.push(IoOp::Barrier);
    ScriptSet {
        ntasks,
        classes: vec![
            ScriptClass { count: 1, ops: master },
            ScriptClass { count: ntasks - 1, ops: worker },
        ],
    }
}

/// Single-file-sequential read: the designated task reads rounds and
/// scatters them back out.
pub fn single_file_seq_read(ntasks: u64, bytes_per_task: u64, master_buffer: u64) -> ScriptSet {
    let total = ntasks * bytes_per_task;
    let rounds = total.div_ceil(master_buffer).max(1);
    let per_round = bytes_per_task.div_ceil(rounds);
    let mut master = vec![IoOp::Open(FileRef::Shared(0))];
    let mut worker = Vec::new();
    for _ in 0..rounds {
        master.push(IoOp::Read {
            file: FileRef::Shared(0),
            bytes: per_round * ntasks,
            sharers: 1.0,
        });
        master.push(IoOp::Scatter { bytes: per_round });
        worker.push(IoOp::Scatter { bytes: per_round });
    }
    master.push(IoOp::Barrier);
    worker.push(IoOp::Barrier);
    ScriptSet {
        ntasks,
        classes: vec![
            ScriptClass { count: 1, ops: master },
            ScriptClass { count: ntasks - 1, ops: worker },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_validate() {
        let spec = SimSpec::aligned(1024, 16, 8 << 20, 2 << 20);
        for wl in [
            sion_par_write(&spec),
            sion_par_read(&spec),
            sion_create(&spec),
            task_local_create(1024),
            task_local_open(1024),
            task_local_write(1024, 8 << 20, 2 << 20),
            task_local_read(1024, 8 << 20, 2 << 20),
            single_file_seq_write(1024, 8 << 20, 512 << 20),
            single_file_seq_read(1024, 8 << 20, 512 << 20),
        ] {
            wl.validate().expect("generated workload must validate");
        }
    }

    #[test]
    fn aligned_spec_has_no_sharing() {
        let spec = SimSpec::aligned(256, 4, 4 << 20, 2 << 20);
        assert!((spec.sharers() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table1_spec_shares_heavily() {
        // 16 KiB chunks on a 2 MiB file system: up to 128 tasks per block.
        let spec = SimSpec {
            ntasks: 32768,
            nfiles: 16,
            chunk_req: 16 << 10,
            bytes_per_task: 8 << 20,
            align_unit: 16 << 10,
            real_fsblk: 2 << 20,
        };
        let s = spec.sharers();
        assert!(s > 50.0, "expected heavy sharing, got {s}");
    }

    #[test]
    fn effective_bytes_has_block_floor() {
        // 52 KB of particle data still costs one 2 MiB block (Fig. 6).
        let spec = SimSpec::aligned(1000, 1, 52_000, 2 << 20);
        assert_eq!(spec.effective_bytes(), 2 << 20);
        // Large data rounds to the next block only.
        let spec = SimSpec::aligned(1000, 1, (512 << 20) + 5, 2 << 20);
        assert_eq!(spec.effective_bytes(), (512 << 20) + (2 << 20));
    }

    #[test]
    fn sion_create_issues_nfiles_creates_only() {
        let spec = SimSpec::aligned(4096, 8, 1 << 20, 2 << 20);
        let wl = sion_create(&spec);
        let creates: u64 = wl
            .classes
            .iter()
            .map(|c| {
                c.count * c.ops.iter().filter(|o| matches!(o, IoOp::Create(_))).count() as u64
            })
            .sum();
        assert_eq!(creates, 8);
        // Workers open the file instead.
        let opens: u64 = wl
            .classes
            .iter()
            .map(|c| c.count * c.ops.iter().filter(|o| matches!(o, IoOp::Open(_))).count() as u64)
            .sum();
        assert_eq!(opens, 4096 - 8);
    }

    #[test]
    fn task_local_create_issues_one_create_per_task() {
        let wl = task_local_create(65536);
        assert_eq!(wl.ntasks, 65536);
        assert_eq!(wl.classes.len(), 1);
        assert_eq!(wl.classes[0].ops, vec![IoOp::Create(FileRef::Own)]);
    }

    #[test]
    fn single_file_seq_rounds_respect_buffer() {
        // 1000 tasks x 1 MB = 1 GB total with a 256 MB buffer: 4 rounds.
        let wl = single_file_seq_write(1000, 1 << 20, 256 << 20);
        let master = &wl.classes[0];
        let gathers = master.ops.iter().filter(|o| matches!(o, IoOp::Gather { .. })).count();
        assert_eq!(gathers, 4);
        // Total written equals (rounded-up) total data.
        assert!(wl.total_write_bytes() >= 1000 * (1 << 20));
    }

    #[test]
    fn nblocks_counts_chunk_spill() {
        let spec = SimSpec {
            ntasks: 64,
            nfiles: 1,
            chunk_req: 2 << 20,
            bytes_per_task: 5 << 20,
            align_unit: 2 << 20,
            real_fsblk: 2 << 20,
        };
        assert_eq!(spec.nblocks(), 3); // 5 MiB over 2 MiB chunks
    }
}

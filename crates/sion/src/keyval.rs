//! Key-value access: multiple tagged substreams within one task's logical
//! file.
//!
//! The paper's §6 road map calls for "more systematic support for
//! multithreaded applications" — hybrid MPI/OpenMP codes have *several*
//! logical streams per MPI task (one per thread). SIONlib later grew a
//! key-value API (`sion_fwrite_key` / `sion_fread_key`) for exactly this;
//! we implement it here: writers interleave `(key, record)` pairs into the
//! task's ordinary logical stream, and readers demultiplex them — either
//! sequentially or per key.
//!
//! The wire format is self-delimiting and sits entirely *above* the chunk
//! layer, so it composes with alignment, multiple physical files,
//! compression, and rescue recovery unchanged:
//!
//! ```text
//! +-------------+---------+---------+--------------+
//! | magic (u32) | key u64 | len u64 | len data ... |
//! +-------------+---------+---------+--------------+
//! ```

use crate::error::{Result, SionError};
use crate::par::{SionParReader, SionParWriter};
use crate::serial::{RankReader, SerialWriter};

/// Magic prefixing every key-value record.
pub const KV_MAGIC: u32 = 0x4B_56_52_43; // "KVRC"

/// Header bytes per record.
pub const KV_HEADER_LEN: usize = 4 + 8 + 8;

/// Anything that can append bytes to a logical task stream.
pub trait StreamWrite {
    /// Append `data` to the logical stream (chunk-splitting).
    fn write_stream(&mut self, data: &[u8]) -> Result<()>;
}

impl StreamWrite for SionParWriter {
    fn write_stream(&mut self, data: &[u8]) -> Result<()> {
        self.write(data)
    }
}

impl StreamWrite for SerialWriter {
    fn write_stream(&mut self, data: &[u8]) -> Result<()> {
        self.write(data)
    }
}

/// Anything that can read bytes off a logical task stream.
pub trait StreamRead {
    /// Read up to `buf.len()` bytes; 0 at end of stream.
    fn read_stream(&mut self, buf: &mut [u8]) -> Result<usize>;
}

impl StreamRead for SionParReader {
    fn read_stream(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.read(buf)
    }
}

impl StreamRead for RankReader {
    fn read_stream(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.read_some(buf)
    }
}

/// Writer of tagged records (`sion_fwrite_key`).
pub struct KeyValWriter<W: StreamWrite> {
    inner: W,
    records: u64,
}

impl<W: StreamWrite> KeyValWriter<W> {
    /// Wrap a logical-stream writer.
    pub fn new(inner: W) -> Self {
        KeyValWriter { inner, records: 0 }
    }

    /// Append one record under `key`.
    pub fn write_key(&mut self, key: u64, data: &[u8]) -> Result<()> {
        let mut header = [0u8; KV_HEADER_LEN];
        header[0..4].copy_from_slice(&KV_MAGIC.to_le_bytes());
        header[4..12].copy_from_slice(&key.to_le_bytes());
        header[12..20].copy_from_slice(&(data.len() as u64).to_le_bytes());
        self.inner.write_stream(&header)?;
        self.inner.write_stream(data)?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Unwrap (e.g. to call the collective close).
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Access the wrapped writer (e.g. for untagged interludes — not
    /// recommended once keyed records are in flight).
    pub fn inner_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

/// Reader of tagged records (`sion_fread_key`).
pub struct KeyValReader<R: StreamRead> {
    inner: R,
    done: bool,
}

impl<R: StreamRead> KeyValReader<R> {
    /// Wrap a logical-stream reader positioned at the start of the stream.
    pub fn new(inner: R) -> Self {
        KeyValReader { inner, done: false }
    }

    fn read_exact_opt(&mut self, buf: &mut [u8]) -> Result<bool> {
        // True = filled; false = clean end-of-stream before the first byte.
        let mut got = 0;
        while got < buf.len() {
            let n = self.inner.read_stream(&mut buf[got..])?;
            if n == 0 {
                if got == 0 {
                    return Ok(false);
                }
                return Err(SionError::Format(
                    "key-value stream truncated mid-record".into(),
                ));
            }
            got += n;
        }
        Ok(true)
    }

    /// Read the next record in stream order; `None` at end of stream.
    pub fn next_record(&mut self) -> Result<Option<(u64, Vec<u8>)>> {
        if self.done {
            return Ok(None);
        }
        let mut header = [0u8; KV_HEADER_LEN];
        if !self.read_exact_opt(&mut header)? {
            self.done = true;
            return Ok(None);
        }
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if magic != KV_MAGIC {
            return Err(SionError::Format(format!(
                "bad key-value record magic {magic:#x} (stream not written in key mode?)"
            )));
        }
        let key = u64::from_le_bytes(header[4..12].try_into().unwrap());
        let len = u64::from_le_bytes(header[12..20].try_into().unwrap());
        let mut data = vec![0u8; len as usize];
        if !self.read_exact_opt(&mut data)? && len > 0 {
            return Err(SionError::Format("key-value record body missing".into()));
        }
        Ok(Some((key, data)))
    }

    /// Demultiplex the whole stream: every record grouped by key, in
    /// stream order within each key.
    pub fn read_all(mut self) -> Result<KeyValIndex> {
        let mut index = KeyValIndex::default();
        while let Some((key, data)) = self.next_record()? {
            let entry = index
                .keys
                .iter_mut()
                .find(|(k, _)| *k == key);
            match entry {
                Some((_, records)) => records.push(data),
                None => index.keys.push((key, vec![data])),
            }
        }
        Ok(index)
    }
}

/// All records of a stream, grouped by key (first-appearance order).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct KeyValIndex {
    /// `(key, records-in-order)` pairs.
    pub keys: Vec<(u64, Vec<Vec<u8>>)>,
}

impl KeyValIndex {
    /// Records of `key`, if any.
    pub fn records(&self, key: u64) -> Option<&[Vec<u8>]> {
        self.keys.iter().find(|(k, _)| *k == key).map(|(_, r)| r.as_slice())
    }

    /// Concatenated content of `key`'s records (its substream).
    pub fn substream(&self, key: u64) -> Vec<u8> {
        self.records(key).map(|rs| rs.concat()).unwrap_or_default()
    }

    /// Keys present, in first-appearance order.
    pub fn key_list(&self) -> Vec<u64> {
        self.keys.iter().map(|(k, _)| *k).collect()
    }

    /// Total records across all keys.
    pub fn total_records(&self) -> usize {
        self.keys.iter().map(|(_, r)| r.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{paropen_read, paropen_write, Multifile, SionParams};
    use simmpi::{Comm, World};
    use vfs::MemFs;

    #[test]
    fn threads_demultiplex_through_one_task_stream() {
        // Hybrid-code pattern: 4 MPI tasks, 3 "threads" each, every thread
        // writing its own substream under its thread id as the key.
        let fs = MemFs::with_block_size(1024);
        let nthreads = 3u64;
        World::run(4, |comm| {
            let params = SionParams::new(1024);
            let w = paropen_write(&fs, "hybrid.sion", &params, comm).unwrap();
            let mut kv = KeyValWriter::new(w);
            for round in 0..5u64 {
                for tid in 0..nthreads {
                    let payload =
                        format!("task {} thread {tid} round {round};", comm.rank());
                    kv.write_key(tid, payload.as_bytes()).unwrap();
                }
            }
            assert_eq!(kv.records(), 15);
            kv.into_inner().close().unwrap();

            // Parallel read-back, demultiplexed.
            let r = paropen_read(&fs, "hybrid.sion", comm).unwrap();
            let index = KeyValReader::new(r).read_all().unwrap();
            assert_eq!(index.key_list(), vec![0, 1, 2]);
            for tid in 0..nthreads {
                let stream = String::from_utf8(index.substream(tid)).unwrap();
                assert_eq!(stream.matches(';').count(), 5);
                assert!(stream
                    .starts_with(&format!("task {} thread {tid} round 0;", comm.rank())));
            }
        });
    }

    #[test]
    fn keyval_composes_with_compression_and_serial_view() {
        let fs = MemFs::with_block_size(1024);
        World::run(2, |comm| {
            let params = SionParams::new(1024).with_compression();
            let w = paropen_write(&fs, "kv.sion", &params, comm).unwrap();
            let mut kv = KeyValWriter::new(w);
            kv.write_key(7, &vec![b'a'; 5000]).unwrap();
            kv.write_key(9, b"short").unwrap();
            kv.write_key(7, &vec![b'b'; 5000]).unwrap();
            kv.into_inner().close().unwrap();
        });
        // Serial rank view decodes the same records.
        let mf = Multifile::open(&fs, "kv.sion").unwrap();
        for rank in 0..2 {
            let index = KeyValReader::new(mf.rank_reader(rank).unwrap()).read_all().unwrap();
            assert_eq!(index.total_records(), 3);
            let seven = index.substream(7);
            assert_eq!(seven.len(), 10_000);
            assert_eq!(&seven[..5000], &vec![b'a'; 5000][..]);
            assert_eq!(index.substream(9), b"short");
            assert!(index.records(42).is_none());
        }
    }

    #[test]
    fn sequential_iteration_preserves_order() {
        let fs = MemFs::with_block_size(512);
        World::run(1, |comm| {
            let params = SionParams::new(512);
            let w = paropen_write(&fs, "seq.sion", &params, comm).unwrap();
            let mut kv = KeyValWriter::new(w);
            for i in 0..20u64 {
                kv.write_key(i % 4, &[i as u8]).unwrap();
            }
            kv.into_inner().close().unwrap();
        });
        let mf = Multifile::open(&fs, "seq.sion").unwrap();
        let mut r = KeyValReader::new(mf.rank_reader(0).unwrap());
        let mut seen = Vec::new();
        while let Some((key, data)) = r.next_record().unwrap() {
            seen.push((key, data[0]));
        }
        let want: Vec<(u64, u8)> = (0..20u64).map(|i| (i % 4, i as u8)).collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn empty_records_and_empty_stream() {
        let fs = MemFs::with_block_size(512);
        World::run(1, |comm| {
            let params = SionParams::new(512);
            let w = paropen_write(&fs, "e.sion", &params, comm).unwrap();
            let mut kv = KeyValWriter::new(w);
            kv.write_key(1, b"").unwrap();
            kv.into_inner().close().unwrap();
        });
        let mf = Multifile::open(&fs, "e.sion").unwrap();
        let index = KeyValReader::new(mf.rank_reader(0).unwrap()).read_all().unwrap();
        assert_eq!(index.records(1).unwrap(), &[Vec::<u8>::new()]);

        // A never-written stream has no records at all.
        World::run(1, |comm| {
            let params = SionParams::new(512);
            let w = paropen_write(&fs, "none.sion", &params, comm).unwrap();
            w.close().unwrap();
        });
        let mf = Multifile::open(&fs, "none.sion").unwrap();
        let index = KeyValReader::new(mf.rank_reader(0).unwrap()).read_all().unwrap();
        assert_eq!(index.total_records(), 0);
    }

    #[test]
    fn non_keyed_stream_is_rejected_cleanly() {
        let fs = MemFs::with_block_size(512);
        World::run(1, |comm| {
            let params = SionParams::new(512);
            let mut w = paropen_write(&fs, "plain.sion", &params, comm).unwrap();
            w.write(b"this is not a key-value stream").unwrap();
            w.close().unwrap();
        });
        let mf = Multifile::open(&fs, "plain.sion").unwrap();
        let err = KeyValReader::new(mf.rank_reader(0).unwrap()).read_all().unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn truncated_record_detected() {
        let fs = MemFs::with_block_size(512);
        World::run(1, |comm| {
            let params = SionParams::new(512);
            let w = paropen_write(&fs, "t.sion", &params, comm).unwrap();
            let mut kv = KeyValWriter::new(w);
            // Claim 100 bytes but the close happens after the header only —
            // simulate by writing a header manually through the raw writer.
            let mut header = [0u8; KV_HEADER_LEN];
            header[0..4].copy_from_slice(&KV_MAGIC.to_le_bytes());
            header[4..12].copy_from_slice(&5u64.to_le_bytes());
            header[12..20].copy_from_slice(&100u64.to_le_bytes());
            kv.inner_mut().write(&header).unwrap();
            kv.inner_mut().write(b"only-ten!!").unwrap();
            kv.into_inner().close().unwrap();
        });
        let mf = Multifile::open(&fs, "t.sion").unwrap();
        let err = KeyValReader::new(mf.rank_reader(0).unwrap()).read_all().unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }
}

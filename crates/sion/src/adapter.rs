//! `std::io` adapters: use a task's logical file with any Rust code that
//! speaks `io::Write`/`io::Read`/`io::BufRead`.
//!
//! The paper's pitch is that applications keep their existing ANSI C
//! `fwrite`/`fread` calls; the Rust equivalent of that idiom is the
//! standard I/O traits. [`SionWriteAdapter`] buffers small writes into
//! chunk-sized flushes (what `FILE*` buffering did for SIONlib), and
//! [`RankReader`](crate::RankReader) implements `io::Read` directly so it
//! can feed `BufReader`, CSV/serde readers, decompressors, and friends.

use crate::error::SionError;
use crate::par::SionParWriter;
use std::io;

/// Buffering `io::Write` adapter over a [`SionParWriter`].
///
/// Small writes accumulate in an internal buffer and are written through
/// the chunk-splitting path when the buffer fills or on flush — one
/// buffered `FILE*` stream per task, like the paper's C usage.
pub struct SionWriteAdapter {
    writer: SionParWriter,
    buf: Vec<u8>,
    cap: usize,
}

impl SionWriteAdapter {
    /// Wrap `writer` with the default 256 KiB buffer.
    pub fn new(writer: SionParWriter) -> Self {
        Self::with_capacity(writer, 256 * 1024)
    }

    /// Wrap `writer` with an explicit buffer capacity.
    pub fn with_capacity(writer: SionParWriter, cap: usize) -> Self {
        SionWriteAdapter { writer, buf: Vec::with_capacity(cap.max(1)), cap: cap.max(1) }
    }

    fn flush_buffer(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            self.writer
                .write(&self.buf)
                .map_err(|e| io::Error::other(e.to_string()))?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flush and recover the underlying writer (e.g. to call the collective
    /// close).
    pub fn into_inner(mut self) -> crate::Result<SionParWriter> {
        self.flush_buffer().map_err(|e| SionError::Io(io::Error::other(e.to_string())))?;
        Ok(self.writer)
    }
}

impl io::Write for SionWriteAdapter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if self.buf.len() + data.len() > self.cap {
            self.flush_buffer()?;
        }
        if data.len() >= self.cap {
            // Large writes bypass the buffer entirely.
            self.writer
                .write(data)
                .map_err(|e| io::Error::other(e.to_string()))?;
        } else {
            self.buf.extend_from_slice(data);
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_buffer()
    }
}

#[cfg(test)]
mod tests {
    use crate::{paropen_write, Multifile, SionParams};
    use simmpi::World;
    use std::io::{BufRead, BufReader, Write};
    use vfs::MemFs;

    #[test]
    fn write_adapter_buffers_and_flushes() {
        let fs = MemFs::with_block_size(1024);
        World::run(3, |comm| {
            let params = SionParams::new(1024);
            let w = paropen_write(&fs, "log.sion", &params, comm).unwrap();
            let mut out = super::SionWriteAdapter::with_capacity(w, 64);
            for i in 0..100 {
                writeln!(out, "line {i} from rank {}", simmpi::Comm::rank(comm)).unwrap();
            }
            out.flush().unwrap();
            out.into_inner().unwrap().close().unwrap();
        });
        let mf = Multifile::open(&fs, "log.sion").unwrap();
        for rank in 0..3 {
            let text = String::from_utf8(mf.read_rank(rank).unwrap()).unwrap();
            assert_eq!(text.lines().count(), 100);
            assert!(text.lines().next().unwrap().ends_with(&format!("rank {rank}")));
        }
    }

    #[test]
    fn large_writes_bypass_buffer() {
        let fs = MemFs::with_block_size(1024);
        World::run(1, |comm| {
            let params = SionParams::new(1024);
            let w = paropen_write(&fs, "big.sion", &params, comm).unwrap();
            let mut out = super::SionWriteAdapter::with_capacity(w, 16);
            out.write_all(&vec![7u8; 10_000]).unwrap();
            out.write_all(b"tail").unwrap();
            out.into_inner().unwrap().close().unwrap();
        });
        let mf = Multifile::open(&fs, "big.sion").unwrap();
        let data = mf.read_rank(0).unwrap();
        assert_eq!(data.len(), 10_004);
        assert_eq!(&data[10_000..], b"tail");
    }

    #[test]
    fn rank_reader_works_with_bufreader() {
        let fs = MemFs::with_block_size(1024);
        World::run(2, |comm| {
            let params = SionParams::new(1024);
            let w = paropen_write(&fs, "lines.sion", &params, comm).unwrap();
            let mut out = super::SionWriteAdapter::new(w);
            for i in 0..50 {
                writeln!(out, "{i}").unwrap();
            }
            out.into_inner().unwrap().close().unwrap();
        });
        let mf = Multifile::open(&fs, "lines.sion").unwrap();
        // Standard io::BufRead line iteration over a logical file.
        let reader = BufReader::new(mf.rank_reader(1).unwrap());
        let nums: Vec<u32> =
            reader.lines().map(|l| l.unwrap().parse().unwrap()).collect();
        assert_eq!(nums, (0..50).collect::<Vec<_>>());
    }
}

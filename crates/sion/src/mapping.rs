//! Task → physical file mapping (paper §3.1, Fig. 2(d)).
//!
//! When a multifile is spread over several physical files, every task is
//! still mapped to exactly one physical file, but the user "can also
//! influence the exact mapping of application tasks to physical files, for
//! example, to allocate one physical file per I/O node on Blue Gene".

use crate::error::{Result, SionError};

/// How global ranks are distributed over the physical files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// Contiguous ranges of ranks per file (`[0..k)` → file 0, ...).
    /// On machines where consecutive ranks share I/O nodes, this is the
    /// "one physical file per I/O node" mapping. The default.
    Blocked,
    /// Ranks dealt round-robin over the files (`rank % nfiles`).
    RoundRobin,
    /// Explicit group size: `rank / group_size`, clamped to the last file.
    /// Models "one file per I/O node" when the I/O-node group size is known
    /// (e.g. 128 compute nodes per ION on Blue Gene/P).
    Grouped(u64),
}

impl Mapping {
    /// The physical file index for `rank` out of `ntasks` tasks mapped onto
    /// `nfiles` files.
    ///
    /// Total over the full argument space: degenerate inputs are clamped
    /// to the nearest meaningful value (`ntasks` to at least 1, `rank`
    /// into `0..ntasks`, `nfiles` into `1..=ntasks`) instead of panicking
    /// or dividing by zero. For arguments accepted by
    /// [`validate`](Self::validate) the clamping is the identity, so
    /// callers going through validation see no behaviour change; callers
    /// that reach this with unvalidated values (e.g. tooling probing a
    /// damaged multifile) get a well-defined file index `< nfiles.max(1)`.
    pub fn file_of(self, rank: usize, ntasks: usize, nfiles: u32) -> u32 {
        let ntasks = ntasks.max(1);
        let rank = rank.min(ntasks - 1);
        let nfiles = (nfiles as usize).clamp(1, ntasks);
        match self {
            Mapping::Blocked => {
                // Split as evenly as possible: the first `rem` files get
                // one extra task. `nfiles <= ntasks` ensures `base >= 1`.
                let base = ntasks / nfiles;
                let rem = ntasks % nfiles;
                let big = (base + 1) * rem; // ranks covered by the larger files
                if rank < big {
                    (rank / (base + 1)) as u32
                } else {
                    (rem + (rank - big) / base) as u32
                }
            }
            Mapping::RoundRobin => (rank % nfiles) as u32,
            Mapping::Grouped(g) => {
                let g = g.max(1) as usize;
                ((rank / g).min(nfiles - 1)) as u32
            }
        }
    }

    /// Validate that this mapping populates every one of the `nfiles` files
    /// for a world of `ntasks` tasks (every physical file must hold at
    /// least one chunk).
    pub fn validate(self, ntasks: usize, nfiles: u32) -> Result<()> {
        if nfiles == 0 {
            return Err(SionError::InvalidArg("nfiles must be at least 1".into()));
        }
        if (nfiles as usize) > ntasks {
            return Err(SionError::InvalidArg(format!(
                "cannot spread {ntasks} tasks over {nfiles} physical files"
            )));
        }
        if let Mapping::Grouped(g) = self {
            let g = g.max(1) as usize;
            // Grouped mapping reaches file k only if ntasks > k*g.
            if ntasks.div_ceil(g) < nfiles as usize {
                return Err(SionError::InvalidArg(format!(
                    "group size {g} leaves some of the {nfiles} files empty for {ntasks} tasks"
                )));
            }
        }
        Ok(())
    }

    /// The local index of `rank` within its file (its position among the
    /// ranks mapped to the same file, in rank order).
    pub fn local_index(self, rank: usize, ntasks: usize, nfiles: u32) -> usize {
        let f = self.file_of(rank, ntasks, nfiles);
        (0..rank).filter(|&r| self.file_of(r, ntasks, nfiles) == f).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn blocked_splits_evenly() {
        // 10 tasks over 3 files: 4, 3, 3.
        let m = Mapping::Blocked;
        let files: Vec<u32> = (0..10).map(|r| m.file_of(r, 10, 3)).collect();
        assert_eq!(files, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn round_robin_cycles() {
        let m = Mapping::RoundRobin;
        let files: Vec<u32> = (0..8).map(|r| m.file_of(r, 8, 3)).collect();
        assert_eq!(files, vec![0, 1, 2, 0, 1, 2, 0, 1]);
    }

    #[test]
    fn grouped_clamps_to_last_file() {
        let m = Mapping::Grouped(4);
        // 12 tasks, groups of 4, but only 2 files: ranks 8..12 clamp to 1.
        let files: Vec<u32> = (0..12).map(|r| m.file_of(r, 12, 2)).collect();
        assert_eq!(files, vec![0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn validation_rejects_empty_files() {
        assert!(Mapping::Blocked.validate(4, 8).is_err());
        assert!(Mapping::Blocked.validate(8, 8).is_ok());
        assert!(Mapping::Grouped(8).validate(16, 4).is_err()); // only 2 groups
        assert!(Mapping::Grouped(4).validate(16, 4).is_ok());
        assert!(Mapping::Blocked.validate(4, 0).is_err());
    }

    #[test]
    fn local_index_counts_within_file() {
        let m = Mapping::RoundRobin;
        // ranks 0,3,6 in file 0 → local 0,1,2
        assert_eq!(m.local_index(0, 8, 3), 0);
        assert_eq!(m.local_index(3, 8, 3), 1);
        assert_eq!(m.local_index(6, 8, 3), 2);
        assert_eq!(m.local_index(5, 8, 3), 1); // ranks 2,5 in file 2
    }

    proptest! {
        /// Every mapping covers all files, preserves rank order within a
        /// file, and local indices are dense.
        #[test]
        fn mapping_partition_properties(
            ntasks in 1usize..300,
            nfiles_raw in 1u32..16,
            kind in 0usize..3,
            group in 1u64..40,
        ) {
            let nfiles = nfiles_raw.min(ntasks as u32);
            let m = match kind {
                0 => Mapping::Blocked,
                1 => Mapping::RoundRobin,
                _ => Mapping::Grouped(group),
            };
            if m.validate(ntasks, nfiles).is_err() {
                // Grouped mappings may legitimately fail validation; skip.
                return Ok(());
            }
            let mut per_file: Vec<Vec<usize>> = vec![Vec::new(); nfiles as usize];
            for r in 0..ntasks {
                let f = m.file_of(r, ntasks, nfiles);
                prop_assert!(f < nfiles);
                per_file[f as usize].push(r);
            }
            // Total partition and non-emptiness.
            prop_assert_eq!(per_file.iter().map(Vec::len).sum::<usize>(), ntasks);
            for (f, ranks) in per_file.iter().enumerate() {
                prop_assert!(!ranks.is_empty(), "file {f} empty");
                for (i, &r) in ranks.iter().enumerate() {
                    prop_assert_eq!(m.local_index(r, ntasks, nfiles), i);
                }
            }
        }

        /// `file_of` is total: over the *full* argument space — including
        /// `ntasks == 0`, `nfiles == 0`, `nfiles > ntasks`, and ranks at
        /// or beyond `ntasks` — it never panics and always returns an
        /// index below `nfiles.max(1)`.
        #[test]
        fn file_of_is_total_over_full_domain(
            rank in 0usize..2000,
            ntasks in 0usize..1000,
            nfiles in 0u32..64,
            kind in 0usize..3,
            group in 0u64..40,
        ) {
            let m = match kind {
                0 => Mapping::Blocked,
                1 => Mapping::RoundRobin,
                _ => Mapping::Grouped(group),
            };
            let f = m.file_of(rank, ntasks, nfiles);
            let effective_nfiles = (nfiles as usize).clamp(1, ntasks.max(1)) as u32;
            prop_assert!(f < effective_nfiles.max(1));
            prop_assert!(f < nfiles.max(1));
            // On validated inputs, clamping is the identity: in-range
            // ranks agree with the documented per-variant formulas.
            if m.validate(ntasks, nfiles).is_ok() && rank < ntasks {
                match m {
                    Mapping::RoundRobin => prop_assert_eq!(f, (rank % nfiles as usize) as u32),
                    Mapping::Grouped(g) => {
                        let g = g.max(1) as usize;
                        prop_assert_eq!(f, ((rank / g).min(nfiles as usize - 1)) as u32);
                    }
                    Mapping::Blocked => {} // covered by mapping_partition_properties
                }
            }
        }
    }
}

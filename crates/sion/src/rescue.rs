//! Rescue metadata and crash recovery (paper §6 road map, implemented).
//!
//! "Failures, such as premature application termination or file quota
//! violation, may cause the second metadata block to be lost. To improve
//! SIONlib's robustness in such an event, we plan to add small pieces of
//! metadata to each chunk so that the full metadata can be restored if
//! needed."
//!
//! With [`SionFlags::RESCUE`](crate::SionFlags::RESCUE) enabled, every
//! chunk starts with a 32-byte [`RescueHeader`] carrying the owner's global
//! rank, the block number, and the running count of user bytes in the chunk
//! (kept current on every write). [`repair`] rebuilds a lost metablock 2 by
//! scanning these headers — metablock 1 is written before any data and is
//! assumed to survive.

use crate::error::{Result, SionError};
use crate::format::{MetaBlock1, MetaBlock2, SionFlags};
use crate::layout::FileLayout;
use crate::physical_name;
use vfs::Vfs;

/// Size of the per-chunk rescue header in bytes.
pub const RESCUE_HEADER_LEN: u64 = 32;

/// Magic prefixing every rescue header.
pub const RESCUE_MAGIC: [u8; 8] = *b"RSIONRSC";

/// The per-chunk rescue record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RescueHeader {
    /// Global rank of the task owning the chunk.
    pub global_rank: u64,
    /// Block number of the chunk.
    pub block: u64,
    /// User bytes currently stored in the chunk.
    pub used: u64,
}

impl RescueHeader {
    /// Byte offset of the `used` field within the encoded header (patched
    /// in place on every write).
    pub const USED_FIELD_OFFSET: u64 = 24;

    /// Serialize to the 32-byte wire format.
    pub fn encode(&self) -> [u8; RESCUE_HEADER_LEN as usize] {
        let mut out = [0u8; RESCUE_HEADER_LEN as usize];
        out[0..8].copy_from_slice(&RESCUE_MAGIC);
        out[8..16].copy_from_slice(&self.global_rank.to_le_bytes());
        out[16..24].copy_from_slice(&self.block.to_le_bytes());
        out[24..32].copy_from_slice(&self.used.to_le_bytes());
        out
    }

    /// Decode, returning `None` if the magic does not match (an untouched
    /// hole reads as zeros and is simply "no header").
    pub fn decode(bytes: &[u8]) -> Option<RescueHeader> {
        if bytes.len() < RESCUE_HEADER_LEN as usize || bytes[0..8] != RESCUE_MAGIC {
            return None;
        }
        Some(RescueHeader {
            global_rank: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            block: u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
            used: u64::from_le_bytes(bytes[24..32].try_into().unwrap()),
        })
    }
}

/// Outcome of a [`repair`] run over one multifile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// Physical files scanned.
    pub files_scanned: u32,
    /// Files whose metablock 2 was already valid (left untouched unless
    /// `force` was set).
    pub files_intact: u32,
    /// Files for which a metablock 2 was reconstructed and written.
    pub files_repaired: u32,
    /// Chunks recovered (with a valid rescue header and `used > 0`).
    pub chunks_recovered: u64,
    /// Total user bytes recovered.
    pub bytes_recovered: u64,
    /// Human-readable reports of damage encountered and skipped over:
    /// mismatched or unreadable rescue headers, files that could not be
    /// opened or repaired. Repair degrades gracefully — a clobbered chunk
    /// costs only that chunk, a clobbered file only that file — so an
    /// `Ok` report with non-empty `problems` means "recovered what was
    /// recoverable"; callers deciding whether to trust the result should
    /// check [`is_clean`](Self::is_clean).
    pub problems: Vec<String>,
}

impl RepairReport {
    /// Whether the scan completed without skipping any damaged chunk/file.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Rebuild missing metablock 2s of the multifile at `base` by scanning
/// rescue headers. Files with a valid metablock 2 are left alone unless
/// `force` is set (then they are re-derived from the headers too).
///
/// Damage encountered mid-scan does not abort the run: a chunk whose
/// rescue header is unreadable or belongs to a different (rank, block)
/// is skipped (counted as empty) and reported in
/// [`RepairReport::problems`], and a physical file that cannot be opened
/// or whose metablock 1 is unreadable is skipped the same way, so the
/// remaining chunks and files are still recovered. Only damage to the
/// *first* file's metablock 1 is fatal — without it the multifile's
/// shape (`nfiles`, rescue flag) is unknown.
pub fn repair(vfs: &dyn Vfs, base: &str, force: bool) -> Result<RepairReport> {
    let first = vfs.open_rw(base)?;
    let mb1 = MetaBlock1::read_from(first.as_ref())?;
    if !mb1.flags.contains(SionFlags::RESCUE) {
        return Err(SionError::Rescue(
            "multifile was written without rescue headers; nothing to scan".into(),
        ));
    }
    let nfiles = mb1.nfiles;
    drop(first);

    let mut report = RepairReport {
        files_scanned: 0,
        files_intact: 0,
        files_repaired: 0,
        chunks_recovered: 0,
        bytes_recovered: 0,
        problems: Vec::new(),
    };

    for k in 0..nfiles {
        let name = physical_name(base, k);
        let file = match vfs.open_rw(&name) {
            Ok(f) => f,
            Err(e) => {
                report.problems.push(format!("{name}: cannot open: {e}"));
                continue;
            }
        };
        let mb1 = match MetaBlock1::read_from(file.as_ref()) {
            Ok(m) => m,
            Err(e) => {
                report.problems.push(format!("{name}: metablock 1 unreadable: {e}"));
                continue;
            }
        };
        report.files_scanned += 1;

        if !force && MetaBlock2::read_from(file.as_ref(), mb1.ntasks_local()).is_ok() {
            report.files_intact += 1;
            continue;
        }

        let layout = FileLayout::from_mb1(&mb1);
        let n = layout.ntasks();
        let file_len = file.len()?;
        // Upper bound on blocks that can physically exist in the file.
        let max_blocks = if file_len <= layout.data_start || layout.block_size == 0 {
            0
        } else {
            (file_len - layout.data_start).div_ceil(layout.block_size)
        };

        let mut rows: Vec<Vec<u64>> = Vec::new();
        let mut hdr = [0u8; RESCUE_HEADER_LEN as usize];
        for b in 0..max_blocks {
            let mut row = vec![0u64; n];
            for (t, slot) in row.iter_mut().enumerate() {
                let at = layout.chunk_start(t, b);
                if at + RESCUE_HEADER_LEN > file_len {
                    continue;
                }
                if let Err(e) = file.read_exact_at(&mut hdr, at) {
                    // In-bounds but unreadable: skip the chunk, keep going.
                    report.problems.push(format!(
                        "{name}: rescue header of (rank {}, block {b}) unreadable: {e}",
                        mb1.global_ranks[t]
                    ));
                    continue;
                }
                let Some(h) = RescueHeader::decode(&hdr) else { continue };
                if h.global_rank != mb1.global_ranks[t] || h.block != b {
                    // A header from a different (rank, block) means this spot
                    // is inconsistent with the file's own layout — possibly a
                    // torn header write. Treat the chunk as unrecoverable and
                    // move on; the rest of the file is still worth saving.
                    report.problems.push(format!(
                        "{name}: rescue header mismatch: found (rank {}, block {}) at \
                         chunk of (rank {}, block {b}); chunk skipped",
                        h.global_rank, h.block, mb1.global_ranks[t]
                    ));
                    continue;
                }
                let cap_user = layout.usable(t);
                let used = h.used.min(cap_user);
                *slot = used;
                if used > 0 {
                    report.chunks_recovered += 1;
                    report.bytes_recovered += used;
                }
            }
            rows.push(row);
        }
        // Trim trailing all-zero blocks (interior zero rows must stay: they
        // keep later blocks at the right index).
        while rows.last().is_some_and(|r| r.iter().all(|&u| u == 0)) {
            rows.pop();
        }

        let nblocks = rows.len() as u64;
        let used: Vec<u64> = rows.into_iter().flatten().collect();
        let mb2 = MetaBlock2 { nblocks, used };
        // Same writer as the collective close: metablock 2 + chunk index +
        // v2 trailer in one write, so forced repair of a cleanly closed
        // file is byte-identical to the close it replays.
        if let Err(e) = crate::format::write_close_metadata(
            file.as_ref(),
            layout.mb2_offset(nblocks),
            &mb2,
            n,
        ) {
            report.problems.push(format!("{name}: cannot write rebuilt metablock 2: {e}"));
            continue;
        }
        report.files_repaired += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = RescueHeader { global_rank: 42, block: 7, used: 123456 };
        let bytes = h.encode();
        assert_eq!(RescueHeader::decode(&bytes), Some(h));
    }

    #[test]
    fn hole_decodes_as_no_header() {
        assert_eq!(RescueHeader::decode(&[0u8; 32]), None);
        assert_eq!(RescueHeader::decode(&[0u8; 10]), None);
    }

    #[test]
    fn used_field_offset_matches_encoding() {
        let h = RescueHeader { global_rank: 1, block: 2, used: 0xABCD };
        let bytes = h.encode();
        let off = RescueHeader::USED_FIELD_OFFSET as usize;
        assert_eq!(u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()), 0xABCD);
    }
}

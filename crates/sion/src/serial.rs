//! Serial access to multifiles (paper §3.2.3/§3.2.4).
//!
//! Serial access is the basis for post-processing tools: a single process
//! opens the whole multifile with either a **global view** ([`Multifile`],
//! `sion_open`) — all metadata of all tasks, plus `sion_seek`-style
//! addressed reads — or a **task-local view** ([`RankReader`],
//! `sion_open_rank`) that streams one task's logical file. [`SerialWriter`]
//! is the serial counterpart for *creating* a multifile from one process
//! (`sion_open` in write mode), used for example by the defragmentation
//! tool.

use crate::error::{Result, SionError};
use crate::format::{MetaBlock1, MetaBlock2, SionFlags};
use crate::layout::FileLayout;
use crate::physical_name;
use crate::stream::{ChunkGeom, IoCounters, TaskReader, TaskWriter, DEFAULT_READ_AHEAD};
use crate::SionParams;
use std::sync::Arc;
use vfs::{Vfs, VfsFile};

/// Location and fill state of one chunk (`sion_get_locations` output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Block number of this chunk.
    pub block: u64,
    /// File offset of the chunk's user data.
    pub offset: u64,
    /// Stored bytes in the chunk.
    pub used: u64,
}

/// Everything known about one task's logical file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskLocation {
    /// Global rank.
    pub global_rank: usize,
    /// Physical file index.
    pub file: u32,
    /// Local index within the physical file.
    pub ltask: usize,
    /// Chunk size the task requested at open.
    pub chunksize_req: u64,
    /// Chunk capacity (aligned, including rescue overhead).
    pub capacity: u64,
    /// User-data capacity per chunk.
    pub usable: u64,
    /// One entry per block of the physical file (zero-use chunks included).
    pub chunks: Vec<ChunkInfo>,
    /// Total stored bytes across all chunks.
    pub stored_bytes: u64,
}

/// Global metadata of a multifile (`sion_get_locations`).
#[derive(Debug, Clone, PartialEq)]
pub struct Locations {
    /// Total number of tasks.
    pub ntasks: usize,
    /// Number of physical files.
    pub nfiles: u32,
    /// File-system block size recorded at creation.
    pub fsblksize: u64,
    /// Feature flags.
    pub flags: SionFlags,
    /// Per-task locations, indexed by global rank.
    pub tasks: Vec<TaskLocation>,
}

impl Locations {
    /// Total stored bytes across all tasks.
    pub fn total_stored_bytes(&self) -> u64 {
        self.tasks.iter().map(|t| t.stored_bytes).sum()
    }

    /// Largest number of blocks in any physical file.
    pub fn max_blocks(&self) -> u64 {
        self.tasks
            .iter()
            .map(|t| t.chunks.iter().filter(|c| c.used > 0).map(|c| c.block + 1).max().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }
}

struct FileView {
    handle: Arc<dyn VfsFile>,
    layout: FileLayout,
}

/// A multifile opened with the serial global view (`sion_open` read mode).
pub struct Multifile {
    files: Vec<FileView>,
    locations: Locations,
}

impl Multifile {
    /// Open the multifile rooted at `base`, reading all metadata of all
    /// physical files.
    pub fn open(vfs: &dyn Vfs, base: &str) -> Result<Multifile> {
        let f0 = vfs.open(base)?;
        let mb1_0 = MetaBlock1::read_from(f0.as_ref())?;
        let nfiles = mb1_0.nfiles;
        let ntasks = mb1_0.ntasks_global as usize;
        if nfiles as u64 > mb1_0.ntasks_global {
            return Err(SionError::Format(format!(
                "{nfiles} physical files for {ntasks} tasks is implausible"
            )));
        }

        let mut files = Vec::with_capacity(nfiles as usize);
        let mut tasks: Vec<Option<TaskLocation>> = vec![None; ntasks];
        for k in 0..nfiles {
            let handle = if k == 0 { f0.clone() } else { vfs.open(&physical_name(base, k))? };
            let mb1 =
                if k == 0 { mb1_0.clone() } else { MetaBlock1::read_from(handle.as_ref())? };
            if mb1.nfiles != nfiles || mb1.filenum != k || mb1.ntasks_global != ntasks as u64 {
                return Err(SionError::Format(format!(
                    "physical file {k} disagrees with file 0 about the multifile shape"
                )));
            }
            let mb2 = MetaBlock2::read_from(handle.as_ref(), mb1.ntasks_local())?;
            let layout = FileLayout::from_mb1(&mb1);
            layout.validate_extent(mb2.nblocks, handle.len()?)?;
            // Usage must fit the chunks it claims to fill.
            for (lt, _) in mb1.global_ranks.iter().enumerate() {
                for b in 0..mb2.nblocks {
                    if mb2.used_in(b, lt, mb1.ntasks_local()) > layout.usable(lt) {
                        return Err(SionError::Format(format!(
                            "file {k}: task {lt} block {b} claims more bytes than its chunk holds"
                        )));
                    }
                }
            }
            for (lt, &gr) in mb1.global_ranks.iter().enumerate() {
                let gr = gr as usize;
                if gr >= ntasks || tasks[gr].is_some() {
                    return Err(SionError::Format(format!(
                        "global rank {gr} duplicated or out of range in file {k}"
                    )));
                }
                let usage = mb2.task_usage(lt, mb1.ntasks_local());
                let chunks: Vec<ChunkInfo> = usage
                    .iter()
                    .enumerate()
                    .map(|(b, &used)| ChunkInfo {
                        block: b as u64,
                        offset: layout.data_offset(lt, b as u64),
                        used,
                    })
                    .collect();
                tasks[gr] = Some(TaskLocation {
                    global_rank: gr,
                    file: k,
                    ltask: lt,
                    chunksize_req: mb1.chunksize_req[lt],
                    capacity: mb1.chunk_cap[lt],
                    usable: layout.usable(lt),
                    stored_bytes: usage.iter().sum(),
                    chunks,
                });
            }
            files.push(FileView { handle, layout });
        }
        let tasks: Vec<TaskLocation> = tasks
            .into_iter()
            .enumerate()
            .map(|(r, t)| {
                t.ok_or_else(|| SionError::Format(format!("rank {r} missing from multifile")))
            })
            .collect::<Result<_>>()?;
        Ok(Multifile {
            files,
            locations: Locations {
                ntasks,
                nfiles,
                fsblksize: mb1_0.fsblksize,
                flags: mb1_0.flags,
                tasks,
            },
        })
    }

    /// All metadata (`sion_get_locations`).
    pub fn locations(&self) -> &Locations {
        &self.locations
    }

    /// Number of tasks stored in the multifile.
    pub fn ntasks(&self) -> usize {
        self.locations.ntasks
    }

    /// Whether logical streams are compressed.
    pub fn compressed(&self) -> bool {
        self.locations.flags.contains(SionFlags::COMPRESSED)
    }

    /// `sion_seek` + `fread` with the global view: read stored bytes of
    /// `rank`'s chunk in block `chunk`, starting `pos` bytes in. Returns
    /// the number of bytes read (short at the end of the chunk's data).
    pub fn read_at(&self, rank: usize, chunk: u64, pos: u64, buf: &mut [u8]) -> Result<usize> {
        let t = self
            .locations
            .tasks
            .get(rank)
            .ok_or_else(|| SionError::InvalidArg(format!("rank {rank} out of range")))?;
        let info = t
            .chunks
            .get(chunk as usize)
            .ok_or_else(|| SionError::InvalidArg(format!("chunk {chunk} out of range")))?;
        if pos >= info.used {
            return Ok(0);
        }
        let n = buf.len().min((info.used - pos) as usize);
        self.files[t.file as usize]
            .handle
            .read_exact_at(&mut buf[..n], info.offset + pos)?;
        Ok(n)
    }

    /// Open the task-local view of `rank` (`sion_open_rank`): a streaming
    /// reader over that task's logical file, transparently decompressing
    /// if the multifile is compressed.
    pub fn rank_reader(&self, rank: usize) -> Result<RankReader> {
        let t = self
            .locations
            .tasks
            .get(rank)
            .ok_or_else(|| SionError::InvalidArg(format!("rank {rank} out of range")))?;
        let fv = &self.files[t.file as usize];
        let geom = ChunkGeom::from_layout(&fv.layout, t.ltask, rank as u64);
        let used: Vec<u64> = t.chunks.iter().map(|c| c.used).collect();
        Ok(RankReader {
            inner: TaskReader::new(
                fv.handle.clone(),
                geom,
                used,
                self.compressed(),
                DEFAULT_READ_AHEAD,
            ),
        })
    }

    /// Convenience: the complete logical (decompressed) content of `rank`.
    pub fn read_rank(&self, rank: usize) -> Result<Vec<u8>> {
        let mut r = self.rank_reader(rank)?;
        let mut out = Vec::new();
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let n = r.read_some(&mut buf)?;
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        Ok(out)
    }
}

/// Streaming reader over one task's logical file (`sion_open_rank`).
pub struct RankReader {
    inner: TaskReader,
}

impl RankReader {
    /// `sion_feof` for this rank's stream.
    pub fn feof(&mut self) -> bool {
        self.inner.feof()
    }

    /// Unread stored bytes in the current chunk.
    pub fn bytes_avail_in_chunk(&self) -> u64 {
        self.inner.bytes_avail_in_chunk()
    }

    /// Read up to `buf.len()` logical bytes; 0 at end of stream.
    pub fn read_some(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.inner.read(buf)
    }

    /// I/O-call accounting for this rank's read stream so far.
    pub fn io_counters(&self) -> IoCounters {
        self.inner.io_counters()
    }
}

impl std::io::Read for RankReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner
            .read(buf)
            .map_err(|e| std::io::Error::other(e.to_string()))
    }
}

/// Serial creation of a multifile from a single process (`sion_open` in
/// write mode, paper §3.2.3). "Since the open call is now executed by only
/// one process, a whole array of chunk sizes needs to be supplied."
pub struct SerialWriter {
    files: Vec<Arc<dyn VfsFile>>,
    layouts: Vec<FileLayout>,
    writers: Vec<TaskWriter>,
    /// Physical file index of each rank.
    rank_file: Vec<usize>,
    /// Rank whose stream the positional API currently addresses.
    cur: usize,
    ntasks: usize,
}

impl SerialWriter {
    /// Create a multifile for `chunksizes.len()` tasks with the given
    /// per-task chunk sizes. `params.chunksize` is ignored (the array takes
    /// precedence); all other parameters apply as in the parallel case.
    pub fn create(
        vfs: &dyn Vfs,
        base: &str,
        chunksizes: &[u64],
        params: &SionParams,
    ) -> Result<SerialWriter> {
        Self::create_with_flags(vfs, base, chunksizes, params, params.flags())
    }

    /// Like [`create`](Self::create), but records `stored_flags` in the
    /// metadata instead of the flags implied by `params`. This is how the
    /// defragmenter copies an already-compressed multifile verbatim: the
    /// writer runs uncompressed (`params.compressed = false`) while the
    /// output still advertises `COMPRESSED` to readers.
    pub fn create_with_flags(
        vfs: &dyn Vfs,
        base: &str,
        chunksizes: &[u64],
        params: &SionParams,
        stored_flags: SionFlags,
    ) -> Result<SerialWriter> {
        let ntasks = chunksizes.len();
        params.mapping.validate(ntasks, params.nfiles)?;
        let mut files = Vec::with_capacity(params.nfiles as usize);
        let mut layouts = Vec::with_capacity(params.nfiles as usize);
        let mut writers: Vec<Option<TaskWriter>> = (0..ntasks).map(|_| None).collect();
        // Group ranks by physical file, in rank order.
        let mut per_file: Vec<Vec<usize>> = vec![Vec::new(); params.nfiles as usize];
        for r in 0..ntasks {
            per_file[params.mapping.file_of(r, ntasks, params.nfiles) as usize].push(r);
        }
        for (k, ranks) in per_file.iter().enumerate() {
            let reqs: Vec<u64> = ranks.iter().map(|&r| chunksizes[r]).collect();
            let layout =
                FileLayout::compute(&reqs, vfs.block_size(), params.alignment, params.rescue)?;
            let file = vfs.create(&physical_name(base, k as u32))?;
            let mb1 = MetaBlock1 {
                version: crate::format::VERSION,
                flags: stored_flags,
                fsblksize: vfs.block_size(),
                ntasks_global: ntasks as u64,
                nfiles: params.nfiles,
                filenum: k as u32,
                data_start: layout.data_start,
                global_ranks: ranks.iter().map(|&r| r as u64).collect(),
                chunksize_req: reqs,
                chunk_cap: layout.cap.clone(),
            };
            file.write_all_at(&mb1.encode(), 0)?;
            for (lt, &r) in ranks.iter().enumerate() {
                let geom = ChunkGeom::from_layout(&layout, lt, r as u64);
                writers[r] =
                    Some(TaskWriter::new(file.clone(), geom, params.compressed, params.write_buffer));
            }
            files.push(file);
            layouts.push(layout);
        }
        let mut rank_file = vec![0usize; ntasks];
        for (k, ranks) in per_file.iter().enumerate() {
            for &r in ranks {
                rank_file[r] = k;
            }
        }
        Ok(SerialWriter {
            files,
            layouts,
            writers: writers.into_iter().map(|w| w.expect("every rank assigned")).collect(),
            rank_file,
            cur: 0,
            ntasks,
        })
    }

    /// Number of tasks in the multifile.
    pub fn ntasks(&self) -> usize {
        self.ntasks
    }

    /// `sion_seek`: position the write cursor at (`rank`, `chunk`, `pos`).
    pub fn seek(&mut self, rank: usize, chunk: u64, pos: u64) -> Result<()> {
        if rank >= self.ntasks {
            return Err(SionError::InvalidArg(format!("rank {rank} out of range")));
        }
        self.cur = rank;
        self.writers[rank].seek(chunk, pos)
    }

    /// Switch to `rank`'s stream without repositioning it.
    pub fn select_rank(&mut self, rank: usize) -> Result<()> {
        if rank >= self.ntasks {
            return Err(SionError::InvalidArg(format!("rank {rank} out of range")));
        }
        self.cur = rank;
        Ok(())
    }

    /// `sion_ensure_free_space` on the current rank's stream.
    pub fn ensure_free_space(&mut self, nbytes: u64) -> Result<()> {
        self.writers[self.cur].ensure_free_space(nbytes)
    }

    /// Plain in-chunk write on the current rank's stream.
    pub fn write_in_chunk(&mut self, data: &[u8]) -> Result<()> {
        self.writers[self.cur].write_in_chunk(data)
    }

    /// Chunk-splitting `sion_fwrite` on the current rank's stream.
    pub fn write(&mut self, data: &[u8]) -> Result<()> {
        self.writers[self.cur].write(data)
    }

    /// Push every rank's buffered data (and rescue headers) to the VFS.
    pub fn flush(&mut self) -> Result<()> {
        for w in &mut self.writers {
            w.flush()?;
        }
        Ok(())
    }

    /// I/O-call accounting for `rank`'s write stream so far.
    pub fn io_counters(&self, rank: usize) -> Result<IoCounters> {
        if rank >= self.ntasks {
            return Err(SionError::InvalidArg(format!("rank {rank} out of range")));
        }
        Ok(self.writers[rank].io_counters())
    }

    /// Finalize: write every physical file's metablock 2 (`sion_close`).
    pub fn close(mut self) -> Result<()> {
        // Collect per-rank usage, then group by file in local order.
        let usage: Vec<Vec<u64>> = self
            .writers
            .iter_mut()
            .map(|w| w.finish())
            .collect::<Result<_>>()?;
        let nfiles = self.files.len();
        let mut per_file: Vec<Vec<&Vec<u64>>> = vec![Vec::new(); nfiles];
        // Ranks were grouped per file in rank order at create, so pushing
        // in rank order reproduces the local task order.
        for (r, u) in usage.iter().enumerate() {
            per_file[self.rank_file[r]].push(u);
        }
        for (k, task_usage) in per_file.iter().enumerate() {
            let n = task_usage.len();
            let nblocks = task_usage.iter().map(|u| u.len()).max().unwrap_or(0) as u64;
            let mut flat = vec![0u64; nblocks as usize * n];
            for (lt, u) in task_usage.iter().enumerate() {
                for (b, &v) in u.iter().enumerate() {
                    flat[b * n + lt] = v;
                }
            }
            let mb2 = MetaBlock2 { nblocks, used: flat };
            mb2.write_to(self.files[k].as_ref(), self.layouts[k].mb2_offset(nblocks), n)?;
        }
        Ok(())
    }
}

//! Serial access to multifiles (paper §3.2.3/§3.2.4).
//!
//! Serial access is the basis for post-processing tools: a single process
//! opens the whole multifile with either a **global view** ([`Multifile`],
//! `sion_open`) — all metadata of all tasks, plus `sion_seek`-style
//! addressed reads — or a **task-local view** ([`RankReader`],
//! `sion_open_rank`) that streams one task's logical file. [`SerialWriter`]
//! is the serial counterpart for *creating* a multifile from one process
//! (`sion_open` in write mode), used for example by the defragmentation
//! tool.
//!
//! # Lazy metadata
//!
//! [`Multifile::open`] is a **header open**: it reads metablock 1, the
//! trailer, and the fixed metablock-2 header of each physical file — O(one
//! small read per file plus the rank directory), never the O(ranks·blocks)
//! usage matrix. Per-rank metadata is fetched on demand by
//! [`Multifile::location`]: for index-carrying (v2) files one contiguous
//! read of that rank's prefix sums, for pre-index (v1) files — or when the
//! index is torn — a lazily cached materialization of the file's full
//! metablock 2. Fetched [`TaskLocation`]s live in a small LRU cache, so
//! repeated seeks over a working set of ranks cost no further I/O;
//! [`Multifile::locations`] remains the eager full materialization, now
//! computed once and shared.

use crate::error::{Result, SionError};
use crate::format::{ChunkIndex, MetaBlock1, MetaBlock2, SionFlags, Trailer};
use crate::layout::FileLayout;
use crate::physical_name;
use crate::stream::{ChunkGeom, IoCounters, TaskReader, TaskWriter, DEFAULT_READ_AHEAD};
use crate::SionParams;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use vfs::{Vfs, VfsFile};

/// Location and fill state of one chunk (`sion_get_locations` output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Block number of this chunk.
    pub block: u64,
    /// File offset of the chunk's user data.
    pub offset: u64,
    /// Stored bytes in the chunk.
    pub used: u64,
}

/// Everything known about one task's logical file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskLocation {
    /// Global rank.
    pub global_rank: usize,
    /// Physical file index.
    pub file: u32,
    /// Local index within the physical file.
    pub ltask: usize,
    /// Chunk size the task requested at open.
    pub chunksize_req: u64,
    /// Chunk capacity (aligned, including rescue overhead).
    pub capacity: u64,
    /// User-data capacity per chunk.
    pub usable: u64,
    /// One entry per block of the physical file (zero-use chunks included).
    pub chunks: Vec<ChunkInfo>,
    /// Inclusive prefix sums of `chunks[..].used` — `cum[b]` is the total
    /// stored bytes in blocks `0..=b`. This is the on-disk chunk-index
    /// slice for v2 files (computed for v1), and what
    /// [`find_chunk`](Self::find_chunk) binary-searches.
    pub cum: Vec<u64>,
    /// Total stored bytes across all chunks.
    pub stored_bytes: u64,
}

impl TaskLocation {
    /// Map a logical stream position to `(chunk, offset within chunk)` by
    /// binary search over the prefix sums — O(log blocks) instead of the
    /// linear chunk walk. `None` past the end of the stream.
    pub fn find_chunk(&self, pos: u64) -> Option<(u64, u64)> {
        if pos >= self.stored_bytes {
            return None;
        }
        let b = self.cum.partition_point(|&c| c <= pos);
        let before = if b == 0 { 0 } else { self.cum[b - 1] };
        Some((b as u64, pos - before))
    }
}

/// Global metadata of a multifile (`sion_get_locations`).
#[derive(Debug, Clone, PartialEq)]
pub struct Locations {
    /// Total number of tasks.
    pub ntasks: usize,
    /// Number of physical files.
    pub nfiles: u32,
    /// File-system block size recorded at creation.
    pub fsblksize: u64,
    /// Feature flags.
    pub flags: SionFlags,
    /// Per-task locations, indexed by global rank.
    pub tasks: Vec<TaskLocation>,
}

impl Locations {
    /// Total stored bytes across all tasks.
    pub fn total_stored_bytes(&self) -> u64 {
        self.tasks.iter().map(|t| t.stored_bytes).sum()
    }

    /// Largest number of blocks in any physical file, **counting trailing
    /// empty blocks**: every task's chunk list has one entry per block of
    /// its file, so this equals the largest `metablock 2 nblocks` and
    /// agrees with what `siondump` prints and `siondefrag` reports. (It
    /// previously filtered `used > 0`, silently hiding a trailing all-zero
    /// block and disagreeing with the on-disk block count.)
    pub fn max_blocks(&self) -> u64 {
        self.tasks.iter().map(|t| t.chunks.len() as u64).max().unwrap_or(0)
    }
}

/// Per-physical-file state of a lazily opened multifile: the layout and
/// trailer geometry read at open, plus the lazily materialized full
/// metablock 2 for files without a usable chunk index.
struct FileView {
    handle: Arc<dyn VfsFile>,
    mb1: MetaBlock1,
    layout: FileLayout,
    trailer: Trailer,
    /// Block count from the metablock-2 fixed header.
    nblocks: u64,
    /// Validated chunk-index region; `None` for pre-index files and for
    /// files whose index is torn (the linear fallback).
    index: Option<(u64, u64)>,
    /// Full metablock 2, materialized at most once (v1 / torn-index path).
    mb2: Mutex<Option<Arc<MetaBlock2>>>,
}

/// Capacity of the per-rank [`TaskLocation`] LRU: plenty for tool working
/// sets, bounded so a 64Ki-rank scan cannot reconstruct the eager open.
const LOCATION_CACHE_CAP: usize = 256;

/// A tiny clock-stamped LRU over fetched task locations.
struct LocationCache {
    stamp: u64,
    entries: HashMap<usize, (u64, Arc<TaskLocation>)>,
}

impl LocationCache {
    fn get(&mut self, rank: usize) -> Option<Arc<TaskLocation>> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(&rank).map(|e| {
            e.0 = stamp;
            e.1.clone()
        })
    }

    fn insert(&mut self, rank: usize, loc: Arc<TaskLocation>) {
        if self.entries.len() >= LOCATION_CACHE_CAP && !self.entries.contains_key(&rank) {
            // Evict the least recently used entry; an O(capacity) scan of a
            // 256-entry map is noise next to the read it replaces.
            if let Some(&lru) =
                self.entries.iter().min_by_key(|(_, (s, _))| *s).map(|(r, _)| r)
            {
                self.entries.remove(&lru);
            }
        }
        self.stamp += 1;
        self.entries.insert(rank, (self.stamp, loc));
    }
}

/// A multifile opened with the serial global view (`sion_open` read mode).
///
/// Opening is cheap (headers only); per-rank metadata arrives on demand —
/// see the [module docs](self) for the lazy lifecycle.
pub struct Multifile {
    files: Vec<FileView>,
    ntasks: usize,
    nfiles: u32,
    fsblksize: u64,
    flags: SionFlags,
    /// Global rank → (physical file, local task index).
    rank_map: Vec<(u32, u32)>,
    cache: Mutex<LocationCache>,
    /// The eager materialization, computed at most once.
    all: Mutex<Option<Arc<Locations>>>,
}

impl Multifile {
    /// Header open: read metablock 1, the trailer, and the metablock-2
    /// fixed header of every physical file, and build the global rank
    /// directory. No per-(task, block) usage is touched — that is fetched
    /// per rank by [`location`](Self::location).
    pub fn open(vfs: &dyn Vfs, base: &str) -> Result<Multifile> {
        let f0 = vfs.open(base)?;
        let mb1_0 = MetaBlock1::read_from(f0.as_ref())?;
        let nfiles = mb1_0.nfiles;
        let ntasks = mb1_0.ntasks_global as usize;
        if nfiles as u64 > mb1_0.ntasks_global {
            return Err(SionError::Format(format!(
                "{nfiles} physical files for {ntasks} tasks is implausible"
            )));
        }

        let mut files = Vec::with_capacity(nfiles as usize);
        let mut rank_map: Vec<Option<(u32, u32)>> = vec![None; ntasks];
        for k in 0..nfiles {
            let handle = if k == 0 { f0.clone() } else { vfs.open(&physical_name(base, k))? };
            let mb1 =
                if k == 0 { mb1_0.clone() } else { MetaBlock1::read_from(handle.as_ref())? };
            if mb1.nfiles != nfiles || mb1.filenum != k || mb1.ntasks_global != ntasks as u64 {
                return Err(SionError::Format(format!(
                    "physical file {k} disagrees with file 0 about the multifile shape"
                )));
            }
            let trailer = Trailer::read_from(handle.as_ref())?;
            let nblocks = MetaBlock2::read_header(handle.as_ref(), &trailer, mb1.ntasks_local())?;
            let layout = FileLayout::from_mb1(&mb1);
            layout.validate_extent(nblocks, handle.len()?)?;
            // A v2 trailer names an index record; use it only if its header
            // agrees with the metablock geometry — a torn index silently
            // degrades this file to the linear metablock-2 path.
            let index = trailer.index.filter(|&idx| {
                ChunkIndex::validate_header(handle.as_ref(), idx, nblocks, mb1.ntasks_local())
                    .is_ok()
            });
            for (lt, &gr) in mb1.global_ranks.iter().enumerate() {
                let gr = gr as usize;
                if gr >= ntasks || rank_map[gr].is_some() {
                    return Err(SionError::Format(format!(
                        "global rank {gr} duplicated or out of range in file {k}"
                    )));
                }
                rank_map[gr] = Some((k, lt as u32));
            }
            files.push(FileView {
                handle,
                mb1,
                layout,
                trailer,
                nblocks,
                index,
                mb2: Mutex::new(None),
            });
        }
        let rank_map: Vec<(u32, u32)> = rank_map
            .into_iter()
            .enumerate()
            .map(|(r, t)| {
                t.ok_or_else(|| SionError::Format(format!("rank {r} missing from multifile")))
            })
            .collect::<Result<_>>()?;
        Ok(Multifile {
            files,
            ntasks,
            nfiles,
            fsblksize: mb1_0.fsblksize,
            flags: mb1_0.flags,
            rank_map,
            cache: Mutex::new(LocationCache { stamp: 0, entries: HashMap::new() }),
            all: Mutex::new(None),
        })
    }

    /// The file's full metablock 2, materialized at most once (the linear
    /// path for pre-index files and torn indexes).
    fn full_mb2(&self, k: usize) -> Result<Arc<MetaBlock2>> {
        let fv = &self.files[k];
        let mut slot = fv.mb2.lock().expect("metablock cache poisoned");
        if let Some(mb2) = slot.as_ref() {
            return Ok(mb2.clone());
        }
        let mb2 = Arc::new(MetaBlock2::read_at(
            fv.handle.as_ref(),
            &fv.trailer,
            fv.mb1.ntasks_local(),
        )?);
        *slot = Some(mb2.clone());
        Ok(mb2)
    }

    /// Build one rank's location from its per-block usage, folding the
    /// usage-validation pass into the same walk that builds the chunk list.
    fn build_location(&self, rank: usize, usage: &[u64]) -> Result<TaskLocation> {
        let (k, lt) = self.rank_map[rank];
        let (k, lt) = (k as usize, lt as usize);
        let fv = &self.files[k];
        let usable = fv.layout.usable(lt);
        let mut chunks = Vec::with_capacity(usage.len());
        let mut cum = Vec::with_capacity(usage.len());
        let mut stored = 0u64;
        for (b, &used) in usage.iter().enumerate() {
            if used > usable {
                return Err(SionError::Format(format!(
                    "file {k}: task {lt} block {b} claims more bytes than its chunk holds"
                )));
            }
            stored += used;
            cum.push(stored);
            chunks.push(ChunkInfo {
                block: b as u64,
                offset: fv.layout.data_offset(lt, b as u64),
                used,
            });
        }
        Ok(TaskLocation {
            global_rank: rank,
            file: k as u32,
            ltask: lt,
            chunksize_req: fv.mb1.chunksize_req[lt],
            capacity: fv.mb1.chunk_cap[lt],
            usable,
            chunks,
            cum,
            stored_bytes: stored,
        })
    }

    /// On-demand per-rank metadata fetch (`sion_get_locations` for one
    /// rank): one contiguous chunk-index read for v2 files — O(blocks of
    /// this rank), independent of the total rank count — served from a
    /// small LRU on repeat access. Usage validation happens here, on
    /// exactly the rows read.
    pub fn location(&self, rank: usize) -> Result<Arc<TaskLocation>> {
        if rank >= self.ntasks {
            return Err(SionError::InvalidArg(format!("rank {rank} out of range")));
        }
        if let Some(hit) = self.cache.lock().expect("location cache poisoned").get(rank) {
            return Ok(hit);
        }
        let (k, lt) = self.rank_map[rank];
        let (k, lt) = (k as usize, lt as usize);
        let fv = &self.files[k];
        let usage = if let Some((idx_off, _)) = fv.index {
            let cum =
                ChunkIndex::read_task_cum(fv.handle.as_ref(), idx_off, fv.nblocks, lt)?;
            let mut usage = Vec::with_capacity(cum.len());
            let mut prev = 0u64;
            for (b, &c) in cum.iter().enumerate() {
                let used = c.checked_sub(prev).ok_or_else(|| {
                    SionError::Format(format!(
                        "file {k}: task {lt} chunk index is not monotone at block {b}"
                    ))
                })?;
                usage.push(used);
                prev = c;
            }
            usage
        } else {
            self.full_mb2(k)?.task_usage(lt, fv.mb1.ntasks_local())
        };
        let loc = Arc::new(self.build_location(rank, &usage)?);
        self.cache.lock().expect("location cache poisoned").insert(rank, loc.clone());
        Ok(loc)
    }

    /// All metadata (`sion_get_locations`): the eager full materialization,
    /// computed once per open and shared. Tools that truly need every rank
    /// (`siondump`) use this; everything else should stream via
    /// [`location`](Self::location).
    pub fn locations(&self) -> Result<Arc<Locations>> {
        let mut slot = self.all.lock().expect("locations cache poisoned");
        if let Some(all) = slot.as_ref() {
            return Ok(all.clone());
        }
        let mut tasks = Vec::with_capacity(self.ntasks);
        for rank in 0..self.ntasks {
            let (k, lt) = self.rank_map[rank];
            let (k, lt) = (k as usize, lt as usize);
            let fv = &self.files[k];
            // Bulk path: one metablock 2 per file, not ntasks index reads.
            let usage = self.full_mb2(k)?.task_usage(lt, fv.mb1.ntasks_local());
            tasks.push(self.build_location(rank, &usage)?);
        }
        let all = Arc::new(Locations {
            ntasks: self.ntasks,
            nfiles: self.nfiles,
            fsblksize: self.fsblksize,
            flags: self.flags,
            tasks,
        });
        *slot = Some(all.clone());
        Ok(all)
    }

    /// Number of tasks stored in the multifile.
    pub fn ntasks(&self) -> usize {
        self.ntasks
    }

    /// Number of physical files.
    pub fn nfiles(&self) -> u32 {
        self.nfiles
    }

    /// Feature flags recorded in metablock 1.
    pub fn flags(&self) -> SionFlags {
        self.flags
    }

    /// File-system block size recorded at write time.
    pub fn fsblksize(&self) -> u64 {
        self.fsblksize
    }

    /// Largest number of blocks in any physical file — from the metablock-2
    /// headers read at open, no usage materialization.
    pub fn max_blocks(&self) -> u64 {
        self.files.iter().map(|f| f.nblocks).max().unwrap_or(0)
    }

    /// Whether logical streams are compressed.
    pub fn compressed(&self) -> bool {
        self.flags.contains(SionFlags::COMPRESSED)
    }

    /// `sion_seek` + `fread` with the global view: read stored bytes of
    /// `rank`'s chunk in block `chunk`, starting `pos` bytes in. Returns
    /// the number of bytes read (short at the end of the chunk's data).
    pub fn read_at(&self, rank: usize, chunk: u64, pos: u64, buf: &mut [u8]) -> Result<usize> {
        let t = self.location(rank)?;
        let info = t
            .chunks
            .get(chunk as usize)
            .ok_or_else(|| SionError::InvalidArg(format!("chunk {chunk} out of range")))?;
        if pos >= info.used {
            return Ok(0);
        }
        let n = buf.len().min((info.used - pos) as usize);
        self.files[t.file as usize]
            .handle
            .read_exact_at(&mut buf[..n], info.offset + pos)?;
        Ok(n)
    }

    /// Resolve a logical stream position of `rank` to `(chunk, offset
    /// within chunk)` — a binary search over the rank's prefix sums.
    /// `Ok(None)` past the end of the stream.
    pub fn seek_logical(&self, rank: usize, pos: u64) -> Result<Option<(u64, u64)>> {
        Ok(self.location(rank)?.find_chunk(pos))
    }

    /// Open the task-local view of `rank` (`sion_open_rank`): a streaming
    /// reader over that task's logical file, transparently decompressing
    /// if the multifile is compressed.
    pub fn rank_reader(&self, rank: usize) -> Result<RankReader> {
        let t = self.location(rank)?;
        let fv = &self.files[t.file as usize];
        let geom = ChunkGeom::from_layout(&fv.layout, t.ltask, rank as u64);
        let used: Vec<u64> = t.chunks.iter().map(|c| c.used).collect();
        Ok(RankReader {
            inner: TaskReader::new(
                fv.handle.clone(),
                geom,
                used,
                self.compressed(),
                DEFAULT_READ_AHEAD,
            ),
        })
    }

    /// Convenience: the complete logical (decompressed) content of `rank`.
    pub fn read_rank(&self, rank: usize) -> Result<Vec<u8>> {
        let mut r = self.rank_reader(rank)?;
        let mut out = Vec::new();
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            let n = r.read_some(&mut buf)?;
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        Ok(out)
    }
}

/// Streaming reader over one task's logical file (`sion_open_rank`).
pub struct RankReader {
    inner: TaskReader,
}

impl RankReader {
    /// `sion_feof` for this rank's stream.
    pub fn feof(&mut self) -> bool {
        self.inner.feof()
    }

    /// Unread stored bytes in the current chunk.
    pub fn bytes_avail_in_chunk(&self) -> u64 {
        self.inner.bytes_avail_in_chunk()
    }

    /// Read up to `buf.len()` logical bytes; 0 at end of stream.
    pub fn read_some(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.inner.read(buf)
    }

    /// Stream every remaining logical byte through `sink` without copying
    /// when the backing [`Vfs`](vfs::Vfs) hands out page leases (MemFs
    /// always does): the borrow-based pass `sionverify` uses to certify a
    /// stream readable while only *inspecting* its pages. Returns the
    /// number of bytes scanned. Errors on compressed multifiles — leases
    /// expose stored bytes, and a compressed stream's logical content only
    /// exists decompressed; use [`Self::read_some`] there.
    pub fn scan_remaining(&mut self, sink: &mut dyn FnMut(&[u8])) -> Result<u64> {
        self.inner.scan_remaining(sink)
    }

    /// I/O-call accounting for this rank's read stream so far.
    pub fn io_counters(&self) -> IoCounters {
        self.inner.io_counters()
    }
}

impl std::io::Read for RankReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.inner
            .read(buf)
            .map_err(|e| std::io::Error::other(e.to_string()))
    }
}

/// Serial creation of a multifile from a single process (`sion_open` in
/// write mode, paper §3.2.3). "Since the open call is now executed by only
/// one process, a whole array of chunk sizes needs to be supplied."
pub struct SerialWriter {
    files: Vec<Arc<dyn VfsFile>>,
    layouts: Vec<FileLayout>,
    writers: Vec<TaskWriter>,
    /// Physical file index of each rank.
    rank_file: Vec<usize>,
    /// Rank whose stream the positional API currently addresses.
    cur: usize,
    ntasks: usize,
}

impl SerialWriter {
    /// Create a multifile for `chunksizes.len()` tasks with the given
    /// per-task chunk sizes. `params.chunksize` is ignored (the array takes
    /// precedence); all other parameters apply as in the parallel case.
    pub fn create(
        vfs: &dyn Vfs,
        base: &str,
        chunksizes: &[u64],
        params: &SionParams,
    ) -> Result<SerialWriter> {
        Self::create_with_flags(vfs, base, chunksizes, params, params.flags())
    }

    /// Like [`create`](Self::create), but records `stored_flags` in the
    /// metadata instead of the flags implied by `params`. This is how the
    /// defragmenter copies an already-compressed multifile verbatim: the
    /// writer runs uncompressed (`params.compressed = false`) while the
    /// output still advertises `COMPRESSED` to readers.
    pub fn create_with_flags(
        vfs: &dyn Vfs,
        base: &str,
        chunksizes: &[u64],
        params: &SionParams,
        stored_flags: SionFlags,
    ) -> Result<SerialWriter> {
        let ntasks = chunksizes.len();
        params.mapping.validate(ntasks, params.nfiles)?;
        let mut files = Vec::with_capacity(params.nfiles as usize);
        let mut layouts = Vec::with_capacity(params.nfiles as usize);
        let mut writers: Vec<Option<TaskWriter>> = (0..ntasks).map(|_| None).collect();
        // Group ranks by physical file, in rank order.
        let mut per_file: Vec<Vec<usize>> = vec![Vec::new(); params.nfiles as usize];
        for r in 0..ntasks {
            per_file[params.mapping.file_of(r, ntasks, params.nfiles) as usize].push(r);
        }
        for (k, ranks) in per_file.iter().enumerate() {
            let reqs: Vec<u64> = ranks.iter().map(|&r| chunksizes[r]).collect();
            let layout =
                FileLayout::compute(&reqs, vfs.block_size(), params.alignment, params.rescue)?;
            let file = vfs.create(&physical_name(base, k as u32))?;
            let mb1 = MetaBlock1 {
                version: crate::format::VERSION,
                flags: stored_flags,
                fsblksize: vfs.block_size(),
                ntasks_global: ntasks as u64,
                nfiles: params.nfiles,
                filenum: k as u32,
                data_start: layout.data_start,
                global_ranks: ranks.iter().map(|&r| r as u64).collect(),
                chunksize_req: reqs,
                chunk_cap: layout.cap.clone(),
            };
            file.write_all_at(&mb1.encode(), 0)?;
            for (lt, &r) in ranks.iter().enumerate() {
                let geom = ChunkGeom::from_layout(&layout, lt, r as u64);
                writers[r] =
                    Some(TaskWriter::new(file.clone(), geom, params.compressed, params.write_buffer));
            }
            files.push(file);
            layouts.push(layout);
        }
        let mut rank_file = vec![0usize; ntasks];
        for (k, ranks) in per_file.iter().enumerate() {
            for &r in ranks {
                rank_file[r] = k;
            }
        }
        Ok(SerialWriter {
            files,
            layouts,
            writers: writers.into_iter().map(|w| w.expect("every rank assigned")).collect(),
            rank_file,
            cur: 0,
            ntasks,
        })
    }

    /// Number of tasks in the multifile.
    pub fn ntasks(&self) -> usize {
        self.ntasks
    }

    /// `sion_seek`: position the write cursor at (`rank`, `chunk`, `pos`).
    pub fn seek(&mut self, rank: usize, chunk: u64, pos: u64) -> Result<()> {
        if rank >= self.ntasks {
            return Err(SionError::InvalidArg(format!("rank {rank} out of range")));
        }
        self.cur = rank;
        self.writers[rank].seek(chunk, pos)
    }

    /// Switch to `rank`'s stream without repositioning it.
    pub fn select_rank(&mut self, rank: usize) -> Result<()> {
        if rank >= self.ntasks {
            return Err(SionError::InvalidArg(format!("rank {rank} out of range")));
        }
        self.cur = rank;
        Ok(())
    }

    /// `sion_ensure_free_space` on the current rank's stream.
    pub fn ensure_free_space(&mut self, nbytes: u64) -> Result<()> {
        self.writers[self.cur].ensure_free_space(nbytes)
    }

    /// Plain in-chunk write on the current rank's stream.
    pub fn write_in_chunk(&mut self, data: &[u8]) -> Result<()> {
        self.writers[self.cur].write_in_chunk(data)
    }

    /// Chunk-splitting `sion_fwrite` on the current rank's stream.
    pub fn write(&mut self, data: &[u8]) -> Result<()> {
        self.writers[self.cur].write(data)
    }

    /// Push every rank's buffered data (and rescue headers) to the VFS.
    pub fn flush(&mut self) -> Result<()> {
        for w in &mut self.writers {
            w.flush()?;
        }
        Ok(())
    }

    /// I/O-call accounting for `rank`'s write stream so far.
    pub fn io_counters(&self, rank: usize) -> Result<IoCounters> {
        if rank >= self.ntasks {
            return Err(SionError::InvalidArg(format!("rank {rank} out of range")));
        }
        Ok(self.writers[rank].io_counters())
    }

    /// Finalize: write every physical file's metablock 2, chunk index, and
    /// trailer (`sion_close`).
    pub fn close(mut self) -> Result<()> {
        // Collect per-rank usage, then group by file in local order.
        let usage: Vec<Vec<u64>> = self
            .writers
            .iter_mut()
            .map(|w| w.finish())
            .collect::<Result<_>>()?;
        let nfiles = self.files.len();
        let mut per_file: Vec<Vec<&Vec<u64>>> = vec![Vec::new(); nfiles];
        // Ranks were grouped per file in rank order at create, so pushing
        // in rank order reproduces the local task order.
        for (r, u) in usage.iter().enumerate() {
            per_file[self.rank_file[r]].push(u);
        }
        for (k, task_usage) in per_file.iter().enumerate() {
            let n = task_usage.len();
            let nblocks = task_usage.iter().map(|u| u.len()).max().unwrap_or(0) as u64;
            let mut flat = vec![0u64; nblocks as usize * n];
            for (lt, u) in task_usage.iter().enumerate() {
                for (b, &v) in u.iter().enumerate() {
                    flat[b * n + lt] = v;
                }
            }
            let mb2 = MetaBlock2 { nblocks, used: flat };
            crate::format::write_close_metadata(
                self.files[k].as_ref(),
                self.layouts[k].mb2_offset(nblocks),
                &mb2,
                n,
            )?;
        }
        Ok(())
    }
}

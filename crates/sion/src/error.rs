//! Error handling for the `sion` crate.

use std::fmt;
use std::io;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SionError>;

/// Errors produced by multifile operations.
#[derive(Debug)]
pub enum SionError {
    /// Underlying storage error.
    Io(io::Error),
    /// The file is not a multifile or its metadata is malformed.
    Format(String),
    /// Invalid arguments (zero chunk size, rank out of range, ...).
    InvalidArg(String),
    /// A single piece larger than the chunk capacity was requested via
    /// `ensure_free_space`; use the splitting `write` instead.
    PieceTooLarge {
        /// Requested contiguous piece size.
        requested: u64,
        /// Usable capacity of one chunk.
        capacity: u64,
    },
    /// Inconsistent collective call: tasks disagreed on parameters.
    CollectiveMismatch(String),
    /// Compressed-stream decode failure.
    Compression(szip::SzipError),
    /// Rescue reconstruction failed.
    Rescue(String),
}

impl fmt::Display for SionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SionError::Io(e) => write!(f, "I/O error: {e}"),
            SionError::Format(why) => write!(f, "not a valid multifile: {why}"),
            SionError::InvalidArg(why) => write!(f, "invalid argument: {why}"),
            SionError::PieceTooLarge { requested, capacity } => write!(
                f,
                "piece of {requested} bytes exceeds chunk capacity of {capacity} bytes; \
                 use the chunk-splitting write instead"
            ),
            SionError::CollectiveMismatch(why) => {
                write!(f, "collective parameter mismatch: {why}")
            }
            SionError::Compression(e) => write!(f, "compressed stream error: {e}"),
            SionError::Rescue(why) => write!(f, "rescue reconstruction failed: {why}"),
        }
    }
}

impl std::error::Error for SionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SionError::Io(e) => Some(e),
            SionError::Compression(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SionError {
    fn from(e: io::Error) -> Self {
        SionError::Io(e)
    }
}

impl From<szip::SzipError> for SionError {
    fn from(e: szip::SzipError) -> Self {
        SionError::Compression(e)
    }
}

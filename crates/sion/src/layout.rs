//! Chunk/block layout arithmetic (paper §3.1, Fig. 2).
//!
//! Everything here is a pure function of the open-time parameters, shared
//! by the parallel writer, the readers, the serial tools, *and* the timing
//! simulator's script generator — so the simulated access pattern can never
//! drift from what the library actually does.

use crate::error::{Result, SionError};
use crate::format::{MetaBlock1, SionFlags};
use crate::rescue::RESCUE_HEADER_LEN;

/// Chunk alignment policy (paper Fig. 2(c)).
///
/// Aligning chunks to file-system block boundaries guarantees that no two
/// tasks write to the same FS block — the file-system analogue of avoiding
/// false sharing of cache lines — at the price of rounding every chunk up
/// to a block multiple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Alignment {
    /// Align to the file system's block size (discovered via the VFS,
    /// mirroring SIONlib's `fstat()` probe). The default.
    FsBlock,
    /// Align to an explicit unit in bytes. The paper's Table 1 experiment
    /// configures SIONlib with a 16 KiB unit on a 2 MiB-block file system
    /// to demonstrate the cost of *mis*alignment.
    Fixed(u64),
    /// No alignment: chunks are packed back to back (Fig. 2(a)/(b)).
    None,
}

impl Alignment {
    /// The effective alignment unit given the file system's block size.
    pub fn unit(self, fsblksize: u64) -> u64 {
        match self {
            Alignment::FsBlock => fsblksize,
            Alignment::Fixed(a) => a.max(1),
            Alignment::None => 1,
        }
    }
}

/// Round `x` up to the next multiple of `unit` (`unit >= 1`).
pub fn align_up(x: u64, unit: u64) -> u64 {
    debug_assert!(unit >= 1);
    x.div_ceil(unit) * unit
}

/// The complete chunk geometry of one physical file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileLayout {
    /// File-system block size used for alignment decisions.
    pub fsblksize: u64,
    /// Effective alignment unit (1 = unaligned).
    pub unit: u64,
    /// Per-chunk rescue-header overhead (0 or [`RESCUE_HEADER_LEN`]).
    pub rescue_overhead: u64,
    /// Chunk capacity per local task, including rescue overhead.
    pub cap: Vec<u64>,
    /// Offset of each local task's chunk within a block (exclusive prefix
    /// sums of `cap`).
    pub chunk_off: Vec<u64>,
    /// Total size of one block (sum of capacities).
    pub block_size: u64,
    /// Offset of block 0.
    pub data_start: u64,
}

impl FileLayout {
    /// Compute the layout for one physical file.
    ///
    /// `reqs` holds the chunk-size request of each local task. With
    /// `rescue`, every chunk is enlarged by the rescue-header overhead; with
    /// alignment, capacities and the data start are rounded up to the unit,
    /// "and not to waste any space without necessity, the chunk size is
    /// chosen to be a multiple of the file-system block size".
    pub fn compute(
        reqs: &[u64],
        fsblksize: u64,
        alignment: Alignment,
        rescue: bool,
    ) -> Result<FileLayout> {
        if reqs.is_empty() {
            return Err(SionError::InvalidArg("layout needs at least one task".into()));
        }
        if fsblksize == 0 {
            return Err(SionError::InvalidArg("file-system block size must be positive".into()));
        }
        let unit = alignment.unit(fsblksize);
        let rescue_overhead = if rescue { RESCUE_HEADER_LEN } else { 0 };
        let mut cap = Vec::with_capacity(reqs.len());
        let mut chunk_off = Vec::with_capacity(reqs.len());
        let mut acc = 0u64;
        for &req in reqs {
            let c = align_up(req + rescue_overhead, unit);
            chunk_off.push(acc);
            acc = acc
                .checked_add(c)
                .ok_or_else(|| SionError::InvalidArg("block size overflows u64".into()))?;
            cap.push(c);
        }
        let mb1_len = MetaBlock1::encoded_len(reqs.len());
        let data_start = align_up(mb1_len, unit);
        Ok(FileLayout {
            fsblksize,
            unit,
            rescue_overhead,
            cap,
            chunk_off,
            block_size: acc,
            data_start,
        })
    }

    /// Rebuild the layout of an existing file from its metablock 1.
    pub fn from_mb1(mb1: &MetaBlock1) -> FileLayout {
        let mut chunk_off = Vec::with_capacity(mb1.chunk_cap.len());
        let mut acc = 0u64;
        for &c in &mb1.chunk_cap {
            chunk_off.push(acc);
            acc += c;
        }
        let rescue_overhead =
            if mb1.flags.contains(SionFlags::RESCUE) { RESCUE_HEADER_LEN } else { 0 };
        let unit = if mb1.flags.contains(SionFlags::ALIGNED) {
            // The original unit is recoverable only approximately; all
            // address arithmetic uses the stored capacities, so the unit is
            // informational for readers.
            mb1.fsblksize
        } else {
            1
        };
        FileLayout {
            fsblksize: mb1.fsblksize,
            unit,
            rescue_overhead,
            cap: mb1.chunk_cap.clone(),
            chunk_off,
            block_size: acc,
            data_start: mb1.data_start,
        }
    }

    /// Number of local tasks.
    pub fn ntasks(&self) -> usize {
        self.cap.len()
    }

    /// File offset of the start of task `ltask`'s chunk in block `block`
    /// (including the rescue header, if any).
    pub fn chunk_start(&self, ltask: usize, block: u64) -> u64 {
        self.data_start + block * self.block_size + self.chunk_off[ltask]
    }

    /// File offset where task `ltask`'s *user data* starts in block `block`.
    pub fn data_offset(&self, ltask: usize, block: u64) -> u64 {
        self.chunk_start(ltask, block) + self.rescue_overhead
    }

    /// Bytes of user data one chunk of task `ltask` can hold.
    pub fn usable(&self, ltask: usize) -> u64 {
        self.cap[ltask] - self.rescue_overhead
    }

    /// Offset where metablock 2 goes when the file holds `nblocks` blocks.
    pub fn mb2_offset(&self, nblocks: u64) -> u64 {
        self.data_start + nblocks * self.block_size
    }

    /// Validate that `nblocks` blocks of this layout fit inside a file of
    /// `file_len` bytes without address-arithmetic overflow — the guard
    /// between untrusted metadata and the chunk address computations.
    pub fn validate_extent(&self, nblocks: u64, file_len: u64) -> Result<()> {
        let end = nblocks
            .checked_mul(self.block_size)
            .and_then(|v| v.checked_add(self.data_start))
            .ok_or_else(|| {
                SionError::Format("block extent overflows address arithmetic".into())
            })?;
        if end > file_len {
            return Err(SionError::Format(format!(
                "metadata claims {nblocks} blocks ending at {end}, but the file has only                  {file_len} bytes"
            )));
        }
        Ok(())
    }

    /// Statistics on how many distinct tasks touch each *real* file-system
    /// block within one layout block — the contention the paper's Table 1
    /// quantifies. With proper alignment the maximum is 1; with chunks
    /// smaller than the real block size, many tasks share each block.
    pub fn block_sharing(&self, real_block: u64) -> SharingStats {
        assert!(real_block >= 1);
        let nblocks_fs = self.block_size.div_ceil(real_block).max(1);
        let mut sharers = vec![0u32; nblocks_fs as usize];
        for (t, &off) in self.chunk_off.iter().enumerate() {
            if self.cap[t] == 0 {
                continue;
            }
            let first = off / real_block;
            let last = (off + self.cap[t] - 1) / real_block;
            for b in first..=last {
                sharers[b as usize] += 1;
            }
        }
        let occupied: Vec<u32> = sharers.into_iter().filter(|&s| s > 0).collect();
        let max = occupied.iter().copied().max().unwrap_or(0);
        let mean = if occupied.is_empty() {
            0.0
        } else {
            occupied.iter().map(|&s| s as f64).sum::<f64>() / occupied.len() as f64
        };
        SharingStats { max_sharers: max, mean_sharers: mean }
    }

    /// Whether a group boundary *before* local task `t` is FS-block clean:
    /// task `t`'s chunk starts exactly on a real FS-block boundary in
    /// **every** layout block, so writers on either side of the boundary
    /// can never touch the same FS block. This requires the block stride
    /// to preserve alignment (`block_size % fsblksize == 0`) on top of the
    /// chunk start being aligned in block 0.
    pub fn clean_boundary(&self, t: usize) -> bool {
        self.block_size.is_multiple_of(self.fsblksize)
            && (self.data_start + self.chunk_off[t]).is_multiple_of(self.fsblksize)
    }

    /// Aggregator election for two-phase collective writes: pack
    /// consecutive local tasks into neighborhoods of at least
    /// `tasks_per_aggregator`, placing boundaries only where they are
    /// [clean](Self::clean_boundary). Returns the first local task of each
    /// group, sorted, starting with 0 — that task is the group's
    /// aggregator. On a layout with no clean internal boundary (unaligned
    /// chunks), the whole file degenerates to one group: a single writer
    /// trivially never shares an FS block with another.
    pub fn aggregation_groups(&self, tasks_per_aggregator: usize) -> Vec<usize> {
        let target = tasks_per_aggregator.max(1);
        let mut starts = vec![0usize];
        let mut last = 0usize;
        for t in 1..self.ntasks() {
            if t - last >= target && self.clean_boundary(t) {
                starts.push(t);
                last = t;
            }
        }
        starts
    }

    /// The real FS-block indices (relative to the start of one layout
    /// block) that more than one task's chunk overlaps — the static
    /// prediction the runtime block-contention sanitizer
    /// (`vfs::BlockGuardFs`) must agree with when every task writes its
    /// full chunk. Sorted, deterministic.
    pub fn shared_fs_blocks(&self, real_block: u64) -> Vec<u64> {
        assert!(real_block >= 1);
        let nblocks_fs = self.block_size.div_ceil(real_block).max(1);
        let mut sharers = vec![0u32; nblocks_fs as usize];
        for (t, &off) in self.chunk_off.iter().enumerate() {
            if self.cap[t] == 0 {
                continue;
            }
            let first = off / real_block;
            let last = (off + self.cap[t] - 1) / real_block;
            for b in first..=last {
                sharers[b as usize] += 1;
            }
        }
        sharers
            .into_iter()
            .enumerate()
            .filter_map(|(b, s)| (s > 1).then_some(b as u64))
            .collect()
    }
}

/// Result of [`FileLayout::block_sharing`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingStats {
    /// Largest number of tasks whose chunks overlap one real FS block.
    pub max_sharers: u32,
    /// Mean over occupied FS blocks.
    pub mean_sharers: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 4), 0);
        assert_eq!(align_up(1, 4), 4);
        assert_eq!(align_up(4, 4), 4);
        assert_eq!(align_up(5, 4), 8);
        assert_eq!(align_up(7, 1), 7);
    }

    #[test]
    fn aligned_layout_rounds_capacities() {
        let l = FileLayout::compute(&[100, 4096, 5000], 4096, Alignment::FsBlock, false).unwrap();
        assert_eq!(l.cap, vec![4096, 4096, 8192]);
        assert_eq!(l.chunk_off, vec![0, 4096, 8192]);
        assert_eq!(l.block_size, 16384);
        assert_eq!(l.data_start % 4096, 0);
        assert!(l.data_start >= MetaBlock1::encoded_len(3));
    }

    #[test]
    fn unaligned_layout_packs_tightly() {
        let l = FileLayout::compute(&[100, 200, 300], 4096, Alignment::None, false).unwrap();
        assert_eq!(l.cap, vec![100, 200, 300]);
        assert_eq!(l.block_size, 600);
        assert_eq!(l.data_start, MetaBlock1::encoded_len(3));
    }

    #[test]
    fn fixed_alignment_unit() {
        let l = FileLayout::compute(&[1], 2 << 20, Alignment::Fixed(16 << 10), false).unwrap();
        assert_eq!(l.cap, vec![16 << 10]);
        assert_eq!(l.unit, 16 << 10);
    }

    #[test]
    fn rescue_overhead_is_added_before_alignment() {
        let l = FileLayout::compute(&[4096], 4096, Alignment::FsBlock, true).unwrap();
        // 4096 + 32 rounds up to two blocks.
        assert_eq!(l.cap, vec![8192]);
        assert_eq!(l.usable(0), 8192 - RESCUE_HEADER_LEN);
        assert_eq!(l.data_offset(0, 0), l.chunk_start(0, 0) + RESCUE_HEADER_LEN);
    }

    #[test]
    fn chunk_addresses_advance_by_block_size() {
        let l = FileLayout::compute(&[10, 20], 64, Alignment::FsBlock, false).unwrap();
        for t in 0..2 {
            for b in 0..5u64 {
                assert_eq!(l.chunk_start(t, b + 1) - l.chunk_start(t, b), l.block_size);
            }
        }
        assert_eq!(l.mb2_offset(3), l.data_start + 3 * l.block_size);
    }

    #[test]
    fn aligned_blocks_never_shared() {
        let l =
            FileLayout::compute(&[100, 5000, 12345, 1], 4096, Alignment::FsBlock, false).unwrap();
        let s = l.block_sharing(4096);
        assert_eq!(s.max_sharers, 1);
        assert_eq!(s.mean_sharers, 1.0);
    }

    #[test]
    fn misaligned_blocks_heavily_shared() {
        // Table 1 scenario in miniature: 16 KiB chunks on 2 MiB real blocks
        // means up to 128 tasks per block.
        let reqs = vec![16 << 10; 256];
        let l = FileLayout::compute(&reqs, 2 << 20, Alignment::Fixed(16 << 10), false).unwrap();
        let s = l.block_sharing(2 << 20);
        assert!(s.max_sharers >= 128, "expected heavy sharing, got {}", s.max_sharers);
    }

    #[test]
    fn aggregation_groups_follow_clean_boundaries() {
        // Fully aligned: every task boundary is clean, groups are exact.
        let l = FileLayout::compute(&[100; 8], 4096, Alignment::FsBlock, false).unwrap();
        assert_eq!(l.aggregation_groups(2), vec![0, 2, 4, 6]);
        assert_eq!(l.aggregation_groups(3), vec![0, 3, 6]);
        assert_eq!(l.aggregation_groups(100), vec![0]);
        // Unaligned: no clean internal boundary, one group for the file.
        let l = FileLayout::compute(&[100; 8], 4096, Alignment::None, false).unwrap();
        assert_eq!(l.aggregation_groups(2), vec![0]);
    }

    #[test]
    fn aggregation_groups_snap_to_fs_block_neighborhoods() {
        // Table 1 scenario: 16 KiB chunks on 2 MiB FS blocks. Boundaries
        // are clean only where a chunk starts a fresh 2 MiB block, so a
        // requested group of 4 snaps out to 128-task neighborhoods.
        let reqs = vec![16 << 10; 512];
        let l = FileLayout::compute(&reqs, 2 << 20, Alignment::Fixed(16 << 10), false).unwrap();
        let groups = l.aggregation_groups(4);
        assert!(groups.len() > 1, "clean boundaries exist in this layout");
        for &g in &groups[1..] {
            assert!(l.clean_boundary(g), "boundary before task {g} is clean");
        }
        // Interior boundaries are 128 tasks (one 2 MiB block) apart; only
        // the first group may be ragged (it absorbs the metadata offset).
        for w in groups[1..].windows(2) {
            assert_eq!((w[1] - w[0]) % 128, 0, "boundaries land on 2 MiB edges");
        }
    }

    #[test]
    fn zero_request_allowed_without_alignment() {
        let l = FileLayout::compute(&[0, 10], 4096, Alignment::None, false).unwrap();
        assert_eq!(l.cap[0], 0);
        assert_eq!(l.usable(0), 0);
        assert_eq!(l.chunk_off, vec![0, 0]);
    }

    #[test]
    fn empty_task_list_rejected() {
        assert!(FileLayout::compute(&[], 4096, Alignment::FsBlock, false).is_err());
        assert!(FileLayout::compute(&[1], 0, Alignment::FsBlock, false).is_err());
    }

    #[test]
    fn from_mb1_reconstructs_addresses() {
        let l = FileLayout::compute(&[100, 200, 3000], 512, Alignment::FsBlock, true).unwrap();
        let mb1 = MetaBlock1 {
            version: crate::format::VERSION,
            flags: SionFlags::ALIGNED | SionFlags::RESCUE,
            fsblksize: 512,
            ntasks_global: 3,
            nfiles: 1,
            filenum: 0,
            data_start: l.data_start,
            global_ranks: vec![0, 1, 2],
            chunksize_req: vec![100, 200, 3000],
            chunk_cap: l.cap.clone(),
        };
        let l2 = FileLayout::from_mb1(&mb1);
        assert_eq!(l2.cap, l.cap);
        assert_eq!(l2.chunk_off, l.chunk_off);
        assert_eq!(l2.block_size, l.block_size);
        assert_eq!(l2.data_start, l.data_start);
        assert_eq!(l2.rescue_overhead, l.rescue_overhead);
        for t in 0..3 {
            for b in 0..3 {
                assert_eq!(l2.chunk_start(t, b), l.chunk_start(t, b));
            }
        }
    }

    proptest! {
        /// Core invariants: chunks are disjoint, ordered, inside the block,
        /// capacities cover requests, and alignment holds.
        #[test]
        fn layout_invariants(
            reqs in prop::collection::vec(0u64..100_000, 1..64),
            blk in prop::sample::select(vec![1u64, 512, 4096, 65536]),
            align in prop::sample::select(vec![0usize, 1, 2]),
            rescue in any::<bool>(),
        ) {
            let alignment = match align {
                0 => Alignment::FsBlock,
                1 => Alignment::None,
                _ => Alignment::Fixed(1024),
            };
            let l = FileLayout::compute(&reqs, blk, alignment, rescue).unwrap();
            let unit = alignment.unit(blk);
            let overhead = if rescue { RESCUE_HEADER_LEN } else { 0 };
            let mut expect_off = 0u64;
            for (t, &req) in reqs.iter().enumerate() {
                prop_assert_eq!(l.chunk_off[t], expect_off);
                prop_assert!(l.cap[t] >= req + overhead);
                prop_assert!(l.cap[t] < req + overhead + unit); // minimal rounding
                prop_assert_eq!(l.cap[t] % unit, 0);
                prop_assert_eq!(l.usable(t), l.cap[t] - overhead);
                expect_off += l.cap[t];
            }
            prop_assert_eq!(l.block_size, expect_off);
            prop_assert_eq!(l.data_start % unit, 0);
            prop_assert!(l.data_start >= MetaBlock1::encoded_len(reqs.len()));
            // Chunks are disjoint and ordered: each ends where the next
            // begins, and the last chunk of block 0 ends where block 1
            // begins.
            for t in 0..reqs.len() {
                let end_t = l.chunk_start(t, 0) + l.cap[t];
                if t + 1 < reqs.len() {
                    prop_assert_eq!(end_t, l.chunk_start(t + 1, 0));
                } else {
                    prop_assert_eq!(end_t, l.chunk_start(0, 1));
                }
            }
        }

        /// With FS-block alignment, no real block is ever shared.
        #[test]
        fn aligned_implies_exclusive_blocks(
            reqs in prop::collection::vec(1u64..50_000, 1..48),
            blk in prop::sample::select(vec![512u64, 4096, 65536]),
        ) {
            let l = FileLayout::compute(&reqs, blk, Alignment::FsBlock, false).unwrap();
            prop_assert!(l.block_sharing(blk).max_sharers <= 1);
        }
    }
}

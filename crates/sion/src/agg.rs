//! Two-phase aggregated writes (ROADMAP item 2, beyond the SC09 paper).
//!
//! In [`IoMode::Aggregated`](crate::IoMode::Aggregated) each file group is
//! cut into FS-block-clean *neighborhoods* of consecutive local tasks
//! ([`FileLayout::aggregation_groups`](crate::layout::FileLayout::aggregation_groups)).
//! The lowest task of a neighborhood is its **aggregator**; the others are
//! **members**. A member runs the full chunk arithmetic of an independent
//! writer against a *shadow* stream over a [`vfs::NullFile`] — so its
//! validation, `used` vectors, and close statistics are exactly those of
//! an independent run — while the real bytes travel to the aggregator as
//! *shipments*: framed op logs replayed through a per-member
//! [`TaskWriter`] over the real file. Since only aggregators touch the
//! physical file, and neighborhoods cover whole FS blocks, every FS block
//! has exactly one writing task (the `vfs::BlockGuardFs` invariant) and
//! writes are issued in large, aligned, per-frame batches.
//!
//! ## Shipment protocol
//!
//! Members stage ops into a frame `[u64 seq][op…]` and ship it to the
//! aggregator (tag [`TAG_SHIP`]) when the staged payload reaches the
//! write-behind capacity, on `flush`, and at close. Ops:
//!
//! | op | args | replayed as |
//! |----|------|-------------|
//! | [`OP_HELLO`]  | 7×u64 chunk geometry | create the member's writer |
//! | [`OP_WRITE`]  | u64 len, bytes | `TaskWriter::write` |
//! | [`OP_WRITE_IN_CHUNK`] | u64 len, bytes | `TaskWriter::write_in_chunk` |
//! | [`OP_ENSURE`] | u64 nbytes | `TaskWriter::ensure_free_space` |
//! | [`OP_FLUSH`]  | — | `TaskWriter::flush` |
//! | [`OP_FINISH`] | — | `TaskWriter::finish`; ends the member's stream |
//!
//! The aggregator drains shipments *opportunistically* (non-parking
//! [`CoComm::try_recv`]) from inside its own write calls — overlapping
//! members' compute with its I/O, TASIO-style — and exhaustively at close.
//! Every such poll is a discrete schedule point, not an opaque spin: the
//! runtimes report each attempt (hit or miss) through
//! `CheckHook::on_try_recv`, so a model checker exploring schedules (see
//! `simcheck`'s DPOR mode) sees the drain as an ordinary visible event it
//! can commute against the members' ships, and a happens-before checker
//! can pair each drained frame with the send that produced it.
//! After replaying a frame it makes the bytes durable with
//! `flush_pending` (never a full `flush`, which would end an LZSS frame in
//! compressed mode and diverge from the independent-mode bytes) and acks
//! `[u64 seq][u64 status]` (tag [`TAG_ACK`]).
//!
//! ## Failure semantics (paper §4a crash model, preserved)
//!
//! An acked shipment is durable up to the stream engine's usual flush
//! points; a crashed aggregator loses only not-yet-acked shipments. A VFS
//! error while replaying marks the member *failed*: the aggregator keeps
//! draining (a deserted protocol would hang the group) but discards ops,
//! and every subsequent ack carries status 1. The member folds that into
//! its [`CloseRecord`](crate::format::CloseRecord), so the group skips
//! metablock 2 and the file stays repairable via `rescue::repair` —
//! exactly the independent-mode crash contract. Replay goes through the
//! unmodified [`TaskWriter`], so the data-before-rescue-patch write
//! ordering is inherited, not re-implemented.

use crate::stream::{ChunkGeom, TaskWriter};
use simmpi::CoComm;
use std::collections::VecDeque;
use std::sync::Arc;
use vfs::VfsFile;

/// Shipment frames, member → aggregator.
pub(crate) const TAG_SHIP: u64 = 0xA6 << 56;
/// Acks `[seq, status]`, aggregator → member.
pub(crate) const TAG_ACK: u64 = 0xA7 << 56;

pub(crate) const OP_HELLO: u8 = 1;
pub(crate) const OP_WRITE: u8 = 2;
pub(crate) const OP_WRITE_IN_CHUNK: u8 = 3;
pub(crate) const OP_ENSURE: u8 = 4;
pub(crate) const OP_FLUSH: u8 = 5;
pub(crate) const OP_FINISH: u8 = 6;

/// Shipment counters of one task's aggregated-mode traffic, reported by
/// [`SionParWriter::agg_stats`](crate::SionParWriter::agg_stats) and
/// [`CloseStats::agg`](crate::CloseStats). On a member they count frames
/// this task shipped and the acks it got back; on an aggregator, frames
/// received/replayed on members' behalf (acked as applied). All zeros in
/// independent mode and on tasks that ended up without a neighborhood.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AggStats {
    /// Frames shipped (member) or replayed (aggregator).
    pub shipments: u64,
    /// Frames acknowledged.
    pub acked_shipments: u64,
    /// Frame bytes shipped (member) or received (aggregator), headers
    /// included.
    pub shipped_bytes: u64,
    /// Frame bytes covered by acknowledgements.
    pub acked_bytes: u64,
}

/// A task's role in the aggregation protocol, fixed at collective open.
pub(crate) enum AggRole {
    /// Writes its own chunks directly (independent mode, or an aggregated
    /// neighborhood of one).
    Independent,
    /// Ships ops to an aggregator; owns no real file handle.
    Member(MemberState),
    /// Writes its own chunks *and* replays its members' shipments.
    Aggregator(AggState),
}

/// Member-side shipping state.
pub(crate) struct MemberState {
    /// Aggregator's rank in the file-group communicator.
    pub agg: usize,
    /// Staged frame: `[u64 seq][op…]`; empty between ships.
    frame: Vec<u8>,
    /// Sequence number of the staged / next frame.
    next_seq: u64,
    /// Staged-payload bytes that trigger a ship.
    ship_cap: usize,
    /// Shipped-but-unacked frames, in order: `(seq, frame bytes)`.
    inflight: VecDeque<(u64, u64)>,
    /// An ack reported an aggregator-side replay failure.
    pub failed: bool,
    pub stats: AggStats,
}

impl MemberState {
    /// `ship_cap` is normally the write-behind capacity; 0 ships every op.
    pub fn new(agg: usize, ship_cap: usize, geom: &ChunkGeom) -> MemberState {
        let mut m = MemberState {
            agg,
            frame: Vec::new(),
            next_seq: 0,
            ship_cap: ship_cap.max(1),
            inflight: VecDeque::new(),
            failed: false,
            stats: AggStats::default(),
        };
        // Frame 0 leads with this member's geometry, so the aggregator
        // builds the member's writer from the shipment stream itself — the
        // open-time scatter stays mode-independent.
        m.begin();
        m.frame.push(OP_HELLO);
        for w in geom.encode() {
            m.frame.extend_from_slice(&w.to_le_bytes());
        }
        m
    }

    fn begin(&mut self) {
        if self.frame.is_empty() {
            self.frame.extend_from_slice(&self.next_seq.to_le_bytes());
        }
    }

    /// Stage an op carrying a byte payload (`OP_WRITE`/`OP_WRITE_IN_CHUNK`).
    pub fn stage_data(&mut self, op: u8, data: &[u8]) {
        self.begin();
        self.frame.push(op);
        self.frame.extend_from_slice(&(data.len() as u64).to_le_bytes());
        self.frame.extend_from_slice(data);
    }

    /// Stage an op carrying one `u64` argument (`OP_ENSURE`).
    pub fn stage_word(&mut self, op: u8, word: u64) {
        self.begin();
        self.frame.push(op);
        self.frame.extend_from_slice(&word.to_le_bytes());
    }

    /// Stage an argument-less op (`OP_FLUSH`/`OP_FINISH`).
    pub fn stage_op(&mut self, op: u8) {
        self.begin();
        self.frame.push(op);
    }

    /// Ship the staged frame now (no-op when nothing is staged). Sends are
    /// buffered and never park, so this is safe from synchronous writes.
    pub fn ship(&mut self, lcom: &dyn CoComm) {
        if self.frame.is_empty() {
            return;
        }
        // The ship tag lives in a reserved namespace; the scope tells the
        // runtime this send is the protocol itself, not a stray user send.
        let _protocol = simmpi::enter_agg_protocol();
        lcom.send(self.agg, TAG_SHIP, &self.frame);
        self.stats.shipments += 1;
        self.stats.shipped_bytes += self.frame.len() as u64;
        self.inflight.push_back((self.next_seq, self.frame.len() as u64));
        self.next_seq += 1;
        self.frame.clear();
    }

    /// Whether the staged payload reached the ship capacity. Callers flush
    /// the shadow stream's buffered bytes *before* the matching
    /// [`ship`](Self::ship): the shadow extents on record at send time are
    /// exactly the replay obligations this frame carries, which is what
    /// lets an ordering checker hold the eventual ack to them.
    pub fn ship_due(&self) -> bool {
        self.frame.len().saturating_sub(8) >= self.ship_cap
    }

    /// Consume every already-delivered ack without parking.
    pub fn drain_acks(&mut self, lcom: &dyn CoComm) {
        while let Some(buf) = lcom.try_recv(self.agg, TAG_ACK) {
            self.note_ack(&buf);
            lcom.recycle(buf);
        }
    }

    /// Account one ack `[seq, status]` against the oldest in-flight frame.
    pub fn note_ack(&mut self, buf: &[u8]) {
        let seq = u64::from_le_bytes(buf[..8].try_into().expect("ack seq"));
        let status = u64::from_le_bytes(buf[8..16].try_into().expect("ack status"));
        let (expect, bytes) = self.inflight.pop_front().expect("ack without in-flight frame");
        debug_assert_eq!(seq, expect, "acks arrive in ship order");
        self.stats.acked_shipments += 1;
        self.stats.acked_bytes += bytes;
        if status != 0 {
            self.failed = true;
        }
    }

    /// Whether every shipped frame has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.inflight.is_empty()
    }
}

/// One member as seen by its aggregator.
pub(crate) struct MemberSlot {
    /// Member's rank in the file-group communicator.
    pub lrank: usize,
    /// Replay writer over the real file; created by `OP_HELLO`.
    writer: Option<TaskWriter>,
    /// Next expected frame sequence number (mailboxes are FIFO per
    /// `(src, tag)`, so this is a pure sanity check).
    next_seq: u64,
    /// `OP_FINISH` replayed; no further frames will arrive.
    pub done: bool,
    /// A replay op failed; later ops are discarded and acks carry status 1.
    failed: bool,
}

/// Aggregator-side state: the real file handle plus one replay slot per
/// member of the neighborhood.
pub(crate) struct AggState {
    file: Arc<dyn VfsFile>,
    compressed: bool,
    write_buffer: u64,
    /// This aggregator's global rank: the task label its replay writes
    /// carry for the block/ordering guards.
    grank: u64,
    pub members: Vec<MemberSlot>,
    pub stats: AggStats,
}

impl AggState {
    pub fn new(
        file: Arc<dyn VfsFile>,
        compressed: bool,
        write_buffer: u64,
        grank: u64,
        member_lranks: std::ops::Range<usize>,
    ) -> AggState {
        AggState {
            file,
            compressed,
            write_buffer,
            grank,
            members: member_lranks
                .map(|lrank| MemberSlot {
                    lrank,
                    writer: None,
                    next_seq: 0,
                    done: false,
                    failed: false,
                })
                .collect(),
            stats: AggStats::default(),
        }
    }

    /// Replay every already-delivered shipment without parking — the
    /// overlap hook, called from the aggregator's own write path.
    pub fn try_drain(&mut self, lcom: &dyn CoComm) {
        for i in 0..self.members.len() {
            while !self.members[i].done {
                let Some(buf) = lcom.try_recv(self.members[i].lrank, TAG_SHIP) else {
                    break;
                };
                self.apply(i, &buf, lcom);
                lcom.recycle(buf);
            }
        }
    }

    /// Drain every member to its `OP_FINISH`, parking as needed — the
    /// close-time exhaustive drain.
    pub async fn drain_all(&mut self, lcom: &dyn CoComm) {
        for i in 0..self.members.len() {
            while !self.members[i].done {
                let lrank = self.members[i].lrank;
                let buf = match lcom.try_recv(lrank, TAG_SHIP) {
                    Some(b) => b,
                    None => lcom.recv(lrank, TAG_SHIP).await,
                };
                self.apply(i, &buf, lcom);
                lcom.recycle(buf);
            }
        }
    }

    /// Replay one frame through member `i`'s writer and ack it. Frames are
    /// produced by [`MemberState`] in this same build, so malformed framing
    /// is a bug, not an input: parsing panics rather than limping on.
    fn apply(&mut self, i: usize, buf: &[u8], lcom: &dyn CoComm) {
        // Re-arm the thread's task label: on the task runtimes this
        // coroutine shares its worker thread with other ranks (and
        // `drain_all` parks between frames), so whatever label the thread
        // carries may be stale. Replay writes are the aggregator's own
        // physical I/O and must be attributed to it.
        vfs::guard::set_task(self.grank);
        let slot = &mut self.members[i];
        let seq = u64::from_le_bytes(buf[..8].try_into().expect("frame seq"));
        debug_assert_eq!(seq, slot.next_seq, "frames arrive in ship order");
        slot.next_seq = seq + 1;
        let word =
            |p: usize| u64::from_le_bytes(buf[p..p + 8].try_into().expect("op argument"));
        let mut p = 8;
        while p < buf.len() {
            let op = buf[p];
            p += 1;
            // A failed member keeps being *parsed* (the drain must still
            // find OP_FINISH) but no longer touches the file: its on-disk
            // state stays the durable prefix of the acked shipments.
            match op {
                OP_HELLO => {
                    let words: Vec<u64> = (0..ChunkGeom::ENCODED_WORDS)
                        .map(|k| word(p + 8 * k))
                        .collect();
                    p += 8 * ChunkGeom::ENCODED_WORDS;
                    if !slot.failed {
                        let geom = ChunkGeom::decode(&words).expect("hello geometry");
                        slot.writer = Some(TaskWriter::new(
                            self.file.clone(),
                            geom,
                            self.compressed,
                            self.write_buffer,
                        ));
                    }
                }
                OP_WRITE | OP_WRITE_IN_CHUNK => {
                    let len = word(p) as usize;
                    let data = &buf[p + 8..p + 8 + len];
                    p += 8 + len;
                    if !slot.failed {
                        let w = slot.writer.as_mut().expect("write before hello");
                        let res = if op == OP_WRITE {
                            w.write(data)
                        } else {
                            w.write_in_chunk(data)
                        };
                        slot.failed = res.is_err();
                    }
                }
                OP_ENSURE => {
                    let n = word(p);
                    p += 8;
                    if !slot.failed {
                        let w = slot.writer.as_mut().expect("ensure before hello");
                        slot.failed = w.ensure_free_space(n).is_err();
                    }
                }
                OP_FLUSH => {
                    if !slot.failed {
                        let w = slot.writer.as_mut().expect("flush before hello");
                        slot.failed = w.flush().is_err();
                    }
                }
                OP_FINISH => {
                    if !slot.failed {
                        if let Some(w) = slot.writer.as_mut() {
                            slot.failed = w.finish().is_err();
                        }
                    }
                    slot.done = true;
                }
                other => panic!("malformed shipment frame: op {other}"),
            }
        }
        // Per-frame durability point: flush pending bytes (and the rescue
        // patch) without ending a compression frame — `flush_pending`, not
        // `flush`, so compressed streams stay byte-identical to an
        // independent run. An ack therefore promises exactly what
        // independent-mode `flush` promises: the bytes are in the VFS.
        if !slot.failed && !slot.done {
            if let Some(w) = slot.writer.as_mut() {
                slot.failed = w.flush_pending().is_err();
            }
        }
        let mut ack = [0u8; 16];
        ack[..8].copy_from_slice(&seq.to_le_bytes());
        ack[8..].copy_from_slice(&(slot.failed as u64).to_le_bytes());
        // Reserved-namespace send, like the ship: scope it as protocol
        // traffic. The ack leaves only after `flush_pending` above — an
        // ordering checker verifies exactly that (ack covers obligations).
        let _protocol = simmpi::enter_agg_protocol();
        lcom.send(slot.lrank, TAG_ACK, &ack);
        self.stats.shipments += 1;
        self.stats.shipped_bytes += buf.len() as u64;
        self.stats.acked_shipments += 1;
        self.stats.acked_bytes += buf.len() as u64;
    }
}

//! Parallel access to multifiles (paper §3.2.1/§3.2.2).
//!
//! Open and close are *collective* operations over a communicator: at open,
//! each task sends its chunk-size request to the master task of its
//! physical file, which computes the layout, creates the file (one create
//! per physical file instead of one per task — the source of the paper's
//! orders-of-magnitude creation speedup), writes metablock 1 and returns
//! each task its chunk geometry. At close, the master collects the bytes
//! effectively written and stores them in metablock 2. Reads and writes in
//! between are completely independent per task.
//!
//! # Collective round structure
//!
//! All per-task metadata travels in *packed* fixed-layout records
//! ([`OpenRecord`], [`CloseRecord`]) so each phase costs a constant number
//! of collective rounds regardless of how many fields it moves:
//!
//! * write open — 2 `split`s, then per file group ONE metadata gather +
//!   ONE status broadcast + ONE geometry scatter, then ONE global
//!   allgather that doubles as the all-or-nothing failure agreement *and*
//!   the cross-group parameter-agreement check;
//! * write close — ONE usage gather + ONE status broadcast per file
//!   group, then ONE global barrier; file groups beyond
//!   [`SHARDED_CLOSE_THRESHOLD`] tasks instead shard the gather across
//!   per-256-task sub-masters that write disjoint metadata slices, so the
//!   file master never materializes O(ranks·blocks) usage rows (see
//!   [`close_sharded`]);
//! * read open — ONE parent broadcast carrying status and the rank map
//!   together, 2 `split`s, then per file group ONE status broadcast + ONE
//!   geometry scatter, then ONE global allgather.
//!
//! A task whose *local* pre-open validation fails must still join every
//! collective (deserting a gather would hang its peers), so the failure
//! travels as a status bit inside its packed record and surfaces as an
//! error on every task after the exchange.
//!
//! # Maybe-async protocol bodies
//!
//! The collective protocols are written once, as `async` functions over
//! [`simmpi::CoComm`] ([`paropen_write_co`], [`paropen_read_co`],
//! [`SionParWriter::close_co`], [`SionParReader::close_co`]), so the same
//! state machines run on every runtime:
//!
//! * on the thread-backed runtimes the public blocking entry points
//!   ([`paropen_write`], [`paropen_read`], `close`) wrap the communicator
//!   in [`simmpi::BlockingRef`] and retire the whole protocol in a single
//!   [`simmpi::drive_ready`] poll — byte-for-byte the old behaviour;
//! * inside a [`simmpi::TaskWorld`] the `_co` entry points are awaited
//!   directly and genuinely park on each collective round, which is what
//!   lets a 16Ki–64Ki-rank collective open run on a handful of worker
//!   threads.
//!
//! One caveat: `vfs::guard` block-contention attribution is per *thread*,
//! so it is armed only by the blocking entry points (where a rank owns its
//! thread). Under the task runtime, ranks migrate across workers and the
//! guard's writer attribution would be meaningless; run `SIONCHECK` block
//! guards on the thread runtimes.

use crate::agg::{AggRole, AggState, AggStats, MemberState, OP_ENSURE, OP_FINISH, OP_FLUSH,
    OP_WRITE, OP_WRITE_IN_CHUNK, TAG_ACK};
use crate::error::{Result, SionError};
use crate::format::{
    write_close_metadata, ChunkIndex, CloseRecord, MetaBlock1, MetaBlock2, OpenRecord, SionFlags,
    IDX_FIXED_LEN, MAGIC_EOF2, MB2_FIXED_LEN, TRAILER2_LEN,
};
use crate::layout::FileLayout;
use crate::physical_name;
use crate::stream::{ChunkGeom, IoCounters, TaskReader, TaskWriter, DEFAULT_READ_AHEAD};
use crate::{IoMode, SionParams};
use simmpi::{drive_ready, BlockingRef, CoComm, Comm, CommStats};
use std::sync::Arc;
use vfs::{IoSlice, Vfs};

/// Payload a file master prepares during the collective write open: the
/// per-task geometry blobs to scatter plus the created file handle.
type GroupSetup = (Vec<Vec<u8>>, Arc<dyn vfs::VfsFile>);

/// File groups larger than this close through sub-master sharding
/// ([`close_sharded`]) instead of one global usage gather. The threshold
/// keeps the exact small-P round structure pinned by the
/// `collective_rounds` test, and keeps every thread-backed runtime (capped
/// at a few hundred ranks) on the simple path.
const SHARDED_CLOSE_THRESHOLD: usize = 512;

/// Local tasks per close shard: each sub-master gathers and writes the
/// metadata slices of this many consecutive local tasks.
const CLOSE_SHARD_TASKS: usize = 256;

/// Status word broadcast by a master after its setup phase, so that a
/// failure anywhere in the group surfaces as an error on every task
/// instead of a hang or a half-written multifile.
const STATUS_OK: u64 = 0;
/// The master itself failed (layout, create, or metablock write).
const STATUS_ERR: u64 = 1;
/// The gathered records carried more than one parameter fingerprint.
const STATUS_PARAM_MISMATCH: u64 = 2;
/// Some task's record carried the local-validation-failure bit.
const STATUS_LOCAL_INVALID: u64 = 3;

async fn check_master_status(lcom: &dyn CoComm, local: Result<u64>) -> Result<()> {
    // Master converts its Result into a status word; everyone else echoes
    // STATUS_OK and learns the verdict from the broadcast.
    let word = if lcom.rank() == 0 {
        Some(match &local {
            Ok(_) => STATUS_OK,
            Err(_) => STATUS_ERR,
        })
    } else {
        None
    };
    let status = lcom.bcast_u64(word, 0).await;
    match (status, local) {
        (STATUS_OK, _) => Ok(()),
        (_, Err(e)) => Err(e),
        (_, Ok(_)) => Err(SionError::CollectiveMismatch(
            "master task failed during collective open/close".into(),
        )),
    }
}

/// A fingerprint of the parameters that must agree across tasks.
fn params_fingerprint(p: &SionParams) -> u64 {
    use crate::layout::Alignment;
    let align = match p.alignment {
        Alignment::FsBlock => 1u64 << 40,
        Alignment::None => 2u64 << 40,
        Alignment::Fixed(a) => (3u64 << 40) ^ a,
    };
    let map = match p.mapping {
        crate::Mapping::Blocked => 1u64 << 50,
        crate::Mapping::RoundRobin => 2u64 << 50,
        crate::Mapping::Grouped(g) => (3u64 << 50) ^ g.rotate_left(17),
    };
    let mode = match p.io_mode {
        IoMode::Independent => 0,
        IoMode::Aggregated { tasks_per_aggregator } => {
            (5u64 << 44) ^ (tasks_per_aggregator as u64).rotate_left(9)
        }
    };
    (p.nfiles as u64)
        ^ align
        ^ map
        ^ mode
        ^ ((p.compressed as u64) << 60)
        ^ ((p.rescue as u64) << 61)
}

/// Statistics returned by [`SionParWriter::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CloseStats {
    /// User bytes this task wrote (pre-compression).
    pub user_bytes: u64,
    /// Stored bytes this task occupies in its chunks.
    pub stored_bytes: u64,
    /// Number of blocks this task touched.
    pub blocks: u64,
    /// I/O-call accounting for this task's write stream: user-level calls
    /// vs. VFS calls actually issued, coalescing flushes, rescue patches.
    /// On an aggregated-mode member this describes the *shadow* stream —
    /// the calls an independent writer would have issued for this data.
    pub write_io: IoCounters,
    /// Aggregated-mode shipment counters (all zeros in independent mode).
    pub agg: AggStats,
}

/// Handle for writing one task's logical file of an open multifile
/// (`sion_paropen_mpi` in write mode).
pub struct SionParWriter {
    /// This task's stream engine. In aggregated mode a *member*'s engine
    /// runs over a [`vfs::NullFile`] shadow: identical chunk arithmetic,
    /// validation, and close accounting, with the real bytes shipped to
    /// the aggregator instead (see [`crate::agg`]).
    writer: TaskWriter,
    lcom: Box<dyn CoComm>,
    gcom: Box<dyn CoComm>,
    filenum: u32,
    grank: usize,
    role: AggRole,
}

/// The file master's verdict on its group's gathered open records: either
/// the prepared scatter payloads, or a status word for the broadcast plus
/// the error the master itself will return.
type MasterSetup = std::result::Result<GroupSetup, (u64, SionError)>;

fn master_open_setup(
    vfs: &dyn Vfs,
    base: &str,
    params: &SionParams,
    fingerprint: u64,
    filenum: u32,
    ntasks: usize,
    raw: Vec<Vec<u8>>,
) -> MasterSetup {
    let records: Vec<OpenRecord> = match raw.iter().map(|b| OpenRecord::decode(b)).collect() {
        Ok(r) => r,
        Err(e) => return Err((STATUS_ERR, e)),
    };
    // Agreement and validity checks come before any file is created, so a
    // rejected open leaves nothing on disk for this group.
    if records.iter().any(|r| r.fingerprint != fingerprint) {
        return Err((
            STATUS_PARAM_MISMATCH,
            SionError::CollectiveMismatch(
                "tasks passed different multifile parameters to the collective open".into(),
            ),
        ));
    }
    if records.iter().any(|r| r.status != OpenRecord::STATUS_OK) {
        return Err((
            STATUS_LOCAL_INVALID,
            SionError::CollectiveMismatch(
                "a task's parameters failed local pre-open validation".into(),
            ),
        ));
    }
    let reqs: Vec<u64> = records.iter().map(|r| r.chunksize).collect();
    let granks: Vec<u64> = records.iter().map(|r| r.grank).collect();
    (|| {
        let layout =
            FileLayout::compute(&reqs, vfs.block_size(), params.alignment, params.rescue)?;
        let file = vfs.create(&physical_name(base, filenum))?;
        let mb1 = MetaBlock1 {
            version: crate::format::VERSION,
            flags: params.flags(),
            fsblksize: vfs.block_size(),
            ntasks_global: ntasks as u64,
            nfiles: params.nfiles,
            filenum,
            data_start: layout.data_start,
            global_ranks: granks.clone(),
            chunksize_req: reqs,
            chunk_cap: layout.cap.clone(),
        };
        file.write_all_at(&mb1.encode(), 0)?;
        // Aggregation election (IoMode::Aggregated): neighborhood starts,
        // snapped to FS-block-clean task boundaries so aggregator extents
        // never share an FS block with another writer. Every scatter part
        // carries the same 9-word shape in both modes: 7 geometry words
        // plus [aggregator lrank, neighborhood end) — a task that is its
        // own aggregator with an empty neighborhood writes independently.
        let groups = match params.io_mode {
            IoMode::Independent => None,
            IoMode::Aggregated { tasks_per_aggregator } => {
                Some(layout.aggregation_groups(tasks_per_aggregator))
            }
        };
        let parts: Vec<Vec<u8>> = (0..layout.ntasks())
            .map(|t| {
                let mut words = ChunkGeom::from_layout(&layout, t, granks[t]).encode();
                let (agg, end) = match &groups {
                    None => (t as u64, t as u64 + 1),
                    Some(starts) => {
                        let gi = starts.partition_point(|&s| s <= t) - 1;
                        let end =
                            starts.get(gi + 1).copied().unwrap_or(layout.ntasks()) as u64;
                        (starts[gi] as u64, end)
                    }
                };
                words.push(agg);
                words.push(end);
                words.iter().flat_map(|w| w.to_le_bytes()).collect()
            })
            .collect();
        Ok((parts, file))
    })()
    .map_err(|e: SionError| (STATUS_ERR, e))
}

/// Collectively create a multifile for writing (`sion_paropen_mpi`).
///
/// Every task of `comm` calls this with identical parameters except for
/// `params.chunksize`, which may differ per task. Returns this task's
/// writer handle.
pub fn paropen_write(
    vfs: &dyn Vfs,
    base: &str,
    params: &SionParams,
    comm: &dyn Comm,
) -> Result<SionParWriter> {
    // Label this rank's thread for the block-contention sanitizer: every
    // write it issues through a `vfs::BlockGuardFs` (including coalesced
    // stream-engine flushes, which run on this thread) is attributed to
    // this global rank. Meaningful only here, where a rank owns its
    // thread — see the module docs.
    vfs::guard::set_task(comm.rank() as u64);
    drive_ready(paropen_write_co(vfs, base, params, &BlockingRef(comm)))
}

/// [`paropen_write`] as a resumable protocol over [`CoComm`]: the entry
/// point for task-runtime ranks (`TaskWorld`), which `.await` it instead
/// of blocking a thread per rank.
pub async fn paropen_write_co(
    vfs: &dyn Vfs,
    base: &str,
    params: &SionParams,
    comm: &dyn CoComm,
) -> Result<SionParWriter> {
    let grank = comm.rank();
    let ntasks = comm.size();

    // Local pre-open validation is *deferred*: a task whose parameters
    // fail the check still joins every collective below (returning early
    // would hang its peers), carrying the failure as a status bit in its
    // packed record instead.
    let local_check = params.mapping.validate(ntasks, params.nfiles);
    let fingerprint = params_fingerprint(params);

    // `file_of` is total, so even a task holding invalid parameters
    // computes a split color and lands in a well-formed file group.
    let filenum = params.mapping.file_of(grank, ntasks, params.nfiles);
    let lcom = comm.split(filenum as u64, grank as u64).await;
    // A private duplicate of the global communicator, so the handle can run
    // global collectives (the paper's open/close are collective over gcom).
    let gcom = comm.split(0, grank as u64).await;

    // Single-round metadata exchange: everything the master needs from
    // each task — chunk-size request, global rank, parameter fingerprint,
    // local status — travels in ONE packed gather instead of one
    // sequential collective per field.
    let record = OpenRecord {
        chunksize: params.chunksize,
        grank: grank as u64,
        fingerprint,
        status: if local_check.is_ok() {
            OpenRecord::STATUS_OK
        } else {
            OpenRecord::STATUS_LOCAL_INVALID
        },
    };
    let encoded = record.encode();
    let gathered = lcom.gather(&encoded, 0).await;

    let (word, setup_ok, setup_err) = if lcom.rank() == 0 {
        // The master's metablock-1 write below happens after the gather
        // parked this coroutine; arm its task label for the guards.
        vfs::guard::set_task(grank as u64);
        let raw = gathered.expect("master receives the gather");
        match master_open_setup(vfs, base, params, fingerprint, filenum, ntasks, raw) {
            Ok(setup) => (Some(STATUS_OK), Some(setup), None),
            Err((w, e)) => (Some(w), None, Some(e)),
        }
    } else {
        (None, None, None)
    };
    let status = lcom.bcast_u64(word, 0).await;

    // Per-file-group phase. Any failure here is captured, not returned:
    // the global exchange below must run on every task or the healthy file
    // groups would hang.
    let group_result: Result<(ChunkGeom, usize, usize, Arc<dyn vfs::VfsFile>)> = async {
        if status != STATUS_OK {
            // The task's own validation error is the most precise report;
            // the master returns the error it diagnosed; everyone else
            // reconstructs the verdict from the status word.
            local_check?;
            if let Some(e) = setup_err {
                return Err(e);
            }
            return Err(SionError::CollectiveMismatch(match status {
                STATUS_PARAM_MISMATCH => {
                    "tasks passed different multifile parameters to the collective open".into()
                }
                STATUS_LOCAL_INVALID => {
                    "another task's parameters failed local pre-open validation".into()
                }
                _ => "master task failed during collective open".into(),
            }));
        }
        if lcom.rank() == 0 {
            let (parts, file) = setup_ok.expect("status was OK");
            let mine = lcom.scatter(Some(parts), 0).await;
            let (geom, agg, end) = decode_write_part(&mine)?;
            Ok((geom, agg, end, file))
        } else {
            let mine = lcom.scatter(None, 0).await;
            let (geom, agg, end) = decode_write_part(&mine)?;
            let file: Arc<dyn vfs::VfsFile> = if agg == lcom.rank() {
                // The master created the file before the status broadcast,
                // so it exists by now.
                vfs.open_rw(&physical_name(base, filenum))?
            } else {
                // Aggregated-mode member: its stream engine runs against a
                // data-discarding shadow of the physical file; only its
                // aggregator touches the file itself. On a plain VFS the
                // shadow is a `NullFile`; an ordering checker's VFS
                // (`vfs::OrderGuardFs`) instead hands back a handle that
                // records each write as a *logical* access to the real
                // path, so the member's extents are checkable against the
                // aggregator's replay without any physical I/O.
                vfs.create_shadow(&physical_name(base, filenum))?
            };
            Ok((geom, agg, end, file))
        }
    }
    .await;

    // One global exchange closes the open. Its 16-byte payload carries
    // [failed flag, parameter fingerprint]: it is simultaneously the
    // all-or-nothing failure agreement across file groups (when it returns
    // clean, every physical file exists and every task holds a handle) and
    // the cross-group parameter-agreement check — the per-group gather
    // already verified agreement *within* each group, so the former
    // standalone fingerprint allgather round is gone.
    let mut word16 = [0u8; 16];
    word16[..8].copy_from_slice(&(group_result.is_err() as u64).to_le_bytes());
    word16[8..].copy_from_slice(&fingerprint.to_le_bytes());
    // Scanned in place via the shared-frame allgather: the result is only
    // reduced to two booleans, so no rank materializes per-rank vectors.
    let all = gcom.allgather_shared(&word16).await;
    let mut any_failed = false;
    let mut fp_mismatch = false;
    for b in all.iter() {
        any_failed |= u64::from_le_bytes(b[..8].try_into().unwrap()) != 0;
        fp_mismatch |= u64::from_le_bytes(b[8..16].try_into().unwrap()) != fingerprint;
    }
    let (geom, agg, end, file) = match (any_failed || fp_mismatch, group_result) {
        (false, Ok(tuple)) => tuple,
        (_, Err(e)) => return Err(e),
        (true, Ok(_)) => {
            return Err(SionError::CollectiveMismatch(if fp_mismatch {
                "tasks passed different multifile parameters to the collective open".into()
            } else {
                "another file group failed during the collective open".into()
            }))
        }
    };

    let me = lcom.rank();
    let role = if agg != me {
        AggRole::Member(MemberState::new(agg, params.write_buffer as usize, &geom))
    } else if end > me + 1 {
        AggRole::Aggregator(AggState::new(
            file.clone(),
            params.compressed,
            params.write_buffer,
            grank as u64,
            me + 1..end,
        ))
    } else {
        AggRole::Independent
    };

    Ok(SionParWriter {
        writer: TaskWriter::new(file, geom, params.compressed, params.write_buffer),
        lcom,
        gcom,
        filenum,
        grank,
        role,
    })
}

/// Decode a write-open scatter part: 7 geometry words plus the aggregation
/// words `[aggregator lrank, neighborhood end)`.
fn decode_write_part(bytes: &[u8]) -> Result<(ChunkGeom, usize, usize)> {
    if !bytes.len().is_multiple_of(8) {
        return Err(SionError::Format("bad chunk geometry payload".into()));
    }
    let words: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    if words.len() < ChunkGeom::ENCODED_WORDS + 2 {
        return Err(SionError::Format("truncated write-open payload".into()));
    }
    let geom = ChunkGeom::decode(&words)?;
    let agg = words[ChunkGeom::ENCODED_WORDS] as usize;
    let end = words[ChunkGeom::ENCODED_WORDS + 1] as usize;
    Ok((geom, agg, end))
}

impl SionParWriter {
    /// Run one op through the member protocol: validate against the shadow
    /// stream first (so errors surface exactly as in independent mode and
    /// nothing invalid is ever shipped), then stage it, shipping and
    /// draining acks opportunistically. Aggregators instead take the
    /// chance to replay any already-delivered shipments — the
    /// compute/I/O overlap — before doing their own work.
    ///
    /// Before a due ship the member pushes the shadow stream's buffered
    /// bytes out (`flush_pending`, which never ends a compression frame):
    /// the shadow accesses on record at the moment the frame is sent are
    /// exactly the frame's replay obligations, the invariant an ordering
    /// checker holds the aggregator's ack to.
    fn member_op(
        writer: &mut TaskWriter,
        m: &mut MemberState,
        lcom: &dyn CoComm,
        shadow: Result<()>,
        stage: impl FnOnce(&mut MemberState),
    ) -> Result<()> {
        if m.failed {
            return Err(SionError::CollectiveMismatch(
                "aggregator failed to apply shipped data".into(),
            ));
        }
        shadow?;
        stage(m);
        if m.ship_due() {
            writer.flush_pending()?;
            m.ship(lcom);
        }
        m.drain_acks(lcom);
        Ok(())
    }

    /// `sion_ensure_free_space`: make room for a contiguous piece of
    /// `nbytes` in the current chunk, advancing to the next block if needed.
    pub fn ensure_free_space(&mut self, nbytes: u64) -> Result<()> {
        // Task-label attribution for the block/ordering guards. Under the
        // task runtimes ranks migrate across worker threads, so the label
        // is re-armed at every synchronous entry (no awaits until this
        // call returns) instead of once per thread.
        vfs::guard::set_task(self.grank as u64);
        match &mut self.role {
            AggRole::Independent => self.writer.ensure_free_space(nbytes),
            AggRole::Member(m) => {
                let shadow = self.writer.ensure_free_space(nbytes);
                Self::member_op(&mut self.writer, m, self.lcom.as_ref(), shadow, |m| {
                    m.stage_word(OP_ENSURE, nbytes)
                })
            }
            AggRole::Aggregator(a) => {
                a.try_drain(self.lcom.as_ref());
                self.writer.ensure_free_space(nbytes)
            }
        }
    }

    /// Plain `fwrite` equivalent: write into the current chunk without
    /// crossing its boundary (pair with [`ensure_free_space`]).
    ///
    /// [`ensure_free_space`]: Self::ensure_free_space
    pub fn write_in_chunk(&mut self, data: &[u8]) -> Result<()> {
        // Task-label attribution for the block/ordering guards. Under the
        // task runtimes ranks migrate across worker threads, so the label
        // is re-armed at every synchronous entry (no awaits until this
        // call returns) instead of once per thread.
        vfs::guard::set_task(self.grank as u64);
        match &mut self.role {
            AggRole::Independent => self.writer.write_in_chunk(data),
            AggRole::Member(m) => {
                let shadow = self.writer.write_in_chunk(data);
                Self::member_op(&mut self.writer, m, self.lcom.as_ref(), shadow, |m| {
                    m.stage_data(OP_WRITE_IN_CHUNK, data)
                })
            }
            AggRole::Aggregator(a) => {
                a.try_drain(self.lcom.as_ref());
                self.writer.write_in_chunk(data)
            }
        }
    }

    /// `sion_fwrite`: write data of any size, transparently split across
    /// chunk boundaries (and compressed in compressed mode).
    pub fn write(&mut self, data: &[u8]) -> Result<()> {
        // Task-label attribution for the block/ordering guards. Under the
        // task runtimes ranks migrate across worker threads, so the label
        // is re-armed at every synchronous entry (no awaits until this
        // call returns) instead of once per thread.
        vfs::guard::set_task(self.grank as u64);
        match &mut self.role {
            AggRole::Independent => self.writer.write(data),
            AggRole::Member(m) => {
                let shadow = self.writer.write(data);
                Self::member_op(&mut self.writer, m, self.lcom.as_ref(), shadow, |m| {
                    m.stage_data(OP_WRITE, data)
                })
            }
            AggRole::Aggregator(a) => {
                a.try_drain(self.lcom.as_ref());
                self.writer.write(data)
            }
        }
    }

    /// Bytes left in the current chunk.
    pub fn bytes_avail_in_chunk(&self) -> u64 {
        self.writer.bytes_avail_in_chunk()
    }

    /// `sion_flush`: push buffered data (and the rescue header, if enabled)
    /// to the VFS so the bytes written so far are durable.
    ///
    /// On an aggregated-mode member this ships everything staged so far
    /// without waiting for the acknowledgement: durability follows at the
    /// aggregator's next replay, and an aggregator crash loses only
    /// not-yet-acked shipments (see [`crate::agg`]).
    pub fn flush(&mut self) -> Result<()> {
        // Task-label attribution for the block/ordering guards. Under the
        // task runtimes ranks migrate across worker threads, so the label
        // is re-armed at every synchronous entry (no awaits until this
        // call returns) instead of once per thread.
        vfs::guard::set_task(self.grank as u64);
        match &mut self.role {
            AggRole::Independent => self.writer.flush(),
            AggRole::Member(m) => {
                let shadow = self.writer.flush();
                Self::member_op(&mut self.writer, m, self.lcom.as_ref(), shadow, |m| {
                    m.stage_op(OP_FLUSH)
                })?;
                m.ship(self.lcom.as_ref());
                Ok(())
            }
            AggRole::Aggregator(a) => {
                a.try_drain(self.lcom.as_ref());
                self.writer.flush()
            }
        }
    }

    /// I/O-call accounting for this task's stream so far. On an
    /// aggregated-mode member: the shadow stream's counters.
    pub fn io_counters(&self) -> IoCounters {
        self.writer.io_counters()
    }

    /// Aggregated-mode shipment counters so far (see [`AggStats`]); all
    /// zeros in independent mode.
    pub fn agg_stats(&self) -> AggStats {
        match &self.role {
            AggRole::Independent => AggStats::default(),
            AggRole::Member(m) => m.stats,
            AggRole::Aggregator(a) => a.stats,
        }
    }

    /// Per-rank op/byte counters of this task's *file-group* communicator,
    /// when the runtime tracks them. The returned handle keeps counting
    /// through [`close`](Self::close) (which consumes the writer), so
    /// callers can assert collective round counts after the fact.
    pub fn local_comm_stats(&self) -> Option<Arc<CommStats>> {
        self.lcom.stats()
    }

    /// Per-rank op/byte counters of this task's *global* communicator
    /// duplicate; same lifetime guarantees as
    /// [`local_comm_stats`](Self::local_comm_stats).
    pub fn global_comm_stats(&self) -> Option<Arc<CommStats>> {
        self.gcom.stats()
    }

    /// This task's global rank.
    pub fn rank(&self) -> usize {
        self.grank
    }

    /// Index of the physical file this task writes to.
    pub fn filenum(&self) -> u32 {
        self.filenum
    }

    /// `sion_parclose_mpi`: collectively finalize the multifile. The file
    /// master gathers every task's per-block usage and writes metablock 2.
    ///
    /// Crash behaviour: a task whose local flush/sync fails still takes
    /// part in every collective below (deserting the gather would hang the
    /// surviving tasks) — its packed [`CloseRecord`] carries the failure
    /// flag alongside the usage vector, and the group then skips writing
    /// metablock 2 entirely: finalizing without the failed task's usage
    /// would silently drop its data. The un-finalized file remains
    /// recoverable via [`rescue::repair`](crate::rescue::repair) when
    /// rescue headers are enabled. Only when close returns `Ok` on every
    /// task is the multifile's metadata durable and final.
    pub fn close(self) -> Result<CloseStats> {
        drive_ready(self.close_co())
    }

    /// [`close`](Self::close) as a resumable protocol; the task-runtime
    /// entry point.
    pub async fn close_co(mut self) -> Result<CloseStats> {
        // Aggregation epilogue, before the metadata exchange. A member
        // finishes its shadow (the authoritative `used` vector), ships the
        // final frame with OP_FINISH, and then collects every outstanding
        // ack — so by the time it enters the close gather, its data is
        // either durably replayed or its CloseRecord carries the failure.
        // An aggregator exhaustively drains every member to OP_FINISH
        // (acking as it replays) before finishing its own stream; member
        // replay failures surface through the members' own records.
        vfs::guard::set_task(self.grank as u64);
        let role = std::mem::replace(&mut self.role, AggRole::Independent);
        let (finish_res, agg_stats) = match role {
            AggRole::Independent => (self.writer.finish(), AggStats::default()),
            AggRole::Member(mut m) => {
                let shadow = self.writer.finish();
                m.stage_op(OP_FINISH);
                m.ship(self.lcom.as_ref());
                while !m.all_acked() {
                    let buf = self.lcom.recv(m.agg, TAG_ACK).await;
                    m.note_ack(&buf);
                    self.lcom.recycle(buf);
                }
                let res = match (shadow, m.failed) {
                    (Ok(used), false) => Ok(used),
                    (Ok(_), true) => Err(SionError::CollectiveMismatch(
                        "aggregator failed to apply shipped data".into(),
                    )),
                    (Err(e), _) => Err(e),
                };
                (res, m.stats)
            }
            AggRole::Aggregator(mut a) => {
                a.drain_all(self.lcom.as_ref()).await;
                (self.writer.finish(), a.stats)
            }
        };

        // Packed close exchange: the error flag rides in the same record
        // as the per-block usage, so the former standalone failure
        // allgather round is gone — ONE gather and ONE status broadcast
        // finish the file group.
        let record = CloseRecord {
            status: if finish_res.is_ok() {
                CloseRecord::STATUS_OK
            } else {
                CloseRecord::STATUS_FLUSH_FAILED
            },
            used: finish_res.as_ref().map(|u| u.clone()).unwrap_or_default(),
        };
        let encoded = record.encode();

        // Small groups: ONE usage gather at the file master, which
        // assembles and writes the whole metadata tail. Large groups:
        // sharded assembly so no task — the master included — ever
        // materializes O(ranks·blocks) usage rows.
        let finalize: Result<u64> = if self.lcom.size() > SHARDED_CLOSE_THRESHOLD {
            close_sharded(self.lcom.as_ref(), &self.writer, self.grank as u64, &encoded).await
        } else {
            let gathered = self.lcom.gather(&encoded, 0).await;
            if self.lcom.rank() == 0 {
                // The gather parked; re-arm before the metadata writes.
                vfs::guard::set_task(self.grank as u64);
                (|| {
                    let per_task: Vec<CloseRecord> = gathered
                        .expect("master receives the gather")
                        .iter()
                        .map(|b| CloseRecord::decode(b))
                        .collect::<Result<_>>()?;
                    if per_task.iter().any(|r| r.status != CloseRecord::STATUS_OK) {
                        return Err(SionError::CollectiveMismatch(
                            "a task failed to flush; metablock 2 not written".into(),
                        ));
                    }
                    let n = per_task.len();
                    let nblocks =
                        per_task.iter().map(|r| r.used.len()).max().unwrap_or(0) as u64;
                    let mut usage = vec![0u64; (nblocks as usize) * n];
                    for (t, rec) in per_task.iter().enumerate() {
                        for (b, &u) in rec.used.iter().enumerate() {
                            usage[b * n + t] = u;
                        }
                    }
                    let mb2 = MetaBlock2 { nblocks, used: usage };
                    let mb2_off = self.writer.mb2_offset(nblocks);
                    write_close_metadata(self.writer.file(), mb2_off, &mb2, n)?;
                    Ok(0)
                })()
            } else {
                Ok(0)
            }
        };
        let status = check_master_status(self.lcom.as_ref(), finalize).await;
        // Collective over the global communicator: when close returns, the
        // entire multifile (all physical files' metablocks) is final.
        // Always reached, error or not, so no file group can hang another.
        self.gcom.barrier().await;
        let used = finish_res?;
        status?;
        Ok(CloseStats {
            user_bytes: self.writer.user_bytes(),
            stored_bytes: used.iter().sum(),
            blocks: used.iter().filter(|&&u| u > 0).count() as u64,
            write_io: self.writer.io_counters(),
            agg: agg_stats,
        })
    }
}

/// Sharded collective close for large file groups: the group is cut into
/// [`CLOSE_SHARD_TASKS`]-wide shards of consecutive local tasks, and each
/// shard's sub-master gathers only its own tasks' usage and writes the
/// shard's *disjoint slices* of metablock 2 (one contiguous run per block
/// row) and of the task-major chunk index (one contiguous run total). The
/// file master contributes nothing but the fixed headers and the trailer,
/// written after a sub-master rendezvous confirms every slice is on disk —
/// so the trailer still flips the file to "validly closed" last, and the
/// bytes produced are identical to
/// [`write_close_metadata`](crate::format::write_close_metadata)'s.
///
/// Round structure: 2 `split`s on the file-group communicator, ONE usage
/// gather per shard, then among sub-masters ONE 16-byte allgather (failure
/// agreement + block-count reduction) and ONE status gather; the caller's
/// status broadcast and global barrier are unchanged.
async fn close_sharded(
    lcom: &dyn CoComm,
    writer: &TaskWriter,
    grank: u64,
    record: &[u8],
) -> Result<u64> {
    let n = lcom.size();
    // `lcom` was split keyed by global rank, so the local rank *is* the
    // local task index used by the on-disk layout.
    let me = lcom.rank();
    let shard_base = (me / CLOSE_SHARD_TASKS) * CLOSE_SHARD_TASKS;
    let is_sub_master = me == shard_base;

    // Both splits are collective over the whole group; the second hands
    // non-sub-masters a communicator they never use.
    let scom = lcom.split((me / CLOSE_SHARD_TASKS) as u64, me as u64).await;
    let mcom = lcom
        .split(if is_sub_master { 0 } else { 1 }, me as u64)
        .await;

    let gathered = scom.gather(record, 0).await;
    if !is_sub_master {
        return Ok(0);
    }

    // Decode this shard's records. A sub-master that fails here must still
    // join every collective below (deserting would hang its peers), so the
    // failure travels as a status flag.
    let decoded: Result<Vec<CloseRecord>> = gathered
        .expect("sub-master receives the gather")
        .iter()
        .map(|b| CloseRecord::decode(b))
        .collect();
    let (shard_failed, shard_nblocks) = match &decoded {
        Ok(recs) => (
            recs.iter().any(|r| r.status != CloseRecord::STATUS_OK),
            recs.iter().map(|r| r.used.len()).max().unwrap_or(0) as u64,
        ),
        Err(_) => (true, 0),
    };

    // Sub-master agreement: one 16-byte allgather carries [failed flag,
    // shard block count]; every sub-master derives the file-wide verdict
    // and block count by scanning the shared frame in place.
    let mut word16 = [0u8; 16];
    word16[..8].copy_from_slice(&(shard_failed as u64).to_le_bytes());
    word16[8..].copy_from_slice(&shard_nblocks.to_le_bytes());
    let all = mcom.allgather_shared(&word16).await;
    let mut any_failed = false;
    let mut nblocks = 0u64;
    for b in all.iter() {
        any_failed |= u64::from_le_bytes(b[..8].try_into().unwrap()) != 0;
        nblocks = nblocks.max(u64::from_le_bytes(b[8..16].try_into().unwrap()));
    }

    // Both the slice writes below and the trailer writes at the end run
    // after collective parks: re-arm the sub-master's task label.
    vfs::guard::set_task(grank);
    let slice_res: Result<()> = (|| {
        let per_task = decoded?;
        if any_failed {
            return Err(SionError::CollectiveMismatch(
                "a task failed to flush; metablock 2 not written".into(),
            ));
        }
        let file = writer.file();
        let mb2_off = writer.mb2_offset(nblocks);
        let idx_off = mb2_off + MB2_FIXED_LEN + 8 * nblocks * n as u64;
        let m = per_task.len();
        // Usage is block-major, so this shard's share of each block row is
        // one contiguous run of `m` words (zero-filled for tasks whose
        // stream stopped earlier).
        let mut row = vec![0u8; 8 * m];
        for b in 0..nblocks {
            for (i, rec) in per_task.iter().enumerate() {
                let u = rec.used.get(b as usize).copied().unwrap_or(0);
                row[i * 8..i * 8 + 8].copy_from_slice(&u.to_le_bytes());
            }
            file.write_all_at(
                &row,
                mb2_off + MB2_FIXED_LEN + 8 * (b * n as u64 + shard_base as u64),
            )?;
        }
        // The chunk index is task-major, so the whole shard lands as ONE
        // contiguous vectored submission — one slice per task's encoded
        // cumulative run, no concatenation copy.
        let slices: Vec<Vec<u8>> = per_task
            .iter()
            .map(|rec| ChunkIndex::encode_task_slice(&rec.used, nblocks))
            .collect();
        let iov: Vec<IoSlice<'_>> = slices.iter().map(|s| IoSlice::new(s)).collect();
        file.write_vectored_at(&iov, idx_off + IDX_FIXED_LEN + 8 * nblocks * shard_base as u64)?;
        Ok(())
    })();

    // Rendezvous before the trailer: the file master finalizes only after
    // every shard reports its slices written.
    let status_word = (slice_res.is_err() as u64).to_le_bytes();
    let statuses = mcom.gather(&status_word, 0).await;
    if me != 0 {
        return slice_res.map(|_| 0);
    }
    let any_shard_failed = statuses
        .expect("file master receives the gather")
        .iter()
        .any(|b| u64::from_le_bytes(b[..8].try_into().unwrap()) != 0);
    slice_res?;
    if any_shard_failed {
        return Err(SionError::CollectiveMismatch(
            "a close shard failed to write its metadata slice".into(),
        ));
    }
    vfs::guard::set_task(grank);
    let file = writer.file();
    let mb2_off = writer.mb2_offset(nblocks);
    let mb2_len = MB2_FIXED_LEN + 8 * nblocks * n as u64;
    let idx_off = mb2_off + mb2_len;
    let idx_len = ChunkIndex::encoded_len(nblocks, n);
    file.write_all_at(&MetaBlock2::header_bytes(nblocks, n), mb2_off)?;
    file.write_all_at(&ChunkIndex::header_bytes(nblocks, n), idx_off)?;
    let mut trailer = Vec::with_capacity(TRAILER2_LEN as usize);
    trailer.extend_from_slice(&mb2_off.to_le_bytes());
    trailer.extend_from_slice(&mb2_len.to_le_bytes());
    trailer.extend_from_slice(&idx_off.to_le_bytes());
    trailer.extend_from_slice(&idx_len.to_le_bytes());
    trailer.extend_from_slice(&MAGIC_EOF2);
    file.write_all_at(&trailer, idx_off + idx_len)?;
    file.set_len(idx_off + idx_len + TRAILER2_LEN)?;
    Ok(0)
}

/// Handle for reading one task's logical file of a multifile
/// (`sion_paropen_mpi` in read mode).
pub struct SionParReader {
    reader: TaskReader,
    gcom: Box<dyn CoComm>,
    grank: usize,
    /// Stats handle of the file-group communicator used during open (the
    /// communicator itself is dropped once the geometry is distributed).
    lcom_stats: Option<Arc<CommStats>>,
}

/// Collectively open an existing multifile for reading.
///
/// The task count of `comm` must equal the task count the multifile was
/// written with, and each task is positioned at its own logical file.
pub fn paropen_read(vfs: &dyn Vfs, base: &str, comm: &dyn Comm) -> Result<SionParReader> {
    drive_ready(paropen_read_co(vfs, base, &BlockingRef(comm)))
}

/// [`paropen_read`] as a resumable protocol over [`CoComm`]; the
/// task-runtime entry point.
pub async fn paropen_read_co(
    vfs: &dyn Vfs,
    base: &str,
    comm: &dyn CoComm,
) -> Result<SionParReader> {
    let grank = comm.rank();
    let ntasks = comm.size();

    // The global master reads every metablock 1 once and distributes the
    // rank → (file, local index) map, so tens of thousands of tasks do not
    // hammer the metadata concurrently.
    let discovery: Result<Vec<u64>> = if grank == 0 {
        (|| {
            let f0 = vfs.open(base)?;
            let mb1 = MetaBlock1::read_from(f0.as_ref())?;
            if mb1.ntasks_global != ntasks as u64 {
                return Err(SionError::CollectiveMismatch(format!(
                    "multifile was written by {} tasks, read with {}",
                    mb1.ntasks_global, ntasks
                )));
            }
            let nfiles = mb1.nfiles;
            let mut map = vec![u64::MAX; ntasks];
            for k in 0..nfiles {
                let mbk = if k == 0 {
                    mb1.clone()
                } else {
                    let fk = vfs.open(&physical_name(base, k))?;
                    MetaBlock1::read_from(fk.as_ref())?
                };
                for (lt, &gr) in mbk.global_ranks.iter().enumerate() {
                    if gr >= ntasks as u64 || map[gr as usize] != u64::MAX {
                        return Err(SionError::Format(format!(
                            "global rank {gr} duplicated or out of range in file {k}"
                        )));
                    }
                    map[gr as usize] = ((k as u64) << 32) | lt as u64;
                }
            }
            if map.contains(&u64::MAX) {
                return Err(SionError::Format("some ranks missing from multifile".into()));
            }
            let mut payload = vec![nfiles as u64, mb1.flags.bits()];
            payload.extend_from_slice(&map);
            Ok(payload)
        })()
    } else {
        Ok(Vec::new())
    };

    // ONE combined broadcast: the status word travels as the payload's
    // leading word ([STATUS_OK, nfiles, flags, map...] on success, just
    // [STATUS_ERR] on failure) instead of costing a separate status round.
    let packed: Option<Vec<u8>> = if grank == 0 {
        let words: Vec<u64> = match &discovery {
            Ok(p) => std::iter::once(STATUS_OK).chain(p.iter().copied()).collect(),
            Err(_) => vec![STATUS_ERR],
        };
        Some(words.iter().flat_map(|w| w.to_le_bytes()).collect())
    } else {
        None
    };
    let payload_bytes = comm.bcast(packed, 0).await;
    let words: Vec<u64> = payload_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    if words.first().copied() != Some(STATUS_OK) {
        return Err(discovery.err().unwrap_or_else(|| {
            SionError::CollectiveMismatch("master failed during read open".into())
        }));
    }
    let flags = SionFlags::from_bits(words[2])?;
    let compressed = flags.contains(SionFlags::COMPRESSED);
    let entry = words[3 + grank];
    let filenum = (entry >> 32) as u32;

    let lcom = comm.split(filenum as u64, grank as u64).await;
    let gcom = comm.split(0, grank as u64).await;

    // Each file master reads its metablocks once and scatters per-task
    // geometry plus usage vectors.
    let setup: Result<Vec<Vec<u8>>> = if lcom.rank() == 0 {
        (|| {
            let file = vfs.open(&physical_name(base, filenum))?;
            let mb1 = MetaBlock1::read_from(file.as_ref())?;
            let mb2 = MetaBlock2::read_from(file.as_ref(), mb1.ntasks_local())?;
            let layout = FileLayout::from_mb1(&mb1);
            layout.validate_extent(mb2.nblocks, file.len()?)?;
            let parts = (0..layout.ntasks())
                .map(|t| {
                    let mut words = ChunkGeom::from_layout(&layout, t, mb1.global_ranks[t])
                        .encode();
                    words.extend(mb2.task_usage(t, mb1.ntasks_local()));
                    words.iter().flat_map(|w| w.to_le_bytes()).collect()
                })
                .collect();
            Ok(parts)
        })()
    } else {
        Ok(Vec::new())
    };

    let group_result: Result<(ChunkGeom, Vec<u64>, Arc<dyn vfs::VfsFile>)> = async {
        if lcom.rank() == 0 {
            check_master_status(lcom.as_ref(), setup.as_ref().map(|_| 0).map_err(clone_err))
                .await?;
        } else {
            check_master_status(lcom.as_ref(), Ok(0)).await?;
        }
        let mine = if lcom.rank() == 0 {
            lcom.scatter(Some(setup.expect("status was OK")), 0).await
        } else {
            lcom.scatter(None, 0).await
        };
        if mine.len() % 8 != 0 || mine.len() < ChunkGeom::ENCODED_WORDS * 8 {
            return Err(SionError::Format("bad read-open payload".into()));
        }
        let words: Vec<u64> = mine
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let geom = ChunkGeom::decode(&words[..ChunkGeom::ENCODED_WORDS])?;
        let used = words[ChunkGeom::ENCODED_WORDS..].to_vec();
        let file = vfs.open(&physical_name(base, filenum))?;
        Ok((geom, used, file))
    }
    .await;
    let lcom_stats = lcom.stats();

    // All-or-nothing across file groups, as in the write open (shared
    // frame, scanned in place).
    let any_failed = gcom
        .allgather_shared(&(group_result.is_err() as u64).to_le_bytes())
        .await
        .iter()
        .any(|b| u64::from_le_bytes(b[..8].try_into().unwrap()) != 0);
    let (geom, used, file) = match (any_failed, group_result) {
        (false, Ok(triple)) => triple,
        (_, Err(e)) => return Err(e),
        (true, Ok(_)) => {
            return Err(SionError::CollectiveMismatch(
                "another file group failed during the collective read open".into(),
            ))
        }
    };
    Ok(SionParReader {
        reader: TaskReader::new(file, geom, used, compressed, DEFAULT_READ_AHEAD),
        gcom,
        grank,
        lcom_stats,
    })
}

fn clone_err(e: &SionError) -> SionError {
    // SionError is not Clone (it wraps io::Error); a formatted copy is
    // enough for the error path.
    SionError::CollectiveMismatch(e.to_string())
}

impl SionParReader {
    /// `sion_feof`: whether this task's logical file is exhausted.
    pub fn feof(&mut self) -> bool {
        self.reader.feof()
    }

    /// `sion_bytes_avail_in_chunk`: unread stored bytes in the current
    /// chunk.
    pub fn bytes_avail_in_chunk(&self) -> u64 {
        self.reader.bytes_avail_in_chunk()
    }

    /// `sion_fread`: read up to `buf.len()` logical bytes, crossing chunk
    /// boundaries; returns bytes read (0 at end of stream).
    pub fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.reader.read(buf)
    }

    /// Read exactly `buf.len()` logical bytes or fail.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        self.reader.read_exact(buf)
    }

    /// This task's global rank.
    pub fn rank(&self) -> usize {
        self.grank
    }

    /// I/O-call accounting for this task's read stream so far.
    pub fn io_counters(&self) -> IoCounters {
        self.reader.io_counters()
    }

    /// Per-rank op/byte counters of the file-group communicator that
    /// carried this task's open-time exchange, when the runtime tracks
    /// them.
    pub fn local_comm_stats(&self) -> Option<Arc<CommStats>> {
        self.lcom_stats.clone()
    }

    /// Per-rank op/byte counters of this task's global communicator
    /// duplicate.
    pub fn global_comm_stats(&self) -> Option<Arc<CommStats>> {
        self.gcom.stats()
    }

    /// `sion_parclose_mpi` for the read side.
    pub fn close(self) -> Result<()> {
        drive_ready(self.close_co())
    }

    /// [`close`](Self::close) as a resumable protocol; the task-runtime
    /// entry point.
    pub async fn close_co(self) -> Result<()> {
        self.gcom.barrier().await;
        Ok(())
    }
}

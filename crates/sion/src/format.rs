//! On-disk multifile format (paper §3.1, Fig. 2).
//!
//! Each physical file of a multifile is laid out as
//!
//! ```text
//! +------------+---------+     +---------+------------+-------------+---------+
//! | metablock1 | block 0 | ... | block B | metablock2 | chunk index | trailer |
//! +------------+---------+     +---------+------------+-------------+---------+
//! ```
//!
//! * **Metablock 1** — written by the master task at collective open:
//!   identity, flags, FS block size, global/local task counts, per-task
//!   global ranks, requested chunk sizes and (aligned) chunk capacities,
//!   and the offset of block 0.
//! * **Blocks** — each block holds one chunk per local task, at fixed
//!   offsets (`layout` module). A task that exhausts its chunk continues in
//!   the equally-sized chunk of the next block; untouched chunks remain
//!   file-system holes.
//! * **Metablock 2** — written at collective close: number of blocks and
//!   the bytes actually used in every (block, task) chunk, row-major
//!   `[block][task]`.
//! * **Chunk index** ([`ChunkIndex`], v2 closes) — the task-major transpose
//!   of metablock 2 as inclusive per-block prefix sums, so a lazy serial
//!   open fetches one task's complete seek index with a single contiguous
//!   read and resolves logical positions by binary search. Redundant with
//!   metablock 2: a torn or corrupt index degrades to the linear path.
//! * **Trailer** ([`Trailer`]) — fixed-size pointer to metablock 2 (and,
//!   since v2, the chunk index); the last 8 bytes dispatch the trailer
//!   version, so pre-index files keep decoding unchanged.
//!
//! All integers are little-endian. Arrays are stored contiguously.

use crate::error::{Result, SionError};
use std::ops::{BitOr, BitOrAssign};
use vfs::{IoSlice, VfsFile};

/// Magic at offset 0 of every physical file.
pub const MAGIC1: [u8; 8] = *b"RSIONv1\0";
/// Magic prefixing metablock 2.
pub const MAGIC2: [u8; 8] = *b"RSIONMB2";
/// Magic terminating the 24-byte v1 trailer (last 8 bytes of the file).
pub const MAGIC_EOF: [u8; 8] = *b"RSIONEOF";
/// Magic terminating the 40-byte v2 trailer, which additionally locates
/// the per-task chunk-index record.
pub const MAGIC_EOF2: [u8; 8] = *b"RSIONEO2";
/// Magic prefixing the per-task chunk-index record (v2 closes).
pub const MAGIC_IDX: [u8; 8] = *b"RSIONIDX";
/// Current format version.
pub const VERSION: u32 = 1;

/// Upper bound on task counts accepted from on-disk metadata — a sanity
/// limit against corrupted headers demanding absurd allocations (the paper
/// scales to 64 Ki tasks; this allows three orders of magnitude more).
pub const MAX_TASKS: u64 = 1 << 26;

/// Fixed-size portion of metablock 1, preceding the per-task arrays.
pub const MB1_FIXED_LEN: u64 = 8 + 4 + 8 + 8 + 8 + 4 + 4 + 8 + 8;
/// Fixed-size portion of metablock 2, preceding the usage matrix.
pub const MB2_FIXED_LEN: u64 = 8 + 8 + 8;
/// v1 trailer length: metablock-2 offset + length + magic.
pub const TRAILER_LEN: u64 = 8 + 8 + 8;
/// v2 trailer length: metablock-2 offset + length, index offset + length,
/// magic.
pub const TRAILER2_LEN: u64 = 8 + 8 + 8 + 8 + 8;
/// Fixed-size portion of the chunk-index record, preceding the prefix sums.
pub const IDX_FIXED_LEN: u64 = 8 + 8 + 8;

/// Feature flags stored in metablock 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SionFlags(u64);

impl SionFlags {
    /// Chunks are aligned to file-system block boundaries (Fig. 2(c)).
    pub const ALIGNED: SionFlags = SionFlags(1);
    /// Logical streams are szip-compressed (extension, paper §6).
    pub const COMPRESSED: SionFlags = SionFlags(2);
    /// Chunks carry rescue headers (extension, paper §6).
    pub const RESCUE: SionFlags = SionFlags(4);

    /// No flags set.
    pub fn empty() -> Self {
        SionFlags(0)
    }

    /// Whether every flag in `other` is set in `self`.
    pub fn contains(self, other: SionFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Raw bit representation.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Rebuild from raw bits, rejecting unknown flags.
    pub fn from_bits(bits: u64) -> Result<Self> {
        if bits & !0b111 != 0 {
            return Err(SionError::Format(format!("unknown flag bits {bits:#x}")));
        }
        Ok(SionFlags(bits))
    }
}

impl BitOr for SionFlags {
    type Output = SionFlags;
    fn bitor(self, rhs: SionFlags) -> SionFlags {
        SionFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for SionFlags {
    fn bitor_assign(&mut self, rhs: SionFlags) {
        self.0 |= rhs.0;
    }
}

/// Metablock 1: layout metadata written once at collective open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaBlock1 {
    /// Format version (currently [`VERSION`]).
    pub version: u32,
    /// Feature flags.
    pub flags: SionFlags,
    /// File-system block size the layout was aligned to.
    pub fsblksize: u64,
    /// Total number of tasks across all physical files of the multifile.
    pub ntasks_global: u64,
    /// Number of physical files in the multifile.
    pub nfiles: u32,
    /// Index of this physical file within the multifile.
    pub filenum: u32,
    /// Offset of block 0 (end of metablock 1, aligned if `ALIGNED`).
    pub data_start: u64,
    /// Global rank of each local task (length = local task count).
    pub global_ranks: Vec<u64>,
    /// Requested chunk size per local task.
    pub chunksize_req: Vec<u64>,
    /// Chunk capacity per local task (request plus rescue overhead, rounded
    /// up to the alignment).
    pub chunk_cap: Vec<u64>,
}

impl MetaBlock1 {
    /// Number of tasks stored in this physical file.
    pub fn ntasks_local(&self) -> usize {
        self.global_ranks.len()
    }

    /// Encoded size of a metablock 1 for `ntasks_local` tasks.
    pub fn encoded_len(ntasks_local: usize) -> u64 {
        MB1_FIXED_LEN + 3 * 8 * ntasks_local as u64
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let n = self.ntasks_local();
        assert_eq!(self.chunksize_req.len(), n, "array lengths must agree");
        assert_eq!(self.chunk_cap.len(), n, "array lengths must agree");
        let mut out = Vec::with_capacity(Self::encoded_len(n) as usize);
        out.extend_from_slice(&MAGIC1);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.flags.bits().to_le_bytes());
        out.extend_from_slice(&self.fsblksize.to_le_bytes());
        out.extend_from_slice(&self.ntasks_global.to_le_bytes());
        out.extend_from_slice(&self.nfiles.to_le_bytes());
        out.extend_from_slice(&self.filenum.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&self.data_start.to_le_bytes());
        for arr in [&self.global_ranks, &self.chunksize_req, &self.chunk_cap] {
            for v in arr.iter() {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        debug_assert_eq!(out.len() as u64, Self::encoded_len(n));
        out
    }

    /// Read and validate a metablock 1 from the start of `file`.
    pub fn read_from(file: &dyn VfsFile) -> Result<Self> {
        let mut fixed = [0u8; MB1_FIXED_LEN as usize];
        file.read_exact_at(&mut fixed, 0)
            .map_err(|_| SionError::Format("file too short for metablock 1".into()))?;
        if fixed[0..8] != MAGIC1 {
            return Err(SionError::Format("bad magic (not a sion multifile)".into()));
        }
        let version = u32::from_le_bytes(fixed[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(SionError::Format(format!("unsupported version {version}")));
        }
        let flags = SionFlags::from_bits(u64::from_le_bytes(fixed[12..20].try_into().unwrap()))?;
        let fsblksize = u64::from_le_bytes(fixed[20..28].try_into().unwrap());
        let ntasks_global = u64::from_le_bytes(fixed[28..36].try_into().unwrap());
        let nfiles = u32::from_le_bytes(fixed[36..40].try_into().unwrap());
        let filenum = u32::from_le_bytes(fixed[40..44].try_into().unwrap());
        let ntasks_local = u64::from_le_bytes(fixed[44..52].try_into().unwrap());
        let data_start = u64::from_le_bytes(fixed[52..60].try_into().unwrap());
        if fsblksize == 0 {
            return Err(SionError::Format("zero file-system block size".into()));
        }
        if ntasks_local == 0 || ntasks_local > ntasks_global {
            return Err(SionError::Format(format!(
                "implausible local task count {ntasks_local} (global {ntasks_global})"
            )));
        }
        if ntasks_global > MAX_TASKS {
            return Err(SionError::Format(format!(
                "task count {ntasks_global} exceeds the sanity limit"
            )));
        }
        // The per-task arrays must physically fit in the file before we
        // allocate buffers for them.
        let file_len = file.len()?;
        if Self::encoded_len(ntasks_local as usize) > file_len {
            return Err(SionError::Format(
                "metablock 1 arrays extend past the end of the file".into(),
            ));
        }
        if filenum >= nfiles {
            return Err(SionError::Format(format!("file number {filenum} >= nfiles {nfiles}")));
        }
        let n = ntasks_local as usize;
        let mut arrays = vec![0u8; 3 * 8 * n];
        file.read_exact_at(&mut arrays, MB1_FIXED_LEN)
            .map_err(|_| SionError::Format("file too short for metablock 1 arrays".into()))?;
        let take = |i: usize| -> Vec<u64> {
            arrays[i * 8 * n..(i + 1) * 8 * n]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                .collect()
        };
        let mb1 = MetaBlock1 {
            version,
            flags,
            fsblksize,
            ntasks_global,
            nfiles,
            filenum,
            data_start,
            global_ranks: take(0),
            chunksize_req: take(1),
            chunk_cap: take(2),
        };
        if mb1.data_start < Self::encoded_len(n) {
            return Err(SionError::Format("data start overlaps metablock 1".into()));
        }
        if mb1.chunk_cap.contains(&0) {
            return Err(SionError::Format("zero chunk capacity".into()));
        }
        // Capacities must sum without overflow (the block size) — corrupted
        // headers must not push later address arithmetic past u64.
        let mut block_size: u64 = 0;
        for &c in &mb1.chunk_cap {
            block_size = block_size
                .checked_add(c)
                .ok_or_else(|| SionError::Format("chunk capacities overflow".into()))?;
        }
        if block_size > (1 << 56) {
            return Err(SionError::Format("block size exceeds the sanity limit".into()));
        }
        if mb1.data_start > (1 << 56) {
            return Err(SionError::Format("data start exceeds the sanity limit".into()));
        }
        Ok(mb1)
    }
}

/// Metablock 2: usage metadata written once at collective close.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaBlock2 {
    /// Number of blocks present in the file (0 if nothing was written).
    pub nblocks: u64,
    /// Bytes of user data in each chunk, row-major `[block][local task]`.
    pub used: Vec<u64>,
}

impl MetaBlock2 {
    /// Bytes used by task `ltask` in block `b`.
    pub fn used_in(&self, b: u64, ltask: usize, ntasks_local: usize) -> u64 {
        self.used[b as usize * ntasks_local + ltask]
    }

    /// Per-block usage vector for one local task.
    pub fn task_usage(&self, ltask: usize, ntasks_local: usize) -> Vec<u64> {
        (0..self.nblocks).map(|b| self.used_in(b, ltask, ntasks_local)).collect()
    }

    /// The fixed 24-byte header alone (magic, block count, task count) —
    /// what a sharded collective close writes after the sub-masters have
    /// deposited their usage slices.
    pub fn header_bytes(nblocks: u64, ntasks_local: usize) -> [u8; MB2_FIXED_LEN as usize] {
        let mut out = [0u8; MB2_FIXED_LEN as usize];
        out[0..8].copy_from_slice(&MAGIC2);
        out[8..16].copy_from_slice(&nblocks.to_le_bytes());
        out[16..24].copy_from_slice(&(ntasks_local as u64).to_le_bytes());
        out
    }

    /// Serialize to bytes (including the local task count for validation).
    pub fn encode(&self, ntasks_local: usize) -> Vec<u8> {
        assert_eq!(self.used.len() as u64, self.nblocks * ntasks_local as u64);
        let mut out =
            Vec::with_capacity(MB2_FIXED_LEN as usize + 8 * self.used.len());
        out.extend_from_slice(&Self::header_bytes(self.nblocks, ntasks_local));
        for v in &self.used {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decode from bytes, validating against the expected task count.
    pub fn decode(bytes: &[u8], expect_ntasks_local: usize) -> Result<Self> {
        if bytes.len() < MB2_FIXED_LEN as usize {
            return Err(SionError::Format("metablock 2 too short".into()));
        }
        if bytes[0..8] != MAGIC2 {
            return Err(SionError::Format("bad metablock 2 magic".into()));
        }
        let nblocks = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let ntasks = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        if nblocks > (1 << 32) {
            return Err(SionError::Format(format!(
                "block count {nblocks} exceeds the sanity limit"
            )));
        }
        if ntasks != expect_ntasks_local as u64 {
            return Err(SionError::Format(format!(
                "metablock 2 task count {ntasks} != metablock 1 task count {expect_ntasks_local}"
            )));
        }
        let want = nblocks
            .checked_mul(ntasks)
            .and_then(|c| c.checked_mul(8))
            .ok_or_else(|| SionError::Format("metablock 2 size overflow".into()))?;
        if bytes.len() as u64 != MB2_FIXED_LEN + want {
            return Err(SionError::Format("metablock 2 length mismatch".into()));
        }
        let used = bytes[MB2_FIXED_LEN as usize..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(MetaBlock2 { nblocks, used })
    }

    /// Read a metablock 2 via the trailer at the end of `file` (either
    /// trailer version).
    pub fn read_from(file: &dyn VfsFile, ntasks_local: usize) -> Result<Self> {
        let trailer = Trailer::read_from(file)?;
        Self::read_at(file, &trailer, ntasks_local)
    }

    /// Read a metablock 2 at the position an already-read trailer names.
    pub fn read_at(file: &dyn VfsFile, trailer: &Trailer, ntasks_local: usize) -> Result<Self> {
        let mut bytes = vec![0u8; trailer.mb2_len as usize];
        file.read_exact_at(&mut bytes, trailer.mb2_off)?;
        Self::decode(&bytes, ntasks_local)
    }

    /// Read only the fixed header of metablock 2 (magic, block count, task
    /// count) without materializing the usage matrix — the cheap open path.
    /// Validates the task count and that the trailer's length matches the
    /// matrix the header claims.
    pub fn read_header(
        file: &dyn VfsFile,
        trailer: &Trailer,
        expect_ntasks_local: usize,
    ) -> Result<u64> {
        let mut fixed = [0u8; MB2_FIXED_LEN as usize];
        file.read_exact_at(&mut fixed, trailer.mb2_off)
            .map_err(|_| SionError::Format("file too short for metablock 2".into()))?;
        if fixed[0..8] != MAGIC2 {
            return Err(SionError::Format("bad metablock 2 magic".into()));
        }
        let nblocks = u64::from_le_bytes(fixed[8..16].try_into().unwrap());
        let ntasks = u64::from_le_bytes(fixed[16..24].try_into().unwrap());
        if nblocks > (1 << 32) {
            return Err(SionError::Format(format!(
                "block count {nblocks} exceeds the sanity limit"
            )));
        }
        if ntasks != expect_ntasks_local as u64 {
            return Err(SionError::Format(format!(
                "metablock 2 task count {ntasks} != metablock 1 task count {expect_ntasks_local}"
            )));
        }
        let want = nblocks
            .checked_mul(ntasks)
            .and_then(|c| c.checked_mul(8))
            .and_then(|c| c.checked_add(MB2_FIXED_LEN))
            .ok_or_else(|| SionError::Format("metablock 2 size overflow".into()))?;
        if trailer.mb2_len != want {
            return Err(SionError::Format("metablock 2 length mismatch".into()));
        }
        Ok(nblocks)
    }

    /// Write the metablock and a **v1** (index-less) trailer at `offset`,
    /// finishing the file. Production closes go through
    /// [`write_close_metadata`]; this survives for unit tests and for
    /// constructing pre-index images (compat fixtures).
    pub fn write_to(&self, file: &dyn VfsFile, offset: u64, ntasks_local: usize) -> Result<()> {
        let body = self.encode(ntasks_local);
        let mut tail = Vec::with_capacity(body.len() + TRAILER_LEN as usize);
        tail.extend_from_slice(&body);
        tail.extend_from_slice(&offset.to_le_bytes());
        tail.extend_from_slice(&(body.len() as u64).to_le_bytes());
        tail.extend_from_slice(&MAGIC_EOF);
        file.write_all_at(&tail, offset)?;
        // Make the trailer the authoritative end of file even if earlier
        // sparse writes extended it further (they cannot: chunks precede
        // the metablock), and drop any stale bytes from a previous longer
        // close when rewriting in place.
        file.set_len(offset + body.len() as u64 + TRAILER_LEN)?;
        Ok(())
    }
}

/// Decoded end-of-file trailer: where metablock 2 lives, and — for files
/// closed by an index-writing (v2) close — where the per-task chunk-index
/// record lives.
///
/// The last 8 bytes of the file dispatch the version: [`MAGIC_EOF`] names
/// the original 24-byte trailer (`[mb2_off, mb2_len, magic]`),
/// [`MAGIC_EOF2`] the 40-byte trailer
/// (`[mb2_off, mb2_len, idx_off, idx_len, magic]`). Both versions keep the
/// full metablock 2, so every v2 file also decodes down the v1 path — the
/// index is a redundant, read-optimized transpose, not the only truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trailer {
    /// Offset of metablock 2.
    pub mb2_off: u64,
    /// Encoded length of metablock 2.
    pub mb2_len: u64,
    /// `(offset, length)` of the chunk-index record, when present.
    pub index: Option<(u64, u64)>,
}

impl Trailer {
    /// Read and validate the trailer at the end of `file`.
    pub fn read_from(file: &dyn VfsFile) -> Result<Trailer> {
        let len = file.len()?;
        if len < TRAILER_LEN {
            return Err(SionError::Format("file too short for trailer".into()));
        }
        let mut tr = [0u8; TRAILER_LEN as usize];
        file.read_exact_at(&mut tr, len - TRAILER_LEN)?;
        if tr[16..24] == MAGIC_EOF {
            let mb2_off = u64::from_le_bytes(tr[0..8].try_into().unwrap());
            let mb2_len = u64::from_le_bytes(tr[8..16].try_into().unwrap());
            let end = mb2_off
                .checked_add(mb2_len)
                .and_then(|v| v.checked_add(TRAILER_LEN))
                .ok_or_else(|| SionError::Format("trailer offsets overflow".into()))?;
            if end != len {
                return Err(SionError::Format("trailer does not point at metablock 2".into()));
            }
            return Ok(Trailer { mb2_off, mb2_len, index: None });
        }
        if tr[16..24] == MAGIC_EOF2 {
            if len < TRAILER2_LEN {
                return Err(SionError::Format("file too short for v2 trailer".into()));
            }
            let mut tr = [0u8; TRAILER2_LEN as usize];
            file.read_exact_at(&mut tr, len - TRAILER2_LEN)?;
            let word = |i: usize| u64::from_le_bytes(tr[i * 8..i * 8 + 8].try_into().unwrap());
            let (mb2_off, mb2_len, idx_off, idx_len) = (word(0), word(1), word(2), word(3));
            // The index record sits immediately after metablock 2 and the
            // trailer immediately after the index; both seams must be exact
            // or the tail is torn.
            if mb2_off.checked_add(mb2_len) != Some(idx_off) {
                return Err(SionError::Format(
                    "v2 trailer: index does not follow metablock 2".into(),
                ));
            }
            let end = idx_off
                .checked_add(idx_len)
                .and_then(|v| v.checked_add(TRAILER2_LEN))
                .ok_or_else(|| SionError::Format("trailer offsets overflow".into()))?;
            if end != len {
                return Err(SionError::Format("v2 trailer does not point at the file tail".into()));
            }
            return Ok(Trailer { mb2_off, mb2_len, index: Some((idx_off, idx_len)) });
        }
        Err(SionError::Format("missing end-of-file trailer (file not closed?)".into()))
    }
}

/// Per-task chunk index: the read-optimized transpose of metablock 2,
/// written by v2 closes immediately after it.
///
/// Layout: `MAGIC_IDX | nblocks | ntasks_local |` then, **task-major**, the
/// inclusive per-block prefix sums of each local task's `used` bytes
/// (`nblocks` little-endian `u64` per task). Task-major order makes one
/// task's whole seek index a single contiguous read of `8·nblocks` bytes,
/// and the prefix sums make `seek(rank, logical_pos)` a binary search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkIndex {
    /// Number of blocks in the file (mirror of `MetaBlock2::nblocks`).
    pub nblocks: u64,
    /// Inclusive prefix sums, task-major: entry `t * nblocks + b` is the
    /// total bytes task `t` stored in blocks `0..=b`.
    pub cum: Vec<u64>,
}

impl ChunkIndex {
    /// Encoded size of an index for `nblocks` blocks and `n` local tasks.
    pub fn encoded_len(nblocks: u64, ntasks_local: usize) -> u64 {
        IDX_FIXED_LEN + 8 * nblocks * ntasks_local as u64
    }

    /// Build the index from a decoded metablock 2 (transpose + prefix sum).
    pub fn from_mb2(mb2: &MetaBlock2, ntasks_local: usize) -> ChunkIndex {
        let nblocks = mb2.nblocks;
        let mut cum = Vec::with_capacity((nblocks as usize) * ntasks_local);
        for t in 0..ntasks_local {
            let mut acc = 0u64;
            for b in 0..nblocks {
                acc += mb2.used_in(b, t, ntasks_local);
                cum.push(acc);
            }
        }
        ChunkIndex { nblocks, cum }
    }

    /// Prefix sums for one task's slice (task-major, so this is the byte
    /// image of one contiguous read).
    pub fn encode_task_slice(used: &[u64], nblocks: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(nblocks as usize * 8);
        let mut acc = 0u64;
        for b in 0..nblocks {
            acc += used.get(b as usize).copied().unwrap_or(0);
            out.extend_from_slice(&acc.to_le_bytes());
        }
        out
    }

    /// Serialize header + prefix sums.
    pub fn encode(&self, ntasks_local: usize) -> Vec<u8> {
        assert_eq!(self.cum.len() as u64, self.nblocks * ntasks_local as u64);
        let mut out = Vec::with_capacity(Self::encoded_len(self.nblocks, ntasks_local) as usize);
        out.extend_from_slice(&Self::header_bytes(self.nblocks, ntasks_local));
        for v in &self.cum {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// The fixed 24-byte header alone.
    pub fn header_bytes(nblocks: u64, ntasks_local: usize) -> [u8; IDX_FIXED_LEN as usize] {
        let mut out = [0u8; IDX_FIXED_LEN as usize];
        out[0..8].copy_from_slice(&MAGIC_IDX);
        out[8..16].copy_from_slice(&nblocks.to_le_bytes());
        out[16..24].copy_from_slice(&(ntasks_local as u64).to_le_bytes());
        out
    }

    /// Validate the index record a trailer points at against the file's
    /// metablock geometry. Returns an error when the record is torn or
    /// disagrees — callers then fall back to the linear metablock-2 path.
    pub fn validate_header(
        file: &dyn VfsFile,
        idx: (u64, u64),
        nblocks: u64,
        ntasks_local: usize,
    ) -> Result<()> {
        let (idx_off, idx_len) = idx;
        if idx_len != Self::encoded_len(nblocks, ntasks_local) {
            return Err(SionError::Format("chunk index length mismatch".into()));
        }
        let mut fixed = [0u8; IDX_FIXED_LEN as usize];
        file.read_exact_at(&mut fixed, idx_off)
            .map_err(|_| SionError::Format("file too short for chunk index".into()))?;
        if fixed[0..8] != MAGIC_IDX {
            return Err(SionError::Format("bad chunk index magic".into()));
        }
        let idx_nblocks = u64::from_le_bytes(fixed[8..16].try_into().unwrap());
        let idx_ntasks = u64::from_le_bytes(fixed[16..24].try_into().unwrap());
        if idx_nblocks != nblocks || idx_ntasks != ntasks_local as u64 {
            return Err(SionError::Format(format!(
                "chunk index header ({idx_nblocks} blocks, {idx_ntasks} tasks) disagrees with \
                 metablock 2 ({nblocks} blocks, {ntasks_local} tasks)"
            )));
        }
        Ok(())
    }

    /// Read one task's inclusive prefix sums — a single contiguous
    /// `8·nblocks`-byte read at a computed offset; this is the whole
    /// per-rank metadata fetch of a lazy open.
    pub fn read_task_cum(
        file: &dyn VfsFile,
        idx_off: u64,
        nblocks: u64,
        ltask: usize,
    ) -> Result<Vec<u64>> {
        let mut bytes = vec![0u8; nblocks as usize * 8];
        let off = idx_off + IDX_FIXED_LEN + 8 * nblocks * ltask as u64;
        file.read_exact_at(&mut bytes, off)
            .map_err(|_| SionError::Format("file too short for chunk index slice".into()))?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// Write the complete close-time metadata tail — metablock 2, its chunk
/// index, and the v2 trailer — as **one** vectored submission at `offset`
/// (`[body, index, trailer]` slices, no concatenation copy), then truncate
/// the file there.
///
/// Every writer of finished files (serial close, collective close, rescue
/// repair) goes through this function, so a forced repair of a cleanly
/// closed file reproduces it byte for byte. The iovec's in-order prefix
/// guarantee keeps the crash model of the v1 close: the trailer is the
/// last slice, so a torn tail — whether cut mid-slice or between slices —
/// has no valid trailer and the file stays in the "never closed" state
/// that repair handles.
pub fn write_close_metadata(
    file: &dyn VfsFile,
    offset: u64,
    mb2: &MetaBlock2,
    ntasks_local: usize,
) -> Result<()> {
    let body = mb2.encode(ntasks_local);
    let index = ChunkIndex::from_mb2(mb2, ntasks_local).encode(ntasks_local);
    let idx_off = offset + body.len() as u64;
    let mut trailer = Vec::with_capacity(TRAILER2_LEN as usize);
    trailer.extend_from_slice(&offset.to_le_bytes());
    trailer.extend_from_slice(&(body.len() as u64).to_le_bytes());
    trailer.extend_from_slice(&idx_off.to_le_bytes());
    trailer.extend_from_slice(&(index.len() as u64).to_le_bytes());
    trailer.extend_from_slice(&MAGIC_EOF2);
    let total = body.len() as u64 + index.len() as u64 + TRAILER2_LEN;
    file.write_vectored_at(
        &[IoSlice::new(&body), IoSlice::new(&index), IoSlice::new(&trailer)],
        offset,
    )?;
    // Make the trailer the authoritative end of file even if earlier sparse
    // writes extended it further, and drop stale bytes from a previous
    // longer close when rewriting in place.
    file.set_len(offset + total)?;
    Ok(())
}

// ---------------------------------------------------------------------
// Packed collective-metadata records (wire format, not on-disk).
// ---------------------------------------------------------------------

/// Everything one task contributes to the collective *open*, packed into a
/// single fixed-layout record so the whole exchange is **one** gather at
/// the file master (instead of one sequential collective round per field).
///
/// Layout: 4 little-endian `u64` words —
/// `[chunksize, global rank, params fingerprint, status]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenRecord {
    /// This task's chunk-size request (the one per-task open parameter).
    pub chunksize: u64,
    /// This task's rank in the global communicator.
    pub grank: u64,
    /// Fingerprint of the parameters that must agree across tasks; the
    /// master rejects the open when any two records disagree.
    pub fingerprint: u64,
    /// Status word ([`OpenRecord::STATUS_OK`] or a local-failure bit), so a
    /// task whose pre-open validation failed can still join the gather —
    /// deserting a collective would hang its peers.
    pub status: u64,
}

impl OpenRecord {
    /// Encoded size in bytes.
    pub const LEN: usize = 32;
    /// `status` value of a task whose local pre-open checks passed.
    pub const STATUS_OK: u64 = 0;
    /// `status` bit of a task whose local pre-open validation failed.
    pub const STATUS_LOCAL_INVALID: u64 = 1;

    /// Serialize to the fixed 32-byte wire layout.
    pub fn encode(&self) -> [u8; Self::LEN] {
        let mut out = [0u8; Self::LEN];
        for (slot, word) in out
            .chunks_exact_mut(8)
            .zip([self.chunksize, self.grank, self.fingerprint, self.status])
        {
            slot.copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Inverse of [`encode`](Self::encode).
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != Self::LEN {
            return Err(SionError::Format(format!(
                "open record must be {} bytes, got {}",
                Self::LEN,
                bytes.len()
            )));
        }
        let word = |i: usize| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
        Ok(OpenRecord {
            chunksize: word(0),
            grank: word(1),
            fingerprint: word(2),
            status: word(3),
        })
    }
}

/// Everything one task contributes to the collective *close*, packed so
/// the whole exchange is **one** gather at the file master: the error flag
/// rides along with the per-block usage instead of costing a separate
/// allgather round.
///
/// Layout: `[status, nblocks, used[0], ..., used[nblocks-1]]`, little-endian
/// `u64` words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloseRecord {
    /// `0` when this task's stream finished cleanly; nonzero when its final
    /// flush/sync failed (the group then skips writing metablock 2).
    pub status: u64,
    /// Bytes effectively stored per block this task touched.
    pub used: Vec<u64>,
}

impl CloseRecord {
    /// `status` of a task whose stream finished cleanly.
    pub const STATUS_OK: u64 = 0;
    /// `status` bit of a task whose final flush failed.
    pub const STATUS_FLUSH_FAILED: u64 = 1;

    /// Serialize to the variable-length wire layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.used.len() * 8);
        out.extend_from_slice(&self.status.to_le_bytes());
        out.extend_from_slice(&(self.used.len() as u64).to_le_bytes());
        for u in &self.used {
            out.extend_from_slice(&u.to_le_bytes());
        }
        out
    }

    /// Inverse of [`encode`](Self::encode).
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 16 || !bytes.len().is_multiple_of(8) {
            return Err(SionError::Format("truncated close record".into()));
        }
        let status = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let nblocks = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        if bytes.len() != 16 + nblocks * 8 {
            return Err(SionError::Format(format!(
                "close record claims {nblocks} blocks but carries {} payload bytes",
                bytes.len() - 16
            )));
        }
        let used = bytes[16..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok(CloseRecord { status, used })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vfs::{MemFs, Vfs};

    fn sample_mb1() -> MetaBlock1 {
        MetaBlock1 {
            version: VERSION,
            flags: SionFlags::ALIGNED | SionFlags::RESCUE,
            fsblksize: 65536,
            ntasks_global: 16,
            nfiles: 4,
            filenum: 2,
            data_start: 65536,
            global_ranks: vec![8, 9, 10, 11],
            chunksize_req: vec![100, 200, 300, 400],
            chunk_cap: vec![65536, 65536, 65536, 65536],
        }
    }

    #[test]
    fn mb1_roundtrip_via_file() {
        let fs = MemFs::new();
        let f = fs.create("m").unwrap();
        let mb1 = sample_mb1();
        f.write_all_at(&mb1.encode(), 0).unwrap();
        let back = MetaBlock1::read_from(f.as_ref()).unwrap();
        assert_eq!(back, mb1);
    }

    #[test]
    fn mb1_encoded_len_matches() {
        let mb1 = sample_mb1();
        assert_eq!(mb1.encode().len() as u64, MetaBlock1::encoded_len(4));
    }

    #[test]
    fn mb1_rejects_bad_magic_and_version() {
        let fs = MemFs::new();
        let f = fs.create("m").unwrap();
        let mut bytes = sample_mb1().encode();
        bytes[0] = b'X';
        f.write_all_at(&bytes, 0).unwrap();
        assert!(matches!(MetaBlock1::read_from(f.as_ref()), Err(SionError::Format(_))));

        let mut bytes = sample_mb1().encode();
        bytes[8] = 99; // version
        f.write_all_at(&bytes, 0).unwrap();
        assert!(matches!(MetaBlock1::read_from(f.as_ref()), Err(SionError::Format(_))));
    }

    #[test]
    fn mb1_rejects_truncation() {
        let fs = MemFs::new();
        let f = fs.create("m").unwrap();
        let bytes = sample_mb1().encode();
        f.write_all_at(&bytes[..bytes.len() - 10], 0).unwrap();
        assert!(MetaBlock1::read_from(f.as_ref()).is_err());
    }

    #[test]
    fn mb2_roundtrip_via_file() {
        let fs = MemFs::new();
        let f = fs.create("m").unwrap();
        let mb2 = MetaBlock2 { nblocks: 3, used: (0..12).map(|i| i * 11).collect() };
        mb2.write_to(f.as_ref(), 5000, 4).unwrap();
        let back = MetaBlock2::read_from(f.as_ref(), 4).unwrap();
        assert_eq!(back, mb2);
        assert_eq!(back.used_in(2, 1, 4), 9 * 11);
        assert_eq!(back.task_usage(1, 4), vec![11, 55, 99]);
    }

    #[test]
    fn mb2_task_count_mismatch_rejected() {
        let fs = MemFs::new();
        let f = fs.create("m").unwrap();
        let mb2 = MetaBlock2 { nblocks: 1, used: vec![1, 2, 3, 4] };
        mb2.write_to(f.as_ref(), 0, 4).unwrap();
        assert!(MetaBlock2::read_from(f.as_ref(), 5).is_err());
    }

    #[test]
    fn missing_trailer_detected() {
        let fs = MemFs::new();
        let f = fs.create("m").unwrap();
        f.write_all_at(&[0u8; 100], 0).unwrap();
        let err = MetaBlock2::read_from(f.as_ref(), 1).unwrap_err();
        assert!(err.to_string().contains("trailer"), "{err}");
    }

    #[test]
    fn empty_mb2_zero_blocks() {
        let fs = MemFs::new();
        let f = fs.create("m").unwrap();
        let mb2 = MetaBlock2 { nblocks: 0, used: vec![] };
        mb2.write_to(f.as_ref(), 128, 7).unwrap();
        let back = MetaBlock2::read_from(f.as_ref(), 7).unwrap();
        assert_eq!(back.nblocks, 0);
    }

    #[test]
    fn v2_close_metadata_roundtrip() {
        let fs = MemFs::new();
        let f = fs.create("m").unwrap();
        let mb2 = MetaBlock2 { nblocks: 3, used: (0..12).map(|i| i * 11).collect() };
        write_close_metadata(f.as_ref(), 5000, &mb2, 4).unwrap();

        let trailer = Trailer::read_from(f.as_ref()).unwrap();
        assert_eq!(trailer.mb2_off, 5000);
        let (idx_off, idx_len) = trailer.index.expect("v2 close carries an index");
        assert_eq!(idx_off, 5000 + trailer.mb2_len);
        assert_eq!(idx_len, ChunkIndex::encoded_len(3, 4));

        // Both decode paths see the same metadata.
        assert_eq!(MetaBlock2::read_from(f.as_ref(), 4).unwrap(), mb2);
        assert_eq!(MetaBlock2::read_header(f.as_ref(), &trailer, 4).unwrap(), 3);
        ChunkIndex::validate_header(f.as_ref(), (idx_off, idx_len), 3, 4).unwrap();
        for t in 0..4usize {
            let cum = ChunkIndex::read_task_cum(f.as_ref(), idx_off, 3, t).unwrap();
            let used = mb2.task_usage(t, 4);
            let mut acc = 0;
            for (b, &u) in used.iter().enumerate() {
                acc += u;
                assert_eq!(cum[b], acc, "task {t} block {b}");
            }
        }
    }

    #[test]
    fn chunk_index_matches_per_task_slices() {
        let mb2 = MetaBlock2 { nblocks: 2, used: vec![5, 0, 7, 3] };
        let idx = ChunkIndex::from_mb2(&mb2, 2);
        assert_eq!(idx.cum, vec![5, 12, 0, 3]);
        let enc = idx.encode(2);
        assert_eq!(enc.len() as u64, ChunkIndex::encoded_len(2, 2));
        // The full encoding is header + concatenated per-task slices, so
        // sharded sub-master writes compose to the same bytes.
        let mut sharded = ChunkIndex::header_bytes(2, 2).to_vec();
        sharded.extend(ChunkIndex::encode_task_slice(&mb2.task_usage(0, 2), 2));
        sharded.extend(ChunkIndex::encode_task_slice(&mb2.task_usage(1, 2), 2));
        assert_eq!(enc, sharded);
        // Short task slices pad with the running total.
        assert_eq!(ChunkIndex::encode_task_slice(&[4], 3), {
            let mut v = Vec::new();
            for w in [4u64, 4, 4] {
                v.extend_from_slice(&w.to_le_bytes());
            }
            v
        });
    }

    #[test]
    fn torn_index_is_detected_but_mb2_survives() {
        let fs = MemFs::new();
        let f = fs.create("m").unwrap();
        let mb2 = MetaBlock2 { nblocks: 1, used: vec![9, 8] };
        write_close_metadata(f.as_ref(), 200, &mb2, 2).unwrap();
        let trailer = Trailer::read_from(f.as_ref()).unwrap();
        let idx = trailer.index.unwrap();
        // Clobber the index magic: validation fails, the linear path works.
        f.write_all_at(b"XXXXXXXX", idx.0).unwrap();
        assert!(ChunkIndex::validate_header(f.as_ref(), idx, 1, 2).is_err());
        assert_eq!(MetaBlock2::read_from(f.as_ref(), 2).unwrap(), mb2);
        // Mismatched geometry is also rejected.
        write_close_metadata(f.as_ref(), 200, &mb2, 2).unwrap();
        assert!(ChunkIndex::validate_header(f.as_ref(), idx, 2, 2).is_err());
    }

    #[test]
    fn v1_trailer_still_decodes() {
        let fs = MemFs::new();
        let f = fs.create("m").unwrap();
        let mb2 = MetaBlock2 { nblocks: 1, used: vec![3] };
        mb2.write_to(f.as_ref(), 64, 1).unwrap();
        let trailer = Trailer::read_from(f.as_ref()).unwrap();
        assert_eq!(trailer.index, None);
        assert_eq!(MetaBlock2::read_header(f.as_ref(), &trailer, 1).unwrap(), 1);
        assert_eq!(MetaBlock2::read_at(f.as_ref(), &trailer, 1).unwrap(), mb2);
    }

    #[test]
    fn flags_reject_unknown_bits() {
        assert!(SionFlags::from_bits(0b1000).is_err());
        assert!(SionFlags::from_bits(0b111).is_ok());
    }

    #[test]
    fn open_record_round_trip() {
        let rec = OpenRecord {
            chunksize: 1 << 33,
            grank: 4093,
            fingerprint: 0xDEAD_BEEF_0BAD_F00D,
            status: OpenRecord::STATUS_LOCAL_INVALID,
        };
        let bytes = rec.encode();
        assert_eq!(bytes.len(), OpenRecord::LEN);
        assert_eq!(OpenRecord::decode(&bytes).unwrap(), rec);
        assert!(OpenRecord::decode(&bytes[..24]).is_err());
        assert!(OpenRecord::decode(&[]).is_err());
    }

    #[test]
    fn close_record_round_trip() {
        for used in [vec![], vec![17u64], vec![0, 0, 5, 1 << 40]] {
            let rec = CloseRecord { status: CloseRecord::STATUS_OK, used };
            assert_eq!(CloseRecord::decode(&rec.encode()).unwrap(), rec);
        }
        let rec = CloseRecord { status: CloseRecord::STATUS_FLUSH_FAILED, used: vec![9] };
        let mut bytes = rec.encode();
        assert_eq!(CloseRecord::decode(&bytes).unwrap(), rec);
        // Truncated payload and inconsistent block count must be rejected.
        assert!(CloseRecord::decode(&bytes[..bytes.len() - 8]).is_err());
        bytes[8] = 7;
        assert!(CloseRecord::decode(&bytes).is_err());
        assert!(CloseRecord::decode(&[0u8; 8]).is_err());
    }
}

//! # sion — scalable massively parallel I/O to task-local files
//!
//! A from-scratch Rust reproduction of **SIONlib** (Frings, Wolf, Petkov:
//! *Scalable Massively Parallel I/O to Task-Local Files*, SC 2009).
//!
//! Parallel applications often write one file per task — checkpoints,
//! scratch data, event traces. At tens of thousands of tasks this collapses:
//! creating 64 K files in one directory serializes on directory metadata
//! (minutes of wall clock), and the resulting file zoo is unmanageable.
//! `sion` maps a large number of *logical task-local files* onto one or a
//! few *physical files* (a **multifile**):
//!
//! * file creation becomes a handful of creates plus a small collective
//!   metadata exchange — orders of magnitude faster;
//! * each task's data lives in per-task **chunks** aligned to file-system
//!   block boundaries, so no two tasks ever contend for the same FS block
//!   and read/write bandwidth is not penalized;
//! * the multifile can be inspected, split back into physical task files,
//!   and defragmented by serial tools.
//!
//! ## Access modes (paper §3.2)
//!
//! | Paper                 | Here |
//! |-----------------------|------|
//! | `sion_paropen_mpi` (write) | [`paropen_write`] → [`SionParWriter`] |
//! | `sion_ensure_free_space` + `fwrite` | [`SionParWriter::ensure_free_space`] + [`SionParWriter::write_in_chunk`] |
//! | `sion_fwrite`          | [`SionParWriter::write`] |
//! | `sion_paropen_mpi` (read) | [`paropen_read`] → [`SionParReader`] |
//! | `sion_feof` / `sion_bytes_avail_in_chunk` / `sion_fread` | [`SionParReader::feof`] / [`bytes_avail_in_chunk`](SionParReader::bytes_avail_in_chunk) / [`read`](SionParReader::read) |
//! | `sion_open` (serial write) | [`SerialWriter`] |
//! | `sion_open` / `sion_open_rank` (serial read) | [`Multifile`] / [`Multifile::rank_reader`] |
//! | `sion_get_locations`   | [`Multifile::locations`] |
//! | `sion_seek`            | [`Multifile::read_at`] / [`SerialWriter::seek`] |
//!
//! ## Extensions beyond the SC09 paper (its §6 road map)
//!
//! * **Rescue metadata** ([`SionFlags::RESCUE`]): a small header at the start
//!   of every chunk lets [`rescue::repair`] rebuild the final metadata block
//!   after a crash or quota kill.
//! * **Transparent compression** ([`SionFlags::COMPRESSED`]): logical
//!   streams are compressed with the `szip` LZSS codec below the chunking
//!   layer.
//!
//! ## Buffering & coalescing
//!
//! Each task's stream keeps a chunk-aligned **write-behind buffer**
//! ([`SionParams::write_buffer`], default [`DEFAULT_WRITE_BUFFER`] =
//! 128 KiB; `0` = write-through): consecutive small writes are coalesced
//! into one VFS write per touched chunk segment, and the rescue header is
//! patched once per flush instead of once per write. The buffer never
//! spans a chunk boundary, so the bytes in the file are identical to an
//! unbuffered run. Buffered data reaches the VFS at these *flush points*:
//!
//! * the buffer fills up,
//! * the stream leaves the current chunk (boundary crossing or seek),
//! * an explicit [`SionParWriter::flush`] / [`SerialWriter::flush`],
//! * [`SionParWriter::close`] / [`SerialWriter::close`].
//!
//! After a crash, everything up to the last flush point is recoverable by
//! [`rescue::repair`]; bytes still in the buffer are lost. Readers use a
//! symmetric **read-ahead window** ([`DEFAULT_READ_AHEAD`]) serving small
//! reads from one cached chunk segment; reads at least as large as the
//! window bypass it. Both sides count their work in [`IoCounters`]
//! (user-level calls vs VFS calls, bytes, flushes, rescue patches),
//! available from [`CloseStats::write_io`] and the readers'
//! `io_counters()`. `write_buffer` is a local knob — tasks of one
//! multifile may use different values (it is excluded from the collective
//! open's parameter fingerprint).
//!
//! ## Quick start
//!
//! ```
//! use simmpi::{World, Comm};
//! use vfs::MemFs;
//!
//! let fs = MemFs::new();
//! let params = sion::SionParams::new(64 * 1024).with_nfiles(2);
//! World::run(8, |comm| {
//!     let mut w = sion::paropen_write(&fs, "run/ckpt.sion", &params, comm).unwrap();
//!     let payload = vec![comm.rank() as u8; 1000];
//!     w.write(&payload).unwrap();
//!     w.close().unwrap();
//!
//!     let mut r = sion::paropen_read(&fs, "run/ckpt.sion", comm).unwrap();
//!     let mut back = Vec::new();
//!     while !r.feof() {
//!         let mut buf = vec![0u8; r.bytes_avail_in_chunk() as usize];
//!         r.read_exact(&mut buf).unwrap();
//!         back.extend_from_slice(&buf);
//!     }
//!     assert_eq!(back, payload);
//!     r.close().unwrap();
//! });
//! ```

pub mod adapter;
mod agg;
pub mod error;
pub mod format;
pub mod keyval;
pub mod layout;
pub mod mapping;
pub mod par;
pub mod rescue;
pub mod script;
pub mod serial;
mod stream;

pub use adapter::SionWriteAdapter;
pub use error::{Result, SionError};
pub use format::{CloseRecord, OpenRecord, SionFlags};
pub use layout::{Alignment, FileLayout};
pub use keyval::{KeyValIndex, KeyValReader, KeyValWriter};
pub use mapping::Mapping;
pub use par::{
    paropen_read, paropen_read_co, paropen_write, paropen_write_co, CloseStats, SionParReader,
    SionParWriter,
};
pub use agg::AggStats;
pub use serial::{ChunkInfo, Locations, Multifile, RankReader, SerialWriter, TaskLocation};
pub use stream::{IoCounters, DEFAULT_READ_AHEAD, DEFAULT_WRITE_BUFFER};

/// How tasks issue their chunk writes in a collective open (ROADMAP item
/// 2: two-phase aggregated I/O, beyond the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Every task writes its own chunks directly — the paper's model.
    Independent,
    /// Two-phase collective writes: within each file group, neighborhoods
    /// of up to `tasks_per_aggregator` consecutive tasks elect one
    /// *aggregator* (the lowest local rank whose extent starts a fresh FS
    /// block). Members run the full chunk arithmetic against a shadow
    /// stream and ship their bytes to the aggregator over point-to-point
    /// messages; the aggregator replays them through per-member writers,
    /// issuing large writes from a single task per FS-block neighborhood.
    /// The on-disk multifile is byte-identical to `Independent` mode.
    Aggregated {
        /// Target neighborhood size; group boundaries snap outward to the
        /// next FS-block-clean task boundary (a whole file group becomes
        /// one neighborhood when the layout is unaligned).
        tasks_per_aggregator: usize,
    },
}

/// Parameters of a multifile, chosen at creation time (paper §3.1/§3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SionParams {
    /// Per-task chunk size request: the maximum number of bytes this task
    /// expects to write "in one piece". May differ between tasks.
    pub chunksize: u64,
    /// Number of underlying physical files (paper Fig. 2(d)).
    pub nfiles: u32,
    /// Chunk alignment policy (paper Fig. 2(c)).
    pub alignment: Alignment,
    /// Task → physical file mapping.
    pub mapping: Mapping,
    /// Transparent compression of logical streams (extension).
    pub compressed: bool,
    /// Per-chunk rescue headers for crash recovery (extension).
    pub rescue: bool,
    /// Write-behind buffer capacity in bytes (0 disables coalescing). A
    /// purely local knob: it shapes *how* this task issues its writes, not
    /// what ends up in the file, so tasks may disagree on it and it is not
    /// part of the collective-open fingerprint.
    pub write_buffer: u64,
    /// Independent (paper) vs two-phase aggregated writes. Part of the
    /// collective-open fingerprint: all tasks must agree, since the modes
    /// follow different communication protocols.
    pub io_mode: IoMode,
}

impl SionParams {
    /// Defaults: a single physical file, automatic FS-block alignment, no
    /// compression, no rescue headers.
    pub fn new(chunksize: u64) -> Self {
        SionParams {
            chunksize,
            nfiles: 1,
            alignment: Alignment::FsBlock,
            mapping: Mapping::Blocked,
            compressed: false,
            rescue: false,
            write_buffer: DEFAULT_WRITE_BUFFER,
            io_mode: IoMode::Independent,
        }
    }

    /// Set the number of underlying physical files.
    pub fn with_nfiles(mut self, nfiles: u32) -> Self {
        self.nfiles = nfiles;
        self
    }

    /// Set the alignment policy.
    pub fn with_alignment(mut self, alignment: Alignment) -> Self {
        self.alignment = alignment;
        self
    }

    /// Set the task→file mapping.
    pub fn with_mapping(mut self, mapping: Mapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Enable transparent compression.
    pub fn with_compression(mut self) -> Self {
        self.compressed = true;
        self
    }

    /// Enable rescue headers.
    pub fn with_rescue(mut self) -> Self {
        self.rescue = true;
        self
    }

    /// Set the write-behind buffer capacity (0 = write-through).
    pub fn with_write_buffer(mut self, bytes: u64) -> Self {
        self.write_buffer = bytes;
        self
    }

    /// Select the write I/O mode (see [`IoMode`]).
    pub fn with_io_mode(mut self, io_mode: IoMode) -> Self {
        self.io_mode = io_mode;
        self
    }

    pub(crate) fn flags(&self) -> SionFlags {
        let mut f = SionFlags::empty();
        if !matches!(self.alignment, Alignment::None) {
            f |= SionFlags::ALIGNED;
        }
        if self.compressed {
            f |= SionFlags::COMPRESSED;
        }
        if self.rescue {
            f |= SionFlags::RESCUE;
        }
        f
    }
}

/// Name of physical file `filenum` of a multifile with base name `base`.
///
/// File 0 keeps the base name (so single-file multifiles look like plain
/// files); further files get a `.NNNNNN` suffix, mirroring SIONlib.
pub fn physical_name(base: &str, filenum: u32) -> String {
    if filenum == 0 {
        base.to_string()
    } else {
        format!("{base}.{filenum:06}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_names() {
        assert_eq!(physical_name("a/b.sion", 0), "a/b.sion");
        assert_eq!(physical_name("a/b.sion", 1), "a/b.sion.000001");
        assert_eq!(physical_name("a/b.sion", 123456), "a/b.sion.123456");
    }

    #[test]
    fn params_flags_roundtrip() {
        let p = SionParams::new(1024);
        assert!(p.flags().contains(SionFlags::ALIGNED));
        assert!(!p.flags().contains(SionFlags::COMPRESSED));
        let p = p.with_alignment(Alignment::None).with_compression().with_rescue();
        assert!(!p.flags().contains(SionFlags::ALIGNED));
        assert!(p.flags().contains(SionFlags::COMPRESSED));
        assert!(p.flags().contains(SionFlags::RESCUE));
    }
}

//! Per-task chunk stream engine.
//!
//! A task's logical file is a byte stream laid across its chunks in blocks
//! 0, 1, 2, … of one physical file. [`TaskWriter`] and [`TaskReader`]
//! implement that stream — including the chunk-splitting `sion_fwrite` /
//! `sion_fread` semantics, optional transparent compression (the encoded
//! stream is what lives in the chunks), and rescue headers. Both the
//! parallel API (`par`) and the serial API (`serial`) are thin wrappers
//! over this module, so every access mode shares one engine.

use crate::error::{Result, SionError};
use crate::layout::FileLayout;
use crate::rescue::{RescueHeader, RESCUE_HEADER_LEN};
use std::sync::Arc;
use szip::{FrameDecoder, FrameEncoder};
use vfs::VfsFile;

/// The chunk geometry of a single task within one physical file — the
/// minimal slice of a [`FileLayout`] a task needs to address its chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ChunkGeom {
    /// Offset of block 0 in the physical file.
    pub data_start: u64,
    /// Size of one block (sum of all local chunk capacities).
    pub block_size: u64,
    /// Offset of this task's chunk within a block.
    pub chunk_off: u64,
    /// This task's chunk capacity (including rescue overhead).
    pub cap: u64,
    /// Rescue-header bytes at the start of each chunk (0 or 32).
    pub rescue_overhead: u64,
    /// Global rank (recorded in rescue headers).
    pub global_rank: u64,
}

impl ChunkGeom {
    /// Extract the geometry of local task `ltask` from a file layout.
    pub fn from_layout(layout: &FileLayout, ltask: usize, global_rank: u64) -> Self {
        ChunkGeom {
            data_start: layout.data_start,
            block_size: layout.block_size,
            chunk_off: layout.chunk_off[ltask],
            cap: layout.cap[ltask],
            rescue_overhead: layout.rescue_overhead,
            global_rank,
        }
    }

    /// File offset of this task's chunk in `block` (including header).
    pub fn chunk_start(&self, block: u64) -> u64 {
        self.data_start + block * self.block_size + self.chunk_off
    }

    /// File offset of user data in `block`.
    pub fn data_offset(&self, block: u64) -> u64 {
        self.chunk_start(block) + self.rescue_overhead
    }

    /// User-data capacity of one chunk.
    pub fn usable(&self) -> u64 {
        self.cap - self.rescue_overhead
    }

    /// Pack into a `u64` wire format for master→task scatter.
    pub fn encode(&self) -> Vec<u64> {
        vec![
            self.data_start,
            self.block_size,
            self.chunk_off,
            self.cap,
            self.rescue_overhead,
            self.global_rank,
        ]
    }

    /// Inverse of [`encode`](Self::encode).
    pub fn decode(words: &[u64]) -> Result<Self> {
        if words.len() < 6 {
            return Err(SionError::Format("truncated chunk geometry".into()));
        }
        Ok(ChunkGeom {
            data_start: words[0],
            block_size: words[1],
            chunk_off: words[2],
            cap: words[3],
            rescue_overhead: words[4],
            global_rank: words[5],
        })
    }
}

/// Writer for one task's logical file.
pub(crate) struct TaskWriter {
    file: Arc<dyn VfsFile>,
    geom: ChunkGeom,
    /// Current block number.
    block: u64,
    /// User bytes written into the current chunk.
    off: u64,
    /// Bytes used per block so far (index = block number).
    used: Vec<u64>,
    /// Whether each block's rescue header has been written.
    entered: Vec<bool>,
    /// Streaming compressor (compressed mode only).
    enc: Option<FrameEncoder>,
    /// Total user bytes accepted (pre-compression).
    user_bytes: u64,
}

impl TaskWriter {
    pub fn new(file: Arc<dyn VfsFile>, geom: ChunkGeom, compressed: bool) -> Self {
        TaskWriter {
            file,
            geom,
            block: 0,
            off: 0,
            used: vec![0],
            entered: vec![false],
            enc: compressed.then(FrameEncoder::new),
            user_bytes: 0,
        }
    }

    /// Bytes still free in the current chunk (stored-byte granularity).
    pub fn bytes_avail_in_chunk(&self) -> u64 {
        self.geom.usable() - self.off
    }

    /// Current block number (0-based).
    #[allow(dead_code)]
    pub fn current_block(&self) -> u64 {
        self.block
    }

    /// Total user bytes accepted so far.
    pub fn user_bytes(&self) -> u64 {
        self.user_bytes
    }

    /// The underlying physical-file handle.
    pub fn file(&self) -> &dyn VfsFile {
        self.file.as_ref()
    }

    /// Offset where metablock 2 goes when the file holds `nblocks` blocks
    /// (derived from this task's geometry; identical for every local task).
    pub fn mb2_offset(&self, nblocks: u64) -> u64 {
        self.geom.data_start + nblocks * self.geom.block_size
    }

    /// `sion_ensure_free_space`: guarantee that `nbytes` can be written
    /// contiguously into the current chunk, advancing to the next block's
    /// chunk if necessary. Fails if a single chunk cannot hold `nbytes`
    /// (use [`write`](Self::write) instead) or in compressed mode (where
    /// stored sizes are not knowable in advance).
    pub fn ensure_free_space(&mut self, nbytes: u64) -> Result<()> {
        if self.enc.is_some() {
            return Err(SionError::InvalidArg(
                "ensure_free_space is unavailable in compressed mode; use write()".into(),
            ));
        }
        if nbytes > self.geom.usable() {
            return Err(SionError::PieceTooLarge {
                requested: nbytes,
                capacity: self.geom.usable(),
            });
        }
        if nbytes > self.bytes_avail_in_chunk() {
            self.advance_chunk()?;
        }
        Ok(())
    }

    /// Plain `fwrite` into the current chunk: the data must fit in the
    /// remaining chunk space (call [`ensure_free_space`] first).
    pub fn write_in_chunk(&mut self, data: &[u8]) -> Result<()> {
        if self.enc.is_some() {
            return Err(SionError::InvalidArg(
                "write_in_chunk is unavailable in compressed mode; use write()".into(),
            ));
        }
        if data.len() as u64 > self.bytes_avail_in_chunk() {
            return Err(SionError::PieceTooLarge {
                requested: data.len() as u64,
                capacity: self.bytes_avail_in_chunk(),
            });
        }
        self.put(data)?;
        self.user_bytes += data.len() as u64;
        Ok(())
    }

    /// `sion_fwrite`: write arbitrarily large data, transparently split
    /// across chunk boundaries (and compressed, in compressed mode).
    pub fn write(&mut self, data: &[u8]) -> Result<()> {
        self.user_bytes += data.len() as u64;
        if let Some(enc) = self.enc.as_mut() {
            enc.write(data);
            let stored = enc.take_output();
            return self.put_split(&stored);
        }
        self.put_split(data)
    }

    /// Write `data` into chunks, advancing blocks as needed.
    fn put_split(&mut self, data: &[u8]) -> Result<()> {
        let mut rest = data;
        while !rest.is_empty() {
            let avail = self.bytes_avail_in_chunk();
            if avail == 0 {
                if self.geom.usable() == 0 {
                    return Err(SionError::PieceTooLarge {
                        requested: rest.len() as u64,
                        capacity: 0,
                    });
                }
                self.advance_chunk()?;
                continue;
            }
            let take = (avail as usize).min(rest.len());
            self.put(&rest[..take])?;
            rest = &rest[take..];
        }
        Ok(())
    }

    /// Low-level write of `data` at the current position (must fit).
    fn put(&mut self, data: &[u8]) -> Result<()> {
        debug_assert!(data.len() as u64 <= self.bytes_avail_in_chunk());
        if data.is_empty() {
            return Ok(());
        }
        self.enter_chunk()?;
        let at = self.geom.data_offset(self.block) + self.off;
        self.file.write_all_at(data, at)?;
        self.off += data.len() as u64;
        // High-water mark: a seek backwards must not shrink the chunk.
        let b = self.block as usize;
        self.used[b] = self.used[b].max(self.off);
        self.patch_rescue()?;
        Ok(())
    }

    /// Write the rescue header on first touch of a chunk.
    fn enter_chunk(&mut self) -> Result<()> {
        let b = self.block as usize;
        if self.entered[b] || self.geom.rescue_overhead == 0 {
            self.entered[b] = true;
            return Ok(());
        }
        let hdr = RescueHeader {
            global_rank: self.geom.global_rank,
            block: self.block,
            used: 0,
        };
        self.file.write_all_at(&hdr.encode(), self.geom.chunk_start(self.block))?;
        self.entered[b] = true;
        Ok(())
    }

    /// Keep the rescue header's byte count current.
    fn patch_rescue(&mut self) -> Result<()> {
        if self.geom.rescue_overhead == 0 {
            return Ok(());
        }
        debug_assert_eq!(self.geom.rescue_overhead, RESCUE_HEADER_LEN);
        self.file.write_all_at(
            &self.used[self.block as usize].to_le_bytes(),
            self.geom.chunk_start(self.block) + RescueHeader::USED_FIELD_OFFSET,
        )?;
        Ok(())
    }

    /// Move to this task's chunk in the next block.
    fn advance_chunk(&mut self) -> Result<()> {
        self.seek(self.block + 1, 0)
    }

    /// Position the write cursor at (`block`, `pos`) — the serial API's
    /// `sion_seek`. Unavailable in compressed mode (stored positions are
    /// not meaningful to callers there).
    pub fn seek(&mut self, block: u64, pos: u64) -> Result<()> {
        if self.enc.is_some() {
            return Err(SionError::InvalidArg(
                "seek is unavailable in compressed mode".into(),
            ));
        }
        if pos > self.geom.usable() {
            return Err(SionError::InvalidArg(format!(
                "seek position {pos} beyond chunk capacity {}",
                self.geom.usable()
            )));
        }
        while (self.used.len() as u64) <= block {
            self.used.push(0);
            self.entered.push(false);
        }
        self.block = block;
        self.off = pos;
        Ok(())
    }

    /// Flush (compressed mode) and return the per-block usage vector.
    pub fn finish(&mut self) -> Result<Vec<u64>> {
        if let Some(mut enc) = self.enc.take() {
            enc.flush();
            let stored = enc.take_output();
            self.put_split(&stored)?;
        }
        self.file.sync()?;
        Ok(self.used.clone())
    }
}

/// Reader for one task's logical file.
pub(crate) struct TaskReader {
    file: Arc<dyn VfsFile>,
    geom: ChunkGeom,
    /// Stored bytes per block (from metablock 2).
    used: Vec<u64>,
    /// Current block index into `used`.
    block: usize,
    /// Stored bytes consumed in the current chunk.
    off: u64,
    /// Streaming decompressor (compressed mode only).
    dec: Option<FrameDecoder>,
    /// Decoded bytes not yet handed to the caller (compressed mode).
    decoded: Vec<u8>,
    decoded_pos: usize,
}

impl TaskReader {
    pub fn new(
        file: Arc<dyn VfsFile>,
        geom: ChunkGeom,
        used: Vec<u64>,
        compressed: bool,
    ) -> Self {
        let mut r = TaskReader {
            file,
            geom,
            used,
            block: 0,
            off: 0,
            dec: compressed.then(FrameDecoder::new),
            decoded: Vec::new(),
            decoded_pos: 0,
        };
        r.skip_empty_blocks();
        r
    }

    fn skip_empty_blocks(&mut self) {
        while self.block < self.used.len() && self.off >= self.used[self.block] {
            self.block += 1;
            self.off = 0;
        }
    }

    /// Stored bytes still unread in the current chunk
    /// (`sion_bytes_avail_in_chunk`). In compressed mode this counts
    /// *stored* (compressed) bytes.
    pub fn bytes_avail_in_chunk(&self) -> u64 {
        if self.block >= self.used.len() {
            0
        } else {
            self.used[self.block] - self.off
        }
    }

    /// Whether the logical stream is exhausted (`sion_feof`).
    pub fn feof(&mut self) -> bool {
        if self.dec.is_some() && self.decoded_pos < self.decoded.len() {
            return false;
        }
        self.skip_empty_blocks();
        self.block >= self.used.len()
    }

    /// Current (block, offset) position in stored bytes.
    #[allow(dead_code)]
    pub fn position(&self) -> (u64, u64) {
        (self.block as u64, self.off)
    }

    /// `sion_fread`: read up to `buf.len()` bytes of the logical stream
    /// (decompressed in compressed mode), crossing chunk boundaries.
    /// Returns the number of bytes read; 0 signals end of stream.
    pub fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        if self.dec.is_some() {
            return self.read_decoded(buf);
        }
        let mut done = 0;
        while done < buf.len() {
            self.skip_empty_blocks();
            if self.block >= self.used.len() {
                break;
            }
            let avail = self.used[self.block] - self.off;
            let take = (avail as usize).min(buf.len() - done);
            let at = self.geom.data_offset(self.block as u64) + self.off;
            self.file.read_exact_at(&mut buf[done..done + take], at)?;
            self.off += take as u64;
            done += take;
        }
        Ok(done)
    }

    /// Read exactly `buf.len()` bytes or fail.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let n = self.read(buf)?;
        if n != buf.len() {
            return Err(SionError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("logical stream ended after {n} of {} bytes", buf.len()),
            )));
        }
        Ok(())
    }

    fn read_decoded(&mut self, buf: &mut [u8]) -> Result<usize> {
        let mut done = 0;
        loop {
            // Serve from the decoded buffer first.
            let have = self.decoded.len() - self.decoded_pos;
            if have > 0 {
                let take = have.min(buf.len() - done);
                buf[done..done + take]
                    .copy_from_slice(&self.decoded[self.decoded_pos..self.decoded_pos + take]);
                self.decoded_pos += take;
                done += take;
                if self.decoded_pos == self.decoded.len() {
                    self.decoded.clear();
                    self.decoded_pos = 0;
                }
            }
            if done == buf.len() {
                return Ok(done);
            }
            // Pull more stored bytes (one chunk's remainder at a time).
            self.skip_empty_blocks();
            if self.block >= self.used.len() {
                return Ok(done);
            }
            let avail = self.used[self.block] - self.off;
            let mut raw = vec![0u8; avail as usize];
            let at = self.geom.data_offset(self.block as u64) + self.off;
            self.file.read_exact_at(&mut raw, at)?;
            self.off += avail;
            let dec = self.dec.as_mut().expect("compressed mode");
            dec.feed(&raw);
            dec.drain_into(&mut self.decoded)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Alignment, FileLayout};
    use vfs::{MemFs, Vfs};

    fn setup(reqs: &[u64], align: Alignment, rescue: bool) -> (MemFs, FileLayout) {
        let fs = MemFs::with_block_size(256);
        let layout = FileLayout::compute(reqs, 256, align, rescue).unwrap();
        (fs, layout)
    }

    fn writer(
        fs: &MemFs,
        layout: &FileLayout,
        ltask: usize,
        compressed: bool,
    ) -> TaskWriter {
        let file = if fs.exists("f") { fs.open_rw("f").unwrap() } else { fs.create("f").unwrap() };
        TaskWriter::new(file, ChunkGeom::from_layout(layout, ltask, ltask as u64), compressed)
    }

    #[test]
    fn single_chunk_write_read() {
        let (fs, layout) = setup(&[100], Alignment::None, false);
        let mut w = writer(&fs, &layout, 0, false);
        w.ensure_free_space(50).unwrap();
        w.write_in_chunk(b"hello chunk").unwrap();
        let used = w.finish().unwrap();
        assert_eq!(used, vec![11]);

        let file = fs.open("f").unwrap();
        let mut r = TaskReader::new(file, ChunkGeom::from_layout(&layout, 0, 0), used, false);
        assert!(!r.feof());
        assert_eq!(r.bytes_avail_in_chunk(), 11);
        let mut buf = vec![0u8; 11];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello chunk");
        assert!(r.feof());
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn fwrite_splits_across_blocks() {
        let (fs, layout) = setup(&[256], Alignment::FsBlock, false);
        let mut w = writer(&fs, &layout, 0, false);
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        w.write(&data).unwrap();
        let used = w.finish().unwrap();
        assert_eq!(used, vec![256, 256, 256, 232]);
        assert_eq!(w.current_block(), 3);

        let file = fs.open("f").unwrap();
        let mut r = TaskReader::new(file, ChunkGeom::from_layout(&layout, 0, 0), used, false);
        let mut back = vec![0u8; 1000];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
        assert!(r.feof());
    }

    #[test]
    fn ensure_free_space_advances_and_leaves_gap() {
        let (fs, layout) = setup(&[100], Alignment::None, false);
        let mut w = writer(&fs, &layout, 0, false);
        w.ensure_free_space(60).unwrap();
        w.write_in_chunk(&[1u8; 60]).unwrap();
        // 40 left; asking for 50 must jump to block 1.
        w.ensure_free_space(50).unwrap();
        assert_eq!(w.current_block(), 1);
        w.write_in_chunk(&[2u8; 50]).unwrap();
        let used = w.finish().unwrap();
        assert_eq!(used, vec![60, 50]);

        let file = fs.open("f").unwrap();
        let mut r = TaskReader::new(file, ChunkGeom::from_layout(&layout, 0, 0), used, false);
        let mut all = vec![0u8; 110];
        r.read_exact(&mut all).unwrap();
        assert_eq!(&all[..60], &[1u8; 60][..]);
        assert_eq!(&all[60..], &[2u8; 50][..]);
    }

    #[test]
    fn piece_larger_than_chunk_rejected_by_ensure() {
        let (fs, layout) = setup(&[100], Alignment::None, false);
        let mut w = writer(&fs, &layout, 0, false);
        assert!(matches!(
            w.ensure_free_space(101),
            Err(SionError::PieceTooLarge { requested: 101, capacity: 100 })
        ));
        // But the splitting write handles it fine.
        w.write(&[9u8; 350]).unwrap();
        assert_eq!(w.finish().unwrap(), vec![100, 100, 100, 50]);
    }

    #[test]
    fn interleaved_tasks_do_not_collide() {
        let (fs, layout) = setup(&[64, 64, 64], Alignment::FsBlock, false);
        let mut ws: Vec<TaskWriter> = (0..3).map(|t| writer(&fs, &layout, t, false)).collect();
        for round in 0..4u8 {
            for (t, w) in ws.iter_mut().enumerate() {
                w.write(&vec![t as u8 * 16 + round; 100]).unwrap();
            }
        }
        let useds: Vec<Vec<u64>> = ws.iter_mut().map(|w| w.finish().unwrap()).collect();
        for (t, used) in useds.iter().enumerate() {
            let file = fs.open("f").unwrap();
            let mut r = TaskReader::new(
                file,
                ChunkGeom::from_layout(&layout, t, t as u64),
                used.clone(),
                false,
            );
            let mut back = vec![0u8; 400];
            r.read_exact(&mut back).unwrap();
            for round in 0..4 {
                assert!(
                    back[round * 100..(round + 1) * 100]
                        .iter()
                        .all(|&b| b == t as u8 * 16 + round as u8),
                    "task {t} round {round} corrupted"
                );
            }
            assert!(r.feof());
        }
    }

    #[test]
    fn compressed_stream_roundtrip() {
        let (fs, layout) = setup(&[256], Alignment::FsBlock, false);
        let mut w = writer(&fs, &layout, 0, true);
        let data = b"compressible compressible compressible ".repeat(100);
        w.write(&data).unwrap();
        let used = w.finish().unwrap();
        let stored: u64 = used.iter().sum();
        assert!(stored < data.len() as u64 / 2, "stored {stored} of {}", data.len());

        let file = fs.open("f").unwrap();
        let mut r = TaskReader::new(file, ChunkGeom::from_layout(&layout, 0, 0), used, true);
        assert!(!r.feof());
        let mut back = vec![0u8; data.len()];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
        assert!(r.feof());
    }

    #[test]
    fn compressed_mode_rejects_raw_calls() {
        let (fs, layout) = setup(&[256], Alignment::FsBlock, false);
        let mut w = writer(&fs, &layout, 0, true);
        assert!(w.ensure_free_space(10).is_err());
        assert!(w.write_in_chunk(b"x").is_err());
    }

    #[test]
    fn rescue_headers_written_and_patched() {
        let (fs, layout) = setup(&[200], Alignment::FsBlock, true);
        let mut w = writer(&fs, &layout, 0, false);
        w.write(&vec![7u8; 300]).unwrap(); // spans two chunks
        let used = w.finish().unwrap();
        assert_eq!(used.len(), 2);

        let file = fs.open("f").unwrap();
        for (b, &u) in used.iter().enumerate() {
            let mut hdr = [0u8; RESCUE_HEADER_LEN as usize];
            file.read_exact_at(&mut hdr, layout.chunk_start(0, b as u64)).unwrap();
            let h = RescueHeader::decode(&hdr).unwrap();
            assert_eq!(h.global_rank, 0);
            assert_eq!(h.block, b as u64);
            assert_eq!(h.used, u);
        }
        // Data reads back despite the headers.
        let mut r = TaskReader::new(
            fs.open("f").unwrap(),
            ChunkGeom::from_layout(&layout, 0, 0),
            used,
            false,
        );
        let mut back = vec![0u8; 300];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, vec![7u8; 300]);
    }

    #[test]
    fn reader_skips_zero_use_blocks() {
        let (fs, layout) = setup(&[100], Alignment::None, false);
        let mut w = writer(&fs, &layout, 0, false);
        w.ensure_free_space(100).unwrap();
        w.write_in_chunk(&[1u8; 100]).unwrap();
        // Jump straight to block 2, leaving block 1 untouched.
        w.seek(2, 0).unwrap();
        w.write_in_chunk(&[2u8; 10]).unwrap();
        let used = w.finish().unwrap();
        assert_eq!(used, vec![100, 0, 10]);

        let mut r = TaskReader::new(
            fs.open("f").unwrap(),
            ChunkGeom::from_layout(&layout, 0, 0),
            used,
            false,
        );
        let mut back = vec![0u8; 110];
        r.read_exact(&mut back).unwrap();
        assert_eq!(&back[..100], &[1u8; 100][..]);
        assert_eq!(&back[100..], &[2u8; 10][..]);
        assert!(r.feof());
    }

    #[test]
    fn empty_stream_is_immediately_eof() {
        let (fs, layout) = setup(&[100], Alignment::None, false);
        let mut w = writer(&fs, &layout, 0, false);
        let used = w.finish().unwrap();
        assert_eq!(used, vec![0]);
        let mut r = TaskReader::new(
            fs.open("f").unwrap(),
            ChunkGeom::from_layout(&layout, 0, 0),
            used,
            false,
        );
        assert!(r.feof());
    }

    #[test]
    fn geom_encode_decode_roundtrip() {
        let g = ChunkGeom {
            data_start: 1,
            block_size: 2,
            chunk_off: 3,
            cap: 4,
            rescue_overhead: 32,
            global_rank: 6,
        };
        assert_eq!(ChunkGeom::decode(&g.encode()).unwrap(), g);
        assert!(ChunkGeom::decode(&[1, 2, 3]).is_err());
    }
}

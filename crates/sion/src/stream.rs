//! Per-task chunk stream engine.
//!
//! A task's logical file is a byte stream laid across its chunks in blocks
//! 0, 1, 2, … of one physical file. [`TaskWriter`] and [`TaskReader`]
//! implement that stream — including the chunk-splitting `sion_fwrite` /
//! `sion_fread` semantics, optional transparent compression (the encoded
//! stream is what lives in the chunks), and rescue headers. Both the
//! parallel API (`par`) and the serial API (`serial`) are thin wrappers
//! over this module, so every access mode shares one engine.

use crate::error::{Result, SionError};
use crate::layout::FileLayout;
use crate::rescue::{RescueHeader, RESCUE_HEADER_LEN};
use std::sync::Arc;
use szip::{FrameDecoder, FrameEncoder};
use vfs::{IoSlice, VfsFile};

/// The chunk geometry of a single task within one physical file — the
/// minimal slice of a [`FileLayout`] a task needs to address its chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ChunkGeom {
    /// Offset of block 0 in the physical file.
    pub data_start: u64,
    /// Size of one block (sum of all local chunk capacities).
    pub block_size: u64,
    /// Offset of this task's chunk within a block.
    pub chunk_off: u64,
    /// This task's chunk capacity (including rescue overhead).
    pub cap: u64,
    /// Rescue-header bytes at the start of each chunk (0 or 32).
    pub rescue_overhead: u64,
    /// Global rank (recorded in rescue headers).
    pub global_rank: u64,
    /// Real file-system block size — lets readers size their data-sieving
    /// window to whole FS blocks (1 disables sieving).
    pub fsblksize: u64,
}

impl ChunkGeom {
    /// Extract the geometry of local task `ltask` from a file layout.
    pub fn from_layout(layout: &FileLayout, ltask: usize, global_rank: u64) -> Self {
        ChunkGeom {
            data_start: layout.data_start,
            block_size: layout.block_size,
            chunk_off: layout.chunk_off[ltask],
            cap: layout.cap[ltask],
            rescue_overhead: layout.rescue_overhead,
            global_rank,
            fsblksize: layout.fsblksize,
        }
    }

    /// File offset of this task's chunk in `block` (including header).
    pub fn chunk_start(&self, block: u64) -> u64 {
        self.data_start + block * self.block_size + self.chunk_off
    }

    /// File offset of user data in `block`.
    pub fn data_offset(&self, block: u64) -> u64 {
        self.chunk_start(block) + self.rescue_overhead
    }

    /// User-data capacity of one chunk.
    pub fn usable(&self) -> u64 {
        self.cap - self.rescue_overhead
    }

    /// Words in the `u64` wire format of [`encode`](Self::encode).
    pub const ENCODED_WORDS: usize = 7;

    /// Pack into a `u64` wire format for master→task scatter.
    pub fn encode(&self) -> Vec<u64> {
        vec![
            self.data_start,
            self.block_size,
            self.chunk_off,
            self.cap,
            self.rescue_overhead,
            self.global_rank,
            self.fsblksize,
        ]
    }

    /// Inverse of [`encode`](Self::encode).
    pub fn decode(words: &[u64]) -> Result<Self> {
        if words.len() < Self::ENCODED_WORDS {
            return Err(SionError::Format("truncated chunk geometry".into()));
        }
        Ok(ChunkGeom {
            data_start: words[0],
            block_size: words[1],
            chunk_off: words[2],
            cap: words[3],
            rescue_overhead: words[4],
            global_rank: words[5],
            fsblksize: words[6].max(1),
        })
    }
}

/// Per-handle I/O accounting: how many calls the user made vs how many
/// (and how large) the VFS actually saw. The ratio `user_calls /
/// vfs_calls` is the coalescing factor of the write-behind / read-ahead
/// buffers.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoCounters {
    /// User-level calls (`write`/`write_in_chunk`, or `read`).
    pub user_calls: u64,
    /// Calls issued to the underlying VFS handle (data + headers).
    pub vfs_calls: u64,
    /// Bytes moved through the VFS handle.
    pub vfs_bytes: u64,
    /// Write-behind buffer flushes that actually wrote data.
    pub flushes: u64,
    /// Rescue-header `used`-field patches written.
    pub rescue_patches: u64,
    /// Payload bytes memcpy'd through an engine-owned staging buffer
    /// (write-behind coalescing, read-ahead window fills, bounce-buffer
    /// scans). Zero-copy paths — vectored submits of caller slices, page
    /// leases — move bytes without touching this counter, so tests can
    /// assert the engine's copy discipline, not just its call counts.
    pub bytes_copied: u64,
    /// Transient heap buffers allocated on the hot path (staging/bounce
    /// buffers). A buffer that grows counts once per growth; steady-state
    /// reuse counts zero.
    pub allocs: u64,
    /// Submissions issued via `write_vectored_at` (each also counted once
    /// in `vfs_calls`, however many slices it carried).
    pub vectored_writes: u64,
}

/// Default write-behind buffer size (bytes); see `SionParams::write_buffer`.
pub const DEFAULT_WRITE_BUFFER: u64 = 128 * 1024;

/// Default read-ahead window (bytes) for readers.
pub const DEFAULT_READ_AHEAD: u64 = 128 * 1024;

/// Writer for one task's logical file.
pub(crate) struct TaskWriter {
    file: Arc<dyn VfsFile>,
    geom: ChunkGeom,
    /// Current block number.
    block: u64,
    /// User bytes written into the current chunk (including bytes still
    /// pending in the write-behind buffer).
    off: u64,
    /// Bytes used per block so far (index = block number).
    used: Vec<u64>,
    /// Whether each block's rescue header has been written.
    entered: Vec<bool>,
    /// Streaming compressor (compressed mode only).
    enc: Option<FrameEncoder>,
    /// Total user bytes accepted (pre-compression).
    user_bytes: u64,
    /// Write-behind buffer: pending stored bytes covering
    /// `[wbuf_start, off)` of the current chunk. Always flushed before the
    /// cursor leaves the chunk, so it never spans blocks.
    wbuf: Vec<u8>,
    /// Chunk offset of `wbuf[0]`.
    wbuf_start: u64,
    /// Buffer capacity; 0 = write-through (no coalescing).
    wbuf_cap: usize,
    /// The rescue header's `used` field is stale and needs a patch at the
    /// next flush point (deferred even in write-through mode).
    rescue_dirty: bool,
    /// Coalescing counters for `CloseStats`/tracing.
    counters: IoCounters,
}

impl TaskWriter {
    pub fn new(
        file: Arc<dyn VfsFile>,
        geom: ChunkGeom,
        compressed: bool,
        write_buffer: u64,
    ) -> Self {
        // A buffer larger than the chunk never helps: the buffer is flushed
        // at every chunk boundary anyway.
        let wbuf_cap = write_buffer.min(geom.usable()) as usize;
        TaskWriter {
            file,
            geom,
            block: 0,
            off: 0,
            used: vec![0],
            entered: vec![false],
            enc: compressed.then(FrameEncoder::new),
            user_bytes: 0,
            wbuf: Vec::with_capacity(wbuf_cap),
            wbuf_start: 0,
            wbuf_cap,
            rescue_dirty: false,
            counters: IoCounters {
                allocs: (wbuf_cap > 0) as u64,
                ..IoCounters::default()
            },
        }
    }

    /// Coalescing counters accumulated so far.
    pub fn io_counters(&self) -> IoCounters {
        self.counters
    }

    /// Bytes still free in the current chunk (stored-byte granularity).
    pub fn bytes_avail_in_chunk(&self) -> u64 {
        self.geom.usable() - self.off
    }

    /// Current block number (0-based).
    #[allow(dead_code)]
    pub fn current_block(&self) -> u64 {
        self.block
    }

    /// Total user bytes accepted so far.
    pub fn user_bytes(&self) -> u64 {
        self.user_bytes
    }

    /// The underlying physical-file handle.
    pub fn file(&self) -> &dyn VfsFile {
        self.file.as_ref()
    }

    /// Offset where metablock 2 goes when the file holds `nblocks` blocks
    /// (derived from this task's geometry; identical for every local task).
    pub fn mb2_offset(&self, nblocks: u64) -> u64 {
        self.geom.data_start + nblocks * self.geom.block_size
    }

    /// `sion_ensure_free_space`: guarantee that `nbytes` can be written
    /// contiguously into the current chunk, advancing to the next block's
    /// chunk if necessary. Fails if a single chunk cannot hold `nbytes`
    /// (use [`write`](Self::write) instead) or in compressed mode (where
    /// stored sizes are not knowable in advance).
    pub fn ensure_free_space(&mut self, nbytes: u64) -> Result<()> {
        if self.enc.is_some() {
            return Err(SionError::InvalidArg(
                "ensure_free_space is unavailable in compressed mode; use write()".into(),
            ));
        }
        if nbytes > self.geom.usable() {
            return Err(SionError::PieceTooLarge {
                requested: nbytes,
                capacity: self.geom.usable(),
            });
        }
        if nbytes > self.bytes_avail_in_chunk() {
            self.advance_chunk()?;
        }
        Ok(())
    }

    /// Plain `fwrite` into the current chunk: the data must fit in the
    /// remaining chunk space (call [`ensure_free_space`] first).
    pub fn write_in_chunk(&mut self, data: &[u8]) -> Result<()> {
        if self.enc.is_some() {
            return Err(SionError::InvalidArg(
                "write_in_chunk is unavailable in compressed mode; use write()".into(),
            ));
        }
        if data.len() as u64 > self.bytes_avail_in_chunk() {
            return Err(SionError::PieceTooLarge {
                requested: data.len() as u64,
                capacity: self.bytes_avail_in_chunk(),
            });
        }
        self.counters.user_calls += 1;
        self.put(data)?;
        self.user_bytes += data.len() as u64;
        Ok(())
    }

    /// `sion_fwrite`: write arbitrarily large data, transparently split
    /// across chunk boundaries (and compressed, in compressed mode).
    pub fn write(&mut self, data: &[u8]) -> Result<()> {
        self.counters.user_calls += 1;
        self.user_bytes += data.len() as u64;
        if let Some(enc) = self.enc.as_mut() {
            enc.write(data);
            let stored = enc.take_output();
            return self.put_split(&stored);
        }
        self.put_split(data)
    }

    /// Write `data` into chunks, advancing blocks as needed.
    fn put_split(&mut self, data: &[u8]) -> Result<()> {
        let mut rest = data;
        while !rest.is_empty() {
            let avail = self.bytes_avail_in_chunk();
            if avail == 0 {
                if self.geom.usable() == 0 {
                    return Err(SionError::PieceTooLarge {
                        requested: rest.len() as u64,
                        capacity: 0,
                    });
                }
                self.advance_chunk()?;
                continue;
            }
            let take = (avail as usize).min(rest.len());
            self.put(&rest[..take])?;
            rest = &rest[take..];
        }
        Ok(())
    }

    /// Low-level write of `data` at the current position (must fit). With
    /// a write-behind buffer, records smaller than the buffer append to it
    /// (the VFS sees one write per filled buffer / flush point instead of
    /// one per call), while records that would fill the buffer anyway skip
    /// it entirely: the caller's slice is submitted directly, together
    /// with any pending buffered bytes, as one vectored write
    /// ([`put_vectored`](Self::put_vectored)) — no memcpy of the payload.
    /// In write-through mode (`wbuf_cap == 0`) data goes straight to the
    /// VFS, but the rescue patch is still deferred to flush points.
    fn put(&mut self, data: &[u8]) -> Result<()> {
        debug_assert!(data.len() as u64 <= self.bytes_avail_in_chunk());
        if data.is_empty() {
            return Ok(());
        }
        if self.wbuf_cap > 0 && data.len() >= self.wbuf_cap {
            return self.put_vectored(data);
        }
        self.enter_chunk()?;
        if self.wbuf_cap == 0 {
            let at = self.geom.data_offset(self.block) + self.off;
            self.vfs_write_data(data, at)?;
            self.off += data.len() as u64;
        } else {
            let mut rest = data;
            while !rest.is_empty() {
                if self.wbuf.is_empty() {
                    self.wbuf_start = self.off;
                }
                let room = self.wbuf_cap - self.wbuf.len();
                let take = room.min(rest.len());
                self.wbuf.extend_from_slice(&rest[..take]);
                self.counters.bytes_copied += take as u64;
                self.off += take as u64;
                rest = &rest[take..];
                if self.wbuf.len() == self.wbuf_cap {
                    self.flush_pending()?;
                }
            }
        }
        // High-water mark: a seek backwards must not shrink the chunk.
        let b = self.block as usize;
        self.used[b] = self.used[b].max(self.off);
        self.rescue_dirty = true;
        Ok(())
    }

    /// Large-record zero-copy flush: submit (rescue header on first chunk
    /// touch) + (pending write-behind bytes) + (the caller's payload) as
    /// ONE vectored VFS write. The payload never passes through the
    /// write-behind buffer — the slices are handed to the backend as an
    /// iovec and land contiguously at the current position.
    ///
    /// The same crash-consistency invariant as [`flush_pending`] holds:
    /// the header slice (when present) carries `used = 0`, so nothing in
    /// this submission claims bytes beyond what the write itself persists,
    /// and the `used`-field patch still only happens at a *later* flush
    /// point, strictly after this data write succeeded. On error the
    /// pending buffer is left intact (nothing was consumed), so a retry
    /// remains possible.
    fn put_vectored(&mut self, data: &[u8]) -> Result<()> {
        let b = self.block as usize;
        let run_start = if self.wbuf.is_empty() { self.off } else { self.wbuf_start };
        // First touch of the chunk with the data run starting right after
        // the header slot: the header rides along as the leading slice.
        // (Pending bytes imply the chunk was already entered, so the
        // header-leading case only arises with an empty buffer at 0.)
        let lead_header =
            !self.entered[b] && self.geom.rescue_overhead > 0 && run_start == 0;
        if !lead_header {
            self.enter_chunk()?;
        }
        let header = RescueHeader {
            global_rank: self.geom.global_rank,
            block: self.block,
            used: 0,
        }
        .encode();
        let mut slices: [IoSlice<'_>; 3] = [IoSlice::new(&[]); 3];
        let mut n = 0;
        let at = if lead_header {
            slices[n] = IoSlice::new(&header);
            n += 1;
            self.geom.chunk_start(self.block)
        } else {
            self.geom.data_offset(self.block) + run_start
        };
        if !self.wbuf.is_empty() {
            slices[n] = IoSlice::new(&self.wbuf);
            n += 1;
        }
        slices[n] = IoSlice::new(data);
        n += 1;
        let total: u64 = slices[..n].iter().map(|s| s.len() as u64).sum();
        self.file.write_vectored_at(&slices[..n], at)?;
        self.counters.vfs_calls += 1;
        self.counters.vectored_writes += 1;
        self.counters.vfs_bytes += total;
        self.entered[b] = true;
        if !self.wbuf.is_empty() {
            self.counters.flushes += 1;
            self.wbuf.clear();
        }
        self.off += data.len() as u64;
        self.wbuf_start = self.off;
        self.used[b] = self.used[b].max(self.off);
        self.rescue_dirty = true;
        Ok(())
    }

    /// Write pending buffered data (one VFS call) and bring the rescue
    /// header up to date. Called whenever the cursor leaves the chunk
    /// (chunk advance, seek), on explicit [`flush`](Self::flush), and at
    /// [`finish`](Self::finish) — the points where data becomes durable in
    /// the VFS.
    ///
    /// Crash-consistency invariant: the data write strictly precedes the
    /// rescue-header patch, and on a data-write error the patch is *not*
    /// attempted (the buffer is restored instead, keeping retry possible).
    /// A rescue header therefore never claims bytes that are not on disk —
    /// after a crash anywhere in this sequence, `used` in the header
    /// understates at worst, and `rescue::repair` recovers a prefix of
    /// what the task wrote. The crash_consistency integration tests pin
    /// this ordering via the FaultFs op log.
    pub fn flush_pending(&mut self) -> Result<()> {
        if !self.wbuf.is_empty() {
            let at = self.geom.data_offset(self.block) + self.wbuf_start;
            let buf = std::mem::take(&mut self.wbuf);
            let res = self.vfs_write_data(&buf, at);
            self.wbuf = buf;
            res?;
            self.wbuf.clear();
            self.wbuf_start = self.off;
            self.counters.flushes += 1;
        }
        if self.rescue_dirty {
            // `used` already covers everything just flushed: the pending
            // buffer never extends past `off`, whose high-water is `used`.
            self.patch_rescue()?;
            self.rescue_dirty = false;
        }
        Ok(())
    }

    /// Make all accepted data visible to the VFS and patch the rescue
    /// header. In compressed mode this also ends the current frame.
    pub fn flush(&mut self) -> Result<()> {
        if let Some(enc) = self.enc.as_mut() {
            enc.flush();
            let stored = enc.take_output();
            self.put_split(&stored)?;
        }
        self.flush_pending()
    }

    fn vfs_write_data(&mut self, data: &[u8], at: u64) -> Result<()> {
        self.file.write_all_at(data, at)?;
        self.counters.vfs_calls += 1;
        self.counters.vfs_bytes += data.len() as u64;
        Ok(())
    }

    /// Write the rescue header on first touch of a chunk.
    fn enter_chunk(&mut self) -> Result<()> {
        let b = self.block as usize;
        if self.entered[b] || self.geom.rescue_overhead == 0 {
            self.entered[b] = true;
            return Ok(());
        }
        let hdr = RescueHeader {
            global_rank: self.geom.global_rank,
            block: self.block,
            used: 0,
        };
        self.file.write_all_at(&hdr.encode(), self.geom.chunk_start(self.block))?;
        self.counters.vfs_calls += 1;
        self.counters.vfs_bytes += RESCUE_HEADER_LEN;
        self.entered[b] = true;
        Ok(())
    }

    /// Bring the rescue header's byte count current (at flush points only;
    /// one patch per flush instead of one per put).
    fn patch_rescue(&mut self) -> Result<()> {
        if self.geom.rescue_overhead == 0 {
            return Ok(());
        }
        debug_assert_eq!(self.geom.rescue_overhead, RESCUE_HEADER_LEN);
        self.file.write_all_at(
            &self.used[self.block as usize].to_le_bytes(),
            self.geom.chunk_start(self.block) + RescueHeader::USED_FIELD_OFFSET,
        )?;
        self.counters.vfs_calls += 1;
        self.counters.vfs_bytes += 8;
        self.counters.rescue_patches += 1;
        Ok(())
    }

    /// Move to this task's chunk in the next block.
    fn advance_chunk(&mut self) -> Result<()> {
        self.seek_stored(self.block + 1, 0)
    }

    /// Position the write cursor at (`block`, `pos`) — the serial API's
    /// `sion_seek`. Unavailable in compressed mode (stored positions are
    /// not meaningful to callers there).
    pub fn seek(&mut self, block: u64, pos: u64) -> Result<()> {
        if self.enc.is_some() {
            return Err(SionError::InvalidArg(
                "seek is unavailable in compressed mode".into(),
            ));
        }
        self.seek_stored(block, pos)
    }

    /// Seek in stored-byte coordinates (internal: also used for chunk
    /// advances in compressed mode). Flushes pending data first — the
    /// write-behind buffer never spans a reposition.
    fn seek_stored(&mut self, block: u64, pos: u64) -> Result<()> {
        if pos > self.geom.usable() {
            return Err(SionError::InvalidArg(format!(
                "seek position {pos} beyond chunk capacity {}",
                self.geom.usable()
            )));
        }
        self.flush_pending()?;
        while (self.used.len() as u64) <= block {
            self.used.push(0);
            self.entered.push(false);
        }
        self.block = block;
        self.off = pos;
        self.wbuf_start = pos;
        Ok(())
    }

    /// Flush (buffer and, in compressed mode, encoder) and return the
    /// per-block usage vector.
    ///
    /// Trailing blocks with zero stored bytes are trimmed: a chunk merely
    /// *entered* (e.g. via `ensure_free_space`, rescue header written,
    /// nothing stored) does not extend the block count. This is the
    /// canonical convention shared with [`rescue::repair`], which trims
    /// trailing all-zero rows the same way — so metadata rebuilt after a
    /// crash agrees exactly with what a clean close writes.
    pub fn finish(&mut self) -> Result<Vec<u64>> {
        if let Some(mut enc) = self.enc.take() {
            enc.flush();
            let stored = enc.take_output();
            self.put_split(&stored)?;
        }
        self.flush_pending()?;
        self.file.sync()?;
        let mut used = self.used.clone();
        while used.last() == Some(&0) {
            used.pop();
        }
        Ok(used)
    }
}

/// Reader for one task's logical file.
pub(crate) struct TaskReader {
    file: Arc<dyn VfsFile>,
    geom: ChunkGeom,
    /// Stored bytes per block (from metablock 2).
    used: Vec<u64>,
    /// Current block index into `used`.
    block: usize,
    /// Stored bytes consumed in the current chunk.
    off: u64,
    /// Streaming decompressor (compressed mode only).
    dec: Option<FrameDecoder>,
    /// Decoded bytes not yet handed to the caller (compressed mode).
    decoded: Vec<u8>,
    decoded_pos: usize,
    /// Read-ahead cache: stored file bytes starting at *absolute* file
    /// offset `win_start`, backed either by an owned window (`rbuf`,
    /// filled by a copying VFS read) or — when the backend can lease its
    /// backing pages — by a zero-copy [`vfs::ByteLease`]. Addressing the
    /// window by file offset (not chunk offset) lets one fetch serve
    /// noncontiguous chunk segments that happen to be file-adjacent.
    rbuf: Vec<u8>,
    rlease: Option<vfs::ByteLease>,
    win_start: u64,
    /// Read-ahead window; 0 disables caching (one VFS read per request
    /// segment, the pre-buffering behaviour).
    ra_cap: usize,
    /// Data-sieving unit (Thakur/Gropp/Lusk): when > 0, cache misses
    /// fetch the whole FS block containing the position, so all of this
    /// task's chunk segments inside that block — across *layout* blocks —
    /// are served by one VFS read instead of one per segment. Enabled when
    /// whole FS blocks fit in the read-ahead budget.
    sieve: u64,
    /// File length, fetched lazily for clipping sieve windows at EOF.
    flen: Option<u64>,
    /// Coalescing counters (user reads vs VFS reads).
    counters: IoCounters,
}

impl TaskReader {
    pub fn new(
        file: Arc<dyn VfsFile>,
        geom: ChunkGeom,
        used: Vec<u64>,
        compressed: bool,
        read_ahead: u64,
    ) -> Self {
        let ra_cap = read_ahead.min(geom.usable()) as usize;
        // Sieve when an FS block fits the read-ahead budget and sieving
        // can actually coalesce anything (several layout blocks per FS
        // block, i.e. small unaligned chunks).
        let sieve = if geom.fsblksize > 1
            && geom.fsblksize <= read_ahead
            && geom.block_size < geom.fsblksize
        {
            geom.fsblksize
        } else {
            0
        };
        let mut r = TaskReader {
            file,
            geom,
            used,
            block: 0,
            off: 0,
            dec: compressed.then(FrameDecoder::new),
            decoded: Vec::new(),
            decoded_pos: 0,
            rbuf: Vec::new(),
            rlease: None,
            win_start: 0,
            ra_cap,
            sieve,
            flen: None,
            counters: IoCounters::default(),
        };
        r.skip_empty_blocks();
        r
    }

    /// Coalescing counters accumulated so far.
    pub fn io_counters(&self) -> IoCounters {
        self.counters
    }

    fn skip_empty_blocks(&mut self) {
        while self.block < self.used.len() && self.off >= self.used[self.block] {
            self.block += 1;
            self.off = 0;
        }
    }

    /// Stored bytes still unread in the current chunk
    /// (`sion_bytes_avail_in_chunk`). In compressed mode this counts
    /// *stored* (compressed) bytes.
    pub fn bytes_avail_in_chunk(&self) -> u64 {
        if self.block >= self.used.len() {
            0
        } else {
            self.used[self.block] - self.off
        }
    }

    /// Whether the logical stream is exhausted (`sion_feof`).
    pub fn feof(&mut self) -> bool {
        if self.dec.is_some() && self.decoded_pos < self.decoded.len() {
            return false;
        }
        self.skip_empty_blocks();
        self.block >= self.used.len()
    }

    /// Current (block, offset) position in stored bytes.
    #[allow(dead_code)]
    pub fn position(&self) -> (u64, u64) {
        (self.block as u64, self.off)
    }

    /// `sion_fread`: read up to `buf.len()` bytes of the logical stream
    /// (decompressed in compressed mode), crossing chunk boundaries.
    /// Returns the number of bytes read; 0 signals end of stream.
    pub fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.counters.user_calls += 1;
        if self.dec.is_some() {
            return self.read_decoded(buf);
        }
        let mut done = 0;
        while done < buf.len() {
            self.skip_empty_blocks();
            if self.block >= self.used.len() {
                break;
            }
            let avail = self.used[self.block] - self.off;
            let take = (avail as usize).min(buf.len() - done);
            self.read_stored(done, take, buf)?;
            done += take;
        }
        Ok(done)
    }

    /// Copy `take` stored bytes of the current chunk into
    /// `buf[done..done+take]`, through the read-ahead cache: a cache miss
    /// fetches a whole window in one VFS read — up to `ra_cap`, capped by
    /// the chunk's remaining stored bytes, or (with sieving) the whole FS
    /// block containing the position, which also serves this task's
    /// segments in *later layout blocks* that share the FS block. Requests
    /// at or above the window size bypass the cache straight into the
    /// caller's buffer.
    fn read_stored(&mut self, done: usize, take: usize, buf: &mut [u8]) -> Result<()> {
        if self.sieve == 0 && (self.ra_cap == 0 || take >= self.ra_cap) {
            let at = self.geom.data_offset(self.block as u64) + self.off;
            self.file.read_exact_at(&mut buf[done..done + take], at)?;
            self.counters.vfs_calls += 1;
            self.counters.vfs_bytes += take as u64;
            self.off += take as u64;
            return Ok(());
        }
        let mut done = done;
        let mut take = take;
        while take > 0 {
            let at = self.geom.data_offset(self.block as u64) + self.off;
            if let Some((start, len)) = self.cached_range(at) {
                let pos = (at - start) as usize;
                let n = take.min(len - pos);
                let src = match &self.rlease {
                    Some(lease) => &lease[pos..pos + n],
                    None => &self.rbuf[pos..pos + n],
                };
                buf[done..done + n].copy_from_slice(src);
                self.counters.bytes_copied += n as u64;
                self.off += n as u64;
                done += n;
                take -= n;
                continue;
            }
            // Miss: fetch a window. A page lease covering the whole window
            // serves it with zero copies into the engine; otherwise an
            // owned window is filled by a copying read.
            let (win_lo, window) = if self.sieve > 0 {
                // Data sieving: the whole FS block around the position,
                // clipped at end of file.
                let lo = at - at % self.sieve;
                let flen = match self.flen {
                    Some(l) => l,
                    None => {
                        let l = self.file.len()?;
                        self.flen = Some(l);
                        l
                    }
                };
                (lo, (flen.min(lo + self.sieve) - lo) as usize)
            } else {
                let avail = self.used[self.block] - self.off;
                (at, (avail as usize).min(self.ra_cap))
            };
            match self.file.read_lease(win_lo, window) {
                Some(lease) if lease.len() == window => {
                    self.rlease = Some(lease);
                }
                _ => {
                    self.rlease = None;
                    if window > self.rbuf.capacity() {
                        self.counters.allocs += 1;
                    }
                    self.rbuf.resize(window, 0);
                    self.file.read_exact_at(&mut self.rbuf, win_lo)?;
                    self.counters.bytes_copied += window as u64;
                }
            }
            self.counters.vfs_calls += 1;
            self.counters.vfs_bytes += window as u64;
            self.win_start = win_lo;
        }
        Ok(())
    }

    /// The cache window covering absolute file offset `at`, if any, as
    /// `(start, len)` in absolute file offsets.
    fn cached_range(&self, at: u64) -> Option<(u64, usize)> {
        let len = match &self.rlease {
            Some(lease) => lease.len(),
            None => self.rbuf.len(),
        };
        if len > 0 && at >= self.win_start && at < self.win_start + len as u64 {
            Some((self.win_start, len))
        } else {
            None
        }
    }

    /// Borrow-based streaming pass over the rest of the stored stream:
    /// each contiguous run is handed to `sink` straight from a page lease
    /// when the backend supports it (zero bytes copied — `sionverify`'s
    /// inspection pass runs this over `MemFs` without a single memcpy), or
    /// from a bounce buffer on lease-less backends. Returns the stored
    /// bytes scanned. Unavailable in compressed mode, where stored bytes
    /// are not the logical stream.
    pub fn scan_remaining(&mut self, sink: &mut dyn FnMut(&[u8])) -> Result<u64> {
        if self.dec.is_some() {
            return Err(SionError::InvalidArg(
                "scan_remaining is unavailable in compressed mode; use read()".into(),
            ));
        }
        self.counters.user_calls += 1;
        // A scan moves the position without going through the window cache;
        // drop any cached window so later reads re-fetch at the new spot.
        self.rlease = None;
        self.rbuf.clear();
        let mut scratch: Vec<u8> = Vec::new();
        let mut total = 0u64;
        loop {
            self.skip_empty_blocks();
            if self.block >= self.used.len() {
                return Ok(total);
            }
            let avail = self.used[self.block] - self.off;
            let at = self.geom.data_offset(self.block as u64) + self.off;
            let n = match self.file.read_lease(at, avail as usize) {
                Some(lease) => {
                    sink(&lease);
                    lease.len() as u64
                }
                None => {
                    // Bounce buffer, one bounded piece at a time, reused
                    // across iterations (one alloc per scan, counted).
                    let take = (avail as usize).min(64 * 1024);
                    if scratch.is_empty() {
                        self.counters.allocs += 1;
                    }
                    scratch.resize(take, 0);
                    self.file.read_exact_at(&mut scratch[..take], at)?;
                    self.counters.bytes_copied += take as u64;
                    sink(&scratch[..take]);
                    take as u64
                }
            };
            self.counters.vfs_calls += 1;
            self.counters.vfs_bytes += n;
            self.off += n;
            total += n;
        }
    }

    /// Read exactly `buf.len()` bytes or fail.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let n = self.read(buf)?;
        if n != buf.len() {
            return Err(SionError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("logical stream ended after {n} of {} bytes", buf.len()),
            )));
        }
        Ok(())
    }

    fn read_decoded(&mut self, buf: &mut [u8]) -> Result<usize> {
        let mut done = 0;
        loop {
            // Serve from the decoded buffer first.
            let have = self.decoded.len() - self.decoded_pos;
            if have > 0 {
                let take = have.min(buf.len() - done);
                buf[done..done + take]
                    .copy_from_slice(&self.decoded[self.decoded_pos..self.decoded_pos + take]);
                self.decoded_pos += take;
                done += take;
                if self.decoded_pos == self.decoded.len() {
                    self.decoded.clear();
                    self.decoded_pos = 0;
                }
            }
            if done == buf.len() {
                return Ok(done);
            }
            // Pull more stored bytes (one chunk's remainder at a time).
            self.skip_empty_blocks();
            if self.block >= self.used.len() {
                return Ok(done);
            }
            // One VFS read per chunk remainder — the compressed path has
            // always been fully coalesced; count it like the plain path.
            let avail = self.used[self.block] - self.off;
            let mut raw = vec![0u8; avail as usize];
            let at = self.geom.data_offset(self.block as u64) + self.off;
            self.file.read_exact_at(&mut raw, at)?;
            self.counters.vfs_calls += 1;
            self.counters.vfs_bytes += avail;
            self.off += avail;
            let dec = self.dec.as_mut().expect("compressed mode");
            dec.feed(&raw);
            dec.drain_into(&mut self.decoded)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Alignment, FileLayout};
    use vfs::{MemFs, Vfs};

    fn setup(reqs: &[u64], align: Alignment, rescue: bool) -> (MemFs, FileLayout) {
        let fs = MemFs::with_block_size(256);
        let layout = FileLayout::compute(reqs, 256, align, rescue).unwrap();
        (fs, layout)
    }

    fn writer(
        fs: &MemFs,
        layout: &FileLayout,
        ltask: usize,
        compressed: bool,
    ) -> TaskWriter {
        writer_buffered(fs, layout, ltask, compressed, DEFAULT_WRITE_BUFFER)
    }

    fn writer_buffered(
        fs: &MemFs,
        layout: &FileLayout,
        ltask: usize,
        compressed: bool,
        write_buffer: u64,
    ) -> TaskWriter {
        let file = if fs.exists("f") { fs.open_rw("f").unwrap() } else { fs.create("f").unwrap() };
        TaskWriter::new(
            file,
            ChunkGeom::from_layout(layout, ltask, ltask as u64),
            compressed,
            write_buffer,
        )
    }

    fn reader(
        file: Arc<dyn VfsFile>,
        geom: ChunkGeom,
        used: Vec<u64>,
        compressed: bool,
    ) -> TaskReader {
        TaskReader::new(file, geom, used, compressed, DEFAULT_READ_AHEAD)
    }

    #[test]
    fn single_chunk_write_read() {
        let (fs, layout) = setup(&[100], Alignment::None, false);
        let mut w = writer(&fs, &layout, 0, false);
        w.ensure_free_space(50).unwrap();
        w.write_in_chunk(b"hello chunk").unwrap();
        let used = w.finish().unwrap();
        assert_eq!(used, vec![11]);

        let file = fs.open("f").unwrap();
        let mut r = reader(file, ChunkGeom::from_layout(&layout, 0, 0), used, false);
        assert!(!r.feof());
        assert_eq!(r.bytes_avail_in_chunk(), 11);
        let mut buf = vec![0u8; 11];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello chunk");
        assert!(r.feof());
        assert_eq!(r.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn fwrite_splits_across_blocks() {
        let (fs, layout) = setup(&[256], Alignment::FsBlock, false);
        let mut w = writer(&fs, &layout, 0, false);
        let data: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        w.write(&data).unwrap();
        let used = w.finish().unwrap();
        assert_eq!(used, vec![256, 256, 256, 232]);
        assert_eq!(w.current_block(), 3);

        let file = fs.open("f").unwrap();
        let mut r = reader(file, ChunkGeom::from_layout(&layout, 0, 0), used, false);
        let mut back = vec![0u8; 1000];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
        assert!(r.feof());
    }

    #[test]
    fn ensure_free_space_advances_and_leaves_gap() {
        let (fs, layout) = setup(&[100], Alignment::None, false);
        let mut w = writer(&fs, &layout, 0, false);
        w.ensure_free_space(60).unwrap();
        w.write_in_chunk(&[1u8; 60]).unwrap();
        // 40 left; asking for 50 must jump to block 1.
        w.ensure_free_space(50).unwrap();
        assert_eq!(w.current_block(), 1);
        w.write_in_chunk(&[2u8; 50]).unwrap();
        let used = w.finish().unwrap();
        assert_eq!(used, vec![60, 50]);

        let file = fs.open("f").unwrap();
        let mut r = reader(file, ChunkGeom::from_layout(&layout, 0, 0), used, false);
        let mut all = vec![0u8; 110];
        r.read_exact(&mut all).unwrap();
        assert_eq!(&all[..60], &[1u8; 60][..]);
        assert_eq!(&all[60..], &[2u8; 50][..]);
    }

    #[test]
    fn piece_larger_than_chunk_rejected_by_ensure() {
        let (fs, layout) = setup(&[100], Alignment::None, false);
        let mut w = writer(&fs, &layout, 0, false);
        assert!(matches!(
            w.ensure_free_space(101),
            Err(SionError::PieceTooLarge { requested: 101, capacity: 100 })
        ));
        // But the splitting write handles it fine.
        w.write(&[9u8; 350]).unwrap();
        assert_eq!(w.finish().unwrap(), vec![100, 100, 100, 50]);
    }

    #[test]
    fn interleaved_tasks_do_not_collide() {
        let (fs, layout) = setup(&[64, 64, 64], Alignment::FsBlock, false);
        let mut ws: Vec<TaskWriter> = (0..3).map(|t| writer(&fs, &layout, t, false)).collect();
        for round in 0..4u8 {
            for (t, w) in ws.iter_mut().enumerate() {
                w.write(&[t as u8 * 16 + round; 100]).unwrap();
            }
        }
        let useds: Vec<Vec<u64>> = ws.iter_mut().map(|w| w.finish().unwrap()).collect();
        for (t, used) in useds.iter().enumerate() {
            let file = fs.open("f").unwrap();
            let mut r = reader(
                file,
                ChunkGeom::from_layout(&layout, t, t as u64),
                used.clone(),
                false,
            );
            let mut back = vec![0u8; 400];
            r.read_exact(&mut back).unwrap();
            for round in 0..4 {
                assert!(
                    back[round * 100..(round + 1) * 100]
                        .iter()
                        .all(|&b| b == t as u8 * 16 + round as u8),
                    "task {t} round {round} corrupted"
                );
            }
            assert!(r.feof());
        }
    }

    #[test]
    fn compressed_stream_roundtrip() {
        let (fs, layout) = setup(&[256], Alignment::FsBlock, false);
        let mut w = writer(&fs, &layout, 0, true);
        let data = b"compressible compressible compressible ".repeat(100);
        w.write(&data).unwrap();
        let used = w.finish().unwrap();
        let stored: u64 = used.iter().sum();
        assert!(stored < data.len() as u64 / 2, "stored {stored} of {}", data.len());

        let file = fs.open("f").unwrap();
        let mut r = reader(file, ChunkGeom::from_layout(&layout, 0, 0), used, true);
        assert!(!r.feof());
        let mut back = vec![0u8; data.len()];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
        assert!(r.feof());
    }

    #[test]
    fn compressed_mode_rejects_raw_calls() {
        let (fs, layout) = setup(&[256], Alignment::FsBlock, false);
        let mut w = writer(&fs, &layout, 0, true);
        assert!(w.ensure_free_space(10).is_err());
        assert!(w.write_in_chunk(b"x").is_err());
    }

    #[test]
    fn rescue_headers_written_and_patched() {
        let (fs, layout) = setup(&[200], Alignment::FsBlock, true);
        let mut w = writer(&fs, &layout, 0, false);
        w.write(&vec![7u8; 300]).unwrap(); // spans two chunks
        let used = w.finish().unwrap();
        assert_eq!(used.len(), 2);

        let file = fs.open("f").unwrap();
        for (b, &u) in used.iter().enumerate() {
            let mut hdr = [0u8; RESCUE_HEADER_LEN as usize];
            file.read_exact_at(&mut hdr, layout.chunk_start(0, b as u64)).unwrap();
            let h = RescueHeader::decode(&hdr).unwrap();
            assert_eq!(h.global_rank, 0);
            assert_eq!(h.block, b as u64);
            assert_eq!(h.used, u);
        }
        // Data reads back despite the headers.
        let mut r = reader(
            fs.open("f").unwrap(),
            ChunkGeom::from_layout(&layout, 0, 0),
            used,
            false,
        );
        let mut back = vec![0u8; 300];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, vec![7u8; 300]);
    }

    #[test]
    fn reader_skips_zero_use_blocks() {
        let (fs, layout) = setup(&[100], Alignment::None, false);
        let mut w = writer(&fs, &layout, 0, false);
        w.ensure_free_space(100).unwrap();
        w.write_in_chunk(&[1u8; 100]).unwrap();
        // Jump straight to block 2, leaving block 1 untouched.
        w.seek(2, 0).unwrap();
        w.write_in_chunk(&[2u8; 10]).unwrap();
        let used = w.finish().unwrap();
        assert_eq!(used, vec![100, 0, 10]);

        let mut r = reader(
            fs.open("f").unwrap(),
            ChunkGeom::from_layout(&layout, 0, 0),
            used,
            false,
        );
        let mut back = vec![0u8; 110];
        r.read_exact(&mut back).unwrap();
        assert_eq!(&back[..100], &[1u8; 100][..]);
        assert_eq!(&back[100..], &[2u8; 10][..]);
        assert!(r.feof());
    }

    #[test]
    fn empty_stream_is_immediately_eof() {
        let (fs, layout) = setup(&[100], Alignment::None, false);
        let mut w = writer(&fs, &layout, 0, false);
        let used = w.finish().unwrap();
        // Never-written trailing blocks are trimmed away entirely.
        assert_eq!(used, Vec::<u64>::new());
        let mut r = reader(
            fs.open("f").unwrap(),
            ChunkGeom::from_layout(&layout, 0, 0),
            used,
            false,
        );
        assert!(r.feof());
    }

    #[test]
    fn small_records_coalesce_into_few_vfs_writes() {
        let (fs, layout) = setup(&[4096], Alignment::None, false);
        let mut w = writer_buffered(&fs, &layout, 0, false, 4096);
        for i in 0..64u8 {
            w.write(&[i; 64]).unwrap();
        }
        let used = w.finish().unwrap();
        let c = w.io_counters();
        assert_eq!(c.user_calls, 64);
        // 64 × 64 B = 4096 B = exactly one buffer fill → one VFS write.
        assert_eq!(c.vfs_calls, 1, "{c:?}");
        assert_eq!(c.vfs_bytes, 4096);
        assert_eq!(c.flushes, 1);

        let mut r = reader(
            fs.open("f").unwrap(),
            ChunkGeom::from_layout(&layout, 0, 0),
            used,
            false,
        );
        let mut back = vec![0u8; 4096];
        r.read_exact(&mut back).unwrap();
        for i in 0..64usize {
            assert!(back[i * 64..(i + 1) * 64].iter().all(|&b| b == i as u8));
        }
        // 64 user read segments served by one read-ahead fetch.
        let rc = r.io_counters();
        assert_eq!(rc.vfs_calls, 1, "{rc:?}");
    }

    #[test]
    fn buffered_and_unbuffered_files_are_identical() {
        for rescue in [false, true] {
            let mk = |buffer: u64| {
                let fs = MemFs::with_block_size(256);
                let layout = FileLayout::compute(&[200], 256, Alignment::None, rescue).unwrap();
                let mut w = writer_buffered(&fs, &layout, 0, false, buffer);
                for i in 0..40u16 {
                    w.write(&[i as u8; 37]).unwrap();
                }
                let used = w.finish().unwrap();
                let f = fs.open("f").unwrap();
                let mut all = vec![0u8; f.len().unwrap() as usize];
                f.read_exact_at(&mut all, 0).unwrap();
                (used, all)
            };
            let (used_buf, bytes_buf) = mk(1024);
            let (used_raw, bytes_raw) = mk(0);
            assert_eq!(used_buf, used_raw, "rescue={rescue}");
            assert_eq!(bytes_buf, bytes_raw, "rescue={rescue}");
        }
    }

    #[test]
    fn write_through_defers_rescue_patch_to_flush_points() {
        let (fs, layout) = setup(&[200], Alignment::FsBlock, true);
        let mut w = writer_buffered(&fs, &layout, 0, false, 0);
        w.write(&[3u8; 50]).unwrap();
        w.write(&[4u8; 50]).unwrap();
        // Header exists (written on chunk entry) but `used` is still 0:
        // patches happen at flush points, not per put.
        let file = fs.open("f").unwrap();
        let mut hdr = [0u8; RESCUE_HEADER_LEN as usize];
        file.read_exact_at(&mut hdr, layout.chunk_start(0, 0)).unwrap();
        assert_eq!(RescueHeader::decode(&hdr).unwrap().used, 0);

        w.flush().unwrap();
        file.read_exact_at(&mut hdr, layout.chunk_start(0, 0)).unwrap();
        assert_eq!(RescueHeader::decode(&hdr).unwrap().used, 100);
        assert_eq!(w.io_counters().rescue_patches, 1);

        // Nothing new was written since the flush: finish patches nothing.
        w.finish().unwrap();
        assert_eq!(w.io_counters().rescue_patches, 1);
        w.write(&[5u8; 10]).unwrap();
        w.finish().unwrap();
        assert_eq!(w.io_counters().rescue_patches, 2);
    }

    #[test]
    fn explicit_flush_makes_buffered_data_durable() {
        let (fs, layout) = setup(&[100], Alignment::None, false);
        let mut w = writer_buffered(&fs, &layout, 0, false, 64);
        w.write(b"pending").unwrap();
        // Not yet flushed: nothing at the data offset.
        let file = fs.open("f").unwrap();
        let mut probe = [0u8; 7];
        let at = layout.data_start + layout.rescue_overhead;
        let _ = file.read_at(&mut probe, at);
        assert_ne!(&probe, b"pending", "write must still be buffered");
        w.flush().unwrap();
        file.read_exact_at(&mut probe, at).unwrap();
        assert_eq!(&probe, b"pending");
        assert_eq!(w.io_counters().flushes, 1);
    }

    #[test]
    fn buffered_writer_handles_seeks_and_rewrites() {
        let (fs, layout) = setup(&[100], Alignment::None, false);
        let mut w = writer_buffered(&fs, &layout, 0, false, 32);
        w.write(&[1u8; 60]).unwrap();
        w.seek(0, 10).unwrap();
        w.write(&[2u8; 20]).unwrap();
        w.seek(1, 0).unwrap();
        w.write(&[3u8; 5]).unwrap();
        let used = w.finish().unwrap();
        assert_eq!(used, vec![60, 5]);

        let mut r = reader(
            fs.open("f").unwrap(),
            ChunkGeom::from_layout(&layout, 0, 0),
            used,
            false,
        );
        let mut back = vec![0u8; 65];
        r.read_exact(&mut back).unwrap();
        assert_eq!(&back[..10], &[1u8; 10][..]);
        assert_eq!(&back[10..30], &[2u8; 20][..]);
        assert_eq!(&back[30..60], &[1u8; 30][..]);
        assert_eq!(&back[60..], &[3u8; 5][..]);
    }

    #[test]
    fn large_records_bypass_buffer_as_one_vectored_write() {
        let (fs, layout) = setup(&[200], Alignment::None, false);
        let mut w = writer_buffered(&fs, &layout, 0, false, 32);
        // Small record stages into the buffer; the large record then rides
        // out in ONE vectored submission together with the pending bytes,
        // never touching the write-behind buffer itself.
        w.write(&[1u8; 10]).unwrap();
        w.write(&[2u8; 100]).unwrap();
        let c = w.io_counters();
        assert_eq!(c.vectored_writes, 1, "{c:?}");
        assert_eq!(c.vfs_calls, 1, "{c:?}");
        assert_eq!(c.vfs_bytes, 110);
        assert_eq!(c.bytes_copied, 10, "only the staged small record was copied");
        let used = w.finish().unwrap();
        assert_eq!(used, vec![110]);
        let mut r = reader(
            fs.open("f").unwrap(),
            ChunkGeom::from_layout(&layout, 0, 0),
            used,
            false,
        );
        let mut back = vec![0u8; 110];
        r.read_exact(&mut back).unwrap();
        assert_eq!(&back[..10], &[1u8; 10][..]);
        assert_eq!(&back[10..], &[2u8; 100][..]);
    }

    #[test]
    fn rescue_header_rides_along_in_the_vectored_submit() {
        let (fs, layout) = setup(&[200], Alignment::FsBlock, true);
        let usable = layout.cap[0] - layout.rescue_overhead;
        let mut w = writer_buffered(&fs, &layout, 0, false, 32);
        // First touch of the chunk with a large record: header slice +
        // payload slice land in one vectored write.
        w.write(&vec![9u8; usable as usize]).unwrap();
        let c = w.io_counters();
        assert_eq!(c.vectored_writes, 1, "{c:?}");
        assert_eq!(c.vfs_calls, 1, "header was not a separate write: {c:?}");
        assert_eq!(c.vfs_bytes, RESCUE_HEADER_LEN + usable);
        let used = w.finish().unwrap();
        assert_eq!(used, vec![usable]);
        let file = fs.open("f").unwrap();
        let mut hdr = [0u8; RESCUE_HEADER_LEN as usize];
        file.read_exact_at(&mut hdr, layout.chunk_start(0, 0)).unwrap();
        let h = RescueHeader::decode(&hdr).unwrap();
        assert_eq!((h.global_rank, h.block, h.used), (0, 0, usable));
    }

    #[test]
    fn borrow_scan_copies_nothing_on_memfs() {
        // A full-page borrow-read: 4096 bytes written, scanned back via
        // page leases — the engine moves every byte with zero memcpys.
        let (fs, layout) = setup(&[4096], Alignment::None, false);
        let mut w = writer_buffered(&fs, &layout, 0, false, 0);
        let data: Vec<u8> = (0..4096).map(|i| (i % 239) as u8).collect();
        w.write(&data).unwrap();
        let used = w.finish().unwrap();

        let mut r = reader(
            fs.open("f").unwrap(),
            ChunkGeom::from_layout(&layout, 0, 0),
            used,
            false,
        );
        let mut back = Vec::new();
        let n = r.scan_remaining(&mut |piece| back.extend_from_slice(piece)).unwrap();
        assert_eq!(n, 4096);
        assert_eq!(back, data);
        let c = r.io_counters();
        assert_eq!(c.bytes_copied, 0, "leases served the whole scan: {c:?}");
        assert_eq!(c.allocs, 0, "no bounce buffer was needed: {c:?}");
        assert!(r.feof());
    }

    #[test]
    fn tiny_reads_served_from_read_ahead_window() {
        let (fs, layout) = setup(&[256], Alignment::FsBlock, false);
        let mut w = writer(&fs, &layout, 0, false);
        let data: Vec<u8> = (0..600).map(|i| (i % 241) as u8).collect();
        w.write(&data).unwrap();
        let used = w.finish().unwrap();

        let mut r = TaskReader::new(
            fs.open("f").unwrap(),
            ChunkGeom::from_layout(&layout, 0, 0),
            used,
            false,
            64,
        );
        let mut back = Vec::new();
        let mut byte = [0u8; 7];
        loop {
            let n = r.read(&mut byte).unwrap();
            if n == 0 {
                break;
            }
            back.extend_from_slice(&byte[..n]);
        }
        assert_eq!(back, data);
        let c = r.io_counters();
        // 600 bytes in 7-byte reads = 86 user calls; windows of ≤64 bytes
        // per block of 256 → 4 fetches per block × 3 blocks (ceil).
        assert!(c.user_calls >= 86, "{c:?}");
        assert!(c.vfs_calls <= 12, "{c:?}");
    }

    #[test]
    fn data_sieving_coalesces_cross_block_segments() {
        // Small unaligned chunks: the layout block stride (4 × 24 bytes)
        // is well under the 256-byte FS block, so one task's chunk
        // segments from *several layout blocks* share each FS block.
        // Sieving must serve them all from one block-sized fetch.
        let (fs, layout) = setup(&[24, 24, 24, 24], Alignment::None, false);
        let data: Vec<u8> = (0..120).map(|i| (i % 211) as u8).collect();
        let mut used = Vec::new();
        for t in 0..4 {
            let mut w = writer(&fs, &layout, t, false);
            for piece in data.chunks(24) {
                w.write(piece).unwrap();
            }
            used = w.finish().unwrap();
        }
        assert_eq!(used, vec![24; 5]);
        let read_all = |read_ahead: u64| {
            let mut r = TaskReader::new(
                fs.open("f").unwrap(),
                ChunkGeom::from_layout(&layout, 1, 1),
                used.clone(),
                false,
                read_ahead,
            );
            let mut back = vec![0u8; 120];
            r.read_exact(&mut back).unwrap();
            assert_eq!(back, data);
            r.io_counters()
        };
        // 5 segments spread over at most 3 FS blocks (480 file bytes plus
        // the metadata offset): sieving needs one fetch per FS block, not
        // one per segment.
        let sieved = read_all(DEFAULT_READ_AHEAD);
        assert!(sieved.vfs_calls <= 3, "{sieved:?}");
        // A read-ahead budget too small for an FS block disables sieving:
        // every 24-byte segment bypasses the 16-byte window separately.
        let plain = read_all(16);
        assert!(plain.vfs_calls >= 5, "{plain:?}");
    }

    #[test]
    fn geom_encode_decode_roundtrip() {
        let g = ChunkGeom {
            data_start: 1,
            block_size: 2,
            chunk_off: 3,
            cap: 4,
            rescue_overhead: 32,
            global_rank: 6,
            fsblksize: 7,
        };
        assert_eq!(ChunkGeom::decode(&g.encode()).unwrap(), g);
        assert!(ChunkGeom::decode(&[1, 2, 3]).is_err());
    }
}

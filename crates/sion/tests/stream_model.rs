//! Model-based testing of the chunk-stream engine through the serial
//! writer: random sequences of seeks and writes must read back exactly
//! like a reference flat-buffer model of each task's logical stream.

use proptest::prelude::*;
use sion::{Alignment, Multifile, SerialWriter, SionParams};
use vfs::MemFs;

/// Reference model: per (rank, block) a flat buffer with a high-water
/// usage mark, mirroring the chunk semantics.
#[derive(Default, Clone)]
struct ModelTask {
    /// Per block: data bytes (fixed chunk capacity) and high-water mark.
    blocks: Vec<(Vec<u8>, usize)>,
}

impl ModelTask {
    fn ensure_block(&mut self, b: usize, cap: usize) {
        while self.blocks.len() <= b {
            self.blocks.push((vec![0u8; cap], 0));
        }
    }

    /// Write at (block, pos), spilling into subsequent blocks.
    fn write(&mut self, mut block: usize, mut pos: usize, data: &[u8], cap: usize) {
        let mut rest = data;
        while !rest.is_empty() {
            self.ensure_block(block, cap);
            let room = cap - pos;
            let take = room.min(rest.len());
            let (buf, used) = &mut self.blocks[block];
            buf[pos..pos + take].copy_from_slice(&rest[..take]);
            *used = (*used).max(pos + take);
            rest = &rest[take..];
            block += 1;
            pos = 0;
        }
    }

    /// The logical stream: concatenation of the used prefix of each block.
    fn logical(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (buf, used) in &self.blocks {
            out.extend_from_slice(&buf[..*used]);
        }
        out
    }
}

/// One scripted operation.
#[derive(Debug, Clone)]
enum Op {
    /// Seek rank to (block, pos).
    Seek { rank: usize, block: usize, pos: usize },
    /// Chunk-splitting write on a rank's current position.
    Write { rank: usize, data: Vec<u8> },
}

fn op_strategy(nranks: usize, cap: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nranks, 0usize..4, 0..cap).prop_map(|(rank, block, pos)| Op::Seek {
            rank,
            block,
            pos
        }),
        (0..nranks, prop::collection::vec(any::<u8>(), 1..200))
            .prop_map(|(rank, data)| Op::Write { rank, data }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary interleavings of seeks and writes across ranks read back
    /// exactly like the reference model — both through the logical stream
    /// and through per-chunk addressed reads.
    #[test]
    fn serial_writer_matches_reference_model(
        nranks in 1usize..5,
        ops in prop::collection::vec(op_strategy(4, 96), 1..60),
    ) {
        const CAP: usize = 96;
        let fs = MemFs::with_block_size(32); // capacity 96 = 3 FS blocks
        let chunksizes = vec![CAP as u64; nranks];
        let params = SionParams::new(0).with_alignment(Alignment::Fixed(32));
        let mut writer = SerialWriter::create(&fs, "m.sion", &chunksizes, &params).unwrap();

        // Each rank's model tracks its stream; the writer tracks its own
        // cursor, so the model must mirror cursor movement too.
        let mut models = vec![ModelTask::default(); nranks];
        let mut cursors = vec![(0usize, 0usize); nranks]; // (block, pos)

        for op in &ops {
            match op {
                Op::Seek { rank, block, pos } => {
                    if *rank >= nranks { continue; }
                    writer.seek(*rank, *block as u64, *pos as u64).unwrap();
                    cursors[*rank] = (*block, *pos);
                }
                Op::Write { rank, data } => {
                    if *rank >= nranks { continue; }
                    writer.select_rank(*rank).unwrap();
                    writer.write(data).unwrap();
                    let (b, p) = cursors[*rank];
                    models[*rank].write(b, p, data, CAP);
                    // Advance the model cursor the way the writer does.
                    let total = p + data.len();
                    cursors[*rank] = (b + total / CAP, total % CAP);
                }
            }
        }
        writer.close().unwrap();

        let mf = Multifile::open(&fs, "m.sion").unwrap();
        for (rank, model) in models.iter().enumerate() {
            // Logical stream equality.
            let got = mf.read_rank(rank).unwrap();
            prop_assert_eq!(&got, &model.logical(), "rank {} logical stream", rank);
            // Per-chunk usage and contents.
            let task = mf.location(rank).unwrap();
            for (b, (buf, used)) in model.blocks.iter().enumerate() {
                let chunk = task.chunks.get(b);
                let stored_used = chunk.map(|c| c.used).unwrap_or(0);
                prop_assert_eq!(stored_used, *used as u64, "rank {} block {}", rank, b);
                if *used > 0 {
                    let mut back = vec![0u8; *used];
                    let n = mf.read_at(rank, b as u64, 0, &mut back).unwrap();
                    prop_assert_eq!(n, *used);
                    prop_assert_eq!(&back[..], &buf[..*used]);
                }
            }
        }
    }
}

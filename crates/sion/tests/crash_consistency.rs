//! Crash-consistency harness: for *every* crash point during a buffered
//! parallel rescue-enabled write, `rescue::repair` on the truncated/torn
//! image must yield a multifile in which every recovered chunk's bytes are
//! a prefix of what the task wrote, and `sion_tools::verify` must be clean
//! afterwards.
//!
//! The sweep is exhaustive, not sampled: a clean instrumented run against
//! an unarmed [`FaultFs`] measures the workload's total operation count,
//! then the whole workload is re-run once per possible crash point with the
//! kill switch armed there. A real crash never calls the collective
//! `close()` (the process is simply gone), so the crashed runs drop their
//! writers; crash points inside `close` are covered separately by the
//! hang-freedom test below and by `failure_injection.rs`.
//!
//! Why the prefix property holds (and what these tests pin down):
//! `TaskWriter::flush_pending` writes data strictly before patching the
//! rescue header's `used` field, and skips the patch when the data write
//! failed — so a header never claims bytes that are not on disk. Because
//! `used` only grows, even a *torn* 8-byte little-endian patch cannot
//! overstate: any mix of old high bytes and new low bytes is ≤ the new
//! value. The op-log test at the bottom asserts the ordering directly.
//!
//! The payloads are generated from [`SEED`] (override with the
//! `CRASH_SEED` environment variable to diversify CI runs); every failure
//! message includes the crash point and seed needed to reproduce it.

use simmpi::{Comm, World};
use sion::rescue::repair;
use sion::{paropen_write, IoMode, Multifile, SionParams};
use vfs::{FaultFs, FaultKind, FaultRule, MemFs, Vfs};

/// Fixed default seed: CI runs are reproducible bit-for-bit.
const SEED: u64 = 0x510a_2009;

fn seed() -> u64 {
    std::env::var("CRASH_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SEED)
}

/// Deterministic per-rank payload derived from the seed (splitmix64).
fn payload(seed: u64, rank: usize, len: usize) -> Vec<u8> {
    let mut x = seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (0..len)
        .map(|_| {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as u8
        })
        .collect()
}

const NTASKS: usize = 4;
const NFILES: u32 = 2;
const PAYLOAD_LEN: usize = 700;

fn params() -> SionParams {
    // Small chunks + small buffer → many flush points and several blocks
    // per task, so crash points land in every phase of the write path.
    SionParams::new(256)
        .with_nfiles(NFILES)
        .with_rescue()
        .with_write_buffer(128)
}

/// [`params`] in two-phase aggregated mode: with two tasks per file and a
/// two-task neighborhood target, each file group elects its first task as
/// the aggregator of the other — every physical data write in the sweep
/// goes through the shipment protocol.
fn agg_params() -> SionParams {
    params().with_io_mode(IoMode::Aggregated { tasks_per_aggregator: 2 })
}

/// The workload of the sweep: collective open, per-task piecewise writes,
/// one explicit flush, writers dropped (never closed — a crash does not
/// close). Every error is swallowed: under an armed kill switch each task
/// simply stops making progress, like a dying process.
fn crashy_workload_with(fs: &FaultFs<MemFs>, base: &str, seed: u64, params: &SionParams) {
    World::run(NTASKS, |comm| {
        let Ok(mut w) = paropen_write(fs, base, params, comm) else {
            return;
        };
        for piece in payload(seed, comm.rank(), PAYLOAD_LEN).chunks(100) {
            if w.write(piece).is_err() {
                return;
            }
        }
        let _ = w.flush();
    });
}

fn crashy_workload(fs: &FaultFs<MemFs>, base: &str, seed: u64) {
    crashy_workload_with(fs, base, seed, &params());
}

/// What the recovered image must satisfy for one rank.
fn assert_rank_prefix(mf: &Multifile, rank: usize, seed: u64, ctx: &str) {
    let full = payload(seed, rank, PAYLOAD_LEN);
    let got = mf.read_rank(rank).unwrap_or_else(|e| panic!("{ctx}: rank {rank} unreadable: {e}"));
    assert!(
        got.len() <= full.len() && got == full[..got.len()],
        "{ctx}: rank {rank} recovered {} bytes that are not a prefix of its payload",
        got.len()
    );
}

/// Run repair + full validation of the crashed image at one crash point.
/// Returns the number of fully validated ranks, or `None` when the image
/// was structurally unrecoverable (metablock 1 of some file never became
/// durable) — which repair must report, not panic over.
fn check_crash_point(fs: &FaultFs<MemFs>, base: &str, seed: u64, ctx: &str) -> Option<usize> {
    fs.clear(); // recovery runs on the dead image without injection
    let report = match repair(fs, base, false) {
        Ok(r) => r,
        Err(_) => return None, // e.g. metablock 1 never written
    };
    if !report.is_clean() || report.files_intact + report.files_repaired < NFILES {
        // Some file's skeleton was missing or torn; repair degraded
        // gracefully and said so. Nothing more to certify.
        return None;
    }
    let mf = Multifile::open(fs, base)
        .unwrap_or_else(|e| panic!("{ctx}: clean repair but open failed: {e}"));
    for rank in 0..NTASKS {
        assert_rank_prefix(&mf, rank, seed, ctx);
    }
    drop(mf);
    let vr = sion_tools::verify(fs, base)
        .unwrap_or_else(|e| panic!("{ctx}: verify errored after clean repair: {e}"));
    assert!(
        vr.is_clean(),
        "{ctx}: verify found problems after clean repair: {:?}",
        vr.problems
    );
    assert_eq!(vr.tasks_ok, NTASKS, "{ctx}");
    Some(vr.tasks_ok)
}

#[test]
fn every_crash_point_yields_a_repairable_prefix() {
    let seed = seed();
    // Clean instrumented run: learn the workload's op count.
    let probe = FaultFs::new(MemFs::with_block_size(256));
    crashy_workload(&probe, "probe.sion", seed);
    let total_ops = probe.op_count();
    assert!(total_ops > 20, "workload too small to be a meaningful sweep: {total_ops} ops");

    let mut recovered_points = 0u64;
    let mut unrecoverable_points = 0u64;
    for n in 0..=total_ops {
        let fs = FaultFs::new(MemFs::with_block_size(256));
        fs.crash_after_ops(n);
        crashy_workload(&fs, "crash.sion", seed);
        let ctx = format!("crash point {n}/{total_ops} (seed {seed:#x})");
        match check_crash_point(&fs, "crash.sion", seed, &ctx) {
            Some(_) => recovered_points += 1,
            None => unrecoverable_points += 1,
        }
    }
    // Sanity on the sweep shape: only the first few ops (creates and
    // metablock-1 writes still in flight) may be unrecoverable, and the
    // vast majority of crash points must fully recover.
    assert!(
        recovered_points > unrecoverable_points,
        "sweep recovered {recovered_points}, unrecoverable {unrecoverable_points} (seed {seed:#x})"
    );
    // A crash after the last op is no crash at all: that point must
    // recover everything written (full payloads).
    let fs = FaultFs::new(MemFs::with_block_size(256));
    fs.crash_after_ops(total_ops);
    crashy_workload(&fs, "crash.sion", seed);
    fs.clear();
    let report = repair(&fs, "crash.sion", false).unwrap();
    assert!(report.is_clean());
    let mf = Multifile::open(&fs, "crash.sion").unwrap();
    for rank in 0..NTASKS {
        assert_eq!(
            mf.read_rank(rank).unwrap(),
            payload(seed, rank, PAYLOAD_LEN),
            "no-op crash point must recover the complete payload of rank {rank}"
        );
    }
}

#[test]
fn torn_final_writes_still_recover_a_prefix() {
    let seed = seed();
    let probe = FaultFs::new(MemFs::with_block_size(256));
    crashy_workload(&probe, "probe.sion", seed);
    let total_ops = probe.op_count();

    // Sweep a subsample of crash points with several tear lengths: the op
    // at the switch persists only a prefix of its buffer. Tears land in
    // data writes, 32-byte rescue headers, the 8-byte used patches, and
    // metablock 1 alike.
    for n in (0..total_ops).step_by(3) {
        for keep in [1u64, 7, 17] {
            let fs = FaultFs::new(MemFs::with_block_size(256));
            fs.crash_torn_write(n, keep);
            crashy_workload(&fs, "torn.sion", seed);
            let ctx = format!("torn op {n}/{total_ops} keep {keep} (seed {seed:#x})");
            check_crash_point(&fs, "torn.sion", seed, &ctx);
        }
    }
}

#[test]
fn quota_kill_recovers_a_prefix() {
    let seed = seed();
    // The paper's second failure mode: "file quota violation". Sweep the
    // byte budget from nothing to more than the workload writes.
    let probe = FaultFs::new(MemFs::with_block_size(256));
    crashy_workload(&probe, "probe.sion", seed);
    let total_bytes = probe.bytes_written();
    assert!(total_bytes > 0);

    let mut recovered = 0u64;
    for quota in (0..=total_bytes + 64).step_by(97) {
        let fs = FaultFs::new(MemFs::with_block_size(256));
        fs.set_quota(quota);
        crashy_workload(&fs, "quota.sion", seed);
        let ctx = format!("quota {quota}/{total_bytes} (seed {seed:#x})");
        if check_crash_point(&fs, "quota.sion", seed, &ctx).is_some() {
            recovered += 1;
        }
    }
    assert!(recovered > 0, "no quota point recovered (seed {seed:#x})");
}

#[test]
fn clobbered_rescue_header_costs_one_chunk_not_the_repair() {
    // A single corrupted rescue header must degrade into a per-chunk
    // problem report; the remaining chunks and files still repair.
    let seed = seed();
    let fs = MemFs::with_block_size(256);
    World::run(NTASKS, |comm| {
        let mut w = paropen_write(&fs, "clob.sion", &params(), comm).unwrap();
        w.write(&payload(seed, comm.rank(), PAYLOAD_LEN)).unwrap();
        w.close().unwrap();
    });
    // Clobber the rescue header of rank 0's first chunk with a *valid*
    // header of the wrong (rank, block) — the hardest case to reject.
    let mf = Multifile::open(&fs, "clob.sion").unwrap();
    let c0 = mf.location(0).unwrap().chunks[0].offset - sion::rescue::RESCUE_HEADER_LEN;
    drop(mf);
    let f = fs.open_rw("clob.sion").unwrap();
    let bogus = sion::rescue::RescueHeader { global_rank: 999, block: 42, used: 10 };
    f.write_all_at(&bogus.encode(), c0).unwrap();

    let report = repair(&fs, "clob.sion", true).unwrap();
    assert!(!report.is_clean(), "the mismatch must be reported");
    assert!(
        report.problems.iter().any(|p| p.contains("mismatch")),
        "{:?}",
        report.problems
    );
    assert_eq!(report.files_repaired, NFILES, "both files still repaired");

    // Everything except rank 0's first chunk is recovered; rank 0's
    // stream restarts losing only that chunk's bytes, all other ranks are
    // complete.
    let mf = Multifile::open(&fs, "clob.sion").unwrap();
    for rank in 1..NTASKS {
        assert_eq!(mf.read_rank(rank).unwrap(), payload(seed, rank, PAYLOAD_LEN));
    }
}

#[test]
fn failed_flush_is_never_followed_by_a_header_patch() {
    // The ordering invariant behind the whole prefix property, asserted on
    // the op log: when the data write of a flush fails, the rescue-header
    // patch for those bytes must not happen; after the fault clears, a
    // retried flush completes both in order.
    let seed = seed();
    let fs = FaultFs::new(MemFs::with_block_size(256));
    World::run(1, |comm| {
        let p = SionParams::new(256).with_rescue().with_write_buffer(4096);
        let mut w = paropen_write(&fs, "ord.sion", &p, comm).unwrap();
        w.write(&payload(seed, 0, 100)).unwrap(); // buffered, not yet on disk
        fs.take_log(); // look only at ops from here on
        // Occurrence counters are global (metablock 1 and the rescue
        // header already consumed write slots), so fail every write from
        // now on; clear() below ends the outage.
        fs.inject(FaultRule { kind: FaultKind::Write, from: 0, count: u64::MAX });
        assert!(w.flush().is_err(), "injected data-write failure must surface");

        let log = fs.take_log();
        let failed_write = log
            .iter()
            .find(|r| r.kind == FaultKind::Write && !r.ok)
            .expect("the failed data write is in the log");
        assert!(
            !log.iter().any(|r| {
                r.seq > failed_write.seq && r.kind == FaultKind::Write && r.ok && r.len == 8
            }),
            "no 8-byte used-field patch may follow the failed data flush: {log:?}"
        );

        // Transient-EIO retry semantics: the buffer was kept, a second
        // flush persists data first, then the patch.
        fs.clear();
        w.flush().unwrap();
        let log = fs.take_log();
        let data = log
            .iter()
            .find(|r| r.kind == FaultKind::Write && r.ok && r.len == 100)
            .expect("retried data write");
        let patch = log
            .iter()
            .find(|r| r.kind == FaultKind::Write && r.ok && r.len == 8)
            .expect("rescue patch after retry");
        assert!(
            data.seq < patch.seq,
            "data must be durable before the header claims it: {log:?}"
        );
        w.close().unwrap();
    });
    fs.clear();
    let mf = Multifile::open(&fs, "ord.sion").unwrap();
    assert_eq!(mf.read_rank(0).unwrap(), payload(seed, 0, 100));
}

#[test]
fn every_crash_point_on_the_aggregated_path_yields_a_repairable_prefix() {
    // The same exhaustive sweep over the two-phase aggregated transport:
    // every physical byte now reaches the file through an aggregator
    // replaying shipped frames, including the rescue headers and `used`
    // patches it maintains on its members' behalf. A crash at any point —
    // which kills aggregators mid-replay — must still leave every rank's
    // recovered bytes a prefix of what that rank (logically) wrote.
    // Members whose shipments were not yet applied simply lose those
    // bytes; they must never gain corrupt ones.
    let seed = seed();
    let probe = FaultFs::new(MemFs::with_block_size(256));
    crashy_workload_with(&probe, "probe.sion", seed, &agg_params());
    let total_ops = probe.op_count();
    assert!(total_ops > 20, "workload too small to be a meaningful sweep: {total_ops} ops");

    let mut recovered_points = 0u64;
    let mut unrecoverable_points = 0u64;
    for n in 0..=total_ops {
        let fs = FaultFs::new(MemFs::with_block_size(256));
        fs.crash_after_ops(n);
        crashy_workload_with(&fs, "crash.sion", seed, &agg_params());
        let ctx = format!("aggregated crash point {n}/{total_ops} (seed {seed:#x})");
        match check_crash_point(&fs, "crash.sion", seed, &ctx) {
            Some(_) => recovered_points += 1,
            None => unrecoverable_points += 1,
        }
    }
    assert!(
        recovered_points > unrecoverable_points,
        "sweep recovered {recovered_points}, unrecoverable {unrecoverable_points} (seed {seed:#x})"
    );
    // A kill switch far beyond any reachable op count is no crash at all.
    // (Unlike the independent sweep, the aggregated op count is not a
    // stable constant: how often an aggregator's opportunistic drain runs
    // — and thus how many `flush_pending` rounds it performs — depends on
    // frame arrival timing. The prefix property is interleaving-safe, the
    // exact count is not.) The aggregators (ranks 0 and 2) flushed their
    // own streams directly, so their full payloads recover. The members
    // shipped their final flush but were dropped without the collective
    // close — the aggregator never drained those last frames, which is
    // exactly the crash model: unapplied shipments are lost, never
    // corrupted.
    let fs = FaultFs::new(MemFs::with_block_size(256));
    fs.crash_after_ops(total_ops * 4 + 1000);
    crashy_workload_with(&fs, "crash.sion", seed, &agg_params());
    fs.clear();
    let report = repair(&fs, "crash.sion", false).unwrap();
    assert!(report.is_clean());
    let mf = Multifile::open(&fs, "crash.sion").unwrap();
    for rank in [0, 2] {
        assert_eq!(
            mf.read_rank(rank).unwrap(),
            payload(seed, rank, PAYLOAD_LEN),
            "aggregator rank {rank} flushed directly; its payload must fully recover"
        );
    }
    for rank in [1, 3] {
        assert_rank_prefix(&mf, rank, seed, "uncrashed member");
    }
}

#[test]
fn torn_aggregated_writes_still_recover_a_prefix() {
    // Torn-write sweep over the aggregated transport: the dying op —
    // issued by an aggregator for one of its members — persists only a
    // prefix of its buffer.
    let seed = seed();
    let probe = FaultFs::new(MemFs::with_block_size(256));
    crashy_workload_with(&probe, "probe.sion", seed, &agg_params());
    let total_ops = probe.op_count();

    for n in (0..total_ops).step_by(3) {
        for keep in [1u64, 7, 17] {
            let fs = FaultFs::new(MemFs::with_block_size(256));
            fs.crash_torn_write(n, keep);
            crashy_workload_with(&fs, "torn.sion", seed, &agg_params());
            let ctx = format!("aggregated torn op {n}/{total_ops} keep {keep} (seed {seed:#x})");
            check_crash_point(&fs, "torn.sion", seed, &ctx);
        }
    }
}

#[test]
fn killed_aggregator_mid_shipment_fails_members_and_stays_repairable() {
    // Deterministic aggregator death between two shipment waves: frames
    // applied before the fault are durable, frames after it are refused
    // with a poisoned ack — so members see the failure at their next
    // operation or at close, the collective close fails on EVERY task
    // (metablock 2 is skipped), and repair recovers a per-rank prefix.
    let seed = seed();
    let fs = FaultFs::new(MemFs::with_block_size(256));
    let results = World::run(NTASKS, |comm| {
        let mut w = paropen_write(&fs, "kagg.sion", &agg_params(), comm).unwrap();
        w.write(&payload(seed, comm.rank(), PAYLOAD_LEN)).unwrap();
        w.flush().unwrap();
        // The fault rules are shared state; arm them only after every
        // task's pre-fault traffic is staged.
        comm.barrier();
        if comm.rank() == 0 {
            fs.inject(FaultRule { kind: FaultKind::Write, from: 0, count: u64::MAX });
            fs.inject(FaultRule { kind: FaultKind::Sync, from: 0, count: u64::MAX });
        }
        comm.barrier();
        // This wave can never become durable: the aggregators' replay
        // writes die. The member-side error may surface on a later write
        // (via a poisoned ack) or at the collective close.
        let late = w.write(&[0xAB; 64]);
        let closed = w.close();
        late.is_err() || closed.is_err()
    });
    assert!(
        results.iter().all(|&failed| failed),
        "a dead aggregator must fail the collective close on every task: {results:?}"
    );
    fs.clear();
    let report = repair(&fs, "kagg.sion", false).unwrap();
    assert!(report.is_clean(), "{:?}", report.problems);
    let mf = Multifile::open(&fs, "kagg.sion").unwrap();
    for rank in 0..NTASKS {
        assert_rank_prefix(&mf, rank, seed, "killed aggregator");
    }
}

#[test]
fn crashed_task_cannot_hang_the_collective_close() {
    // A task whose flush dies mid-close must not desert the metadata
    // collectives: every task gets an error, nothing deadlocks, and the
    // un-finalized file stays repairable.
    let seed = seed();
    let fs = FaultFs::new(MemFs::with_block_size(256));
    let results = World::run(NTASKS, |comm| {
        let mut w = paropen_write(&fs, "hang.sion", &params(), comm).unwrap();
        w.write(&payload(seed, comm.rank(), PAYLOAD_LEN)).unwrap();
        w.flush().unwrap();
        // Everyone's payload is durable before any fault is armed — the
        // rules are shared state and must not race the flushes above.
        comm.barrier();
        if comm.rank() == 0 {
            // Everything from now on fails — including rank 0's part of
            // the close — while the other ranks' close I/O proceeds.
            fs.inject(FaultRule { kind: FaultKind::Write, from: 0, count: u64::MAX });
            fs.inject(FaultRule { kind: FaultKind::Sync, from: 0, count: u64::MAX });
        }
        comm.barrier();
        w.close().is_err()
    });
    assert!(
        results.iter().all(|&failed| failed),
        "metablock 2 was skipped, so close must fail on every task: {results:?}"
    );
    fs.clear();
    // The flushed data is fully recoverable from the rescue headers.
    let report = repair(&fs, "hang.sion", false).unwrap();
    assert!(report.is_clean(), "{:?}", report.problems);
    let mf = Multifile::open(&fs, "hang.sion").unwrap();
    for rank in 0..NTASKS {
        assert_eq!(mf.read_rank(rank).unwrap(), payload(seed, rank, PAYLOAD_LEN));
    }
}

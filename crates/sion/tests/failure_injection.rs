//! Failure injection: storage errors during collective operations must
//! surface as clean errors on every task — never hangs, never partial
//! multifiles accepted as valid.

use simmpi::{Comm, World};
use sion::{paropen_read, paropen_write, Multifile, SionParams};
use vfs::{FaultFs, FaultKind, FaultRule, MemFs};

#[test]
fn master_create_failure_fails_every_task() {
    let fs = FaultFs::new(MemFs::with_block_size(1024));
    fs.inject(FaultRule { kind: FaultKind::Create, from: 0, count: u64::MAX });
    let results = World::run(6, |comm| {
        let params = SionParams::new(1024).with_nfiles(2);
        paropen_write(&fs, "f.sion", &params, comm).is_err()
    });
    assert!(results.iter().all(|&failed| failed), "every task must see the failure");
}

#[test]
fn one_of_two_masters_failing_fails_all() {
    // Only the second physical file's create fails: the tasks of the first
    // file group must fail too (the open is globally collective).
    let fs = FaultFs::new(MemFs::with_block_size(1024));
    fs.inject(FaultRule { kind: FaultKind::Create, from: 1, count: 1 });
    let results = World::run(6, |comm| {
        let params = SionParams::new(1024).with_nfiles(2);
        paropen_write(&fs, "g.sion", &params, comm).is_err()
    });
    // The open is all-or-nothing across file groups: every task fails.
    assert!(results.iter().all(|&failed| failed), "{results:?}");
}

#[test]
fn metadata_write_failure_fails_open() {
    let fs = FaultFs::new(MemFs::with_block_size(1024));
    // First write is metablock 1.
    fs.inject(FaultRule { kind: FaultKind::Write, from: 0, count: 1 });
    let results = World::run(4, |comm| {
        let params = SionParams::new(1024);
        paropen_write(&fs, "h.sion", &params, comm).is_err()
    });
    assert!(results.iter().all(|&failed| failed));
}

#[test]
fn open_failure_during_read_discovery_fails_everyone() {
    // Build a valid multifile, then make all opens fail.
    let fs = FaultFs::new(MemFs::with_block_size(1024));
    World::run(4, |comm| {
        let params = SionParams::new(1024);
        let mut w = paropen_write(&fs, "r.sion", &params, comm).unwrap();
        w.write(b"payload").unwrap();
        w.close().unwrap();
    });
    fs.inject(FaultRule { kind: FaultKind::Open, from: 0, count: u64::MAX });
    let results = World::run(4, |comm| paropen_read(&fs, "r.sion", comm).is_err());
    assert!(results.iter().all(|&failed| failed));
}

#[test]
fn data_write_failures_surface_to_the_caller() {
    let fs = FaultFs::new(MemFs::with_block_size(1024));
    let results = World::run(2, |comm| {
        let params = SionParams::new(1024);
        let mut w = paropen_write(&fs, "d.sion", &params, comm).unwrap();
        // Fail all writes from now on (metablock 1 was already written).
        if comm.rank() == 0 {
            fs.inject(FaultRule { kind: FaultKind::Write, from: 0, count: u64::MAX });
        }
        comm.barrier();
        let write_failed = w.write(&vec![9u8; 5000]).is_err();
        // Synchronize the error before the collective close, as an
        // application must (see mp2c::checkpoint::collective_check).
        let any_failed =
            comm.allreduce_u64(write_failed as u64, simmpi::ReduceOp::Max) == 1;
        (write_failed, any_failed)
    });
    // All writes went through the shared fault counter, so both ranks fail;
    // the essential assertion is that the error reached the caller and the
    // world terminated (no hang).
    assert!(results.iter().all(|&(_, any)| any));
    assert!(results.iter().any(|&(failed, _)| failed));
}

#[test]
fn read_failures_surface_in_serial_view() {
    let inner = MemFs::with_block_size(1024);
    let fs = FaultFs::new(inner);
    World::run(3, |comm| {
        let params = SionParams::new(1024);
        let mut w = paropen_write(&fs, "s.sion", &params, comm).unwrap();
        w.write(&vec![comm.rank() as u8; 2000]).unwrap();
        w.close().unwrap();
    });
    // Let the metadata reads through (open + mb1 + mb2 per file), then cut.
    let mf = Multifile::open(&fs, "s.sion").unwrap();
    fs.inject(FaultRule { kind: FaultKind::Read, from: 0, count: u64::MAX });
    assert!(mf.read_rank(0).is_err(), "data reads must fail");
    fs.clear();
    assert_eq!(mf.read_rank(0).unwrap(), vec![0u8; 2000]);
}

#[test]
fn quota_kill_mid_write_is_recoverable_up_to_last_flush() {
    // The paper's "file quota violation" failure: the byte budget runs out
    // mid-write, the job dies, and repair brings back everything flushed
    // before the cut.
    let fs = FaultFs::new(MemFs::with_block_size(512));
    World::run(2, |comm| {
        let params = SionParams::new(512).with_rescue().with_write_buffer(0);
        let Ok(mut w) = paropen_write(&fs, "q.sion", &params, comm) else { return };
        let _ = w.write(&vec![comm.rank() as u8 + 1; 400]);
        let _ = w.flush();
        comm.barrier();
        if comm.rank() == 0 {
            // Budget exhausted from here on: the very next write is cut.
            fs.set_quota(fs.bytes_written());
        }
        comm.barrier();
        let failed = w.write(&vec![9u8; 400]).is_err() || w.flush().is_err();
        assert!(failed, "writes past the quota must fail");
        // Job dies: no close.
    });
    fs.clear();
    let report = sion::rescue::repair(&fs, "q.sion", false).unwrap();
    assert!(report.is_clean(), "{:?}", report.problems);
    let mf = Multifile::open(&fs, "q.sion").unwrap();
    for rank in 0..2 {
        let got = mf.read_rank(rank).unwrap();
        let full = vec![rank as u8 + 1; 400];
        assert!(got.len() <= full.len() && got[..] == full[..got.len()],
            "rank {rank}: recovered bytes must be a prefix of the flushed payload");
    }
}

#[test]
fn transient_write_fault_is_survivable_by_retrying_flush() {
    // A transient EIO during flush must leave the writer retryable: the
    // write-behind buffer is kept, and a later flush lands the same bytes.
    let fs = FaultFs::new(MemFs::with_block_size(1024));
    World::run(1, |comm| {
        let params = SionParams::new(1024).with_rescue().with_write_buffer(4096);
        let mut w = paropen_write(&fs, "t.sion", &params, comm).unwrap();
        w.write(&vec![7u8; 600]).unwrap(); // buffered
        fs.inject(FaultRule { kind: FaultKind::Write, from: 0, count: u64::MAX });
        assert!(w.flush().is_err(), "flush must surface the storage error");
        fs.clear(); // the outage passes
        w.flush().unwrap();
        w.close().unwrap();
    });
    let mf = Multifile::open(&fs, "t.sion").unwrap();
    assert_eq!(mf.read_rank(0).unwrap(), vec![7u8; 600]);
}

#[test]
fn repair_with_failing_reads_errors_not_panics() {
    let fs = FaultFs::new(MemFs::with_block_size(512));
    World::run(2, |comm| {
        let params = SionParams::new(512).with_rescue();
        let mut w = paropen_write(&fs, "rr.sion", &params, comm).unwrap();
        w.write(&vec![5u8; 900]).unwrap();
        w.close().unwrap();
    });
    fs.inject(FaultRule { kind: FaultKind::Read, from: 2, count: u64::MAX });
    // Depending on where the reads die, repair errors or reports zero
    // recovery — it must not panic or hang.
    let _ = sion::rescue::repair(&fs, "rr.sion", true);
}

//! Failure injection: storage errors during collective operations must
//! surface as clean errors on every task — never hangs, never partial
//! multifiles accepted as valid.

use simmpi::{Comm, World};
use sion::{paropen_read, paropen_write, Multifile, SionParams};
use vfs::{FaultFs, FaultKind, FaultRule, MemFs};

#[test]
fn master_create_failure_fails_every_task() {
    let fs = FaultFs::new(MemFs::with_block_size(1024));
    fs.inject(FaultRule { kind: FaultKind::Create, from: 0, count: u64::MAX });
    let results = World::run(6, |comm| {
        let params = SionParams::new(1024).with_nfiles(2);
        paropen_write(&fs, "f.sion", &params, comm).is_err()
    });
    assert!(results.iter().all(|&failed| failed), "every task must see the failure");
}

#[test]
fn one_of_two_masters_failing_fails_all() {
    // Only the second physical file's create fails: the tasks of the first
    // file group must fail too (the open is globally collective).
    let fs = FaultFs::new(MemFs::with_block_size(1024));
    fs.inject(FaultRule { kind: FaultKind::Create, from: 1, count: 1 });
    let results = World::run(6, |comm| {
        let params = SionParams::new(1024).with_nfiles(2);
        paropen_write(&fs, "g.sion", &params, comm).is_err()
    });
    // The open is all-or-nothing across file groups: every task fails.
    assert!(results.iter().all(|&failed| failed), "{results:?}");
}

#[test]
fn metadata_write_failure_fails_open() {
    let fs = FaultFs::new(MemFs::with_block_size(1024));
    // First write is metablock 1.
    fs.inject(FaultRule { kind: FaultKind::Write, from: 0, count: 1 });
    let results = World::run(4, |comm| {
        let params = SionParams::new(1024);
        paropen_write(&fs, "h.sion", &params, comm).is_err()
    });
    assert!(results.iter().all(|&failed| failed));
}

#[test]
fn open_failure_during_read_discovery_fails_everyone() {
    // Build a valid multifile, then make all opens fail.
    let fs = FaultFs::new(MemFs::with_block_size(1024));
    World::run(4, |comm| {
        let params = SionParams::new(1024);
        let mut w = paropen_write(&fs, "r.sion", &params, comm).unwrap();
        w.write(b"payload").unwrap();
        w.close().unwrap();
    });
    fs.inject(FaultRule { kind: FaultKind::Open, from: 0, count: u64::MAX });
    let results = World::run(4, |comm| paropen_read(&fs, "r.sion", comm).is_err());
    assert!(results.iter().all(|&failed| failed));
}

#[test]
fn data_write_failures_surface_to_the_caller() {
    let fs = FaultFs::new(MemFs::with_block_size(1024));
    let results = World::run(2, |comm| {
        let params = SionParams::new(1024);
        let mut w = paropen_write(&fs, "d.sion", &params, comm).unwrap();
        // Fail all writes from now on (metablock 1 was already written).
        if comm.rank() == 0 {
            fs.inject(FaultRule { kind: FaultKind::Write, from: 0, count: u64::MAX });
        }
        comm.barrier();
        let write_failed = w.write(&vec![9u8; 5000]).is_err();
        // Synchronize the error before the collective close, as an
        // application must (see mp2c::checkpoint::collective_check).
        let any_failed =
            comm.allreduce_u64(write_failed as u64, simmpi::ReduceOp::Max) == 1;
        (write_failed, any_failed)
    });
    // All writes went through the shared fault counter, so both ranks fail;
    // the essential assertion is that the error reached the caller and the
    // world terminated (no hang).
    assert!(results.iter().all(|&(_, any)| any));
    assert!(results.iter().any(|&(failed, _)| failed));
}

#[test]
fn read_failures_surface_in_serial_view() {
    let inner = MemFs::with_block_size(1024);
    let fs = FaultFs::new(inner);
    World::run(3, |comm| {
        let params = SionParams::new(1024);
        let mut w = paropen_write(&fs, "s.sion", &params, comm).unwrap();
        w.write(&vec![comm.rank() as u8; 2000]).unwrap();
        w.close().unwrap();
    });
    // Let the metadata reads through (open + mb1 + mb2 per file), then cut.
    let mf = Multifile::open(&fs, "s.sion").unwrap();
    fs.inject(FaultRule { kind: FaultKind::Read, from: 0, count: u64::MAX });
    assert!(mf.read_rank(0).is_err(), "data reads must fail");
    fs.clear();
    assert_eq!(mf.read_rank(0).unwrap(), vec![0u8; 2000]);
}

#[test]
fn repair_with_failing_reads_errors_not_panics() {
    let fs = FaultFs::new(MemFs::with_block_size(512));
    World::run(2, |comm| {
        let params = SionParams::new(512).with_rescue();
        let mut w = paropen_write(&fs, "rr.sion", &params, comm).unwrap();
        w.write(&vec![5u8; 900]).unwrap();
        w.close().unwrap();
    });
    fs.inject(FaultRule { kind: FaultKind::Read, from: 2, count: u64::MAX });
    // Depending on where the reads die, repair errors or reports zero
    // recovery — it must not panic or hang.
    let _ = sion::rescue::repair(&fs, "rr.sion", true);
}

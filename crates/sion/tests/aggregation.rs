//! Two-phase aggregated I/O (`IoMode::Aggregated`): byte-identity with
//! independent mode across layout families and runtimes, shipment
//! accounting, FS-block exclusivity of the elected aggregators, and
//! rescue/verify behaviour of aggregated multifiles.

use std::sync::Arc;

use proptest::prelude::*;
use simmpi::{CoComm, Comm, FlatTaskWorld, FlatWorld, TaskWorld, World};
use sion::{
    paropen_read, paropen_write, paropen_write_co, Alignment, IoMode, Multifile, SionParams,
};
use vfs::{BlockGuardFs, MemFs, Vfs};

/// Deterministic per-rank payload.
fn payload(rank: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 31 + rank * 131 + 7) % 251) as u8).collect()
}

/// Read back every physical file under `prefix` as raw bytes.
fn dump(fs: &dyn Vfs, prefix: &str) -> Vec<(String, Vec<u8>)> {
    fs.list(prefix)
        .unwrap()
        .into_iter()
        .map(|path| {
            let f = fs.open(&path).unwrap();
            let mut buf = vec![0u8; f.len().unwrap() as usize];
            f.read_exact_at(&mut buf, 0).unwrap();
            (path, buf)
        })
        .collect()
}

/// A write pattern that exercises the whole member-side surface: a small
/// in-chunk record (uncompressed layouts), ragged `write` pieces crossing
/// chunk boundaries, and an explicit mid-stream flush.
fn write_workload(w: &mut sion::SionParWriter, rank: usize, data: &[u8], in_chunk: bool) {
    let mut pieces = data.chunks(257 + rank * 41 + 1);
    if in_chunk {
        let first = pieces.next().unwrap();
        w.ensure_free_space(first.len() as u64).unwrap();
        w.write_in_chunk(first).unwrap();
    }
    for (i, piece) in pieces.enumerate() {
        w.write(piece).unwrap();
        if i == 2 {
            w.flush().unwrap();
        }
    }
}

/// Write the same workload under `params` with the given `io_mode` on the
/// thread runtime and return the resulting multifile's raw bytes.
fn run_mode(
    params: &SionParams,
    io_mode: IoMode,
    ntasks: usize,
    bytes_per_task: usize,
) -> Vec<(String, Vec<u8>)> {
    let fs = MemFs::with_block_size(4096);
    let params = params.clone().with_io_mode(io_mode);
    let in_chunk = !params.compressed;
    World::run(ntasks, |c| {
        let data = payload(c.rank(), bytes_per_task);
        let mut w = paropen_write(&fs, "agg/m.sion", &params, c).unwrap();
        write_workload(&mut w, c.rank(), &data, in_chunk);
        let stats = w.close().unwrap();
        assert_eq!(stats.user_bytes, bytes_per_task as u64);
    });
    // Whatever the transport, the data must round-trip.
    let mf = Multifile::open(&fs, "agg/m.sion").unwrap();
    for rank in 0..ntasks {
        assert_eq!(mf.read_rank(rank).unwrap(), payload(rank, bytes_per_task), "rank {rank}");
    }
    dump(&fs, "")
}

#[test]
fn aggregated_bytes_identical_to_independent_across_layout_families() {
    // (name, params, ntasks, bytes/task, tasks_per_aggregator)
    let families: Vec<(&str, SionParams, usize, usize, usize)> = vec![
        ("aligned", SionParams::new(4096).with_nfiles(2), 32, 9_000, 4),
        (
            "unaligned",
            SionParams::new(1000).with_alignment(Alignment::None),
            16,
            2_500,
            4,
        ),
        (
            "fixed+rescue",
            SionParams::new(2000).with_alignment(Alignment::Fixed(2048)).with_rescue(),
            24,
            5_000,
            8,
        ),
        (
            "compressed+rescue",
            SionParams::new(4096).with_compression().with_rescue(),
            16,
            10_000,
            4,
        ),
    ];
    for (name, params, ntasks, bytes, tpa) in families {
        let independent = run_mode(&params, IoMode::Independent, ntasks, bytes);
        let aggregated = run_mode(
            &params,
            IoMode::Aggregated { tasks_per_aggregator: tpa },
            ntasks,
            bytes,
        );
        assert_eq!(aggregated, independent, "family {name}: on-disk bytes must not depend on the transport");
    }
}

#[test]
fn all_four_runtimes_produce_identical_aggregated_multifiles() {
    let ntasks = 24;
    let bytes_per_task = 5_000;
    let params = SionParams::new(2048)
        .with_nfiles(2)
        .with_io_mode(IoMode::Aggregated { tasks_per_aggregator: 4 });

    let fs_world = MemFs::with_block_size(4096);
    World::run(ntasks, |c| {
        let mut w = paropen_write(&fs_world, "m.sion", &params, c).unwrap();
        w.write(&payload(c.rank(), bytes_per_task)).unwrap();
        w.close().unwrap();
    });
    let baseline = dump(&fs_world, "");

    let fs_flat = MemFs::with_block_size(4096);
    FlatWorld::run(ntasks, |c| {
        let mut w = paropen_write(&fs_flat, "m.sion", &params, c).unwrap();
        w.write(&payload(c.rank(), bytes_per_task)).unwrap();
        w.close().unwrap();
    });
    assert_eq!(dump(&fs_flat, ""), baseline, "flat runtime");

    let fs_task = MemFs::with_block_size(4096);
    TaskWorld::run(ntasks, |c| {
        let fs = &fs_task;
        let params = &params;
        async move {
            let mut w = paropen_write_co(fs, "m.sion", params, &c).await.unwrap();
            w.write(&payload(c.rank(), bytes_per_task)).unwrap();
            w.close_co().await.unwrap();
        }
    });
    assert_eq!(dump(&fs_task, ""), baseline, "task runtime");

    let fs_flat_task = MemFs::with_block_size(4096);
    FlatTaskWorld::run(ntasks, |c| {
        let fs = &fs_flat_task;
        let params = &params;
        async move {
            let mut w = paropen_write_co(fs, "m.sion", params, &c).await.unwrap();
            w.write(&payload(c.rank(), bytes_per_task)).unwrap();
            w.close_co().await.unwrap();
        }
    });
    assert_eq!(dump(&fs_flat_task, ""), baseline, "flat task runtime");
}

#[test]
fn shipment_stats_account_for_every_frame() {
    // 16 aligned tasks, one file, neighborhoods of 4: the election is
    // deterministic — aggregators are exactly ranks 0, 4, 8, 12.
    let ntasks = 16;
    let params = SionParams::new(4096)
        .with_io_mode(IoMode::Aggregated { tasks_per_aggregator: 4 });
    let fs = MemFs::with_block_size(4096);
    let stats: Vec<sion::CloseStats> = World::run(ntasks, |c| {
        let data = payload(c.rank(), 6_000);
        let mut w = paropen_write(&fs, "s.sion", &params, c).unwrap();
        for piece in data.chunks(500) {
            w.write(piece).unwrap();
        }
        w.flush().unwrap();
        w.write(&[0xEE; 100]).unwrap();

        // The read side is mode-agnostic: the same collective read works
        // on the aggregated file while the writer world is still up.
        let stats = w.close().unwrap();
        let mut r = paropen_read(&fs, "s.sion", c).unwrap();
        let mut back = vec![0u8; 6_000];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
        r.close().unwrap();
        stats
    });

    let is_aggregator = |rank: usize| rank.is_multiple_of(4);
    let mut shipped = (0u64, 0u64);
    let mut received = (0u64, 0u64);
    for (rank, s) in stats.iter().enumerate() {
        assert_eq!(s.user_bytes, 6_100, "rank {rank}");
        let a = s.agg;
        assert_eq!(a.shipments, a.acked_shipments, "rank {rank}: close drains every frame: {a:?}");
        assert_eq!(a.shipped_bytes, a.acked_bytes, "rank {rank}: {a:?}");
        if is_aggregator(rank) {
            // Each aggregator serves 3 members; every member ships at
            // least HELLO/data and FINISH frames.
            assert!(a.shipments >= 3, "rank {rank} received too few frames: {a:?}");
            received.0 += a.shipments;
            received.1 += a.shipped_bytes;
        } else {
            assert!(a.shipments >= 2, "rank {rank} shipped too few frames: {a:?}");
            assert!(a.shipped_bytes > 6_000, "rank {rank} ships its payload: {a:?}");
            shipped.0 += a.shipments;
            shipped.1 += a.shipped_bytes;
        }
    }
    assert_eq!(shipped, received, "every shipped frame is received and acked exactly once");
}

#[test]
fn aggregators_never_share_an_fs_block() {
    // The paper's §3.2 invariant, checked mechanically: in aggregated mode
    // only elected aggregators (and the metadata master) touch the file,
    // and the election snaps neighborhoods to FS-block-clean boundaries.
    for (params, ntasks) in [
        // Aligned, multiple files, several neighborhoods per file.
        (
            SionParams::new(4096)
                .with_nfiles(2)
                .with_io_mode(IoMode::Aggregated { tasks_per_aggregator: 4 }),
            32,
        ),
        // Unaligned: no clean internal boundary, so each file group
        // degenerates to a single writer.
        (
            SionParams::new(1024)
                .with_alignment(Alignment::None)
                .with_io_mode(IoMode::Aggregated { tasks_per_aggregator: 2 }),
            12,
        ),
    ] {
        let fs = BlockGuardFs::new(Arc::new(MemFs::with_block_size(4096)));
        World::run(ntasks, |c| {
            let data = payload(c.rank(), 5_000);
            let mut w = paropen_write(&fs, "g.sion", &params, c).unwrap();
            write_workload(&mut w, c.rank(), &data, true);
            w.close().unwrap();
        });
        fs.assert_exclusive();
    }
}

#[test]
fn aggregated_rescue_files_verify_and_force_repair_byte_identically() {
    let ntasks = 20;
    let params = SionParams::new(3000)
        .with_nfiles(2)
        .with_rescue()
        .with_io_mode(IoMode::Aggregated { tasks_per_aggregator: 4 });
    let fs = MemFs::with_block_size(4096);
    World::run(ntasks, |c| {
        let mut w = paropen_write(&fs, "r.sion", &params, c).unwrap();
        w.write(&payload(c.rank(), 7_000)).unwrap();
        w.close().unwrap();
    });

    let report = sion_tools::verify(&fs, "r.sion").unwrap();
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.tasks_ok, ntasks);

    // Forced repair rebuilds metablock 2 from the rescue headers the
    // aggregators wrote on their members' behalf. If a single header were
    // missing or stale, the rebuilt bytes would differ.
    let before = dump(&fs, "");
    sion::rescue::repair(&fs, "r.sion", true).unwrap();
    assert_eq!(dump(&fs, ""), before, "repair from rescue headers reproduces the closed file");
    assert!(sion_tools::verify(&fs, "r.sion").unwrap().is_clean());
}

#[test]
fn io_mode_mismatch_fails_collectively() {
    let fs = MemFs::with_block_size(4096);
    let results = World::run(8, |c| {
        // Rank 3 disagrees about the transport. The mode changes the
        // communication protocol, so a split-brain open must fail on
        // EVERY task, not deadlock or limp along.
        let io_mode = if c.rank() == 3 {
            IoMode::Independent
        } else {
            IoMode::Aggregated { tasks_per_aggregator: 4 }
        };
        let params = SionParams::new(1024).with_io_mode(io_mode);
        paropen_write(&fs, "clash.sion", &params, c).is_err()
    });
    assert!(results.iter().all(|&failed| failed));
}

/// Deterministic payload for the `i`-th record of `rank`.
fn record(rank: usize, i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| ((rank * 97 + i * 31 + j) % 251) as u8).collect()
}

fn write_records(w: &mut sion::SionParWriter, rank: usize, sizes: &[usize]) {
    for (i, &len) in sizes.iter().enumerate() {
        w.write(&record(rank, i, len)).unwrap();
    }
}

/// Run the write workload under `params` on the runtime selected by
/// `runtime` (0 = thread tree, 1 = flat threads, 2 = task tree, 3 = flat
/// tasks) and return the multifile's raw bytes.
fn run_on_runtime(
    runtime: usize,
    params: &SionParams,
    ntasks: usize,
    sizes: &[usize],
) -> Vec<(String, Vec<u8>)> {
    let fs = MemFs::with_block_size(4096);
    match runtime {
        0 => {
            World::run(ntasks, |c| {
                let mut w = paropen_write(&fs, "p.sion", params, c).unwrap();
                write_records(&mut w, c.rank(), sizes);
                w.close().unwrap();
            });
        }
        1 => {
            FlatWorld::run(ntasks, |c| {
                let mut w = paropen_write(&fs, "p.sion", params, c).unwrap();
                write_records(&mut w, c.rank(), sizes);
                w.close().unwrap();
            });
        }
        2 => {
            TaskWorld::run(ntasks, |c| {
                let (fs, params) = (&fs, params);
                async move {
                    let mut w = paropen_write_co(fs, "p.sion", params, &c).await.unwrap();
                    write_records(&mut w, c.rank(), sizes);
                    w.close_co().await.unwrap();
                }
            });
        }
        _ => {
            FlatTaskWorld::run(ntasks, |c| {
                let (fs, params) = (&fs, params);
                async move {
                    let mut w = paropen_write_co(fs, "p.sion", params, &c).await.unwrap();
                    write_records(&mut w, c.rank(), sizes);
                    w.close_co().await.unwrap();
                }
            });
        }
    }
    dump(&fs, "")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random record shapes, buffer capacities, neighborhood targets
    /// and runtimes, every layout family decodes an aggregated multifile
    /// exactly like its independent twin — and the files are bitwise
    /// equal to begin with.
    #[test]
    fn aggregated_multifiles_decode_identically_for_random_workloads(
        sizes in prop::collection::vec(1usize..700, 1..12),
        tpa in 1usize..6,
        write_buffer in 0u64..2048,
        runtime in 0usize..4,
    ) {
        let ntasks = 8;
        for (family, base) in [
            SionParams::new(1024).with_nfiles(2),
            SionParams::new(777).with_alignment(Alignment::None),
            SionParams::new(1000).with_alignment(Alignment::Fixed(1024)).with_rescue(),
            SionParams::new(1024).with_compression().with_rescue(),
        ]
        .into_iter()
        .enumerate()
        {
            let base = base.with_write_buffer(write_buffer);
            let independent =
                run_on_runtime(0, &base.clone(), ntasks, &sizes);
            let agg_params = base.with_io_mode(IoMode::Aggregated { tasks_per_aggregator: tpa });
            let aggregated = run_on_runtime(runtime, &agg_params, ntasks, &sizes);
            prop_assert_eq!(
                &aggregated, &independent,
                "family {} runtime {} tpa {} diverged", family, runtime, tpa
            );

            // And the aggregated image decodes to what each rank wrote.
            let fs = MemFs::with_block_size(4096);
            for (name, bytes) in &aggregated {
                let f = fs.create(name).unwrap();
                f.write_all_at(bytes, 0).unwrap();
            }
            let mf = Multifile::open(&fs, "p.sion").unwrap();
            for rank in 0..ntasks {
                let expect: Vec<u8> = sizes
                    .iter()
                    .enumerate()
                    .flat_map(|(i, &len)| record(rank, i, len))
                    .collect();
                prop_assert_eq!(
                    mf.read_rank(rank).unwrap(), expect,
                    "family {} rank {} decode mismatch", family, rank
                );
            }
        }
    }
}

#[test]
fn single_task_neighborhoods_degenerate_to_independent_writes() {
    // tasks_per_aggregator = 1 on an aligned layout: every task is its
    // own aggregator with an empty neighborhood, i.e. plain independent
    // mode — no shipments anywhere, same bytes.
    let ntasks = 8;
    let base = SionParams::new(4096);
    let independent = run_mode(&base, IoMode::Independent, ntasks, 5_000);
    let fs = MemFs::with_block_size(4096);
    let params = base.with_io_mode(IoMode::Aggregated { tasks_per_aggregator: 1 });
    let stats = World::run(ntasks, |c| {
        let data = payload(c.rank(), 5_000);
        let mut w = paropen_write(&fs, "agg/m.sion", &params, c).unwrap();
        write_workload(&mut w, c.rank(), &data, true);
        w.close().unwrap()
    });
    for (rank, s) in stats.iter().enumerate() {
        assert_eq!(s.agg, sion::AggStats::default(), "rank {rank} must not ship: {:?}", s.agg);
    }
    assert_eq!(dump(&fs, ""), independent);
}

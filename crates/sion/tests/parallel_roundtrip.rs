//! End-to-end tests of the parallel API: thread-backed tasks write a
//! multifile collectively, read it back in parallel and serially, across
//! the parameter space (file counts, alignments, compression, rescue,
//! mappings, uneven chunk sizes).

use simmpi::{Comm, World};
use sion::{paropen_read, paropen_write, Alignment, Mapping, Multifile, SionParams};
use vfs::{MemFs, Vfs};

/// Deterministic per-rank payload.
fn payload(rank: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 31 + rank * 131 + 7) % 251) as u8).collect()
}

fn write_then_read_back(ntasks: usize, params: &SionParams, bytes_per_task: usize) {
    let fs = MemFs::with_block_size(4096);
    World::run(ntasks, |comm| {
        let data = payload(comm.rank(), bytes_per_task);
        let mut w = paropen_write(&fs, "out/data.sion", params, comm).unwrap();
        // Write in uneven pieces to exercise chunk splitting.
        for piece in data.chunks(1000 + comm.rank() * 37 + 1) {
            w.write(piece).unwrap();
        }
        let stats = w.close().unwrap();
        assert_eq!(stats.user_bytes, bytes_per_task as u64);

        // Parallel read-back.
        let mut r = paropen_read(&fs, "out/data.sion", comm).unwrap();
        let mut back = vec![0u8; bytes_per_task];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data, "rank {} read-back mismatch", comm.rank());
        assert!(r.feof());
        r.close().unwrap();
    });

    // Serial global-view read-back.
    let mf = Multifile::open(&fs, "out/data.sion").unwrap();
    assert_eq!(mf.ntasks(), ntasks);
    for rank in 0..ntasks {
        assert_eq!(mf.read_rank(rank).unwrap(), payload(rank, bytes_per_task), "rank {rank}");
    }

    // The file count on disk matches nfiles, not ntasks.
    let files = fs.list("out/").unwrap();
    assert_eq!(files.len(), params.nfiles as usize);
}

#[test]
fn single_file_aligned() {
    write_then_read_back(8, &SionParams::new(4096), 10_000);
}

#[test]
fn multiple_physical_files() {
    write_then_read_back(12, &SionParams::new(4096).with_nfiles(3), 9_001);
}

#[test]
fn unaligned_layout() {
    write_then_read_back(6, &SionParams::new(2000).with_alignment(Alignment::None), 7_777);
}

#[test]
fn round_robin_mapping() {
    write_then_read_back(
        10,
        &SionParams::new(4096).with_nfiles(2).with_mapping(Mapping::RoundRobin),
        5_000,
    );
}

#[test]
fn grouped_mapping() {
    write_then_read_back(
        16,
        &SionParams::new(4096).with_nfiles(4).with_mapping(Mapping::Grouped(4)),
        3_333,
    );
}

#[test]
fn with_rescue_headers() {
    write_then_read_back(6, &SionParams::new(3000).with_rescue(), 8_000);
}

#[test]
fn with_compression() {
    write_then_read_back(6, &SionParams::new(4096).with_compression(), 20_000);
}

#[test]
fn compression_and_rescue_together() {
    write_then_read_back(4, &SionParams::new(4096).with_compression().with_rescue(), 15_000);
}

#[test]
fn tiny_alignment_many_blocks() {
    // Chunks much smaller than the data force many blocks.
    write_then_read_back(5, &SionParams::new(512).with_alignment(Alignment::Fixed(512)), 6_000);
}

#[test]
fn single_task_world() {
    write_then_read_back(1, &SionParams::new(4096), 10_000);
}

#[test]
fn per_task_chunk_sizes_differ() {
    let fs = MemFs::with_block_size(4096);
    let ntasks = 6;
    World::run(ntasks, |comm| {
        // Every task asks for a different chunk size (paper: "which can be
        // individually chosen for each task").
        let mut params = SionParams::new(1024 * (comm.rank() as u64 + 1));
        params.nfiles = 2;
        let data = payload(comm.rank(), 5000 * (comm.rank() + 1));
        let mut w = paropen_write(&fs, "uneven.sion", &params, comm).unwrap();
        w.write(&data).unwrap();
        w.close().unwrap();

        let mut r = paropen_read(&fs, "uneven.sion", comm).unwrap();
        let mut back = vec![0u8; data.len()];
        r.read_exact(&mut back).unwrap();
        assert_eq!(back, data);
        r.close().unwrap();
    });
    let mf = Multifile::open(&fs, "uneven.sion").unwrap();
    for rank in 0..ntasks {
        assert_eq!(mf.locations().unwrap().tasks[rank].chunksize_req, 1024 * (rank as u64 + 1));
    }
}

#[test]
fn ensure_free_space_write_in_chunk_api() {
    // The paper's Listing 1 style: ensure_free_space + plain fwrite.
    let fs = MemFs::with_block_size(4096);
    World::run(4, |comm| {
        let params = SionParams::new(4096);
        let mut w = paropen_write(&fs, "listing1.sion", &params, comm).unwrap();
        for round in 0..5u8 {
            let piece = vec![round ^ comm.rank() as u8; 3000];
            w.ensure_free_space(piece.len() as u64).unwrap();
            w.write_in_chunk(&piece).unwrap();
        }
        w.close().unwrap();

        // Listing 2 style read: bytes_avail_in_chunk + bounded reads.
        let mut r = paropen_read(&fs, "listing1.sion", comm).unwrap();
        let mut got = Vec::new();
        while !r.feof() {
            let avail = r.bytes_avail_in_chunk() as usize;
            assert!(avail > 0);
            let mut buf = vec![0u8; avail];
            r.read_exact(&mut buf).unwrap();
            got.extend_from_slice(&buf);
        }
        assert_eq!(got.len(), 15_000);
        for round in 0..5usize {
            assert!(got[round * 3000..(round + 1) * 3000]
                .iter()
                .all(|&b| b == (round as u8) ^ comm.rank() as u8));
        }
        r.close().unwrap();
    });
}

#[test]
fn read_with_wrong_task_count_fails_everywhere() {
    let fs = MemFs::with_block_size(4096);
    World::run(4, |comm| {
        let params = SionParams::new(1024);
        let mut w = paropen_write(&fs, "four.sion", &params, comm).unwrap();
        w.write(b"x").unwrap();
        w.close().unwrap();
    });
    let results = World::run(3, |comm| paropen_read(&fs, "four.sion", comm).is_err());
    assert!(results.iter().all(|&failed| failed));
}

#[test]
fn mismatched_params_fail_collectively() {
    let fs = MemFs::with_block_size(4096);
    let results = World::run(4, |comm| {
        // Rank 2 disagrees about the file count.
        let nfiles = if comm.rank() == 2 { 2 } else { 1 };
        let params = SionParams::new(1024).with_nfiles(nfiles);
        paropen_write(&fs, "clash.sion", &params, comm).is_err()
    });
    assert!(results.iter().all(|&failed| failed));
}

#[test]
fn empty_writers_produce_empty_streams() {
    let fs = MemFs::with_block_size(4096);
    World::run(4, |comm| {
        let params = SionParams::new(4096);
        let w = paropen_write(&fs, "empty.sion", &params, comm).unwrap();
        let stats = w.close().unwrap();
        assert_eq!(stats.user_bytes, 0);

        let mut r = paropen_read(&fs, "empty.sion", comm).unwrap();
        assert!(r.feof());
        let mut buf = [0u8; 16];
        assert_eq!(r.read(&mut buf).unwrap(), 0);
        r.close().unwrap();
    });
}

#[test]
fn sparse_chunks_stay_holes() {
    // One task writes a lot (many blocks), the rest write almost nothing:
    // the untouched chunks of the quiet tasks must not consume storage.
    let fs = MemFs::with_block_size(4096);
    let ntasks = 8;
    World::run(ntasks, |comm| {
        let params = SionParams::new(4096);
        let mut w = paropen_write(&fs, "holey.sion", &params, comm).unwrap();
        if comm.rank() == 0 {
            w.write(&payload(0, 40 * 4096)).unwrap(); // 40 blocks
        } else {
            w.write(b"tiny").unwrap();
        }
        w.close().unwrap();
    });
    let stats = fs.stats("holey.sion").unwrap();
    // Logical size covers 40 blocks x 8 tasks; physical must be near the
    // actually-written 40 + 7 chunks (plus metadata), far below logical.
    assert!(
        stats.allocated < stats.len / 3,
        "expected sparse file: allocated {} of {}",
        stats.allocated,
        stats.len
    );
    // And the data still reads back fine.
    let mf = Multifile::open(&fs, "holey.sion").unwrap();
    assert_eq!(mf.read_rank(0).unwrap(), payload(0, 40 * 4096));
    assert_eq!(mf.read_rank(3).unwrap(), b"tiny");
}

#[test]
fn functional_create_counts_match_paper_claim() {
    // The heart of Fig. 3: N tasks, task-local files = N creates; SIONlib
    // multifile = nfiles creates.
    let ntasks = 32;
    let fs = parfs::SimFs::with_block_size(4096);
    World::run(ntasks, |comm| {
        let params = SionParams::new(1024).with_nfiles(4);
        let mut w = paropen_write(&fs, "few.sion", &params, comm).unwrap();
        w.write(b"payload").unwrap();
        w.close().unwrap();
    });
    assert_eq!(fs.counters().creates, 4);

    fs.reset_counters();
    World::run(ntasks, |comm| {
        // Task-local baseline: every task creates its own file.
        let f = fs.create(&format!("taskloc/file.{:05}", comm.rank())).unwrap();
        f.write_all_at(b"payload", 0).unwrap();
    });
    assert_eq!(fs.counters().creates, ntasks as u64);
}

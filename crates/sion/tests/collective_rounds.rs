//! Collective round-count accounting: the packed metadata protocol must
//! cost exactly the constant number of rounds §"Collective round
//! structure" in `par.rs` promises, independent of how many metadata
//! fields move. Asserted per communicator through the runtime's
//! [`CommStats`](simmpi::CommStats) counters, whose handles keep counting
//! after `close()` consumes the writer.

use simmpi::{Comm, World};
use sion::{paropen_read, paropen_write, SionParams};
use vfs::MemFs;

#[test]
fn write_open_and_close_cost_one_gather_each() {
    let fs = MemFs::with_block_size(512);
    let n = 8;
    World::run(n, |comm| {
        let params = SionParams::new(2048).with_nfiles(2);
        let mut w = paropen_write(&fs, "mf.sion", &params, comm).unwrap();

        let lcom = w.local_comm_stats().expect("runtime tracks stats");
        let gcom = w.global_comm_stats().expect("runtime tracks stats");
        let parent = comm.stats().expect("runtime tracks stats");

        // Open: ONE packed metadata gather + ONE status broadcast + ONE
        // geometry scatter on the file-group communicator — nothing else.
        assert_eq!(lcom.gathers(), 1, "open metadata gather");
        assert_eq!(lcom.bcasts(), 1, "open status broadcast");
        assert_eq!(lcom.scatters(), 1, "open geometry scatter");
        assert_eq!(lcom.allgathers(), 0);
        assert_eq!(lcom.barriers(), 0);
        assert_eq!(lcom.reduces(), 0);
        // ONE global allgather (failure agreement + cross-group parameter
        // check combined) on the duplicated global communicator.
        assert_eq!(gcom.allgathers(), 1, "open global agreement");
        assert_eq!(gcom.barriers(), 0);
        assert_eq!(gcom.gathers(), 0);
        assert_eq!(gcom.bcasts(), 0);
        // The parent communicator only pays the two splits.
        assert_eq!(parent.splits(), 2);
        assert_eq!(parent.collectives(), 2);

        // Touch two blocks so close gathers a non-trivial usage vector.
        w.write(&vec![comm.rank() as u8; 3000]).unwrap();

        let c = w.close().unwrap();
        assert!(c.stored_bytes >= 3000);

        // Close: ONE packed usage gather + ONE status broadcast on the
        // file group, ONE barrier on the global communicator — nothing
        // else, and no further parent-communicator traffic.
        assert_eq!(lcom.gathers(), 2, "close usage gather");
        assert_eq!(lcom.bcasts(), 2, "close status broadcast");
        assert_eq!(lcom.scatters(), 1);
        assert_eq!(lcom.allgathers(), 0);
        assert_eq!(lcom.barriers(), 0);
        assert_eq!(gcom.barriers(), 1, "close global barrier");
        assert_eq!(gcom.allgathers(), 1);
        assert_eq!(parent.collectives(), 2);
    });
}

#[test]
fn read_open_costs_one_broadcast_on_the_parent() {
    let fs = MemFs::with_block_size(512);
    let n = 6;
    World::run(n, |comm| {
        let params = SionParams::new(1024).with_nfiles(3);
        let mut w = paropen_write(&fs, "r.sion", &params, comm).unwrap();
        w.write(b"payload").unwrap();
        w.close().unwrap();

        let before = comm.stats().expect("runtime tracks stats").collectives();
        let r = paropen_read(&fs, "r.sion", comm).unwrap();
        let parent = comm.stats().expect("runtime tracks stats");

        // Read open on the parent communicator: ONE combined
        // status+rank-map broadcast plus the two splits.
        assert_eq!(parent.bcasts(), 1, "combined discovery broadcast");
        assert_eq!(parent.collectives() - before, 3);

        // File group: ONE status broadcast + ONE geometry scatter.
        let lcom = r.local_comm_stats().expect("runtime tracks stats");
        assert_eq!(lcom.bcasts(), 1);
        assert_eq!(lcom.scatters(), 1);
        assert_eq!(lcom.gathers(), 0);
        // Global duplicate: ONE failure-agreement allgather.
        let gcom = r.global_comm_stats().expect("runtime tracks stats");
        assert_eq!(gcom.allgathers(), 1);

        r.close().unwrap();
        assert_eq!(gcom.barriers(), 1);
    });
}

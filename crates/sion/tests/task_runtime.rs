//! End-to-end `sion::par` on the task runtime: the collective
//! open/write/close protocol driven as resumable rank tasks
//! (`paropen_write_co` / `paropen_read_co` inside a `TaskWorld`), including
//! byte-identity of the produced multifile against the thread runtime and
//! a four-digit-rank smoke run that would be infeasible thread-per-rank.

use simmpi::{CoComm, Comm, SchedPolicy, TaskWorld, World};
use sion::{
    paropen_read_co, paropen_write, paropen_write_co, Mapping, Multifile, SionParams,
};
use vfs::{MemFs, Vfs};

/// Deterministic per-rank payload.
fn payload(rank: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 31 + rank * 131 + 7) % 251) as u8).collect()
}

/// Read back every physical file under `prefix` as raw bytes.
fn dump(fs: &dyn Vfs, prefix: &str) -> Vec<(String, Vec<u8>)> {
    fs.list(prefix)
        .unwrap()
        .into_iter()
        .map(|path| {
            let f = fs.open(&path).unwrap();
            let mut buf = vec![0u8; f.len().unwrap() as usize];
            f.read_exact_at(&mut buf, 0).unwrap();
            (path, buf)
        })
        .collect()
}

#[test]
fn task_world_collective_roundtrip() {
    let fs = MemFs::with_block_size(4096);
    let ntasks = 96;
    let bytes_per_task = 9_000;
    let params = SionParams::new(4096).with_nfiles(4);
    TaskWorld::run(ntasks, |c| {
        let fs = &fs;
        let params = &params;
        async move {
            let data = payload(c.rank(), bytes_per_task);
            let mut w = paropen_write_co(fs, "out/data.sion", params, &c).await.unwrap();
            for piece in data.chunks(1000 + c.rank() * 37 + 1) {
                w.write(piece).unwrap();
            }
            let stats = w.close_co().await.unwrap();
            assert_eq!(stats.user_bytes, bytes_per_task as u64);

            let mut r = paropen_read_co(fs, "out/data.sion", &c).await.unwrap();
            let mut back = vec![0u8; bytes_per_task];
            r.read_exact(&mut back).unwrap();
            assert_eq!(back, data, "rank {} read-back mismatch", r.rank());
            assert!(r.feof());
            r.close_co().await.unwrap();
        }
    });

    // Serial global-view read-back sees every rank's data.
    let mf = Multifile::open(&fs, "out/data.sion").unwrap();
    assert_eq!(mf.ntasks(), ntasks);
    for rank in 0..ntasks {
        assert_eq!(mf.read_rank(rank).unwrap(), payload(rank, bytes_per_task), "rank {rank}");
    }
    assert_eq!(fs.list("out/").unwrap().len(), 4);
}

#[test]
fn task_and_thread_runtimes_write_identical_multifiles() {
    let params = SionParams::new(2048).with_nfiles(3).with_mapping(Mapping::RoundRobin);
    let ntasks = 24;
    let bytes_per_task = 5_000;

    let fs_task = MemFs::with_block_size(4096);
    TaskWorld::run(ntasks, |c| {
        let fs = &fs_task;
        let params = &params;
        async move {
            let data = payload(c.rank(), bytes_per_task);
            let mut w = paropen_write_co(fs, "m.sion", params, &c).await.unwrap();
            w.write(&data).unwrap();
            w.close_co().await.unwrap();
        }
    });

    let fs_thread = MemFs::with_block_size(4096);
    World::run(ntasks, |c| {
        let data = payload(c.rank(), bytes_per_task);
        let mut w = paropen_write(&fs_thread, "m.sion", &params, c).unwrap();
        w.write(&data).unwrap();
        w.close().unwrap();
    });

    // The multifile on disk is byte-identical, physical file by physical
    // file — the task runtime changes scheduling, not one bit of output.
    assert_eq!(dump(&fs_task, ""), dump(&fs_thread, ""));
}

#[test]
fn serial_schedules_produce_the_same_multifile() {
    let params = SionParams::new(1024).with_nfiles(2);
    let run = |policy| {
        let fs = MemFs::with_block_size(4096);
        TaskWorld::run_with(policy, 12, |c| {
            let fs = &fs;
            let params = &params;
            async move {
                let mut w = paropen_write_co(fs, "s.sion", params, &c).await.unwrap();
                w.write(&payload(c.rank(), 2_000)).unwrap();
                w.close_co().await.unwrap();
            }
        });
        dump(&fs, "")
    };
    let baseline = run(SchedPolicy::WorkSteal { workers: 4 });
    for seed in 0..4 {
        let serial = SchedPolicy::Serial { seed, preemption_bound: usize::MAX };
        assert_eq!(run(serial), baseline, "seed {seed}");
    }
}

#[test]
fn mismatched_params_fail_collectively_on_task_runtime() {
    let fs = MemFs::with_block_size(4096);
    let results = TaskWorld::run(8, |c| {
        let fs = &fs;
        async move {
            // Rank 5 disagrees about the file count.
            let nfiles = if c.rank() == 5 { 2 } else { 1 };
            let params = SionParams::new(1024).with_nfiles(nfiles);
            paropen_write_co(fs, "clash.sion", &params, &c).await.is_err()
        }
    });
    assert!(results.iter().all(|&failed| failed));
}

#[test]
fn four_digit_rank_open_write_close() {
    // 2048 resumable rank tasks on a handful of workers — a world that
    // would need 2048 OS threads (and their stacks) thread-per-rank.
    let fs = MemFs::with_block_size(4096);
    let ntasks = 2048;
    let params = SionParams::new(512).with_nfiles(8).with_write_buffer(4096);
    let (_, sched) = TaskWorld::run_with(SchedPolicy::WorkSteal { workers: 4 }, ntasks, |c| {
        let fs = &fs;
        let params = &params;
        async move {
            let data = payload(c.rank(), 256);
            let mut w = paropen_write_co(fs, "big/huge.sion", params, &c).await.unwrap();
            w.write(&data).unwrap();
            let stats = w.close_co().await.unwrap();
            assert_eq!(stats.user_bytes, 256);
        }
    });
    // Tree fan-in keeps every mailbox logarithmic even at 2Ki ranks.
    assert!(
        sched.peak_mailbox_msgs <= 16,
        "mailboxes must stay O(log P): {sched:?}"
    );
    assert_eq!(fs.list("big/").unwrap().len(), 8);
    let mf = Multifile::open(&fs, "big/huge.sion").unwrap();
    assert_eq!(mf.ntasks(), ntasks);
    for rank in [0, 1, 1023, 2047] {
        assert_eq!(mf.read_rank(rank).unwrap(), payload(rank, 256), "rank {rank}");
    }
}

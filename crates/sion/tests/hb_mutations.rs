//! Happens-before mutation suite for the aggregated write protocol.
//!
//! Two halves:
//!
//! * the **clean** protocol — a real 4-rank `Aggregated` open/write/close
//!   — must be race- and violation-free under the [`HbEngine`] +
//!   [`OrderGuardFs`] stack on all four runtimes (thread/task ×
//!   tree/flat);
//! * three **seeded mutations** of the ship/ack contract, each built as a
//!   minimal member/aggregator exchange over the reserved `0xA6`/`0xA7`
//!   namespace (under [`simmpi::enter_agg_protocol`], exactly like the
//!   real aggregator), must each be *detected* — and re-running the same
//!   seed must reproduce a byte-identical [`HbEngine::stable_report`],
//!   so every finding ships with a replayable schedule seed.
//!
//! One seeded race report is pinned as a golden file
//! (`tests/golden/hb_race_report.txt`, bless with `SIMCHECK_BLESS=1`).

use simcheck::{HbEngine, OrderGuardFs};
use simmpi::{
    CoComm, FlatTaskWorld, FlatWorld, SchedPolicy, TaskComm, TaskWorld, World,
    AGG_ACK_TAG_PREFIX, AGG_SHIP_TAG_PREFIX,
};
use sion::{paropen_write, paropen_write_co, Alignment, IoMode, SionParams};
use std::future::Future;
use std::sync::Arc;
use vfs::{MemFs, Vfs};

const NTASKS: usize = 4;

fn agg_params() -> SionParams {
    SionParams::new(96)
        .with_alignment(Alignment::None)
        .with_io_mode(IoMode::Aggregated { tasks_per_aggregator: 2 })
}

fn guarded_fs() -> (Arc<HbEngine>, Arc<dyn Vfs>) {
    let engine = Arc::new(HbEngine::new());
    let fs: Arc<dyn Vfs> =
        Arc::new(OrderGuardFs::new(Arc::new(MemFs::with_block_size(4096)), engine.clone()));
    (engine, fs)
}

/// The workload every clean-protocol run performs: open, two chunk-sized
/// writes (one in-chunk, one crossing), close.
fn payload(rank: usize, salt: u8) -> Vec<u8> {
    vec![rank as u8 + salt; 72]
}

// ---------------------------------------------------------------------
// Clean protocol: race-free on all four runtimes.
// ---------------------------------------------------------------------

#[test]
fn clean_protocol_is_race_free_on_thread_runtimes() {
    for flat in [false, true] {
        let (engine, fs) = guarded_fs();
        let run = |c: &dyn simmpi::Comm| {
            let mut w =
                paropen_write(fs.as_ref(), "hb/clean.sion", &agg_params(), c).expect("open");
            w.write(&payload(c.rank(), 1)).expect("write");
            w.write(&payload(c.rank(), 129)).expect("write");
            w.close().expect("close");
        };
        let results = if flat {
            FlatWorld::run_checked(NTASKS, engine.clone(), |c| run(c))
        } else {
            World::run_checked(NTASKS, engine.clone(), |c| run(c))
        };
        for r in results {
            r.expect("rank must not panic");
        }
        engine.assert_race_free(&format!(
            "clean aggregated protocol, {} threads, flat={flat}",
            NTASKS
        ));
    }
}

#[test]
fn clean_protocol_is_race_free_on_task_runtimes() {
    async fn prog(fs: Arc<dyn Vfs>, c: &dyn CoComm) {
        let mut w =
            paropen_write_co(fs.as_ref(), "hb/clean.sion", &agg_params(), c).await.expect("open");
        w.write(&payload(c.rank(), 1)).expect("write");
        w.write(&payload(c.rank(), 129)).expect("write");
        w.close_co().await.expect("close");
    }
    for flat in [false, true] {
        let (engine, fs) = guarded_fs();
        let policy = SchedPolicy::Serial { seed: 0x5EED_CAFE, preemption_bound: 2 };
        let run = if flat {
            let fs = fs.clone();
            FlatTaskWorld::run_checked(policy, NTASKS, engine.clone(), move |c| {
                let fs = fs.clone();
                async move { prog(fs, &c).await }
            })
        } else {
            let fs = fs.clone();
            TaskWorld::run_checked(policy, NTASKS, engine.clone(), move |c| {
                let fs = fs.clone();
                async move { prog(fs, &c).await }
            })
        };
        assert!(run.deadlock.is_none(), "clean protocol must not deadlock");
        for r in run.results {
            r.expect("rank must not panic");
        }
        engine
            .assert_race_free(&format!("clean aggregated protocol, {} tasks, flat={flat}", NTASKS));
    }
}

// ---------------------------------------------------------------------
// Seeded mutations of the ship/ack contract.
// ---------------------------------------------------------------------

const SEED: u64 = 0x00AC_C1DE_0000_0001;

/// Run a two-task mutation program under the seeded serial scheduler,
/// twice with the same seed; asserts the engine's stable report is
/// byte-identical across the replays (the finding is replayable from the
/// seed alone) and returns the first run's engine and report.
fn detect<F, Fut>(seed: u64, prog: F) -> (Arc<HbEngine>, String)
where
    F: Fn(Arc<dyn Vfs>, TaskComm) -> Fut,
    Fut: Future<Output = ()> + Send,
{
    let run_once = || {
        let (engine, fs) = guarded_fs();
        let run = TaskWorld::run_checked(
            SchedPolicy::Serial { seed, preemption_bound: 2 },
            2,
            engine.clone(),
            |c| prog(fs.clone(), c),
        );
        assert!(run.deadlock.is_none(), "mutation program must not deadlock");
        for r in run.results {
            r.expect("mutation program must not panic");
        }
        let report = engine.stable_report(&format!("seed={seed:#018x}, preemption-bound=2"));
        (engine, report)
    };
    let (engine, first) = run_once();
    let (_, second) = run_once();
    assert_eq!(first, second, "same seed must replay a byte-identical report");
    (engine, first)
}

/// Ship `data` under shipment `seq` the way `sion::agg` frames it: an
/// 8-byte little-endian sequence number, then the payload bytes.
fn ship_frame(seq: u64, data: &[u8]) -> Vec<u8> {
    let mut frame = seq.to_le_bytes().to_vec();
    frame.extend_from_slice(data);
    frame
}

/// A success ack for `seq`: `[u64 seq][u64 status == 0]`.
fn ok_ack(seq: u64) -> Vec<u8> {
    let mut ack = seq.to_le_bytes().to_vec();
    ack.extend_from_slice(&0u64.to_le_bytes());
    ack
}

/// Mutation 1: the aggregator acks a shipment whose bytes never reach the
/// VFS at all. The ack vouches for durability it does not have; the
/// engine must report the member's full shadow extent as missing.
#[test]
fn ack_before_vfs_write_is_detected() {
    let (engine, report) = detect(SEED, |fs, c| async move {
        if c.rank() == 1 {
            // Member: record the logical write, bind it to shipment 1.
            vfs::guard::set_task(1);
            let shadow = fs.create_shadow("hb/mut.dat").expect("shadow handle");
            shadow.write_at(&[7u8; 40], 0).expect("shadow write");
            let _protocol = simmpi::enter_agg_protocol();
            c.send(0, AGG_SHIP_TAG_PREFIX, &ship_frame(1, &[7u8; 40]));
            c.recv(0, AGG_ACK_TAG_PREFIX).await;
        } else {
            // Aggregator: MUTATION — ack without writing a single byte.
            vfs::guard::set_task(0);
            c.recv(1, AGG_SHIP_TAG_PREFIX).await;
            let _protocol = simmpi::enter_agg_protocol();
            c.send(1, AGG_ACK_TAG_PREFIX, &ok_ack(1));
        }
    });
    let violations = engine.ack_violations();
    assert_eq!(violations.len(), 1, "exactly one ack violation:\n{report}");
    assert_eq!(violations[0].seq, 1);
    assert_eq!(violations[0].missing, (0, 40), "the whole extent is missing");
    assert!(engine.races().is_empty(), "no extent race in this mutation:\n{report}");
}

/// Mutation 2: the aggregator replays only part of the frame before
/// acking — the observable shape of a dropped `flush_pending` on the
/// write-behind path (the tail of the obligation never became durable).
/// The engine must name the missing byte subrange.
#[test]
fn partial_write_before_ack_is_detected() {
    let (engine, report) = detect(SEED, |fs, c| async move {
        if c.rank() == 1 {
            vfs::guard::set_task(1);
            let shadow = fs.create_shadow("hb/mut.dat").expect("shadow handle");
            shadow.write_at(&[9u8; 40], 0).expect("shadow write");
            let _protocol = simmpi::enter_agg_protocol();
            c.send(0, AGG_SHIP_TAG_PREFIX, &ship_frame(1, &[9u8; 40]));
            c.recv(0, AGG_ACK_TAG_PREFIX).await;
        } else {
            vfs::guard::set_task(0);
            let frame = c.recv(1, AGG_SHIP_TAG_PREFIX).await;
            // MUTATION: replay only the first half of the shipped bytes.
            let file = fs.create("hb/mut.dat").expect("create");
            file.write_at(&frame[8..28], 0).expect("partial replay");
            let _protocol = simmpi::enter_agg_protocol();
            c.send(1, AGG_ACK_TAG_PREFIX, &ok_ack(1));
        }
    });
    let violations = engine.ack_violations();
    assert_eq!(violations.len(), 1, "exactly one ack violation:\n{report}");
    assert_eq!(violations[0].missing, (20, 40), "the unflushed tail is missing");
}

/// Mutation 3: two members claim overlapping logical extents — both
/// shadow-write byte ranges that intersect, with no ordering between
/// them. The engine must report the pair as a race with both sites.
#[test]
fn overlapping_member_extents_are_detected() {
    let (engine, report) = detect(SEED, |fs, c| async move {
        vfs::guard::set_task(c.rank() as u64);
        let shadow = fs.create_shadow("hb/mut.dat").expect("shadow handle");
        // MUTATION: rank 0 claims [0, 40), rank 1 claims [20, 60).
        let offset = 20 * c.rank() as u64;
        shadow.write_at(&[c.rank() as u8 + 1; 40], offset).expect("shadow write");
        c.barrier().await;
    });
    let races = engine.races();
    assert_eq!(races.len(), 1, "exactly one extent race:\n{report}");
    let race = &races[0];
    assert_ne!(race.a.access.task, race.b.access.task, "both sites are reported");
    assert!(engine.ack_violations().is_empty(), "no ack violation in this mutation:\n{report}");

    // Golden pin: the seeded race report replays byte-identically, so it
    // can be held to a fixed rendering. Bless with SIMCHECK_BLESS=1.
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/hb_race_report.txt");
    if std::env::var_os("SIMCHECK_BLESS").is_some() {
        std::fs::write(golden, &report).expect("bless golden");
    } else {
        let want = std::fs::read_to_string(golden).expect("golden exists; SIMCHECK_BLESS=1 to create");
        assert_eq!(report, want, "seeded race report drifted from golden");
    }
}

//! Property tests: the write-behind buffer is invisible in the file.
//!
//! For random sequences of write sizes, a buffered writer and a
//! write-through writer must produce *byte-identical* physical files —
//! across plain/compressed and rescue on/off — and the result must read
//! back correctly through both the serial (`Multifile`) and parallel
//! (`SionParReader`) paths.

use proptest::prelude::*;
use simmpi::{Comm, World};
use sion::{
    paropen_read, paropen_write, Alignment, Multifile, SerialWriter, SionParams,
};
use vfs::{MemFs, Vfs};

/// Deterministic payload for the `i`-th write of `rank`.
fn payload(rank: usize, i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| ((rank * 97 + i * 31 + j) % 251) as u8).collect()
}

/// Every physical file of the multifile at `base`, as (name, bytes) pairs.
fn physical_bytes(fs: &MemFs, base: &str) -> Vec<(String, Vec<u8>)> {
    fs.list(base)
        .unwrap()
        .into_iter()
        .map(|name| {
            let f = fs.open(&name).unwrap();
            let mut buf = vec![0u8; f.len().unwrap() as usize];
            f.read_exact_at(&mut buf, 0).unwrap();
            (name, buf)
        })
        .collect()
}

/// Serially write `sizes`-shaped records for two ranks with the given
/// buffer capacity; returns the physical files.
fn serial_write(
    fs: &MemFs,
    sizes: &[usize],
    chunk: u64,
    compressed: bool,
    rescue: bool,
    write_buffer: u64,
) -> Vec<(String, Vec<u8>)> {
    let mut params = SionParams::new(0)
        .with_alignment(Alignment::Fixed(512))
        .with_write_buffer(write_buffer);
    params.compressed = compressed;
    params.rescue = rescue;
    let mut w = SerialWriter::create(fs, "mf.sion", &[chunk, chunk], &params).unwrap();
    for rank in 0..2 {
        w.select_rank(rank).unwrap();
        for (i, &len) in sizes.iter().enumerate() {
            w.write(&payload(rank, i, len)).unwrap();
        }
    }
    w.close().unwrap();
    physical_bytes(fs, "mf.sion")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Buffered and write-through serial writers emit identical physical
    /// files for every mode combination, and the buffered file reads back
    /// through the global serial view.
    #[test]
    fn buffered_serial_writes_are_byte_identical(
        sizes in prop::collection::vec(1usize..600, 1..25),
        chunk in 96u64..2048,
        write_buffer in 1u64..4096,
    ) {
        for compressed in [false, true] {
            for rescue in [false, true] {
                let fs_buf = MemFs::with_block_size(4096);
                let fs_thru = MemFs::with_block_size(4096);
                let buffered =
                    serial_write(&fs_buf, &sizes, chunk, compressed, rescue, write_buffer);
                let through = serial_write(&fs_thru, &sizes, chunk, compressed, rescue, 0);
                prop_assert_eq!(
                    &buffered, &through,
                    "mode compressed={} rescue={} diverged", compressed, rescue
                );

                // The buffered output must be a valid multifile whose
                // logical streams match what was written.
                let mf = Multifile::open(&fs_buf, "mf.sion").unwrap();
                for rank in 0..2 {
                    let logical = mf.read_rank(rank).unwrap();
                    let expect: Vec<u8> = sizes
                        .iter()
                        .enumerate()
                        .flat_map(|(i, &len)| payload(rank, i, len))
                        .collect();
                    prop_assert_eq!(&logical, &expect, "rank {} logical mismatch", rank);
                }
            }
        }
    }

    /// Same property through the collective path: parallel writers with
    /// per-task buffering produce the same physical files as write-through
    /// ones, and `SionParReader` recovers every task's stream.
    #[test]
    fn buffered_parallel_writes_are_byte_identical(
        sizes in prop::collection::vec(1usize..400, 1..15),
        rescue in any::<bool>(),
        write_buffer in 1u64..2048,
    ) {
        let ntasks = 3;
        let run = |buffer: u64| {
            let fs = MemFs::with_block_size(1024);
            let mut params = SionParams::new(1024).with_nfiles(2).with_write_buffer(buffer);
            params.rescue = rescue;
            World::run(ntasks, |comm| {
                let mut w = paropen_write(&fs, "p.sion", &params, comm).unwrap();
                for (i, &len) in sizes.iter().enumerate() {
                    w.write(&payload(comm.rank(), i, len)).unwrap();
                }
                w.close().unwrap();
            });
            fs
        };
        let fs_buf = run(write_buffer);
        let fs_thru = run(0);
        prop_assert_eq!(
            physical_bytes(&fs_buf, "p.sion"),
            physical_bytes(&fs_thru, "p.sion")
        );

        // Read the buffered multifile back collectively.
        let expect_of = |rank: usize| -> Vec<u8> {
            sizes.iter().enumerate().flat_map(|(i, &len)| payload(rank, i, len)).collect()
        };
        World::run(ntasks, |comm| {
            let mut r = paropen_read(&fs_buf, "p.sion", comm).unwrap();
            let mut back = Vec::new();
            let mut buf = [0u8; 97];
            loop {
                let n = r.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                back.extend_from_slice(&buf[..n]);
            }
            assert_eq!(back, expect_of(comm.rank()), "rank {}", comm.rank());
            r.close().unwrap();
        });
    }

    /// Explicit flushes at arbitrary points must not change the final
    /// file either (flush only forces durability, never layout).
    #[test]
    fn interleaved_flushes_do_not_change_the_file(
        sizes in prop::collection::vec(1usize..300, 1..15),
        flush_every in 1usize..5,
        write_buffer in 1u64..2048,
    ) {
        // Flushes interact with the codec in compressed mode (they cut
        // codec blocks), so this property is about the plain stream.
        let run = |buffer: u64, flush: bool| {
            let fs = MemFs::with_block_size(4096);
            let mut params = SionParams::new(0).with_write_buffer(buffer);
            params.rescue = true;
            let mut w = SerialWriter::create(&fs, "f.sion", &[512], &params).unwrap();
            for (i, &len) in sizes.iter().enumerate() {
                w.write(&payload(0, i, len)).unwrap();
                if flush && i % flush_every == 0 {
                    w.flush().unwrap();
                }
            }
            w.close().unwrap();
            physical_bytes(&fs, "f.sion")
        };
        let flushed = run(write_buffer, true);
        let unflushed = run(write_buffer, false);
        let through = run(0, false);
        prop_assert_eq!(&flushed, &unflushed);
        prop_assert_eq!(&flushed, &through);
    }
}

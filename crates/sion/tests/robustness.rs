//! Robustness of the on-disk format parsers: corrupted, truncated, and
//! random inputs must produce errors, never panics or bogus successes.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use simmpi::{Comm, World};
use sion::{paropen_write, Multifile, SionParams};
use vfs::{MemFs, Vfs};

fn valid_multifile(fs: &MemFs, rescue: bool) {
    World::run(4, |comm| {
        let mut params = SionParams::new(1024).with_nfiles(2);
        params.rescue = rescue;
        let mut w = paropen_write(fs, "v.sion", &params, comm).unwrap();
        w.write(&vec![comm.rank() as u8 + 1; 3000]).unwrap();
        w.close().unwrap();
    });
}

fn file_bytes(fs: &MemFs, path: &str) -> Vec<u8> {
    let f = fs.open(path).unwrap();
    let mut buf = vec![0u8; f.len().unwrap() as usize];
    f.read_exact_at(&mut buf, 0).unwrap();
    buf
}

fn write_file(fs: &MemFs, path: &str, bytes: &[u8]) {
    let f = fs.create(path).unwrap();
    f.write_all_at(bytes, 0).unwrap();
}

#[test]
fn every_single_byte_truncation_errors_cleanly() {
    let fs = MemFs::with_block_size(512);
    valid_multifile(&fs, false);
    let original = file_bytes(&fs, "v.sion");
    // Truncation at a sample of points across the file (every point would
    // be slow; step through).
    for cut in (0..original.len()).step_by(97) {
        let fs2 = MemFs::with_block_size(512);
        write_file(&fs2, "v.sion", &original[..cut]);
        write_file(&fs2, "v.sion.000001", &file_bytes(&fs, "v.sion.000001"));
        // Must not panic; almost always errors. (A cut at the very end can
        // leave a valid file only if it removes nothing.)
        let _ = Multifile::open(&fs2, "v.sion");
    }
}

#[test]
fn header_bit_flips_never_panic() {
    let fs = MemFs::with_block_size(512);
    valid_multifile(&fs, false);
    let original = file_bytes(&fs, "v.sion");
    let other = file_bytes(&fs, "v.sion.000001");
    // Flip every bit of the first 128 bytes (metablock 1 region) and a
    // sample through the rest; open + full read attempt must be panic-free.
    let mut points: Vec<usize> = (0..128.min(original.len())).collect();
    points.extend((128..original.len()).step_by(211));
    for at in points {
        for bit in [0u8, 3, 7] {
            let mut corrupted = original.clone();
            corrupted[at] ^= 1 << bit;
            let fs2 = MemFs::with_block_size(512);
            write_file(&fs2, "v.sion", &corrupted);
            write_file(&fs2, "v.sion.000001", &other);
            if let Ok(mf) = Multifile::open(&fs2, "v.sion") {
                for rank in 0..mf.ntasks().min(8) {
                    let _ = mf.read_rank(rank);
                }
            }
        }
    }
}

#[test]
fn trailer_corruption_is_detected() {
    let fs = MemFs::with_block_size(512);
    valid_multifile(&fs, false);
    let mut bytes = file_bytes(&fs, "v.sion");
    let len = bytes.len();
    // Point the trailer's metablock-2 offset somewhere bogus.
    bytes[len - 24..len - 16].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    let fs2 = MemFs::with_block_size(512);
    write_file(&fs2, "v.sion", &bytes);
    write_file(&fs2, "v.sion.000001", &file_bytes(&fs, "v.sion.000001"));
    assert!(Multifile::open(&fs2, "v.sion").is_err());
}

#[test]
fn mismatched_physical_files_rejected() {
    // File 0 of one multifile with file 1 of a *different* shape must not
    // silently combine.
    let fs_a = MemFs::with_block_size(512);
    valid_multifile(&fs_a, false);
    let fs_b = MemFs::with_block_size(512);
    World::run(6, |comm| {
        let params = SionParams::new(2048).with_nfiles(2);
        let mut w = paropen_write(&fs_b, "v.sion", &params, comm).unwrap();
        w.write(b"other shape").unwrap();
        w.close().unwrap();
    });
    let fs2 = MemFs::with_block_size(512);
    write_file(&fs2, "v.sion", &file_bytes(&fs_a, "v.sion"));
    write_file(&fs2, "v.sion.000001", &file_bytes(&fs_b, "v.sion.000001"));
    assert!(Multifile::open(&fs2, "v.sion").is_err());
}

#[test]
fn random_garbage_of_many_sizes_errors() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xFEED);
    for len in [0usize, 1, 7, 59, 60, 61, 500, 5000] {
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let fs = MemFs::with_block_size(512);
        write_file(&fs, "junk", &bytes);
        assert!(Multifile::open(&fs, "junk").is_err(), "len {len} accepted?!");
    }
}

#[test]
fn repair_on_garbage_never_panics() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xBAD);
    for len in [100usize, 1000, 4096] {
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let fs = MemFs::with_block_size(512);
        write_file(&fs, "junk", &bytes);
        assert!(sion::rescue::repair(&fs, "junk", false).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup prefixed with the right magic still fails
    /// structural validation rather than being accepted or panicking.
    #[test]
    fn magic_prefixed_garbage_rejected(body in prop::collection::vec(any::<u8>(), 0..2000)) {
        let mut bytes = b"RSIONv1\0".to_vec();
        bytes.extend_from_slice(&body);
        let fs = MemFs::with_block_size(512);
        write_file(&fs, "g", &bytes);
        prop_assert!(Multifile::open(&fs, "g").is_err());
    }

    /// Random corruption of a valid multifile: open/read never panics, and
    /// when it succeeds the data lengths stay within the advertised sizes.
    #[test]
    fn random_corruption_survivable(
        seed in any::<u64>(),
        nflips in 1usize..20,
    ) {
        let fs = MemFs::with_block_size(512);
        valid_multifile(&fs, false);
        let mut bytes = file_bytes(&fs, "v.sion");
        let other = file_bytes(&fs, "v.sion.000001");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..nflips {
            let at = rng.gen_range(0..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0..8);
        }
        let fs2 = MemFs::with_block_size(512);
        write_file(&fs2, "v.sion", &bytes);
        write_file(&fs2, "v.sion.000001", &other);
        if let Ok(mf) = Multifile::open(&fs2, "v.sion") {
            for rank in 0..mf.ntasks().min(8) {
                if let Ok(data) = mf.read_rank(rank) {
                    prop_assert!(data.len() <= 1 << 20, "absurd read length");
                }
            }
        }
    }
}

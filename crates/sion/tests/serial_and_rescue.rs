//! Serial API and rescue/repair integration tests: serial writer with
//! seek, global-view addressed reads, metadata introspection, and
//! reconstruction of lost metablocks from rescue headers.

use simmpi::{Comm, World};
use sion::rescue::{repair, RESCUE_HEADER_LEN};
use sion::{
    paropen_write, Alignment, Multifile, SerialWriter, SionError, SionParams,
};
use vfs::{MemFs, Vfs};

fn payload(rank: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 17 + rank * 97 + 3) % 253) as u8).collect()
}

#[test]
fn serial_writer_roundtrip() {
    let fs = MemFs::with_block_size(1024);
    let chunksizes = [500u64, 1500, 1000, 250];
    let params = SionParams::new(0).with_nfiles(2);
    let mut w = SerialWriter::create(&fs, "serial.sion", &chunksizes, &params).unwrap();
    for rank in 0..4 {
        w.select_rank(rank).unwrap();
        w.write(&payload(rank, 2000)).unwrap(); // spills over chunks
    }
    w.close().unwrap();

    let mf = Multifile::open(&fs, "serial.sion").unwrap();
    assert_eq!(mf.ntasks(), 4);
    assert_eq!(mf.locations().unwrap().nfiles, 2);
    for (rank, &req) in chunksizes.iter().enumerate() {
        assert_eq!(mf.read_rank(rank).unwrap(), payload(rank, 2000), "rank {rank}");
        assert_eq!(mf.locations().unwrap().tasks[rank].chunksize_req, req);
    }
}

#[test]
fn rank_reader_scan_is_zero_copy_on_memfs() {
    let fs = MemFs::with_block_size(1024);
    let chunksizes = [700u64, 300, 900];
    let params = SionParams::new(0);
    let mut w = SerialWriter::create(&fs, "scan.sion", &chunksizes, &params).unwrap();
    for rank in 0..3 {
        w.select_rank(rank).unwrap();
        w.write(&payload(rank, 1500)).unwrap();
    }
    w.close().unwrap();

    let mf = Multifile::open(&fs, "scan.sion").unwrap();
    for rank in 0..3 {
        let mut r = mf.rank_reader(rank).unwrap();
        let mut seen = Vec::new();
        let n = r.scan_remaining(&mut |piece| seen.extend_from_slice(piece)).unwrap();
        assert_eq!(n, 1500, "rank {rank}");
        assert_eq!(seen, payload(rank, 1500), "rank {rank}");
        let c = r.io_counters();
        assert_eq!(
            c.bytes_copied, 0,
            "rank {rank}: MemFs leases serve the whole scan without copying: {c:?}"
        );
    }
}

#[test]
fn serial_seek_positions_by_rank_chunk_pos() {
    let fs = MemFs::with_block_size(256);
    let params = SionParams::new(0).with_alignment(Alignment::None);
    let mut w = SerialWriter::create(&fs, "seek.sion", &[100, 100], &params).unwrap();
    // Paper Listing 3: seek to (rank, chunk, pos), then write.
    w.seek(1, 0, 10).unwrap();
    w.write_in_chunk(b"ten-in").unwrap();
    w.seek(0, 2, 0).unwrap();
    w.write_in_chunk(b"chunk2").unwrap();
    w.close().unwrap();

    let mf = Multifile::open(&fs, "seek.sion").unwrap();
    // Rank 1 block 0: 16 bytes used (high-water), first 10 are zeros.
    let binding = mf.locations().unwrap();
    let t1 = &binding.tasks[1];
    assert_eq!(t1.chunks[0].used, 16);
    let mut buf = vec![0u8; 16];
    assert_eq!(mf.read_at(1, 0, 0, &mut buf).unwrap(), 16);
    assert_eq!(&buf[..10], &[0u8; 10]);
    assert_eq!(&buf[10..], b"ten-in");
    // Rank 0 wrote only in chunk 2.
    let binding = mf.locations().unwrap();
    let t0 = &binding.tasks[0];
    assert_eq!(t0.chunks[0].used, 0);
    assert_eq!(t0.chunks[2].used, 6);
    let mut buf = vec![0u8; 6];
    assert_eq!(mf.read_at(0, 2, 0, &mut buf).unwrap(), 6);
    assert_eq!(&buf, b"chunk2");
    // Addressed read past the data is short.
    assert_eq!(mf.read_at(0, 2, 6, &mut buf).unwrap(), 0);
}

#[test]
fn locations_report_geometry() {
    let fs = MemFs::with_block_size(4096);
    World::run(6, |comm| {
        let params = SionParams::new(2000).with_nfiles(2);
        let mut w = paropen_write(&fs, "loc.sion", &params, comm).unwrap();
        w.write(&payload(comm.rank(), 100 * (comm.rank() + 1))).unwrap();
        w.close().unwrap();
    });
    let mf = Multifile::open(&fs, "loc.sion").unwrap();
    let loc = mf.locations().unwrap();
    assert_eq!(loc.ntasks, 6);
    assert_eq!(loc.nfiles, 2);
    assert_eq!(loc.fsblksize, 4096);
    let total: u64 = (1..=6).map(|k| 100 * k as u64).sum();
    assert_eq!(loc.total_stored_bytes(), total);
    for t in &loc.tasks {
        assert_eq!(t.capacity, 4096); // 2000 rounded up
        assert_eq!(t.stored_bytes, 100 * (t.global_rank as u64 + 1));
        // Chunk offsets must be block-aligned.
        for c in &t.chunks {
            assert_eq!(c.offset % 4096, 0);
        }
    }
}

#[test]
fn multifile_rejects_non_sion_files() {
    let fs = MemFs::new();
    let f = fs.create("junk").unwrap();
    f.write_all_at(b"this is not a multifile at all....", 0).unwrap();
    assert!(matches!(Multifile::open(&fs, "junk"), Err(SionError::Format(_))));
}

/// Simulate a crash: cut the file at the start of metablock 2, removing it
/// and the trailer (exactly what an interrupted close leaves behind).
fn truncate_metadata(fs: &MemFs, path: &str) {
    let f = fs.open_rw(path).unwrap();
    let len = f.len().unwrap();
    let mut trailer = [0u8; 24];
    f.read_exact_at(&mut trailer, len - 24).unwrap();
    let mb2_off = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
    f.set_len(mb2_off).unwrap();
}

#[test]
fn repair_reconstructs_lost_metablock2() {
    let fs = MemFs::with_block_size(512);
    let ntasks = 6;
    World::run(ntasks, |comm| {
        let params = SionParams::new(512).with_rescue();
        let mut w = paropen_write(&fs, "crash.sion", &params, comm).unwrap();
        w.write(&payload(comm.rank(), 300 * (comm.rank() + 1))).unwrap();
        w.close().unwrap();
    });

    // Sanity: opens fine before the crash.
    let before = Multifile::open(&fs, "crash.sion").unwrap();
    let stored_before: Vec<u64> =
        before.locations().unwrap().tasks.iter().map(|t| t.stored_bytes).collect();
    drop(before);

    truncate_metadata(&fs, "crash.sion");
    assert!(Multifile::open(&fs, "crash.sion").is_err(), "truncation must break the file");

    let report = repair(&fs, "crash.sion", false).unwrap();
    assert_eq!(report.files_scanned, 1);
    assert_eq!(report.files_repaired, 1);
    assert!(report.chunks_recovered > 0);

    let after = Multifile::open(&fs, "crash.sion").unwrap();
    let stored_after: Vec<u64> = after.locations().unwrap().tasks.iter().map(|t| t.stored_bytes).collect();
    assert_eq!(stored_after, stored_before);
    for rank in 0..ntasks {
        assert_eq!(after.read_rank(rank).unwrap(), payload(rank, 300 * (rank + 1)));
    }
}

#[test]
fn repair_recovers_flushed_data_from_buffered_crash() {
    // A buffered writer crashes (handle dropped, never closed): everything
    // up to the last explicit flush must be recoverable from the rescue
    // headers, while bytes still sitting in the write-behind buffer are
    // gone. The rescue patch is deferred to flush points, so this pins
    // down that flush really durably patches the headers.
    let fs = MemFs::with_block_size(512);
    let ntasks = 4;
    World::run(ntasks, |comm| {
        let params = SionParams::new(512).with_rescue().with_write_buffer(4096);
        let mut w = paropen_write(&fs, "bcrash.sion", &params, comm).unwrap();
        w.write(&payload(comm.rank(), 700)).unwrap();
        w.flush().unwrap();
        // Unflushed tail, smaller than the buffer: lost in the "crash".
        w.write(&payload(comm.rank(), 100)).unwrap();
        drop(w); // no close → no metablock 2, no trailer
    });

    assert!(Multifile::open(&fs, "bcrash.sion").is_err(), "crashed file must not open");
    let report = repair(&fs, "bcrash.sion", false).unwrap();
    assert_eq!(report.files_repaired, 1);
    assert!(report.chunks_recovered > 0);

    let mf = Multifile::open(&fs, "bcrash.sion").unwrap();
    for rank in 0..ntasks {
        assert_eq!(mf.read_rank(rank).unwrap(), payload(rank, 700), "rank {rank}");
    }
}

#[test]
fn repair_multifile_with_mixed_damage() {
    let fs = MemFs::with_block_size(512);
    World::run(8, |comm| {
        let params = SionParams::new(512).with_nfiles(2).with_rescue();
        let mut w = paropen_write(&fs, "mixed.sion", &params, comm).unwrap();
        w.write(&payload(comm.rank(), 900)).unwrap();
        w.close().unwrap();
    });
    // Damage only the second physical file.
    truncate_metadata(&fs, "mixed.sion.000001");

    let report = repair(&fs, "mixed.sion", false).unwrap();
    assert_eq!(report.files_scanned, 2);
    assert_eq!(report.files_intact, 1);
    assert_eq!(report.files_repaired, 1);

    let mf = Multifile::open(&fs, "mixed.sion").unwrap();
    for rank in 0..8 {
        assert_eq!(mf.read_rank(rank).unwrap(), payload(rank, 900));
    }
}

#[test]
fn repair_requires_rescue_flag() {
    let fs = MemFs::with_block_size(512);
    World::run(2, |comm| {
        let params = SionParams::new(512); // no rescue
        let mut w = paropen_write(&fs, "norescue.sion", &params, comm).unwrap();
        w.write(b"data").unwrap();
        w.close().unwrap();
    });
    assert!(matches!(repair(&fs, "norescue.sion", false), Err(SionError::Rescue(_))));
}

#[test]
fn forced_repair_matches_collective_close() {
    // With force=true, the rescue reconstruction must agree byte-for-byte
    // with what the collective close wrote.
    let fs = MemFs::with_block_size(256);
    World::run(4, |comm| {
        let params = SionParams::new(256).with_rescue();
        let mut w = paropen_write(&fs, "force.sion", &params, comm).unwrap();
        w.write(&payload(comm.rank(), 700)).unwrap();
        w.close().unwrap();
    });
    let before = Multifile::open(&fs, "force.sion").unwrap().locations().unwrap();
    let report = repair(&fs, "force.sion", true).unwrap();
    assert_eq!(report.files_repaired, 1);
    let after = Multifile::open(&fs, "force.sion").unwrap().locations().unwrap();
    assert_eq!(before, after);
}

#[test]
fn repair_multifile_with_partial_metablock_loss_across_files() {
    // Three physical files; files 0 and 2 lose their metablock 2, file 1
    // stays intact. Repair must fix exactly the damaged ones and leave a
    // fully readable multifile.
    let fs = MemFs::with_block_size(512);
    World::run(9, |comm| {
        let params = SionParams::new(512).with_nfiles(3).with_rescue();
        let mut w = paropen_write(&fs, "part.sion", &params, comm).unwrap();
        w.write(&payload(comm.rank(), 1100)).unwrap();
        w.close().unwrap();
    });
    truncate_metadata(&fs, "part.sion");
    truncate_metadata(&fs, "part.sion.000002");

    let report = repair(&fs, "part.sion", false).unwrap();
    assert_eq!(report.files_scanned, 3);
    assert_eq!(report.files_intact, 1);
    assert_eq!(report.files_repaired, 2);
    assert!(report.is_clean(), "{:?}", report.problems);

    let mf = Multifile::open(&fs, "part.sion").unwrap();
    for rank in 0..9 {
        assert_eq!(mf.read_rank(rank).unwrap(), payload(rank, 1100), "rank {rank}");
    }
}

#[test]
fn forced_repair_of_multifile_matches_collective_close() {
    // force=true over several physical files: the reconstruction must
    // agree with the clean close's metadata on every file.
    let fs = MemFs::with_block_size(256);
    World::run(6, |comm| {
        let params = SionParams::new(256).with_nfiles(2).with_rescue();
        let mut w = paropen_write(&fs, "mforce.sion", &params, comm).unwrap();
        w.write(&payload(comm.rank(), 500 + 100 * comm.rank())).unwrap();
        w.close().unwrap();
    });
    let before = Multifile::open(&fs, "mforce.sion").unwrap().locations().unwrap();
    let report = repair(&fs, "mforce.sion", true).unwrap();
    assert_eq!(report.files_scanned, 2);
    assert_eq!(report.files_repaired, 2);
    assert_eq!(report.files_intact, 0);
    let after = Multifile::open(&fs, "mforce.sion").unwrap().locations().unwrap();
    assert_eq!(before, after);
}

/// Read a file's entire contents (for byte-identity comparisons).
fn file_bytes(fs: &MemFs, path: &str) -> Vec<u8> {
    let f = fs.open(path).unwrap();
    let len = f.len().unwrap() as usize;
    let mut buf = vec![0u8; len];
    f.read_exact_at(&mut buf, 0).unwrap();
    buf
}

#[test]
fn repair_after_clean_close_is_byte_identical() {
    // The canonical trailing-block convention: a chunk merely entered via
    // ensure_free_space (nothing stored) does not count toward nblocks, on
    // the writer path and the repair path alike. Force-repairing a cleanly
    // closed multifile must therefore reproduce the files bit for bit.
    let fs = MemFs::with_block_size(256);
    World::run(4, |comm| {
        let params = SionParams::new(256).with_rescue();
        let mut w = paropen_write(&fs, "ident.sion", &params, comm).unwrap();
        w.write(&payload(comm.rank(), 300)).unwrap();
        if comm.rank() == 1 {
            // Advance into a fresh trailing chunk without writing to it.
            w.ensure_free_space(200).unwrap();
        }
        w.close().unwrap();
    });
    let before = file_bytes(&fs, "ident.sion");
    let report = repair(&fs, "ident.sion", true).unwrap();
    assert_eq!(report.files_repaired, 1);
    assert!(report.is_clean(), "{:?}", report.problems);
    assert_eq!(file_bytes(&fs, "ident.sion"), before, "repair must be byte-identical");
}

#[test]
fn repair_skips_unopenable_file_but_fixes_the_rest() {
    // Losing one physical file entirely costs that file's data only: the
    // others still repair, and the loss is reported as a problem.
    let fs = MemFs::with_block_size(512);
    World::run(4, |comm| {
        let params = SionParams::new(512).with_nfiles(2).with_rescue();
        let mut w = paropen_write(&fs, "gone.sion", &params, comm).unwrap();
        w.write(&payload(comm.rank(), 900)).unwrap();
        w.close().unwrap();
    });
    truncate_metadata(&fs, "gone.sion");
    fs.remove("gone.sion.000001").unwrap();

    let report = repair(&fs, "gone.sion", false).unwrap();
    assert_eq!(report.files_repaired, 1);
    assert!(!report.is_clean());
    assert!(report.problems.iter().any(|p| p.contains("cannot open")), "{:?}", report.problems);
}

#[test]
fn rescue_headers_have_expected_layout_overhead() {
    let fs = MemFs::with_block_size(4096);
    World::run(2, |comm| {
        let params = SionParams::new(4096).with_rescue();
        let mut w = paropen_write(&fs, "ovh.sion", &params, comm).unwrap();
        w.write(&[1u8; 10]).unwrap();
        w.close().unwrap();
    });
    let mf = Multifile::open(&fs, "ovh.sion").unwrap();
    let binding = mf.locations().unwrap();
    for t in &binding.tasks {
        // 4096 + 32 rounds to 2 blocks.
        assert_eq!(t.capacity, 8192);
        assert_eq!(t.usable, 8192 - RESCUE_HEADER_LEN);
    }
}

//! Metadata-format coverage for the chunk-index record and the lazy open:
//!
//! * **Golden backward compat**: a committed pre-index (v1) multifile —
//!   bytes pinned at the commit that introduced the v2 close — must still
//!   open, seek, read, and verify. A second test re-runs the golden
//!   workload through *today's* writer, downgrades the tail to v1 with
//!   [`MetaBlock2::write_to`], and byte-compares against the fixture, so
//!   any accidental change to the data region or to the v1 tail encoding
//!   shows up as a diff against committed bytes.
//! * **Index == linear walk**: for a spread of layouts (sparse seeks,
//!   empty ranks, multiple files) every seek answered through the v2
//!   chunk index must equal the same seek answered by the v1 linear path
//!   over the identical data region.
//! * **Torn-tail sweep**: the close writes `metablock 2 | index | trailer`
//!   as one tail; a crash can persist any prefix of it. Every such prefix
//!   must fail `Multifile::open` cleanly (the trailer is last, so a torn
//!   tail never looks closed), and a damaged index under an intact
//!   trailer must silently fall back to the linear metablock-2 path.
//! * **`max_blocks` semantics**: physical block count, trailing empty
//!   chunks included, equal to the metablock-2 `nblocks` header.

use sion::format::{MetaBlock2, Trailer, MAGIC_IDX};
use sion::{ChunkInfo, Locations, Multifile, SerialWriter, SionFlags, SionParams, TaskLocation};
use vfs::{MemFs, Vfs};

/// The golden fixture's payload generator (must not change: the fixture
/// bytes are committed).
fn golden_payload(rank: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 31 + rank * 131 + 7) % 251) as u8).collect()
}

const GOLDEN: [(&str, &[u8]); 2] = [
    ("golden_v1.sion", include_bytes!("golden/golden_v1.sion")),
    ("golden_v1.sion.000001", include_bytes!("golden/golden_v1.sion.000001")),
];

/// Load the committed fixture into a fresh in-memory filesystem.
fn golden_fs() -> MemFs {
    let fs = MemFs::with_block_size(512);
    for (name, bytes) in GOLDEN {
        let f = fs.create(name).unwrap();
        f.write_all_at(bytes, 0).unwrap();
    }
    fs
}

/// Re-run the exact workload the fixture was generated from: 4 tasks over
/// 2 physical files, 64-byte chunks, payload lengths 40 + 70·rank written
/// round-robin in ≤ 30-byte pieces.
fn golden_workload(fs: &MemFs) {
    let params = SionParams::new(64).with_nfiles(2);
    let ntasks = 4;
    let mut w = SerialWriter::create(fs, "golden_v1.sion", &vec![64; ntasks], &params).unwrap();
    let payloads: Vec<Vec<u8>> = (0..ntasks).map(|r| golden_payload(r, 40 + 70 * r)).collect();
    let mut off = vec![0usize; ntasks];
    loop {
        let mut progressed = false;
        for (r, p) in payloads.iter().enumerate() {
            let remaining = p.len() - off[r];
            if remaining == 0 {
                continue;
            }
            let take = remaining.min(30);
            w.select_rank(r).unwrap();
            w.write(&p[off[r]..off[r] + take]).unwrap();
            off[r] += take;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    w.close().unwrap();
}

fn file_bytes(fs: &MemFs, name: &str) -> Vec<u8> {
    let f = fs.open(name).unwrap();
    let mut buf = vec![0u8; f.len().unwrap() as usize];
    f.read_exact_at(&mut buf, 0).unwrap();
    buf
}

/// Rewrite one physical file's tail as a v1 (index-less) close would have:
/// decode its metablock 2, then `write_to` puts back `mb2 | v1 trailer`
/// and truncates the index away.
fn downgrade_to_v1(fs: &MemFs, name: &str) {
    let f = fs.open_rw(name).unwrap();
    let tr = Trailer::read_from(f.as_ref()).unwrap();
    assert!(tr.index.is_some(), "expected a v2 file before downgrade");
    let mut hdr = [0u8; 24];
    f.read_exact_at(&mut hdr, tr.mb2_off).unwrap();
    let n = u64::from_le_bytes(hdr[16..24].try_into().unwrap()) as usize;
    let mb2 = MetaBlock2::read_at(f.as_ref(), &tr, n).unwrap();
    mb2.write_to(f.as_ref(), tr.mb2_off, n).unwrap();
}

#[test]
fn golden_v1_fixture_opens_seeks_and_verifies() {
    let fs = golden_fs();
    let mf = Multifile::open(&fs, "golden_v1.sion").unwrap();
    assert_eq!(mf.ntasks(), 4);
    assert_eq!(mf.nfiles(), 2);

    for rank in 0..4 {
        let want = golden_payload(rank, 40 + 70 * rank);
        assert_eq!(mf.read_rank(rank).unwrap(), want, "rank {rank} payload");

        // Lazy per-rank fetch agrees with the eager directory.
        let t = mf.location(rank).unwrap();
        assert_eq!(t.stored_bytes, want.len() as u64);

        // Seeks across chunk boundaries resolve correctly on the v1
        // (index-less) decode path.
        for pos in [0u64, 1, 39, 63, 64, 65, (want.len() - 1) as u64] {
            let pos = pos.min(want.len() as u64 - 1);
            let (chunk, off) = mf.seek_logical(rank, pos).unwrap().unwrap();
            let mut b = [0u8; 1];
            assert_eq!(mf.read_at(rank, chunk, off, &mut b).unwrap(), 1);
            assert_eq!(b[0], want[pos as usize], "rank {rank} pos {pos}");
        }
        assert!(mf.seek_logical(rank, want.len() as u64).unwrap().is_none());
    }

    let all = mf.locations().unwrap();
    assert_eq!(all.max_blocks(), mf.max_blocks());

    let vr = sion_tools::verify(&fs, "golden_v1.sion").unwrap();
    assert!(vr.is_clean(), "golden fixture must verify clean: {:?}", vr.problems);
    assert_eq!(vr.tasks_ok, 4);
}

#[test]
fn current_writer_downgraded_to_v1_matches_golden_bytes() {
    let fs = MemFs::with_block_size(512);
    golden_workload(&fs);

    // Today's close writes a v2 tail; the fixture predates the index. The
    // data region and metablock 2 must be unchanged, so downgrading the
    // tail must reproduce the fixture bit for bit.
    for (name, want) in GOLDEN {
        downgrade_to_v1(&fs, name);
        let got = file_bytes(&fs, name);
        assert_eq!(got.len(), want.len(), "{name}: length drifted from the golden fixture");
        assert_eq!(got, want, "{name}: bytes drifted from the golden fixture");
    }
}

/// One layout of the equality sweep: write it, answer a spread of seeks
/// through the v2 index, downgrade the tail in place, answer the same
/// seeks through the v1 linear path, and require identical answers.
fn assert_indexed_seek_equals_linear(
    ntasks: usize,
    chunksize: u64,
    nfiles: u32,
    write: impl Fn(&mut SerialWriter),
) {
    let fs = MemFs::with_block_size(256);
    let params = SionParams::new(chunksize).with_nfiles(nfiles);
    let mut w =
        SerialWriter::create(&fs, "eq.sion", &vec![chunksize; ntasks], &params).unwrap();
    write(&mut w);
    w.close().unwrap();

    type Probe = (usize, u64, Option<(u64, u64)>);
    let seek_probe = |mf: &Multifile| -> Vec<Probe> {
        let mut probes = Vec::new();
        for rank in 0..ntasks {
            let total = mf.location(rank).unwrap().stored_bytes;
            // Probe boundaries, interiors, and one-past-the-end.
            let mut positions = vec![0, total / 3, total / 2, total.saturating_sub(1), total];
            for b in 1..=4u64 {
                positions.push(b * chunksize - 1);
                positions.push(b * chunksize);
            }
            positions.sort_unstable();
            positions.dedup();
            for pos in positions {
                probes.push((rank, pos, mf.seek_logical(rank, pos).unwrap()));
            }
        }
        probes
    };

    let mf = Multifile::open(&fs, "eq.sion").unwrap();
    let via_index = seek_probe(&mf);
    // The eager directory must agree with the lazy per-rank path too.
    let all = mf.locations().unwrap();
    for &(rank, pos, want) in &via_index {
        assert_eq!(all.tasks[rank].find_chunk(pos), want, "eager rank {rank} pos {pos}");
    }
    let payloads: Vec<Vec<u8>> = (0..ntasks).map(|r| mf.read_rank(r).unwrap()).collect();
    drop(mf);

    for name in multifile_names(&fs, "eq.sion") {
        downgrade_to_v1(&fs, &name);
    }
    let mf = Multifile::open(&fs, "eq.sion").unwrap();
    let via_linear = seek_probe(&mf);
    assert_eq!(via_index, via_linear, "index and linear walk disagree");
    for (r, p) in payloads.iter().enumerate() {
        assert_eq!(&mf.read_rank(r).unwrap(), p, "payload changed across downgrade");
    }
}

/// Physical file names of a multifile (base + numbered siblings).
fn multifile_names(fs: &MemFs, base: &str) -> Vec<String> {
    let mut names: Vec<String> =
        fs.list("").unwrap().into_iter().filter(|n| n.contains(base)).collect();
    names.sort();
    names
}

#[test]
fn indexed_seek_equals_linear_walk_across_layouts() {
    // Dense round-robin, several blocks per task.
    assert_indexed_seek_equals_linear(6, 96, 2, |w| {
        for round in 0..5 {
            for r in 0..6 {
                w.select_rank(r).unwrap();
                w.write(&vec![r as u8; 40 + 13 * round]).unwrap();
            }
        }
    });
    // Skewed: one heavy task, one empty task, tiny chunks.
    assert_indexed_seek_equals_linear(4, 64, 1, |w| {
        w.select_rank(0).unwrap();
        w.write(&[7u8; 500]).unwrap();
        w.select_rank(2).unwrap();
        w.write(&[9u8; 30]).unwrap();
        // rank 1 and 3 never write
    });
    // Sparse seeks: holes inside a task's stream (zero-used middle chunk).
    assert_indexed_seek_equals_linear(3, 128, 2, |w| {
        w.seek(0, 0, 0).unwrap();
        w.write(&[1u8; 100]).unwrap();
        w.seek(0, 2, 0).unwrap(); // skip block 1 entirely
        w.write(&[2u8; 50]).unwrap();
        w.seek(1, 0, 0).unwrap();
        w.write(&[3u8; 300]).unwrap();
    });
    // Pseudo-random piecewise writes, many tasks in one file.
    assert_indexed_seek_equals_linear(9, 80, 1, |w| {
        let mut x = 0x5105_2009u64;
        for _ in 0..60 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (x >> 33) as usize % 9;
            let len = 1 + ((x >> 17) as usize % 120);
            w.select_rank(r).unwrap();
            w.write(&vec![(x >> 7) as u8; len]).unwrap();
        }
    });
}

#[test]
fn every_torn_tail_prefix_fails_open_cleanly() {
    let fs = MemFs::with_block_size(256);
    let params = SionParams::new(64).with_nfiles(1);
    let mut w = SerialWriter::create(&fs, "torn.sion", &[64; 3], &params).unwrap();
    for r in 0..3 {
        w.select_rank(r).unwrap();
        w.write(&golden_payload(r, 120 + 40 * r)).unwrap();
    }
    w.close().unwrap();

    let clean = file_bytes(&fs, "torn.sion");
    let f = fs.open("torn.sion").unwrap();
    let tail_start = Trailer::read_from(f.as_ref()).unwrap().mb2_off as usize;
    drop(f);

    // A crash during the close persists `clean[..tail_start + k]` for some
    // k < tail length. No such prefix may look like a closed file: the
    // trailer comes last in the single tail write.
    for k in 0..clean.len() - tail_start {
        let tfs = MemFs::with_block_size(256);
        let tf = tfs.create("torn.sion").unwrap();
        tf.write_all_at(&clean[..tail_start + k], 0).unwrap();
        match Multifile::open(&tfs, "torn.sion") {
            Err(_) => {}
            Ok(_) => panic!("torn tail (kept {k} of {} bytes) opened", clean.len() - tail_start),
        }
    }

    // The complete tail opens and round-trips.
    let tfs = MemFs::with_block_size(256);
    let tf = tfs.create("torn.sion").unwrap();
    tf.write_all_at(&clean, 0).unwrap();
    let mf = Multifile::open(&tfs, "torn.sion").unwrap();
    for r in 0..3 {
        assert_eq!(mf.read_rank(r).unwrap(), golden_payload(r, 120 + 40 * r));
    }
}

#[test]
fn damaged_index_under_intact_trailer_falls_back_to_linear_path() {
    let fs = MemFs::with_block_size(256);
    let params = SionParams::new(64).with_nfiles(1);
    let mut w = SerialWriter::create(&fs, "dmg.sion", &[64; 4], &params).unwrap();
    for r in 0..4 {
        w.select_rank(r).unwrap();
        w.write(&golden_payload(r, 50 + 60 * r)).unwrap();
    }
    w.close().unwrap();

    let f = fs.open_rw("dmg.sion").unwrap();
    let tr = Trailer::read_from(f.as_ref()).unwrap();
    let (idx_off, _) = tr.index.expect("v2 close writes an index");
    // Sanity: the index magic really is where the trailer says.
    let mut magic = [0u8; 8];
    f.read_exact_at(&mut magic, idx_off).unwrap();
    assert_eq!(magic, MAGIC_IDX);
    // Smash it; the trailer stays valid.
    f.write_all_at(b"????????", idx_off).unwrap();
    drop(f);

    let mf = Multifile::open(&fs, "dmg.sion").unwrap();
    for r in 0..4 {
        let want = golden_payload(r, 50 + 60 * r);
        assert_eq!(mf.read_rank(r).unwrap(), want, "rank {r} via linear fallback");
        let (chunk, off) = mf.seek_logical(r, want.len() as u64 - 1).unwrap().unwrap();
        let mut b = [0u8; 1];
        mf.read_at(r, chunk, off, &mut b).unwrap();
        assert_eq!(b[0], *want.last().unwrap());
    }
    let vr = sion_tools::verify(&fs, "dmg.sion").unwrap();
    assert!(vr.is_clean(), "fallback must verify clean: {:?}", vr.problems);
}

#[test]
fn max_blocks_counts_trailing_empty_chunks() {
    // File-level: a clean close where one task spans 3 blocks and another
    // only 1 leaves the short task with trailing zero-use chunks; the
    // physical block count must come back undiminished and must equal the
    // metablock-2 header on every API.
    // 64-byte fs blocks so the aligned chunk capacity stays exactly 64.
    let fs = MemFs::with_block_size(64);
    let params = SionParams::new(64).with_nfiles(1);
    let mut w = SerialWriter::create(&fs, "mb.sion", &[64; 2], &params).unwrap();
    w.select_rank(0).unwrap();
    w.write(&[1u8; 150]).unwrap(); // 3 blocks: 64 + 64 + 22
    w.select_rank(1).unwrap();
    w.write(&[2u8; 10]).unwrap(); // 1 block, then 2 trailing empty chunks
    w.close().unwrap();

    let mf = Multifile::open(&fs, "mb.sion").unwrap();
    assert_eq!(mf.max_blocks(), 3);
    let short = mf.location(1).unwrap();
    assert_eq!(short.chunks.len(), 3, "one ChunkInfo per physical block");
    assert_eq!(short.chunks[1].used, 0);
    assert_eq!(short.chunks[2].used, 0);
    let all = mf.locations().unwrap();
    assert_eq!(all.max_blocks(), 3, "trailing empty chunks count");
    assert_eq!(all.max_blocks(), mf.max_blocks());

    // Expression-level regression: the old implementation filtered
    // `used > 0`, so a directory whose deepest task ends in an empty chunk
    // reported one block too few.
    let loc = Locations {
        ntasks: 1,
        nfiles: 1,
        fsblksize: 256,
        flags: SionFlags::empty(),
        tasks: vec![TaskLocation {
            global_rank: 0,
            file: 0,
            ltask: 0,
            chunksize_req: 64,
            capacity: 64,
            usable: 64,
            chunks: vec![
                ChunkInfo { block: 0, offset: 0, used: 64 },
                ChunkInfo { block: 1, offset: 64, used: 0 },
            ],
            cum: vec![64, 64],
            stored_bytes: 64,
        }],
    };
    assert_eq!(loc.max_blocks(), 2, "trailing empty block must be visible");
}

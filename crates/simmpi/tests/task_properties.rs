//! Property tests: the coroutine task runtime must be byte-identical to
//! the thread-per-rank runtime it supersedes, collective by collective.
//!
//! Four independent executions of the same script are compared for random
//! world sizes, roots, and per-rank payload lengths:
//!
//! * [`TaskWorld`] — tree collectives as resumable tasks on the
//!   work-stealing executor (the new default path);
//! * [`FlatTaskWorld`] — flat collectives as tasks (baseline);
//! * [`World`] — tree collectives thread-per-rank, driven through the
//!   [`BlockingRef`] bridge so the *same* async script bytes run;
//! * [`FlatWorld`] — the original flat thread runtime.
//!
//! Scheduling freedom (work stealing, seeded serial replay, preemption
//! bounds) must never change one bit of any rank's output.

use proptest::prelude::*;
use simmpi::{
    drive_ready, BlockingRef, CoComm, FlatTaskWorld, FlatWorld, ReduceOp, SchedPolicy, TaskWorld,
    World,
};

/// Splitmix-style generator so every rank's payload is a pure function of
/// (seed, rank) — all four runtimes then see identical inputs by
/// construction.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic payload for one rank: pseudo-random length in
/// `0..=max_len` (length 0 included — empty contributions must survive the
/// framing), pseudo-random bytes.
fn payload(seed: u64, rank: usize, max_len: usize) -> Vec<u8> {
    let mut s = seed ^ (rank as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
    let len = (mix(&mut s) as usize) % (max_len + 1);
    (0..len).map(|_| mix(&mut s) as u8).collect()
}

const WS4: SchedPolicy = SchedPolicy::WorkSteal { workers: 4 };

// Each script is written once against `CoComm` and executed verbatim by
// all four runtimes (standalone `async fn`s: closures returning futures
// that borrow their argument cannot name the needed lifetime).

async fn bcast_script(c: &dyn CoComm, seed: u64, root: usize) -> Vec<u8> {
    c.bcast((c.rank() == root).then(|| payload(seed, root, 96)), root).await
}

async fn gatherv_script(c: &dyn CoComm, seed: u64, root: usize) -> Option<Vec<Vec<u8>>> {
    let mine = payload(seed, c.rank(), 64);
    c.gather(&mine, root).await
}

async fn scatterv_script(c: &dyn CoComm, seed: u64, root: usize) -> Vec<u8> {
    let parts = (c.rank() == root)
        .then(|| (0..c.size()).map(|i| payload(seed, i, 48)).collect::<Vec<_>>());
    c.scatter(parts, root).await
}

async fn reduce_script(c: &dyn CoComm, seed: u64, op: ReduceOp, root: usize) -> Option<u64> {
    let mut s = seed ^ c.rank() as u64;
    // Keep the values small enough that Sum cannot overflow.
    c.reduce_u64(mix(&mut s) >> 16, op, root).await
}

async fn allgather_barrier_script(c: &dyn CoComm, seed: u64) -> Vec<Vec<Vec<u8>>> {
    let mut out = Vec::new();
    for round in 0..3u64 {
        let mine = payload(seed ^ round, c.rank(), 32);
        out.push(c.allgather(&mine).await);
        c.barrier().await;
    }
    out
}

/// One pass over every collective in the §3.1 protocol's working set:
/// bcast, variable-length gather, variable-length scatter, reduce,
/// barrier, allgather — written once against [`CoComm`] and executed
/// verbatim by all four runtimes.
async fn all_ops_script(
    c: &dyn CoComm,
    seed: u64,
    root: usize,
) -> (Vec<u8>, Option<Vec<Vec<u8>>>, Vec<u8>, Option<u64>, Vec<Vec<u8>>) {
    let n = c.size();
    let bc = c.bcast((c.rank() == root).then(|| payload(seed, root, 96)), root).await;
    let mine = payload(seed ^ 1, c.rank(), 64);
    let gathered = c.gather(&mine, root).await;
    let parts = (c.rank() == root)
        .then(|| (0..n).map(|i| payload(seed ^ 2, i, 48)).collect::<Vec<_>>());
    let scattered = c.scatter(parts, root).await;
    let mut s = seed ^ c.rank() as u64;
    // Keep the values small enough that Sum cannot overflow.
    let reduced = c.reduce_u64(mix(&mut s) >> 16, ReduceOp::Sum, root).await;
    c.barrier().await;
    let all = c.allgather(&mine).await;
    (bc, gathered, scattered, reduced, all)
}

/// Repeated gather/scatter rounds with *shrinking* payloads: from round 1
/// on, every frame the pooled runtimes build fits inside a recycled
/// (dirty) buffer from an earlier round, so any stale-tail or stale-length
/// leak in the frame pool shows up as a byte mismatch against the
/// fresh-allocation runtimes.
async fn recycled_frames_script(
    c: &dyn CoComm,
    seed: u64,
    root: usize,
) -> Vec<(Option<Vec<Vec<u8>>>, Vec<u8>)> {
    let mut out = Vec::new();
    for round in 0..6u64 {
        let max = 96usize >> round.min(5);
        let mine = payload(seed ^ round, c.rank(), max);
        let gathered = c.gather(&mine, root).await;
        let parts = (c.rank() == root)
            .then(|| (0..c.size()).map(|i| payload(!seed ^ round, i, max)).collect::<Vec<_>>());
        let scattered = c.scatter(parts, root).await;
        c.barrier().await;
        out.push((gathered, scattered));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// bcast: every rank of every runtime receives the root's bytes.
    #[test]
    fn bcast_matches_thread_runtime(n in 1usize..65, root_sel in any::<u64>(), seed in any::<u64>()) {
        let root = (root_sel as usize) % n;
        let task = TaskWorld::run_with(WS4, n, |c| async move { bcast_script(&c, seed, root).await }).0;
        let thread = World::run(n, |c| drive_ready(bcast_script(&BlockingRef(c), seed, root)));
        let flat_task = FlatTaskWorld::run(n, |c| async move { bcast_script(&c, seed, root).await });
        let flat = FlatWorld::run(n, |c| drive_ready(bcast_script(&BlockingRef(c), seed, root)));
        prop_assert_eq!(&task, &thread, "task tree vs thread tree");
        prop_assert_eq!(&task, &flat_task, "tree vs flat tasks");
        prop_assert_eq!(&task, &flat, "task tree vs thread flat");
        prop_assert!(task.iter().all(|b| *b == payload(seed, root, 96)));
    }

    /// gatherv: the root's collected vector (rank order, lengths, bytes)
    /// is identical across runtimes; non-roots get None in all of them.
    #[test]
    fn gatherv_matches_thread_runtime(n in 1usize..65, root_sel in any::<u64>(), seed in any::<u64>()) {
        let root = (root_sel as usize) % n;
        let task = TaskWorld::run_with(WS4, n, |c| async move { gatherv_script(&c, seed, root).await }).0;
        let thread = World::run(n, |c| drive_ready(gatherv_script(&BlockingRef(c), seed, root)));
        let flat_task = FlatTaskWorld::run(n, |c| async move { gatherv_script(&c, seed, root).await });
        prop_assert_eq!(&task, &thread);
        prop_assert_eq!(&task, &flat_task);
        let at_root = task[root].as_ref().expect("root receives the gather");
        prop_assert_eq!(at_root.len(), n);
        for (r, part) in at_root.iter().enumerate() {
            prop_assert_eq!(part, &payload(seed, r, 64));
        }
    }

    /// scatterv: each rank receives exactly its part of the root's
    /// variable-length distribution, on every runtime.
    #[test]
    fn scatterv_matches_thread_runtime(n in 1usize..65, root_sel in any::<u64>(), seed in any::<u64>()) {
        let root = (root_sel as usize) % n;
        let task = TaskWorld::run_with(WS4, n, |c| async move { scatterv_script(&c, seed, root).await }).0;
        let thread = World::run(n, |c| drive_ready(scatterv_script(&BlockingRef(c), seed, root)));
        let flat_task = FlatTaskWorld::run(n, |c| async move { scatterv_script(&c, seed, root).await });
        prop_assert_eq!(&task, &thread);
        prop_assert_eq!(&task, &flat_task);
        for (r, part) in task.iter().enumerate() {
            prop_assert_eq!(part, &payload(seed, r, 48));
        }
    }

    /// reduce: the combining fan-in agrees for every op, root, and world
    /// size.
    #[test]
    fn reduce_matches_thread_runtime(n in 1usize..65, root_sel in any::<u64>(), op_sel in any::<u64>(), seed in any::<u64>()) {
        let root = (root_sel as usize) % n;
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min][(op_sel as usize) % 3];
        let task = TaskWorld::run_with(WS4, n, |c| async move { reduce_script(&c, seed, op, root).await }).0;
        let thread = World::run(n, |c| drive_ready(reduce_script(&BlockingRef(c), seed, op, root)));
        let flat_task = FlatTaskWorld::run(n, |c| async move { reduce_script(&c, seed, op, root).await });
        prop_assert_eq!(&task, &thread);
        prop_assert_eq!(&task, &flat_task);
        prop_assert!(task[root].is_some());
    }

    /// allgather + barrier rounds: repeated phases stay rank-ordered and
    /// identical across runtimes (the barrier is what separates rounds, so
    /// a broken one shows up as cross-round bleed in the sanitizer or as a
    /// mismatch here).
    #[test]
    fn allgather_barrier_rounds_match_thread_runtime(n in 1usize..65, seed in any::<u64>()) {
        let task = TaskWorld::run_with(WS4, n, |c| async move { allgather_barrier_script(&c, seed).await }).0;
        let thread = World::run(n, |c| drive_ready(allgather_barrier_script(&BlockingRef(c), seed)));
        let flat_task = FlatTaskWorld::run(n, |c| async move { allgather_barrier_script(&c, seed).await });
        prop_assert_eq!(&task, &thread);
        prop_assert_eq!(&task, &flat_task);
        prop_assert!(task.iter().all(|rounds| rounds == &task[0]));
    }

    /// The whole working set in one pass, with the task side driven by a
    /// random seeded serial schedule under a random preemption bound:
    /// scheduling choice must never leak into any rank's bytes.
    #[test]
    fn serial_schedules_match_thread_runtime(n in 1usize..33, root_sel in any::<u64>(), seed in any::<u64>(), sched_seed in any::<u64>(), bound in 0usize..3) {
        let root = (root_sel as usize) % n;
        let serial = SchedPolicy::Serial { seed: sched_seed, preemption_bound: bound };
        let task = TaskWorld::run_with(serial, n, |c| async move {
            all_ops_script(&c, seed, root).await
        }).0;
        let stolen = TaskWorld::run_with(WS4, n, |c| async move {
            all_ops_script(&c, seed, root).await
        }).0;
        let thread = World::run(n, |c| drive_ready(all_ops_script(&BlockingRef(c), seed, root)));
        prop_assert_eq!(&task, &thread, "serial tasks vs threads");
        prop_assert_eq!(&task, &stolen, "serial vs work-stealing");
    }

    /// Pooled vs fresh-allocation frames: steady-state rounds that provably
    /// reuse recycled (dirty) frame buffers in the pooled tree runtimes
    /// produce gather/scatter results identical to the flat runtimes, whose
    /// collectives allocate fresh per round.
    #[test]
    fn pooled_frames_match_fresh_allocation_runtimes(n in 2usize..49, root_sel in any::<u64>(), seed in any::<u64>()) {
        let root = (root_sel as usize) % n;
        let (task, stats) = TaskWorld::run_with(WS4, n, |c| async move {
            recycled_frames_script(&c, seed, root).await
        });
        let thread = World::run(n, |c| drive_ready(recycled_frames_script(&BlockingRef(c), seed, root)));
        let flat_task = FlatTaskWorld::run(n, |c| async move {
            recycled_frames_script(&c, seed, root).await
        });
        let flat = FlatWorld::run(n, |c| drive_ready(recycled_frames_script(&BlockingRef(c), seed, root)));
        prop_assert_eq!(&task, &thread, "pooled task tree vs pooled thread tree");
        prop_assert_eq!(&task, &flat_task, "pooled tree vs flat tasks");
        prop_assert_eq!(&task, &flat, "pooled tree vs flat threads");
        // The property is vacuous unless frames actually cycled through the
        // pool: with >= 2 ranks and 6 rounds the task runtime must have
        // reused at least one recycled buffer.
        prop_assert!(stats.frame_reuses > 0, "no frame reuse: allocs={} reuses={}", stats.frame_allocs, stats.frame_reuses);
    }
}

//! Property tests: the binomial-tree collectives must be byte-identical
//! to the flat slot-and-barrier implementation they replaced.
//!
//! [`FlatWorld`] is kept in-tree precisely as an independent executable
//! reference: for random world sizes (1..=64 ranks), roots, and per-rank
//! payload lengths, both runtimes execute the same collective script and
//! their full per-rank outputs are compared — including on communicators
//! produced by `split`.

use proptest::prelude::*;
use simmpi::{Comm, FlatWorld, ReduceOp, World};

/// Splitmix-style generator so every rank's payload is a pure function of
/// (seed, rank) — both runtimes then see identical inputs by construction.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic payload for one rank: pseudo-random length in
/// `0..=max_len` (length 0 included — empty contributions must survive the
/// framing), pseudo-random bytes.
fn payload(seed: u64, rank: usize, max_len: usize) -> Vec<u8> {
    let mut s = seed ^ (rank as u64).wrapping_mul(0x2545_F491_4F6C_DD1D);
    let len = (mix(&mut s) as usize) % (max_len + 1);
    (0..len).map(|_| mix(&mut s) as u8).collect()
}

fn u64s(seed: u64, rank: usize, max_len: usize) -> Vec<u64> {
    let mut s = seed ^ (rank as u64).wrapping_mul(0x6A09_E667_F3BC_C909);
    let len = (mix(&mut s) as usize) % (max_len + 1);
    (0..len).map(|_| mix(&mut s)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// bcast: every rank of both runtimes receives the root's bytes.
    #[test]
    fn bcast_matches_flat_reference(n in 1usize..65, root_sel in any::<u64>(), seed in any::<u64>()) {
        let root = (root_sel as usize) % n;
        let script = move |c: &dyn Comm| {
            let mine = (c.rank() == root).then(|| payload(seed, root, 96));
            c.bcast(mine, root)
        };
        let tree = World::run(n, |c| script(c));
        let flat = FlatWorld::run(n, |c| script(c));
        prop_assert_eq!(&tree, &flat);
        prop_assert!(tree.iter().all(|b| *b == payload(seed, root, 96)));
    }

    /// gather: the root's collected vector is identical across runtimes
    /// (rank order, lengths, bytes); non-roots get None in both.
    #[test]
    fn gather_matches_flat_reference(n in 1usize..65, root_sel in any::<u64>(), seed in any::<u64>()) {
        let root = (root_sel as usize) % n;
        let script = move |c: &dyn Comm| c.gather(&payload(seed, c.rank(), 64), root);
        let tree = World::run(n, |c| script(c));
        let flat = FlatWorld::run(n, |c| script(c));
        prop_assert_eq!(&tree, &flat);
        let at_root = tree[root].as_ref().expect("root receives the gather");
        prop_assert_eq!(at_root.len(), n);
    }

    /// gather_u64s: variable-length word vectors (the close-time usage
    /// exchange shape) survive the tree framing exactly.
    #[test]
    fn gather_u64s_matches_flat_reference(n in 1usize..65, root_sel in any::<u64>(), seed in any::<u64>()) {
        let root = (root_sel as usize) % n;
        let script = move |c: &dyn Comm| c.gather_u64s(&u64s(seed, c.rank(), 9), root);
        let tree = World::run(n, |c| script(c));
        let flat = FlatWorld::run(n, |c| script(c));
        prop_assert_eq!(&tree, &flat);
    }

    /// allgather_u64: every rank of both runtimes assembles the same
    /// rank-ordered vector (exercises the gather+bcast composition at
    /// non-powers of two).
    #[test]
    fn allgather_u64_matches_flat_reference(n in 1usize..65, seed in any::<u64>()) {
        let script = move |c: &dyn Comm| {
            let mut s = seed ^ c.rank() as u64;
            c.allgather_u64(mix(&mut s))
        };
        let tree = World::run(n, |c| script(c));
        let flat = FlatWorld::run(n, |c| script(c));
        prop_assert_eq!(&tree, &flat);
        prop_assert!(tree.iter().all(|v| v == &tree[0]));
    }

    /// reduce: the combining fan-in agrees with the flat gather-and-fold
    /// for every op, root, and world size.
    #[test]
    fn reduce_matches_flat_reference(n in 1usize..65, root_sel in any::<u64>(), op_sel in any::<u64>(), seed in any::<u64>()) {
        let root = (root_sel as usize) % n;
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min][(op_sel as usize) % 3];
        let script = move |c: &dyn Comm| {
            let mut s = seed ^ c.rank() as u64;
            // Keep the values small enough that Sum cannot overflow.
            c.reduce_u64(mix(&mut s) >> 16, op, root)
        };
        let tree = World::run(n, |c| script(c));
        let flat = FlatWorld::run(n, |c| script(c));
        prop_assert_eq!(&tree, &flat);
        prop_assert!(tree[root].is_some());
    }

    /// After split: collectives on the sub-communicators agree between
    /// runtimes — the tree shapes rebuild correctly for every group size
    /// that color assignment produces.
    #[test]
    fn split_collectives_match_flat_reference(n in 1usize..65, ncolors in 1usize..5, seed in any::<u64>()) {
        let script = move |c: &dyn Comm| {
            let sub = c.split((c.rank() % ncolors) as u64, c.rank() as u64);
            let gathered = sub.gather(&payload(seed, c.rank(), 48), 0);
            let bc = sub.bcast((sub.rank() == 0).then(|| payload(!seed, c.rank(), 32)), 0);
            let all = sub.allgather_u64(c.rank() as u64);
            let red = sub.reduce_u64(c.rank() as u64, ReduceOp::Max, 0);
            (sub.rank(), sub.size(), gathered, bc, all, red)
        };
        let tree = World::run(n, |c| script(c));
        let flat = FlatWorld::run(n, |c| script(c));
        prop_assert_eq!(&tree, &flat);
        // Sanity on the sub-allgather: each rank sees exactly its color's
        // members in ascending global-rank order.
        for (r, (_, _, _, _, all, _)) in tree.iter().enumerate() {
            let expect: Vec<u64> = (0..n as u64).filter(|x| x % ncolors as u64 == (r % ncolors) as u64).collect();
            prop_assert_eq!(all, &expect);
        }
    }
}

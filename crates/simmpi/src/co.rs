//! [`CoComm`]: the resumable (coroutine-style) communicator abstraction.
//!
//! The task runtime ([`crate::task`]) executes ranks as cooperatively
//! scheduled state machines, so its communicator methods cannot block the
//! worker thread — they return futures that park on mailbox receives and
//! collective rounds. `CoComm` is the object-safe trait for that: the
//! async twin of [`Comm`], with the same payload conventions, collective
//! contract, reserved tag namespace and [`CommStats`] accounting.
//!
//! Protocol code written against `&dyn CoComm` (the `sion` crate's
//! collective open/close) runs unchanged on **both** worlds:
//!
//! * on the task runtime, the futures genuinely suspend and the scheduler
//!   interleaves thousands of ranks per worker thread;
//! * on the thread-backed runtimes, [`BlockingComm`]/[`BlockingRef`] wrap
//!   any [`Comm`] into a `CoComm` whose futures complete on first poll
//!   (the wrapped blocking call runs *inside* `poll`, on the rank's own
//!   thread, exactly where the direct call used to happen), and
//!   [`drive_ready`] retires such a future with a single poll.
//!
//! This is how the public blocking API keeps working unchanged while the
//! task runtime drives the same protocol state machines.

use crate::comm::{bytes_to_u64s, Comm, CommStats, ReduceOp};
use std::future::{ready, Future};
use std::pin::Pin;
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

/// Boxed future returned by [`CoComm`] methods.
pub type BoxFut<'a, T> = Pin<Box<dyn Future<Output = T> + Send + 'a>>;

/// Shared allgather result: every rank's contribution in one refcounted,
/// rank-ordered frame that is scanned in place instead of materialized as
/// per-rank vectors.
///
/// [`CoComm::allgather`] hands every rank its own `Vec<Vec<u8>>` — P
/// allocations per rank, O(P²) across the world. The §3.1 protocol only
/// ever *scans* its allgather results (membership filters in `split`,
/// failure-flag reductions in the collective open), so at 64Ki ranks that
/// materialization is pure waste and dominates the open. `AllGathered` is
/// the scan-shaped alternative: runtimes whose ranks share memory return
/// `Arc` clones of a single frame, making the whole collective O(1)
/// allocations per rank; cloning the handle clones the `Arc`.
#[derive(Clone)]
pub struct AllGathered {
    /// `crate::wire::frame` encoding, entries in rank order with id = rank.
    frame: Arc<Vec<u8>>,
}

impl AllGathered {
    /// Wrap a frame produced by the tree gather (entries already in rank
    /// order, ids equal to ranks).
    pub(crate) fn from_frame(frame: Arc<Vec<u8>>) -> AllGathered {
        AllGathered { frame }
    }

    /// Build from per-rank parts — the copying fallback for runtimes
    /// without shared memory between ranks (the blocking adapters).
    pub fn from_parts(parts: &[Vec<u8>]) -> AllGathered {
        let entries: Vec<(u64, &[u8])> =
            parts.iter().enumerate().map(|(r, p)| (r as u64, p.as_slice())).collect();
        AllGathered { frame: Arc::new(crate::wire::frame(&entries)) }
    }

    /// Number of contributions (the communicator size).
    pub fn len(&self) -> usize {
        u64::from_le_bytes(self.frame[..8].try_into().expect("frame header")) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rank-ordered contributions, borrowed from the shared frame.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[u8]> + '_ {
        crate::wire::frame_iter(&self.frame).map(|(_, p)| p)
    }

    /// Materialize per-rank vectors (the classic allgather shape).
    pub fn to_parts(&self) -> Vec<Vec<u8>> {
        self.iter().map(|p| p.to_vec()).collect()
    }
}

/// A communicator whose blocking operations are futures; the async twin of
/// [`Comm`] (same semantics, rank-ordering and payload conventions — see
/// the corresponding [`Comm`] method for each contract).
///
/// All collective methods must be called by **every** rank of the
/// communicator, in the same order, and each returned future must be
/// driven to completion before the rank starts its next operation (the
/// protocol layer simply `.await`s them in sequence).
pub trait CoComm: Send + Sync {
    /// This task's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of tasks in the communicator.
    fn size(&self) -> usize;

    /// Live op/byte counters, when the runtime tracks them; see
    /// [`Comm::stats`].
    fn stats(&self) -> Option<Arc<CommStats>>;

    /// Buffered send to `dest`; never parks, so it stays synchronous. The
    /// reserved `0xC3` collective tag namespace is enforced exactly as in
    /// [`Comm::send`].
    fn send(&self, dest: usize, tag: u64, data: &[u8]);

    /// Matched receive from `src`; parks until a `(src, tag)` message is
    /// deliverable.
    fn recv<'a>(&'a self, src: usize, tag: u64) -> BoxFut<'a, Vec<u8>>;

    /// Non-blocking matched receive: the next already-deliverable
    /// `(src, tag)` message, or `None` without parking; see
    /// [`Comm::try_recv`]. The default returns `None`, which degrades
    /// opportunistic drains to their blocking fallback — still correct.
    fn try_recv(&self, src: usize, tag: u64) -> Option<Vec<u8>> {
        let _ = (src, tag);
        None
    }

    /// Return a consumed payload's backing storage to the runtime's frame
    /// pool, if it has one; see [`Comm::recycle`]. The default drops it.
    fn recycle(&self, buf: Vec<u8>) {
        drop(buf);
    }

    /// Parks until every rank has entered the barrier.
    fn barrier<'a>(&'a self) -> BoxFut<'a, ()>;

    /// Gatherv to `root`; resolves to `Some(buffers)` at the root.
    fn gather<'a>(&'a self, data: &'a [u8], root: usize) -> BoxFut<'a, Option<Vec<Vec<u8>>>>;

    /// Scatterv from `root`.
    fn scatter<'a>(&'a self, parts: Option<Vec<Vec<u8>>>, root: usize) -> BoxFut<'a, Vec<u8>>;

    /// Broadcast from `root`.
    fn bcast<'a>(&'a self, data: Option<Vec<u8>>, root: usize) -> BoxFut<'a, Vec<u8>>;

    /// Gather every rank's buffer at every rank.
    fn allgather<'a>(&'a self, data: &'a [u8]) -> BoxFut<'a, Vec<Vec<u8>>>;

    /// [`CoComm::allgather`] into one shared, scan-in-place result (see
    /// [`AllGathered`]) — same semantics, collective contract, and
    /// [`CommStats`] accounting. Provided default copies through
    /// `allgather`; shared-memory runtimes override it to hand every rank
    /// an `Arc` clone of a single frame.
    fn allgather_shared<'a>(&'a self, data: &'a [u8]) -> BoxFut<'a, AllGathered> {
        Box::pin(async move { AllGathered::from_parts(&self.allgather(data).await) })
    }

    /// Rooted `u64` reduction.
    fn reduce_u64<'a>(&'a self, value: u64, op: ReduceOp, root: usize) -> BoxFut<'a, Option<u64>>;

    /// Split into disjoint sub-communicators by `(color, key)`; collective
    /// over the parent.
    fn split<'a>(&'a self, color: u64, key: u64) -> BoxFut<'a, Box<dyn CoComm>>;

    // ------------------------------------------------------------------
    // Typed convenience layers (provided), mirroring [`Comm`]'s.
    // ------------------------------------------------------------------

    /// Broadcast one `u64` from `root`.
    fn bcast_u64<'a>(&'a self, value: Option<u64>, root: usize) -> BoxFut<'a, u64> {
        Box::pin(async move {
            let got = self.bcast(value.map(|v| v.to_le_bytes().to_vec()), root).await;
            u64::from_le_bytes(got[..8].try_into().expect("u64 payload"))
        })
    }

    /// Gather one `u64` per rank at `root`.
    fn gather_u64<'a>(&'a self, value: u64, root: usize) -> BoxFut<'a, Option<Vec<u64>>> {
        Box::pin(async move {
            let buf = value.to_le_bytes();
            self.gather(&buf, root).await.map(|bufs| {
                bufs.iter()
                    .map(|b| u64::from_le_bytes(b[..8].try_into().expect("u64 payload")))
                    .collect()
            })
        })
    }

    /// Scatter one `u64` to each rank from `root`.
    fn scatter_u64<'a>(&'a self, values: Option<Vec<u64>>, root: usize) -> BoxFut<'a, u64> {
        Box::pin(async move {
            let parts = values.map(|vs| vs.iter().map(|v| v.to_le_bytes().to_vec()).collect());
            let got = self.scatter(parts, root).await;
            u64::from_le_bytes(got[..8].try_into().expect("u64 payload"))
        })
    }

    /// Allgather one `u64` per rank. Decodes straight out of the shared
    /// [`AllGathered`] frame — on shared-memory runtimes the whole round
    /// costs O(1) allocations per rank (one `Vec<u64>`), never the
    /// `Vec<Vec<u8>>` materialization of the byte-level allgather.
    fn allgather_u64<'a>(&'a self, value: u64) -> BoxFut<'a, Vec<u64>> {
        Box::pin(async move {
            let buf = value.to_le_bytes();
            self.allgather_shared(&buf)
                .await
                .iter()
                .map(|b| u64::from_le_bytes(b[..8].try_into().expect("u64 payload")))
                .collect()
        })
    }

    /// All-reduce a `u64` with `op`.
    fn allreduce_u64<'a>(&'a self, value: u64, op: ReduceOp) -> BoxFut<'a, u64> {
        Box::pin(async move {
            let all = self.allgather_u64(value).await;
            match op {
                ReduceOp::Sum => all.iter().sum(),
                ReduceOp::Max => all.into_iter().max().expect("non-empty communicator"),
                ReduceOp::Min => all.into_iter().min().expect("non-empty communicator"),
            }
        })
    }

    /// Gather a `u64` slice per rank at `root`.
    fn gather_u64s<'a>(
        &'a self,
        values: &'a [u64],
        root: usize,
    ) -> BoxFut<'a, Option<Vec<Vec<u64>>>> {
        Box::pin(async move {
            let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
            self.gather(&bytes, root)
                .await
                .map(|bufs| bufs.iter().map(|b| bytes_to_u64s(b)).collect())
        })
    }
}

/// Retire a future that never parks (one built exclusively from
/// [`BlockingComm`]/[`BlockingRef`] operations) with a single poll.
///
/// This is the bridge that keeps the blocking protocol entry points
/// (`sion`'s `paropen_write` etc.) synchronous: the async protocol body
/// executes start-to-finish inside this one poll, every inner await
/// resolving immediately because the adapter already ran the blocking
/// call. Panics if the future parks — that means it was built over a
/// task-runtime communicator and must be driven by the task scheduler
/// instead.
pub fn drive_ready<T>(fut: impl Future<Output = T>) -> T {
    let mut fut = std::pin::pin!(fut);
    let mut cx = Context::from_waker(Waker::noop());
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(v) => v,
        Poll::Pending => panic!(
            "drive_ready: future parked; a task-runtime communicator must be driven by the \
             task scheduler (use the *_co entry points inside a task world)"
        ),
    }
}

/// Owned blocking adapter: wraps a `Box<dyn Comm>` as a [`CoComm`] whose
/// futures run the blocking call inside `poll` and resolve immediately.
pub struct BlockingComm(pub Box<dyn Comm>);

/// Borrowed blocking adapter over any [`Comm`]; see [`BlockingComm`].
pub struct BlockingRef<'c>(pub &'c dyn Comm);

macro_rules! blocking_cocomm {
    ($ty:ty) => {
        impl CoComm for $ty {
            fn rank(&self) -> usize {
                self.inner().rank()
            }

            fn size(&self) -> usize {
                self.inner().size()
            }

            fn stats(&self) -> Option<Arc<CommStats>> {
                self.inner().stats()
            }

            fn send(&self, dest: usize, tag: u64, data: &[u8]) {
                self.inner().send(dest, tag, data)
            }

            fn recv<'a>(&'a self, src: usize, tag: u64) -> BoxFut<'a, Vec<u8>> {
                Box::pin(ready(self.inner().recv(src, tag)))
            }

            fn try_recv(&self, src: usize, tag: u64) -> Option<Vec<u8>> {
                self.inner().try_recv(src, tag)
            }

            fn recycle(&self, buf: Vec<u8>) {
                self.inner().recycle(buf)
            }

            fn barrier<'a>(&'a self) -> BoxFut<'a, ()> {
                Box::pin(ready(self.inner().barrier()))
            }

            fn gather<'a>(
                &'a self,
                data: &'a [u8],
                root: usize,
            ) -> BoxFut<'a, Option<Vec<Vec<u8>>>> {
                Box::pin(ready(self.inner().gather(data, root)))
            }

            fn scatter<'a>(
                &'a self,
                parts: Option<Vec<Vec<u8>>>,
                root: usize,
            ) -> BoxFut<'a, Vec<u8>> {
                Box::pin(ready(self.inner().scatter(parts, root)))
            }

            fn bcast<'a>(&'a self, data: Option<Vec<u8>>, root: usize) -> BoxFut<'a, Vec<u8>> {
                Box::pin(ready(self.inner().bcast(data, root)))
            }

            fn allgather<'a>(&'a self, data: &'a [u8]) -> BoxFut<'a, Vec<Vec<u8>>> {
                Box::pin(ready(self.inner().allgather(data)))
            }

            fn reduce_u64<'a>(
                &'a self,
                value: u64,
                op: ReduceOp,
                root: usize,
            ) -> BoxFut<'a, Option<u64>> {
                Box::pin(ready(self.inner().reduce_u64(value, op, root)))
            }

            fn split<'a>(&'a self, color: u64, key: u64) -> BoxFut<'a, Box<dyn CoComm>> {
                Box::pin(ready(
                    Box::new(BlockingComm(self.inner().split(color, key))) as Box<dyn CoComm>
                ))
            }
        }
    };
}

impl BlockingComm {
    fn inner(&self) -> &dyn Comm {
        self.0.as_ref()
    }
}

impl BlockingRef<'_> {
    fn inner(&self) -> &dyn Comm {
        self.0
    }
}

blocking_cocomm!(BlockingComm);
blocking_cocomm!(BlockingRef<'_>);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlatWorld, SerialComm, World};

    #[test]
    fn blocking_adapter_preserves_comm_semantics() {
        // The same async script runs over the thread runtimes through the
        // adapter; every await resolves in the single drive_ready poll.
        let script = |c: &dyn CoComm| {
            drive_ready(async move {
                let all = c.allgather_u64(c.rank() as u64 + 1).await;
                let sum = c.allreduce_u64(c.rank() as u64, ReduceOp::Sum).await;
                let b = c.bcast_u64((c.rank() == 2).then_some(99), 2).await;
                let sub = c.split((c.rank() % 2) as u64, 0).await;
                c.barrier().await;
                (all, sum, b, sub.size(), sub.rank())
            })
        };
        let tree = World::run(4, |c| script(&BlockingRef(c)));
        let flat = FlatWorld::run(4, |c| script(&BlockingRef(c)));
        assert_eq!(tree, flat);
        for (r, (all, sum, b, ss, sr)) in tree.iter().enumerate() {
            assert_eq!(all, &vec![1, 2, 3, 4]);
            assert_eq!(*sum, 6);
            assert_eq!(*b, 99);
            assert_eq!(*ss, 2);
            assert_eq!(*sr, r / 2);
        }
    }

    #[test]
    fn drive_ready_runs_serial_comm() {
        let c = SerialComm;
        let co = BlockingRef(&c);
        let got = drive_ready(async {
            co.barrier().await;
            co.allgather_u64(7).await
        });
        assert_eq!(got, vec![7]);
    }
}

//! Task-runtime mailboxes and the tree-collective [`TaskComm`].
//!
//! The protocol layer is a literal translation of the thread-backed
//! [`Communicator`](crate::Communicator): the same binomial trees, the
//! same reserved collective tags, the same frame encoding
//! ([`crate::wire`]), the same per-rank [`CommStats`] bump points. The only
//! difference is the blocking primitive — where a thread parks on a
//! channel, a rank task returns `Poll::Pending` from a [`Recv`] future and
//! the matching send wakes it. Byte identity against the thread runtime is
//! asserted by `tests/task_properties.rs`.
//!
//! Every parked operation registers itself in the world's pending-op table
//! ([`WorldRt`]), so when the executor detects quiescence the deadlock
//! report can name exactly which rank is stuck in which receive on which
//! communicator — the task-runtime analogue of `simcheck`'s blocked-rank
//! dump, with no watchdog involved.

use crate::arena::FrameArena;
use crate::co::AllGathered;
use crate::comm::CommStats;
use crate::hook::{self, coll_tag, CheckHook, CollKind, CommCtx, LeakedMsg};
use crate::wire::{frame, frame_into, frame_len, subtree_size, unframe};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

/// A mailbox payload: owned bytes for point-to-point and fan-in traffic,
/// or an `Arc` share of one buffer when the same bytes go to many
/// destinations (the allgather down-phase, where per-edge copies of an
/// O(P)-byte frame would make the collective O(P²) in total bytes).
/// Sharing is visible to the byte accounting: [`CommStats`] charges a
/// shared frame **once per logical payload** at the rank that forwards
/// it, however many edges the `Arc` clone fans out to, and the mailbox
/// byte gauges charge owned bytes only — an `Arc` clone adds no queued
/// payload memory. The world-wide logical volume moved this way is
/// tracked separately as `shared_frame_bytes` on [`WorldRt`].
pub(super) enum MsgBuf {
    Owned(Vec<u8>),
    Shared(Arc<Vec<u8>>),
}

impl MsgBuf {
    /// Extract owned bytes; free for `Owned` and for the last holder of a
    /// `Shared` buffer, one copy otherwise.
    pub(super) fn into_vec(self) -> Vec<u8> {
        match self {
            MsgBuf::Owned(v) => v,
            MsgBuf::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
        }
    }

    fn into_shared(self) -> Arc<Vec<u8>> {
        match self {
            MsgBuf::Owned(v) => Arc::new(v),
            MsgBuf::Shared(a) => a,
        }
    }

    /// Return the backing storage to the frame arena once the contents
    /// have been consumed: free for `Owned` and for the last holder of a
    /// `Shared` buffer; earlier holders of a shared buffer keep the bytes
    /// alive, so those are simply dropped.
    fn recycle(self, arena: &FrameArena) {
        match self {
            MsgBuf::Owned(v) => arena.recycle(v),
            MsgBuf::Shared(a) => {
                if let Ok(v) = Arc::try_unwrap(a) {
                    arena.recycle(v);
                }
            }
        }
    }

    /// Bytes this payload pins in a mailbox queue: a shared clone pins
    /// nothing beyond the one buffer all clones point at, so only owned
    /// payloads count toward the mailbox byte gauge. Applied identically
    /// at enqueue and dequeue so the gauge balances to zero.
    fn mbox_charge(&self) -> u64 {
        match self {
            MsgBuf::Owned(v) => v.len() as u64,
            MsgBuf::Shared(_) => 0,
        }
    }
}

impl std::ops::Deref for MsgBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match self {
            MsgBuf::Owned(v) => v,
            MsgBuf::Shared(a) => a,
        }
    }
}

impl From<Vec<u8>> for MsgBuf {
    fn from(v: Vec<u8>) -> MsgBuf {
        MsgBuf::Owned(v)
    }
}

impl From<Arc<Vec<u8>>> for MsgBuf {
    fn from(a: Arc<Vec<u8>>) -> MsgBuf {
        MsgBuf::Shared(a)
    }
}

type Message = (usize, u64, MsgBuf);

/// What a parked task is waiting for (deadlock diagnosis).
pub(crate) enum ParkKind {
    /// Matched receive (collective round edges included).
    Recv { src: usize, tag: u64 },
    /// Slot-and-barrier rendezvous (flat task runtime).
    Rendezvous,
}

/// One parked operation, registered while its future is `Pending`.
pub(crate) struct Parked {
    pub(crate) comm: Arc<str>,
    pub(crate) comm_rank: usize,
    pub(crate) kind: ParkKind,
}

impl Parked {
    /// The blocked operation alone (no communicator name), in the same
    /// shape as `simcheck`'s pending-op dumps.
    pub(crate) fn op_text(&self) -> String {
        match &self.kind {
            ParkKind::Recv { src, tag } => format!(
                "recv(src={src}, tag={}) as rank {}",
                hook::describe_tag(*tag),
                self.comm_rank
            ),
            ParkKind::Rendezvous => {
                format!("collective rendezvous as rank {}", self.comm_rank)
            }
        }
    }
}

impl fmt::Display for Parked {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "on comm \"{}\" parked in {}", self.comm, self.op_text())
    }
}

/// Per-world runtime state shared by every communicator of one task world:
/// the pending-op table (indexed by *world* rank, so registration is a
/// single per-rank lock), the abort flag that silences teardown checks
/// once the world is being torn down early, and the mailbox high-water
/// marks reported in [`SchedStats`](super::SchedStats).
pub(crate) struct WorldRt {
    pending: Vec<Mutex<Option<Parked>>>,
    aborting: AtomicBool,
    peak_mbox_msgs: AtomicU64,
    peak_mbox_bytes: AtomicU64,
    /// Pooled backing storage for collective frames, shared by every
    /// communicator of the world (splits included — they all hold this
    /// `WorldRt`), so a frame allocated on one communicator's edge can be
    /// reused on any other's.
    arena: FrameArena,
    /// Logical bytes moved as `Arc`-shared broadcast frames, counted once
    /// per frame at the broadcast root (not once per edge clone).
    shared_frame_bytes: AtomicU64,
}

impl WorldRt {
    pub(crate) fn new(ntasks: usize) -> WorldRt {
        WorldRt {
            pending: (0..ntasks).map(|_| Mutex::new(None)).collect(),
            aborting: AtomicBool::new(false),
            peak_mbox_msgs: AtomicU64::new(0),
            peak_mbox_bytes: AtomicU64::new(0),
            arena: FrameArena::new(),
            shared_frame_bytes: AtomicU64::new(0),
        }
    }

    pub(super) fn arena(&self) -> &FrameArena {
        &self.arena
    }

    fn note_shared_frame(&self, bytes: u64) {
        self.shared_frame_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// `(fresh frame allocations, pooled frame reuses, shared frame
    /// bytes)` — the allocation-discipline counters surfaced in
    /// [`SchedStats`](super::SchedStats).
    pub(crate) fn frame_stats(&self) -> (u64, u64, u64) {
        let (allocs, reuses) = self.arena.stats();
        (allocs, reuses, self.shared_frame_bytes.load(Ordering::Relaxed))
    }

    pub(crate) fn abort(&self) {
        self.aborting.store(true, Ordering::SeqCst);
    }

    pub(crate) fn is_aborting(&self) -> bool {
        self.aborting.load(Ordering::SeqCst)
    }

    fn note_mbox(&self, msgs: u64, bytes: u64) {
        self.peak_mbox_msgs.fetch_max(msgs, Ordering::Relaxed);
        self.peak_mbox_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    pub(crate) fn mbox_peaks(&self) -> (u64, u64) {
        (
            self.peak_mbox_msgs.load(Ordering::Relaxed),
            self.peak_mbox_bytes.load(Ordering::Relaxed),
        )
    }

    pub(super) fn pending(&self, world_rank: usize) -> &Mutex<Option<Parked>> {
        &self.pending[world_rank]
    }

    /// The parked operations of every still-blocked task, in world-rank
    /// order — the body of a deadlock report.
    pub(crate) fn snapshot_pending(&self) -> Vec<(usize, Parked)> {
        self.pending
            .iter()
            .enumerate()
            .filter_map(|(rank, slot)| slot.lock().take().map(|p| (rank, p)))
            .collect()
    }
}

/// One rank's point-to-point mailbox. The queue doubles as the stash: a
/// receive scans it for the first (src, tag) match, so non-matching
/// messages simply stay put (same matching semantics as the thread
/// runtime's channel + stash pair).
pub(super) struct Mbox {
    queue: VecDeque<Message>,
    bytes: u64,
    /// The rank's single in-flight receive, when parked. One slot
    /// suffices: a rank task awaits at most one receive at a time.
    waiting: Option<(usize, u64, Waker)>,
}

impl Mbox {
    /// Pre-sized for tree traffic: a rank holds at most one message per
    /// tree level per in-flight collective round (~log₂ P), not O(P).
    pub(super) fn for_world(size: usize) -> Mbox {
        let depth = usize::BITS as usize - size.leading_zeros() as usize + 2;
        Mbox {
            queue: VecDeque::with_capacity(depth),
            bytes: 0,
            waiting: None,
        }
    }

    /// Drain all queued messages (teardown leak check).
    pub(super) fn drain_messages(
        &mut self,
    ) -> std::collections::vec_deque::Drain<'_, Message> {
        self.bytes = 0;
        self.queue.drain(..)
    }
}

/// Deliver a message and wake the destination if it is parked on a match.
pub(super) fn mbox_send(
    mboxes: &[Mutex<Mbox>],
    world: &WorldRt,
    from: usize,
    dest: usize,
    tag: u64,
    payload: MsgBuf,
) {
    let waker = {
        let mut mb = mboxes[dest].lock();
        mb.bytes += payload.mbox_charge();
        world.note_mbox(mb.queue.len() as u64 + 1, mb.bytes);
        mb.queue.push_back((from, tag, payload));
        match &mb.waiting {
            Some((s, t, _)) if *s == from && *t == tag => {
                mb.waiting.take().map(|(_, _, w)| w)
            }
            _ => None,
        }
    };
    // Wake outside the mailbox lock; the wake enqueues into the executor.
    if let Some(w) = waker {
        w.wake();
    }
}

/// Non-blocking matched receive: take the first queued `(src, tag)` match
/// from `rank`'s mailbox, or `None` without parking — the poll half of
/// [`Recv`]'s hit path, shared by both task communicators' `try_recv`.
pub(super) fn mbox_try_take(
    mboxes: &[Mutex<Mbox>],
    rank: usize,
    src: usize,
    tag: u64,
) -> Option<MsgBuf> {
    let mut mb = mboxes[rank].lock();
    let pos = mb.queue.iter().position(|(s, t, _)| *s == src && *t == tag)?;
    let (_, _, payload) = mb.queue.remove(pos).expect("position valid");
    mb.bytes -= payload.mbox_charge();
    Some(payload)
}

/// Matched-receive future over a mailbox slice; the runtime's only
/// point-to-point parking point. Carries the communicator context and the
/// optional hook so the `Ready` transition can report the completed match
/// ([`CheckHook::on_recv_done`]) exactly once, wherever it is awaited.
pub(super) struct Recv<'a> {
    mboxes: &'a [Mutex<Mbox>],
    world: &'a WorldRt,
    ctx: &'a CommCtx,
    hook: &'a Option<Arc<dyn CheckHook>>,
    comm_rank: usize,
    world_rank: usize,
    src: usize,
    tag: u64,
    parked: bool,
}

impl<'a> Recv<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(super) fn new(
        mboxes: &'a [Mutex<Mbox>],
        world: &'a WorldRt,
        ctx: &'a CommCtx,
        hook: &'a Option<Arc<dyn CheckHook>>,
        comm_rank: usize,
        world_rank: usize,
        src: usize,
        tag: u64,
    ) -> Recv<'a> {
        Recv { mboxes, world, ctx, hook, comm_rank, world_rank, src, tag, parked: false }
    }
}

impl Future for Recv<'_> {
    type Output = MsgBuf;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<MsgBuf> {
        let this = self.get_mut();
        let mut mb = this.mboxes[this.comm_rank].lock();
        let hit = mb
            .queue
            .iter()
            .position(|(s, t, _)| *s == this.src && *t == this.tag);
        if let Some(pos) = hit {
            let (_, _, payload) = mb.queue.remove(pos).expect("position valid");
            mb.bytes -= payload.mbox_charge();
            drop(mb);
            if this.parked {
                this.parked = false;
                *this.world.pending[this.world_rank].lock() = None;
            }
            if let Some(h) = this.hook {
                h.on_recv_done(this.ctx, this.comm_rank, this.src, this.tag, &payload);
            }
            return Poll::Ready(payload);
        }
        mb.waiting = Some((this.src, this.tag, cx.waker().clone()));
        drop(mb);
        // Register for the deadlock report after arming the waker: if the
        // world quiesces with this entry in place, this receive is what the
        // rank is stuck on.
        *this.world.pending[this.world_rank].lock() = Some(Parked {
            comm: this.ctx.name.clone(),
            comm_rank: this.comm_rank,
            kind: ParkKind::Recv { src: this.src, tag: this.tag },
        });
        this.parked = true;
        Poll::Pending
    }
}

/// State shared by every rank of one task-runtime communicator; the
/// async counterpart of the thread runtime's `Shared`.
pub(crate) struct CoShared {
    size: usize,
    ctx: CommCtx,
    hook: Option<Arc<dyn CheckHook>>,
    world: Arc<WorldRt>,
    mboxes: Vec<Mutex<Mbox>>,
    splits: Mutex<HashMap<(u64, u64), Arc<CoShared>>>,
}

impl CoShared {
    pub(crate) fn new(
        ctx: CommCtx,
        hook: Option<Arc<dyn CheckHook>>,
        world: Arc<WorldRt>,
    ) -> CoShared {
        assert!(ctx.size > 0, "communicator must have at least one rank");
        let size = ctx.size;
        CoShared {
            size,
            ctx,
            hook,
            world,
            mboxes: (0..size).map(|_| Mutex::new(Mbox::for_world(size))).collect(),
            splits: Mutex::new(HashMap::new()),
        }
    }
}

/// One rank's handle onto a task-runtime tree-collective communicator;
/// the resumable twin of [`Communicator`](crate::Communicator).
pub struct TaskComm {
    rank: usize,
    /// Rank in the *world* communicator — the pending-table index, stable
    /// across splits.
    world_rank: usize,
    shared: Arc<CoShared>,
    coll_seq: AtomicU64,
    split_seq: AtomicU64,
    stats: Arc<CommStats>,
}

impl TaskComm {
    pub(crate) fn new(rank: usize, world_rank: usize, shared: Arc<CoShared>) -> TaskComm {
        TaskComm {
            rank,
            world_rank,
            shared,
            coll_seq: AtomicU64::new(0),
            split_seq: AtomicU64::new(0),
            stats: Arc::new(CommStats::default()),
        }
    }

    fn next_seq(&self) -> u64 {
        self.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    fn note_collective(&self, seq: u64, kind: CollKind, root: Option<usize>) {
        if let Some(h) = &self.shared.hook {
            h.on_collective(&self.shared.ctx, self.rank, seq, kind, root);
        }
    }

    /// Report a collective exit (the call returned on this rank).
    fn note_collective_done(&self, seq: u64) {
        if let Some(h) = &self.shared.hook {
            h.on_collective_done(&self.shared.ctx, self.rank, seq);
        }
    }

    fn vrank(&self, root: usize) -> usize {
        (self.rank + self.shared.size - root) % self.shared.size
    }

    fn rank_of(&self, v: usize, root: usize) -> usize {
        (v + root) % self.shared.size
    }

    fn isend(&self, dest: usize, tag: u64, payload: impl Into<MsgBuf>) {
        let payload = payload.into();
        if let Some(h) = &self.shared.hook {
            h.on_send(&self.shared.ctx, self.rank, dest, tag, &payload);
        }
        self.stats.add_bytes(payload.len() as u64);
        mbox_send(&self.shared.mboxes, &self.shared.world, self.rank, dest, tag, payload);
    }

    /// [`Self::isend`] without the per-edge byte charge — for `Arc` clones
    /// of one shared frame, which [`Self::bcast_frame_impl`] charges once
    /// per logical payload instead of once per edge.
    fn isend_uncharged(&self, dest: usize, tag: u64, payload: MsgBuf) {
        if let Some(h) = &self.shared.hook {
            h.on_send(&self.shared.ctx, self.rank, dest, tag, &payload);
        }
        mbox_send(&self.shared.mboxes, &self.shared.world, self.rank, dest, tag, payload);
    }

    fn irecv(&self, src: usize, tag: u64) -> Recv<'_> {
        Recv::new(
            &self.shared.mboxes,
            &self.shared.world,
            &self.shared.ctx,
            &self.shared.hook,
            self.rank,
            self.world_rank,
            src,
            tag,
        )
    }

    async fn bcast_impl(
        &self,
        data: Option<Vec<u8>>,
        root: usize,
        seq: u64,
        kind: CollKind,
    ) -> Vec<u8> {
        let size = self.shared.size;
        let v = self.vrank(root);
        let tag = coll_tag(kind, seq, 0);
        let (buf, mut mask) = if v == 0 {
            (data.expect("root must supply bcast data"), size.next_power_of_two())
        } else {
            let lsb = v & v.wrapping_neg();
            (self.irecv(self.rank_of(v & (v - 1), root), tag).await.into_vec(), lsb)
        };
        mask >>= 1;
        while mask > 0 {
            let child = v + mask;
            if child < size {
                self.isend(self.rank_of(child, root), tag, buf.clone());
            }
            mask >>= 1;
        }
        buf
    }

    /// Broadcast an already-framed allgather result down the vrank-0 tree,
    /// sharing one refcounted buffer across all P−1 edges instead of
    /// copying the O(P)-byte frame per edge — the step that makes
    /// allgather (and with it `split`) linear instead of quadratic in
    /// total bytes. Wire tags are identical to [`Self::bcast_impl`] rooted
    /// at 0; the byte counters are not per-edge: a forwarding rank charges
    /// its [`CommStats`] once per logical payload, however many children
    /// its `Arc` clones fan out to, and the world counts each frame once
    /// at the root as `shared_frame_bytes`.
    async fn bcast_frame_impl(
        &self,
        data: Option<Vec<u8>>,
        seq: u64,
        kind: CollKind,
    ) -> Arc<Vec<u8>> {
        let size = self.shared.size;
        let v = self.rank; // rooted at rank 0, like the allgather up-phase
        let tag = coll_tag(kind, seq, 0);
        let (buf, mut mask) = if v == 0 {
            (Arc::new(data.expect("root must supply bcast data")), size.next_power_of_two())
        } else {
            let lsb = v & v.wrapping_neg();
            (self.irecv(v & (v - 1), tag).await.into_shared(), lsb)
        };
        if v == 0 {
            self.shared.world.note_shared_frame(buf.len() as u64);
        }
        mask >>= 1;
        let mut forwarded = false;
        while mask > 0 {
            let child = v + mask;
            if child < size {
                self.isend_uncharged(child, tag, MsgBuf::Shared(buf.clone()));
                forwarded = true;
            }
            mask >>= 1;
        }
        if forwarded {
            self.stats.add_bytes(buf.len() as u64);
        }
        buf
    }

    async fn gather_impl(
        &self,
        data: &[u8],
        root: usize,
        seq: u64,
        kind: CollKind,
    ) -> Option<Vec<Vec<u8>>> {
        let size = self.shared.size;
        let v = self.vrank(root);
        let tag = coll_tag(kind, seq, 0);
        // Pre-sized to this vrank's exact binomial subtree: the
        // accumulator never reallocates on the way up.
        let mut acc: Vec<(u64, Vec<u8>)> = Vec::with_capacity(subtree_size(v, size));
        acc.push((v as u64, data.to_vec()));
        let arena = self.shared.world.arena();
        let mut mask = 1usize;
        while mask < size {
            if v & mask != 0 {
                let entries =
                    acc.iter().map(|(id, p)| (*id, p.as_slice())).collect::<Vec<_>>();
                let mut framed = arena.acquire(frame_len(&entries));
                frame_into(&mut framed, &entries);
                self.isend(self.rank_of(v - mask, root), tag, framed);
                return None;
            }
            let child = v + mask;
            if child < size {
                let got = self.irecv(self.rank_of(child, root), tag).await;
                acc.extend(unframe(&got));
                got.recycle(arena);
            }
            mask <<= 1;
        }
        let mut out = vec![Vec::new(); size];
        for (vr, payload) in acc {
            out[self.rank_of(vr as usize, root)] = payload;
        }
        Some(out)
    }

    async fn scatter_impl(
        &self,
        parts: Option<Vec<Vec<u8>>>,
        root: usize,
        seq: u64,
        kind: CollKind,
    ) -> Vec<u8> {
        let size = self.shared.size;
        let v = self.vrank(root);
        let tag = coll_tag(kind, seq, 0);
        let arena = self.shared.world.arena();
        let (mut pending, mut mask) = if v == 0 {
            let parts = parts.expect("root must supply scatter parts");
            assert_eq!(parts.len(), size, "scatter needs one part per rank");
            let pending: Vec<(u64, Vec<u8>)> = parts
                .into_iter()
                .enumerate()
                .map(|(r, p)| (((r + size - root) % size) as u64, p))
                .collect();
            (pending, size.next_power_of_two())
        } else {
            let lsb = v & v.wrapping_neg();
            let got = self.irecv(self.rank_of(v & (v - 1), root), tag).await;
            let parts = unframe(&got);
            got.recycle(arena);
            (parts, lsb)
        };
        mask >>= 1;
        while mask > 0 {
            let child = v + mask;
            if child < size {
                let (send, keep): (Vec<_>, Vec<_>) =
                    pending.into_iter().partition(|(id, _)| *id >= child as u64);
                let entries =
                    send.iter().map(|(id, p)| (*id, p.as_slice())).collect::<Vec<_>>();
                let mut framed = arena.acquire(frame_len(&entries));
                frame_into(&mut framed, &entries);
                self.isend(self.rank_of(child, root), tag, framed);
                pending = keep;
            }
            mask >>= 1;
        }
        debug_assert_eq!(pending.len(), 1, "own part remains");
        debug_assert_eq!(pending[0].0, v as u64, "own part remains");
        pending.pop().expect("own part remains").1
    }

    async fn allgather_impl(
        &self,
        data: &[u8],
        seq_up: u64,
        seq_down: u64,
        kind: CollKind,
    ) -> Vec<Vec<u8>> {
        self.allgather_arc_impl(data, seq_up, seq_down, kind).await.to_parts()
    }

    /// Allgather with a shared result: tree gather to vrank 0, one frame
    /// built there, then `Arc` clones of that frame down the tree. Every
    /// rank ends up scanning the same buffer.
    async fn allgather_arc_impl(
        &self,
        data: &[u8],
        seq_up: u64,
        seq_down: u64,
        kind: CollKind,
    ) -> AllGathered {
        let framed = self.gather_impl(data, 0, seq_up, kind).await.map(|parts| {
            frame(
                &parts
                    .iter()
                    .enumerate()
                    .map(|(r, p)| (r as u64, p.as_slice()))
                    .collect::<Vec<_>>(),
            )
        });
        AllGathered::from_frame(self.bcast_frame_impl(framed, seq_down, kind).await)
    }

    async fn barrier_impl(&self, seq: u64, kind: CollKind) {
        let size = self.shared.size;
        if size == 1 {
            return;
        }
        let up = coll_tag(kind, seq, 0);
        let down = coll_tag(kind, seq, 1);
        let v = self.rank; // rooted at rank 0
        let mut mask = 1usize;
        while mask < size {
            if v & mask != 0 {
                self.isend(v - mask, up, Vec::new());
                break;
            }
            if v + mask < size {
                self.irecv(v + mask, up).await;
            }
            mask <<= 1;
        }
        if v == 0 {
            mask = size.next_power_of_two();
        } else {
            self.irecv(v & (v - 1), down).await;
        }
        mask >>= 1;
        while mask > 0 {
            if v + mask < size {
                self.isend(v + mask, down, Vec::new());
            }
            mask >>= 1;
        }
    }

    async fn reduce_impl(&self, value: u64, op: crate::ReduceOp, root: usize, seq: u64) -> Option<u64> {
        use crate::ReduceOp;
        let size = self.shared.size;
        let v = self.vrank(root);
        let tag = coll_tag(CollKind::Reduce, seq, 0);
        let mut acc = value;
        let mut mask = 1usize;
        while mask < size {
            if v & mask != 0 {
                self.isend(self.rank_of(v - mask, root), tag, acc.to_le_bytes().to_vec());
                return None;
            }
            let child = v + mask;
            if child < size {
                let got = self.irecv(self.rank_of(child, root), tag).await;
                let other = u64::from_le_bytes(got[..8].try_into().expect("u64 payload"));
                acc = match op {
                    ReduceOp::Sum => acc.wrapping_add(other),
                    ReduceOp::Max => acc.max(other),
                    ReduceOp::Min => acc.min(other),
                };
            }
            mask <<= 1;
        }
        Some(acc)
    }

    async fn split_impl(&self, color: u64, key: u64) -> TaskComm {
        let seq_up = self.next_seq();
        let seq_down = self.next_seq();
        self.note_collective(seq_up, CollKind::Split, None);
        let mut payload = Vec::with_capacity(24);
        payload.extend_from_slice(&color.to_le_bytes());
        payload.extend_from_slice(&key.to_le_bytes());
        payload.extend_from_slice(&(self.rank as u64).to_le_bytes());
        // Scan the shared frame in place. A rank only needs its group's
        // *size* and its own *position* in the (key, rank) order; since
        // ranks are unique, position = how many same-color entries sort
        // before us. One allocation-free O(P) pass replaces the
        // collect-and-sort (whose per-rank O(group) member vector was the
        // dominant cost of a 32Ki-rank open: P such vectors per split).
        let all = self.allgather_arc_impl(&payload, seq_up, seq_down, CollKind::Split).await;
        let me = (key, self.rank as u64);
        let mut new_size = 0usize;
        let mut new_rank = 0usize;
        for b in all.iter() {
            let c = u64::from_le_bytes(b[0..8].try_into().unwrap());
            if c != color {
                continue;
            }
            let k = u64::from_le_bytes(b[8..16].try_into().unwrap());
            let r = u64::from_le_bytes(b[16..24].try_into().unwrap());
            new_size += 1;
            if (k, r) < me {
                new_rank += 1;
            }
        }
        debug_assert!(new_size > 0, "caller is in its own color group");

        let split_no = self.split_seq.fetch_add(1, Ordering::Relaxed) + 1;

        let sub = {
            let mut splits = self.shared.splits.lock();
            splits
                .entry((split_no, color))
                .or_insert_with(|| {
                    Arc::new(CoShared::new(
                        self.shared.ctx.child(split_no, color, new_size),
                        self.shared.hook.clone(),
                        self.shared.world.clone(),
                    ))
                })
                .clone()
        };
        let comm = TaskComm::new(new_rank, self.world_rank, sub);
        let seq = self.next_seq();
        self.barrier_impl(seq, CollKind::Split).await;
        self.note_collective_done(seq_up);
        if new_rank == 0 {
            self.shared.splits.lock().remove(&(split_no, color));
        }
        comm
    }
}

impl crate::co::CoComm for TaskComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn stats(&self) -> Option<Arc<CommStats>> {
        Some(self.stats.clone())
    }

    fn send(&self, dest: usize, tag: u64, data: &[u8]) {
        assert!(dest < self.shared.size, "send dest {dest} out of range");
        if hook::rejected_user_tag(tag) {
            if let Some(h) = &self.shared.hook {
                h.on_reserved_tag(&self.shared.ctx, self.rank, dest, tag);
            }
            panic!("{}", hook::reserved_tag_panic_text(tag));
        }
        self.stats.bump_send();
        // Arena-backed payload: recycled through the world frame pool by
        // the receiver so steady-state p2p rounds allocate nothing.
        let mut payload = self.shared.world.arena().acquire(data.len());
        payload.extend_from_slice(data);
        self.isend(dest, tag, payload);
    }

    fn recv<'a>(&'a self, src: usize, tag: u64) -> crate::co::BoxFut<'a, Vec<u8>> {
        Box::pin(async move {
            assert!(src < self.shared.size, "recv src {src} out of range");
            self.stats.bump_recv();
            self.irecv(src, tag).await.into_vec()
        })
    }

    fn try_recv(&self, src: usize, tag: u64) -> Option<Vec<u8>> {
        assert!(src < self.shared.size, "try_recv src {src} out of range");
        let payload = mbox_try_take(&self.shared.mboxes, self.rank, src, tag);
        if let Some(h) = &self.shared.hook {
            h.on_try_recv(&self.shared.ctx, self.rank, src, tag, payload.is_some());
            if let Some(p) = &payload {
                h.on_recv_done(&self.shared.ctx, self.rank, src, tag, p);
            }
        }
        let payload = payload?;
        self.stats.bump_recv();
        Some(payload.into_vec())
    }

    fn recycle(&self, buf: Vec<u8>) {
        self.shared.world.arena().recycle(buf);
    }

    fn barrier<'a>(&'a self) -> crate::co::BoxFut<'a, ()> {
        Box::pin(async move {
            self.stats.bump_barrier();
            let seq = self.next_seq();
            self.note_collective(seq, CollKind::Barrier, None);
            self.barrier_impl(seq, CollKind::Barrier).await;
            self.note_collective_done(seq);
        })
    }

    fn gather<'a>(
        &'a self,
        data: &'a [u8],
        root: usize,
    ) -> crate::co::BoxFut<'a, Option<Vec<Vec<u8>>>> {
        Box::pin(async move {
            assert!(root < self.shared.size, "gather root {root} out of range");
            self.stats.bump_gather();
            let seq = self.next_seq();
            self.note_collective(seq, CollKind::Gather, Some(root));
            let out = self.gather_impl(data, root, seq, CollKind::Gather).await;
            self.note_collective_done(seq);
            out
        })
    }

    fn scatter<'a>(
        &'a self,
        parts: Option<Vec<Vec<u8>>>,
        root: usize,
    ) -> crate::co::BoxFut<'a, Vec<u8>> {
        Box::pin(async move {
            assert!(root < self.shared.size, "scatter root {root} out of range");
            self.stats.bump_scatter();
            let seq = self.next_seq();
            self.note_collective(seq, CollKind::Scatter, Some(root));
            let out = self.scatter_impl(parts, root, seq, CollKind::Scatter).await;
            self.note_collective_done(seq);
            out
        })
    }

    fn bcast<'a>(
        &'a self,
        data: Option<Vec<u8>>,
        root: usize,
    ) -> crate::co::BoxFut<'a, Vec<u8>> {
        Box::pin(async move {
            assert!(root < self.shared.size, "bcast root {root} out of range");
            self.stats.bump_bcast();
            let seq = self.next_seq();
            self.note_collective(seq, CollKind::Bcast, Some(root));
            let out = self.bcast_impl(data, root, seq, CollKind::Bcast).await;
            self.note_collective_done(seq);
            out
        })
    }

    fn allgather<'a>(&'a self, data: &'a [u8]) -> crate::co::BoxFut<'a, Vec<Vec<u8>>> {
        Box::pin(async move {
            self.stats.bump_allgather();
            let seq_up = self.next_seq();
            let seq_down = self.next_seq();
            self.note_collective(seq_up, CollKind::Allgather, None);
            let out = self.allgather_impl(data, seq_up, seq_down, CollKind::Allgather).await;
            self.note_collective_done(seq_up);
            out
        })
    }

    fn allgather_shared<'a>(&'a self, data: &'a [u8]) -> crate::co::BoxFut<'a, AllGathered> {
        Box::pin(async move {
            self.stats.bump_allgather();
            let seq_up = self.next_seq();
            let seq_down = self.next_seq();
            self.note_collective(seq_up, CollKind::Allgather, None);
            let out = self.allgather_arc_impl(data, seq_up, seq_down, CollKind::Allgather).await;
            self.note_collective_done(seq_up);
            out
        })
    }

    fn reduce_u64<'a>(
        &'a self,
        value: u64,
        op: crate::ReduceOp,
        root: usize,
    ) -> crate::co::BoxFut<'a, Option<u64>> {
        Box::pin(async move {
            assert!(root < self.shared.size, "reduce root {root} out of range");
            self.stats.bump_reduce();
            let seq = self.next_seq();
            self.note_collective(seq, CollKind::Reduce, Some(root));
            let out = self.reduce_impl(value, op, root, seq).await;
            self.note_collective_done(seq);
            out
        })
    }

    fn split<'a>(&'a self, color: u64, key: u64) -> crate::co::BoxFut<'a, Box<dyn crate::co::CoComm>> {
        Box::pin(async move {
            self.stats.bump_split();
            Box::new(self.split_impl(color, key).await) as Box<dyn crate::co::CoComm>
        })
    }
}

impl Drop for TaskComm {
    /// Teardown leak check, mirroring the thread runtime's: messages still
    /// in this rank's mailbox when the handle drops are lost messages.
    /// Skipped while the world is aborting (deadlock or panic teardown) —
    /// the primary diagnosis is already on its way out.
    fn drop(&mut self) {
        let Some(hook) = self.shared.hook.clone() else { return };
        if self.shared.world.is_aborting() {
            return;
        }
        let mut mb = self.shared.mboxes[self.rank].lock();
        let mut leaked: Vec<LeakedMsg> = mb
            .queue
            .drain(..)
            .map(|(from, tag, payload)| LeakedMsg {
                from,
                tag,
                len: payload.len(),
                stashed: false,
            })
            .collect();
        mb.bytes = 0;
        drop(mb);
        if !leaked.is_empty() {
            leaked.sort();
            hook.on_teardown(&self.shared.ctx, self.rank, &leaked);
        }
    }
}

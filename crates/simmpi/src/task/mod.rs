//! The task runtime: ranks as resumable state machines on a work-stealing
//! pool.
//!
//! [`TaskWorld`] is the scalable counterpart of [`World`](crate::World):
//! instead of one OS thread per rank, each rank is an `async` state
//! machine that parks on mailbox receives and collective rendezvous and is
//! scheduled — with its peers — on a bounded worker pool
//! ([`SchedPolicy::host`] sizes it to the machine). That is what makes
//! *real* 16Ki–64Ki-rank runs of the `sion` collective open/write/close
//! path possible: rank state is a few hundred bytes of suspended future,
//! not an 8 MiB thread stack, and a blocked rank costs nothing but its
//! entry in the pending table.
//!
//! The protocol layer is shared with the thread runtime (`crate::wire`,
//! the same binomial trees, tags, and stats bump points), and byte
//! identity between the two is enforced by property tests. `simcheck`
//! plugs in through [`SchedPolicy::Serial`] — its serialized scheduler is
//! literally one policy of this executor — and through the same
//! [`CheckHook`]/[`Sanitizer`](crate::Sanitizer) hooks as the thread
//! runtimes. Deadlock detection is *exact* here, not watchdog-based: the
//! executor declares a deadlock the moment no task is runnable while live
//! tasks remain (see [`exec`]), and the report names every parked
//! operation.

mod comm;
mod exec;
mod flat;

pub use comm::TaskComm;
pub use exec::{SchedPolicy, ScheduleDriver};
pub use flat::FlatTaskComm;

use crate::hook::{self, Aborted, CheckHook, CommCtx};
use crate::sanitize::Sanitizer;
use comm::{CoShared, WorldRt};
use flat::FlatShared;
use std::any::Any;
use std::fmt;
use std::future::Future;
use std::sync::Arc;

/// Counters of one task-world run: scheduler behaviour plus the per-rank
/// memory high-water marks the runtime guarantees stay bounded (a rank's
/// mailbox holds tree-edge messages, ~log₂ P of them, never O(P)).
#[derive(Debug, Clone, Default)]
pub struct SchedStats {
    /// Worker threads used.
    pub workers: usize,
    /// Rank tasks executed.
    pub tasks: usize,
    /// Future polls, including re-polls after wake-ups.
    pub polls: u64,
    /// Wake-ups enqueued (message deliveries, rendezvous releases, initial
    /// spawns).
    pub wakes: u64,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Polls that parked (`Pending`).
    pub parks: u64,
    /// High-water mark of simultaneously runnable tasks.
    pub peak_runnable: u64,
    /// High-water mark of any single rank's mailbox depth, in messages.
    pub peak_mailbox_msgs: u64,
    /// High-water mark of any single rank's queued mailbox payload bytes
    /// (owned payloads only — an `Arc`-shared frame clone pins no
    /// additional queue memory).
    pub peak_mailbox_bytes: u64,
    /// Collective frames freshly heap-allocated (frame-arena pool misses).
    /// In steady state this stops growing: every tree edge reuses pooled
    /// backing storage.
    pub frame_allocs: u64,
    /// Collective frames served from the arena pool (hits).
    pub frame_reuses: u64,
    /// Logical bytes broadcast as `Arc`-shared frames, counted once per
    /// frame — not once per tree edge the clone fans out to.
    pub shared_frame_bytes: u64,
}

/// One operation parked at the moment a deadlock was declared.
#[derive(Debug, Clone)]
pub struct ParkedOp {
    /// Rank in the world communicator.
    pub world_rank: usize,
    /// Structural name of the communicator the operation is on.
    pub comm: String,
    /// The blocked operation (decoded tag included), e.g.
    /// `recv(src=1, tag=0x9) as rank 0`.
    pub op: String,
    /// Human-readable description: communicator, rank within it, and the
    /// receive or rendezvous it is stuck in.
    pub description: String,
}

/// Exact deadlock diagnosis: every task still parked when the executor
/// quiesced with live tasks remaining.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// Parked operations in world-rank order.
    pub parked: Vec<ParkedOp>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deadlock: {} task(s) parked with no runnable peer and no message in flight:",
            self.parked.len()
        )?;
        for op in &self.parked {
            writeln!(f, "  [task {}] {}", op.world_rank, op.description)?;
        }
        Ok(())
    }
}

/// Full outcome of a checked task-world run.
pub struct TaskRun<T> {
    /// Per-rank results in rank order: the closure's value, its panic
    /// payload, or an [`Aborted`] unwind for ranks still parked when the
    /// world deadlocked.
    pub results: Vec<std::thread::Result<T>>,
    /// Present iff the run quiesced with parked tasks.
    pub deadlock: Option<DeadlockReport>,
    /// Scheduler counters.
    pub stats: SchedStats,
    /// Poll order, recorded under [`SchedPolicy::Serial`] (empty
    /// otherwise) — the schedule a failing seed can be replayed from.
    pub trace: Vec<usize>,
}

/// Shared launch path for both task runtimes: hand each pre-built
/// communicator to `f`, execute the futures, and assemble results,
/// deadlock report and stats.
fn run_engine<T, C, F, Fut>(
    policy: &SchedPolicy,
    hook: Option<Arc<dyn CheckHook>>,
    driver: Option<Arc<dyn ScheduleDriver>>,
    trace: bool,
    world: &Arc<WorldRt>,
    comms: Vec<C>,
    f: F,
) -> TaskRun<T>
where
    T: Send,
    C: Send,
    F: Fn(C) -> Fut,
    Fut: Future<Output = T> + Send,
{
    if let Some(h) = &hook {
        assert!(
            !h.scheduling(),
            "the task runtime drives schedules itself (SchedPolicy::Serial); \
             thread-parking scheduling hooks only work on the thread runtimes"
        );
    }
    let ntasks = comms.len();
    let mut pool: Vec<Option<C>> = comms.into_iter().map(Some).collect();
    let (raw, report) = exec::execute(
        policy,
        ntasks,
        hook,
        driver,
        trace,
        |rank| f(pool[rank].take().expect("one future per rank")),
        || world.abort(),
    );
    let deadlock = report.deadlocked.then(|| DeadlockReport {
        parked: world
            .snapshot_pending()
            .into_iter()
            .map(|(world_rank, p)| ParkedOp {
                world_rank,
                comm: p.comm.to_string(),
                op: p.op_text(),
                description: p.to_string(),
            })
            .collect(),
    });
    let reason = deadlock.as_ref().map(|d| format!("simmpi task world {d}"));
    let results = raw
        .into_iter()
        .map(|r| match r {
            Some(r) => r,
            None => Err(Box::new(Aborted(
                reason.clone().unwrap_or_else(|| "task world torn down early".into()),
            )) as Box<dyn Any + Send>),
        })
        .collect();
    let (peak_mailbox_msgs, peak_mailbox_bytes) = world.mbox_peaks();
    let (frame_allocs, frame_reuses, shared_frame_bytes) = world.frame_stats();
    TaskRun {
        results,
        deadlock,
        stats: SchedStats {
            workers: report.workers,
            tasks: ntasks,
            polls: report.polls,
            wakes: report.wakes,
            steals: report.steals,
            parks: report.parks,
            peak_runnable: report.peak_runnable,
            peak_mailbox_msgs,
            peak_mailbox_bytes,
            frame_allocs,
            frame_reuses,
            shared_frame_bytes,
        },
        trace: report.trace,
    }
}

/// Collapse a plain (hook-free) run back to the [`World::run`] contract:
/// propagate the first real panic, or fail loudly with the deadlock
/// diagnosis.
fn finish_plain<T>(run: TaskRun<T>) -> (Vec<T>, SchedStats) {
    let TaskRun { results, deadlock, stats, .. } = run;
    let mut out = Vec::with_capacity(results.len());
    let mut primary: Option<Box<dyn Any + Send>> = None;
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(e) => {
                if primary.is_none() && e.downcast_ref::<Aborted>().is_none() {
                    primary = Some(e);
                }
            }
        }
    }
    if let Some(p) = primary {
        std::panic::resume_unwind(p);
    }
    if let Some(d) = deadlock {
        panic!("simmpi task world {d}");
    }
    (out, stats)
}

/// Launcher for SPMD execution as rank tasks over the tree-collective
/// [`TaskComm`] — the scalable sibling of [`World`](crate::World).
pub struct TaskWorld;

impl TaskWorld {
    /// Run `f` as `ntasks` rank tasks on the host-sized work-stealing pool.
    /// Returns per-rank results in rank order; panics in any task
    /// propagate, and a communication deadlock panics with an exact
    /// diagnosis instead of hanging.
    ///
    /// With `SIMCHECK=1` in the environment the run is instrumented with
    /// the passive [`Sanitizer`](crate::Sanitizer), exactly as
    /// [`World::run`](crate::World::run).
    pub fn run<T, F, Fut>(ntasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(TaskComm) -> Fut,
        Fut: Future<Output = T> + Send,
    {
        Self::run_with(SchedPolicy::host(), ntasks, f).0
    }

    /// [`TaskWorld::run`] under an explicit policy, also returning the
    /// scheduler counters.
    pub fn run_with<T, F, Fut>(policy: SchedPolicy, ntasks: usize, f: F) -> (Vec<T>, SchedStats)
    where
        T: Send,
        F: Fn(TaskComm) -> Fut,
        Fut: Future<Output = T> + Send,
    {
        if hook::simcheck_env_enabled() {
            let san = Arc::new(Sanitizer::new());
            let run = Self::run_checked(policy, ntasks, san.clone(), f);
            if let Some(d) = &run.deadlock {
                san.record_deadlock(format!("simmpi task world {d}"));
            }
            let TaskRun { results, stats, .. } = run;
            return (crate::sanitize::finalize_env_checked(results, &san), stats);
        }
        let world = Arc::new(WorldRt::new(ntasks));
        let shared = Arc::new(CoShared::new(
            CommCtx::new("world".into(), ntasks),
            None,
            world.clone(),
        ));
        let comms: Vec<TaskComm> =
            (0..ntasks).map(|r| TaskComm::new(r, r, shared.clone())).collect();
        finish_plain(run_engine(&policy, None, None, false, &world, comms, f))
    }

    /// Run `f` under a [`CheckHook`], catching each rank's panic, with the
    /// full scheduler outcome (deadlock report, stats, serial trace) — the
    /// task-runtime analogue of
    /// [`World::run_checked`](crate::World::run_checked), and the entry
    /// point `simcheck` drives with seeded [`SchedPolicy::Serial`]
    /// schedules.
    pub fn run_checked<T, F, Fut>(
        policy: SchedPolicy,
        ntasks: usize,
        check: Arc<dyn CheckHook>,
        f: F,
    ) -> TaskRun<T>
    where
        T: Send,
        F: Fn(TaskComm) -> Fut,
        Fut: Future<Output = T> + Send,
    {
        let trace = matches!(policy, SchedPolicy::Serial { .. });
        let world = Arc::new(WorldRt::new(ntasks));
        let shared = Arc::new(CoShared::new(
            CommCtx::new("world".into(), ntasks),
            Some(check.clone()),
            world.clone(),
        ));
        let comms: Vec<TaskComm> =
            (0..ntasks).map(|r| TaskComm::new(r, r, shared.clone())).collect();
        run_engine(&policy, Some(check), None, trace, &world, comms, f)
    }

    /// [`TaskWorld::run_checked`] with every serial scheduling decision
    /// owned by `driver` instead of the seeded stream — the entry point
    /// `simcheck`'s DPOR explorer forces decision prefixes through.
    /// `policy` must be [`SchedPolicy::Serial`] (its seed and preemption
    /// bound are ignored in driver mode).
    pub fn run_driven<T, F, Fut>(
        ntasks: usize,
        check: Arc<dyn CheckHook>,
        driver: Arc<dyn ScheduleDriver>,
        f: F,
    ) -> TaskRun<T>
    where
        T: Send,
        F: Fn(TaskComm) -> Fut,
        Fut: Future<Output = T> + Send,
    {
        let policy = SchedPolicy::Serial { seed: 0, preemption_bound: usize::MAX };
        let world = Arc::new(WorldRt::new(ntasks));
        let shared = Arc::new(CoShared::new(
            CommCtx::new("world".into(), ntasks),
            Some(check.clone()),
            world.clone(),
        ));
        let comms: Vec<TaskComm> =
            (0..ntasks).map(|r| TaskComm::new(r, r, shared.clone())).collect();
        run_engine(&policy, Some(check), Some(driver), true, &world, comms, f)
    }
}

/// Launcher over the flat slot-and-barrier [`FlatTaskComm`] — the task
/// sibling of [`FlatWorld`](crate::FlatWorld), kept as the O(P) baseline
/// the tree runtime is benchmarked against at high rank counts.
pub struct FlatTaskWorld;

impl FlatTaskWorld {
    /// Run `f` as `ntasks` flat-collective rank tasks; see
    /// [`TaskWorld::run`].
    pub fn run<T, F, Fut>(ntasks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(FlatTaskComm) -> Fut,
        Fut: Future<Output = T> + Send,
    {
        Self::run_with(SchedPolicy::host(), ntasks, f).0
    }

    /// [`FlatTaskWorld::run`] under an explicit policy, with scheduler
    /// counters.
    pub fn run_with<T, F, Fut>(policy: SchedPolicy, ntasks: usize, f: F) -> (Vec<T>, SchedStats)
    where
        T: Send,
        F: Fn(FlatTaskComm) -> Fut,
        Fut: Future<Output = T> + Send,
    {
        if hook::simcheck_env_enabled() {
            let san = Arc::new(Sanitizer::new());
            let run = Self::run_checked(policy, ntasks, san.clone(), f);
            if let Some(d) = &run.deadlock {
                san.record_deadlock(format!("simmpi task world {d}"));
            }
            let TaskRun { results, stats, .. } = run;
            return (crate::sanitize::finalize_env_checked(results, &san), stats);
        }
        let world = Arc::new(WorldRt::new(ntasks));
        let shared = Arc::new(FlatShared::new(
            CommCtx::new("world".into(), ntasks),
            None,
            world.clone(),
        ));
        let comms: Vec<FlatTaskComm> =
            (0..ntasks).map(|r| FlatTaskComm::new(r, r, shared.clone())).collect();
        finish_plain(run_engine(&policy, None, None, false, &world, comms, f))
    }

    /// Checked flat-task run; see [`TaskWorld::run_checked`].
    pub fn run_checked<T, F, Fut>(
        policy: SchedPolicy,
        ntasks: usize,
        check: Arc<dyn CheckHook>,
        f: F,
    ) -> TaskRun<T>
    where
        T: Send,
        F: Fn(FlatTaskComm) -> Fut,
        Fut: Future<Output = T> + Send,
    {
        let trace = matches!(policy, SchedPolicy::Serial { .. });
        let world = Arc::new(WorldRt::new(ntasks));
        let shared = Arc::new(FlatShared::new(
            CommCtx::new("world".into(), ntasks),
            Some(check.clone()),
            world.clone(),
        ));
        let comms: Vec<FlatTaskComm> =
            (0..ntasks).map(|r| FlatTaskComm::new(r, r, shared.clone())).collect();
        run_engine(&policy, Some(check), None, trace, &world, comms, f)
    }

    /// Driver-owned serial run; see [`TaskWorld::run_driven`].
    pub fn run_driven<T, F, Fut>(
        ntasks: usize,
        check: Arc<dyn CheckHook>,
        driver: Arc<dyn ScheduleDriver>,
        f: F,
    ) -> TaskRun<T>
    where
        T: Send,
        F: Fn(FlatTaskComm) -> Fut,
        Fut: Future<Output = T> + Send,
    {
        let policy = SchedPolicy::Serial { seed: 0, preemption_bound: usize::MAX };
        let world = Arc::new(WorldRt::new(ntasks));
        let shared = Arc::new(FlatShared::new(
            CommCtx::new("world".into(), ntasks),
            Some(check.clone()),
            world.clone(),
        ));
        let comms: Vec<FlatTaskComm> =
            (0..ntasks).map(|r| FlatTaskComm::new(r, r, shared.clone())).collect();
        run_engine(&policy, Some(check), Some(driver), true, &world, comms, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::co::CoComm;
    use crate::comm::ReduceOp;
    use crate::sanitize::{FindingKind, Sanitizer};
    use crate::{drive_ready, BlockingRef, FlatWorld, World};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    const WS4: SchedPolicy = SchedPolicy::WorkSteal { workers: 4 };

    fn panic_text(e: Box<dyn Any + Send>) -> String {
        e.downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| e.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string payload>".into())
    }

    /// One protocol-shaped script exercised identically over every
    /// runtime; the cross-runtime tests assert its results byte-equal.
    async fn mixed_script(
        c: &dyn CoComm,
    ) -> (Vec<u64>, Vec<u8>, Option<Vec<Vec<u8>>>, Vec<u8>, Option<u64>, usize, usize, Vec<u64>, Vec<u8>)
    {
        let n = c.size();
        let r = c.rank();
        let all = c.allgather_u64(r as u64 + 1).await;
        let b = c.bcast((r == 2 % n).then(|| vec![9, 9, r as u8]), 2 % n).await;
        let g = c.gather(&[r as u8; 3], 1 % n).await;
        let parts = (r == 0).then(|| (0..n).map(|i| vec![i as u8; i + 1]).collect());
        let s = c.scatter(parts, 0).await;
        let red = c.reduce_u64(r as u64 * 3, ReduceOp::Max, n - 1).await;
        c.send((r + 1) % n, 17, &[r as u8, 0xAB]);
        let token = c.recv((r + n - 1) % n, 17).await;
        let sub = c.split((r % 2) as u64, (n - r) as u64).await;
        let sub_all = sub.allgather_u64(r as u64).await;
        c.barrier().await;
        (all, b, g, s, red, sub.rank(), sub.size(), sub_all, token)
    }

    #[test]
    fn task_world_runs_all_ranks() {
        let out = TaskWorld::run(8, |c| async move { (c.rank(), c.size()) });
        assert_eq!(out, (0..8).map(|r| (r, 8)).collect::<Vec<_>>());
    }

    #[test]
    fn all_four_runtimes_agree_on_the_mixed_script() {
        for n in [1, 2, 3, 5, 8] {
            let task = TaskWorld::run(n, |c| async move { mixed_script(&c).await });
            let flat_task = FlatTaskWorld::run(n, |c| async move { mixed_script(&c).await });
            let thread = World::run(n, |c| drive_ready(mixed_script(&BlockingRef(c))));
            let flat = FlatWorld::run(n, |c| drive_ready(mixed_script(&BlockingRef(c))));
            assert_eq!(task, thread, "task tree vs thread tree at n={n}");
            assert_eq!(flat_task, flat, "task flat vs thread flat at n={n}");
            assert_eq!(task, flat_task, "tree vs flat at n={n}");
        }
    }

    #[test]
    fn serial_policy_matches_work_stealing() {
        let ws = TaskWorld::run_with(WS4, 6, |c| async move { mixed_script(&c).await }).0;
        for seed in 0..8 {
            let ser = TaskWorld::run_with(
                SchedPolicy::Serial { seed, preemption_bound: usize::MAX },
                6,
                |c| async move { mixed_script(&c).await },
            )
            .0;
            assert_eq!(ser, ws, "seed {seed}");
        }
    }

    #[test]
    fn split_groups_by_color_and_orders_by_key() {
        let out = TaskWorld::run(8, |c| async move {
            let color = (c.rank() % 2) as u64;
            let key = (c.size() - c.rank()) as u64; // reverse order
            let sub = c.split(color, key).await;
            (sub.rank(), sub.size(), sub.allgather_u64(c.rank() as u64).await)
        });
        for (r, (sub_rank, sub_size, members)) in out.iter().enumerate() {
            assert_eq!(*sub_size, 4);
            let mut same_color: Vec<usize> = (0..8).filter(|x| x % 2 == r % 2).collect();
            same_color.reverse();
            assert_eq!(*sub_rank, same_color.iter().position(|&x| x == r).unwrap());
            let expect: Vec<u64> = same_color.iter().map(|&x| x as u64).collect();
            assert_eq!(members, &expect);
        }
    }

    #[test]
    fn p2p_matching_by_source_and_tag() {
        let out = TaskWorld::run(3, |c| async move {
            match c.rank() {
                0 => {
                    c.send(2, 7, b"seven");
                    c.send(2, 5, b"five");
                    Vec::new()
                }
                1 => {
                    c.send(2, 7, b"other-seven");
                    Vec::new()
                }
                _ => {
                    // Receive out of order: tag 5 first although tag 7 may
                    // arrive first, then by source.
                    let five = c.recv(0, 5).await;
                    let seven0 = c.recv(0, 7).await;
                    let seven1 = c.recv(1, 7).await;
                    [five, seven0, seven1].concat()
                }
            }
        });
        assert_eq!(out[2], b"fivesevenother-seven");
    }

    #[test]
    fn stats_count_this_ranks_ops() {
        let out = TaskWorld::run(4, |c| async move {
            c.barrier().await;
            c.bcast((c.rank() == 0).then(|| vec![1u8, 2, 3]), 0).await;
            let _ = c.gather(&[c.rank() as u8], 1).await;
            c.allgather_u64(7).await;
            let _ = c.reduce_u64(1, ReduceOp::Sum, 0).await;
            let sub = c.split(0, c.rank() as u64).await;
            sub.barrier().await;
            let s = c.stats().expect("task runtime tracks stats");
            let sub_s = sub.stats().expect("sub-communicator tracks stats");
            (
                s.barriers(),
                s.bcasts(),
                s.gathers(),
                s.allgathers(),
                s.reduces(),
                s.splits(),
                sub_s.barriers(),
                s.bytes_sent() > 0,
            )
        });
        for got in out {
            assert_eq!(got, (1, 1, 1, 1, 1, 1, 1, true));
        }
    }

    #[test]
    fn reserved_tag_namespace_is_enforced() {
        let out = TaskWorld::run(2, |c| async move {
            if c.rank() == 0 {
                catch_unwind(AssertUnwindSafe(|| c.send(1, 0xC3 << 56, b"nope")))
                    .err()
                    .map(panic_text)
            } else {
                None
            }
        });
        assert!(
            out[0].as_ref().expect("send panicked").contains("reserved for internal"),
            "{out:?}"
        );
    }

    #[test]
    fn panics_propagate_from_rank_tasks() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            TaskWorld::run(4, |c| async move {
                c.barrier().await;
                assert!(c.rank() != 2, "task two exploded");
            })
        }))
        .expect_err("rank panic must propagate");
        assert!(panic_text(err).contains("task two exploded"));
    }

    #[test]
    fn deadlock_is_reported_exactly() {
        let san = Arc::new(Sanitizer::new());
        let run = TaskWorld::run_checked(WS4, 3, san, |c| async move {
            if c.rank() == 0 {
                // Nobody ever sends this; the other ranks finish normally.
                c.recv(1, 9).await;
            }
            c.rank()
        });
        let report = run.deadlock.expect("quiesced with a parked task");
        assert_eq!(report.parked.len(), 1);
        assert_eq!(report.parked[0].world_rank, 0);
        assert!(
            report.parked[0].description.contains("recv(src=1"),
            "{}",
            report.parked[0].description
        );
        let aborted = run.results[0].as_ref().expect_err("parked rank did not finish");
        assert!(aborted.downcast_ref::<Aborted>().is_some());
        assert!(run.results[1].is_ok() && run.results[2].is_ok());
    }

    #[test]
    fn plain_run_panics_with_deadlock_diagnosis() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            TaskWorld::run(2, |c| async move {
                if c.rank() == 0 {
                    c.barrier().await; // rank 1 never joins
                }
            })
        }))
        .expect_err("deadlocked world must not return");
        let text = panic_text(err);
        assert!(text.contains("deadlock: 1 task(s) parked"), "{text}");
    }

    #[test]
    fn serial_schedules_are_reproducible_and_traced() {
        let run = |seed| {
            TaskWorld::run_checked(
                SchedPolicy::Serial { seed, preemption_bound: usize::MAX },
                4,
                Arc::new(Sanitizer::new()),
                |c| async move { c.allgather_u64(c.rank() as u64).await },
            )
        };
        let (a, b) = (run(11), run(11));
        assert!(!a.trace.is_empty());
        assert_eq!(a.trace, b.trace);
        for r in a.results {
            assert_eq!(r.expect("no panic"), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn checked_run_reports_teardown_leaks() {
        let san = Arc::new(Sanitizer::new());
        let run = TaskWorld::run_checked(WS4, 2, san.clone(), |c| async move {
            if c.rank() == 0 {
                c.send(1, 42, b"never received");
            }
            // Synchronize so the message is in rank 1's mailbox before its
            // communicator is dropped.
            c.barrier().await;
        });
        assert!(run.deadlock.is_none());
        assert!(run.results[0].is_ok());
        assert!(run.results[1].is_err(), "rank 1 teardown panics with the leak");
        let findings = san.findings();
        assert!(
            findings
                .iter()
                .any(|f| f.kind == FindingKind::MessageLeak && f.message.contains("tag 0x2a")),
            "{findings:?}"
        );
    }

    #[test]
    fn sched_stats_expose_runtime_footprint() {
        let (out, stats) = TaskWorld::run_with(WS4, 16, |c| async move {
            let all = c.allgather_u64(c.rank() as u64).await;
            c.barrier().await;
            all.iter().sum::<u64>()
        });
        assert_eq!(out, vec![120; 16]);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.tasks, 16);
        assert!(stats.polls >= 16, "{stats:?}");
        assert!(stats.wakes >= 16, "{stats:?}");
        assert!(stats.peak_mailbox_msgs >= 1, "{stats:?}");
        assert!(stats.peak_mailbox_bytes >= 8, "{stats:?}");
        // The tree keeps any one mailbox logarithmic, never O(P).
        assert!(stats.peak_mailbox_msgs <= 6, "{stats:?}");
    }

    #[test]
    fn shared_bcast_frames_charge_bytes_once_per_logical_payload() {
        let (out, stats) = TaskWorld::run_with(WS4, 4, |c| async move {
            c.allgather_u64(c.rank() as u64 + 1).await;
            c.stats().expect("task runtime tracks stats").bytes_sent()
        });
        // Down-phase frame over 4 ranks: 8-byte count + 4 × (id, len, 8-byte
        // payload) = 104 bytes, Arc-shared down the tree.
        let frame = 8 + 4 * (8 + 8 + 8) as u64;
        // Up phase: vranks 1 and 3 frame one entry (32 B), vrank 2 frames
        // two (56 B), the root sends nothing. Down phase: rank 0 forwards to
        // two children and rank 2 to one, but each charges the shared frame
        // ONCE per logical payload; leaves 1 and 3 charge nothing.
        assert_eq!(out, vec![frame, 32, 56 + frame, 32]);
        assert_eq!(
            stats.shared_frame_bytes, frame,
            "one logical shared payload in the whole world, counted at the root"
        );
    }

    #[test]
    fn steady_state_gather_rounds_reuse_pooled_frames() {
        const RANKS: usize = 256;
        const ROUNDS: u64 = 8;
        let (_, stats) = TaskWorld::run_with(WS4, RANKS, |c| async move {
            for _ in 0..ROUNDS {
                let _ = c.gather(&[c.rank() as u8; 16], 0).await;
                // The barrier bounds live frames to one per sender: by the
                // time a round ends, every frame has been unframed and
                // recycled, so later rounds draw entirely from the pool.
                c.barrier().await;
            }
        });
        let per_round = (RANKS - 1) as u64; // every non-root rank frames one edge
        assert_eq!(
            stats.frame_allocs + stats.frame_reuses,
            ROUNDS * per_round,
            "one arena acquire per tree edge"
        );
        // Total fresh allocations are bounded by the peak number of
        // simultaneously live frames — one round's worth — regardless of
        // how many rounds ran: steady-state rounds allocate nothing.
        assert!(
            stats.frame_allocs <= per_round,
            "allocations must not scale with rounds: {stats:?}"
        );
        assert!(
            stats.frame_reuses >= (ROUNDS - 1) * per_round,
            "steady-state rounds are served from the pool: {stats:?}"
        );
    }

    #[test]
    fn steady_state_p2p_rounds_reuse_pooled_frames() {
        // Point-to-point traffic draws from the same frame arena as the
        // collectives: a recv'd payload handed back via `recycle` serves
        // the next round's send without a fresh allocation.
        const ROUNDS: u64 = 8;
        let (_, stats) = TaskWorld::run_with(WS4, 2, |c| async move {
            for r in 0..ROUNDS {
                if c.rank() == 0 {
                    c.send(1, 7, &[r as u8; 64]);
                    let back = c.recv(1, 8).await;
                    c.recycle(back);
                } else {
                    let msg = c.recv(0, 7).await;
                    c.recycle(msg);
                    c.send(0, 8, &[r as u8; 32]);
                }
            }
        });
        // 2 sends per round; only the first round may need fresh frames.
        assert_eq!(stats.frame_allocs + stats.frame_reuses, 2 * ROUNDS, "{stats:?}");
        assert!(stats.frame_allocs <= 2, "p2p allocations must not scale with rounds: {stats:?}");
        assert!(stats.frame_reuses >= 2 * (ROUNDS - 1), "{stats:?}");
    }

    #[test]
    fn flat_task_world_runs_checked_too() {
        let san = Arc::new(Sanitizer::new());
        let run = FlatTaskWorld::run_checked(WS4, 4, san, |c| async move {
            c.bcast((c.rank() == 1).then(|| vec![5u8]), 1).await
        });
        assert!(run.deadlock.is_none());
        for r in run.results {
            assert_eq!(r.expect("no panic"), vec![5u8]);
        }
    }
}

//! Work-stealing executor for rank-task futures.
//!
//! Ranks are cooperatively scheduled state machines (`Future`s) that park
//! only inside communicator operations — mailbox receives and collective
//! rendezvous. The executor is deliberately small and entirely safe code:
//!
//! * **Queues** — one LIFO deque per worker plus a shared FIFO injector.
//!   Owners pop newest-first, thieves steal oldest-first. LIFO descent
//!   matters beyond cache warmth: it drives each binomial collective
//!   depth-first, so the number of in-flight round buffers stays
//!   O(log P · fanout) instead of O(P) (breadth-first order would
//!   materialize half the tree's edge payloads at once at 64Ki ranks).
//! * **Quiescence is exact deadlock detection.** A task is either live and
//!   runnable, live and parked in a registered communicator wait, or
//!   finished. When every worker is idle, no task is runnable and live
//!   tasks remain, no future wake-up is possible (wakes only originate
//!   from polls) — the world has deadlocked, deterministically and with no
//!   watchdog timeout. The last worker to go idle declares it.
//! * **Policies** — [`SchedPolicy::WorkSteal`] for throughput, and
//!   [`SchedPolicy::Serial`]: a single worker picking the next runnable
//!   task with a seeded splitmix64 stream, which is how `simcheck`
//!   explores wake orders on this runtime (the generalization of its
//!   thread-parking serialized scheduler).
//!
//! Lost-wakeup freedom: `enqueue` increments the runnable count *before*
//! taking the injector lock to signal, and an idling worker re-checks the
//! count while holding that same lock from the final check until
//! `Condvar::wait`. Either the sleeper sees the new count and retries, or
//! the waker's notification happens after the sleeper is parked.

use crate::hook::{self, CheckHook};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::task::{Context, Poll, Wake, Waker};

/// How a task world maps runnable rank tasks onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Work-stealing pool: per-worker LIFO deques with FIFO stealing, one
    /// deque per worker thread (the caller's thread is worker 0).
    WorkSteal {
        /// Worker thread count; must be ≥ 1.
        workers: usize,
    },
    /// Deterministic single worker: among the runnable tasks, the next one
    /// to poll is chosen by a seeded splitmix64 stream. Same seed, same
    /// program → same interleaving; `simcheck` sweeps seeds over this.
    Serial {
        /// Seed of the schedule-choice stream.
        seed: u64,
        /// Maximum number of *preemptions* — decisions that switch away
        /// from the last-polled task while it is still runnable. Once
        /// exhausted the scheduler keeps polling the last task whenever it
        /// is runnable (CHESS-style iterative context bounding, the same
        /// knob as `simcheck`'s thread scheduler). `usize::MAX` explores
        /// freely.
        preemption_bound: usize,
    },
}

/// External owner of a [`SchedPolicy::Serial`] run's decisions: instead of
/// the seeded splitmix64 stream, every dequeue asks the driver which of
/// the runnable tasks to poll next. This is how `simcheck`'s DPOR explorer
/// forces decision prefixes and enumerates schedules systematically.
///
/// `candidates` is the sorted, deduplicated set of runnable task ids at
/// decision `step` (0-based, counting every serial dequeue of the run);
/// the returned id must be one of them. Calls arrive strictly in `step`
/// order from the single serial worker, under executor locks — drivers
/// must not call back into the world.
pub trait ScheduleDriver: Send + Sync {
    /// Choose the task to poll at `step` from `candidates`.
    fn choose(&self, step: usize, candidates: &[usize]) -> usize;
}

impl SchedPolicy {
    /// Work-stealing pool sized to the host: `SIMMPI_WORKERS` when set,
    /// else `std::thread::available_parallelism()`.
    pub fn host() -> SchedPolicy {
        let workers = std::env::var("SIMMPI_WORKERS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            });
        SchedPolicy::WorkSteal { workers }
    }

    pub(crate) fn workers(&self) -> usize {
        match *self {
            SchedPolicy::WorkSteal { workers } => {
                assert!(workers > 0, "work-stealing pool needs at least one worker");
                workers
            }
            SchedPolicy::Serial { .. } => 1,
        }
    }
}

/// Executor-side counters of one run (merged into
/// [`SchedStats`](super::SchedStats) together with the mailbox peaks).
pub(crate) struct ExecReport {
    pub(crate) deadlocked: bool,
    pub(crate) workers: usize,
    pub(crate) polls: u64,
    pub(crate) wakes: u64,
    pub(crate) steals: u64,
    pub(crate) parks: u64,
    pub(crate) peak_runnable: u64,
    /// Poll order (task ids), recorded only for [`SchedPolicy::Serial`]
    /// runs that asked for it.
    pub(crate) trace: Vec<usize>,
}

enum PolicyKind {
    WorkSteal,
    Serial,
}

struct SerialState {
    rng: u64,
    bound: usize,
    preemptions: usize,
    last: Option<usize>,
    trace: Option<Vec<usize>>,
    /// Serial decisions made so far (the `step` passed to a driver).
    steps: usize,
}

struct Injector {
    queue: VecDeque<usize>,
    sleepers: usize,
}

/// The `'static` half of the executor: everything a [`Waker`] needs.
/// Futures themselves live in a scoped slab owned by [`execute`]'s stack
/// frame, so they may borrow the caller's environment.
struct Core {
    workers: usize,
    policy: PolicyKind,
    /// Present only with [`SchedPolicy::Serial`]: owns every decision in
    /// place of the seeded stream.
    driver: Option<Arc<dyn ScheduleDriver>>,
    serial: Mutex<SerialState>,
    locals: Vec<Mutex<VecDeque<usize>>>,
    /// The injector queue and sleeper count; a `std` mutex because the
    /// offline `parking_lot` shim has no `Condvar` to pair with its own.
    shared: StdMutex<Injector>,
    cv: Condvar,
    /// Tasks currently enqueued (runnable).
    runnable: AtomicUsize,
    /// Tasks not yet finished.
    live: AtomicUsize,
    done: AtomicBool,
    deadlocked: AtomicBool,
    polls: AtomicU64,
    wakes: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    peak_runnable: AtomicU64,
}

thread_local! {
    /// Which worker (of the innermost running task world) this thread is;
    /// wakes issued from a worker land on its own LIFO deque.
    static CURRENT_WORKER: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Scoped CURRENT_WORKER assignment (restores on drop so task worlds can
/// nest under thread worlds or run back-to-back on the caller thread).
struct WorkerGuard {
    prev: Option<usize>,
}

impl WorkerGuard {
    fn enter(w: usize) -> WorkerGuard {
        WorkerGuard { prev: CURRENT_WORKER.replace(Some(w)) }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        CURRENT_WORKER.set(self.prev);
    }
}

struct TaskWaker {
    id: usize,
    core: Arc<Core>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.core.enqueue(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.core.enqueue(self.id);
    }
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Core {
    /// Lock the injector, shrugging off poisoning (worker panics are
    /// caught per-poll; no invariant-breaking code runs under this lock).
    fn injector(&self) -> StdMutexGuard<'_, Injector> {
        self.shared.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn new(
        policy: &SchedPolicy,
        ntasks: usize,
        trace: bool,
        driver: Option<Arc<dyn ScheduleDriver>>,
    ) -> Core {
        let workers = policy.workers();
        let (kind, seed, bound) = match *policy {
            SchedPolicy::WorkSteal { .. } => (PolicyKind::WorkSteal, 0, usize::MAX),
            SchedPolicy::Serial { seed, preemption_bound } => {
                (PolicyKind::Serial, seed, preemption_bound)
            }
        };
        assert!(
            driver.is_none() || matches!(kind, PolicyKind::Serial),
            "a ScheduleDriver owns serial decisions; use SchedPolicy::Serial"
        );
        Core {
            workers,
            policy: kind,
            driver,
            serial: Mutex::new(SerialState {
                rng: seed,
                bound,
                preemptions: 0,
                last: None,
                trace: trace.then(|| Vec::with_capacity(ntasks * 4)),
                steps: 0,
            }),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            shared: StdMutex::new(Injector {
                queue: VecDeque::with_capacity(ntasks),
                sleepers: 0,
            }),
            cv: Condvar::new(),
            runnable: AtomicUsize::new(0),
            live: AtomicUsize::new(ntasks),
            done: AtomicBool::new(false),
            deadlocked: AtomicBool::new(false),
            polls: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            peak_runnable: AtomicU64::new(0),
        }
    }

    /// Make task `id` runnable and signal an idle worker, lost-wakeup-free
    /// (see module docs).
    fn enqueue(&self, id: usize) {
        self.wakes.fetch_add(1, SeqCst);
        let now = self.runnable.fetch_add(1, SeqCst) + 1;
        self.peak_runnable.fetch_max(now as u64, SeqCst);
        let local = match self.policy {
            PolicyKind::WorkSteal => {
                CURRENT_WORKER.get().filter(|&w| w < self.locals.len())
            }
            PolicyKind::Serial => None,
        };
        match local {
            Some(w) => self.locals[w].lock().push_back(id),
            None => self.injector().queue.push_back(id),
        }
        let sh = self.injector();
        if sh.sleepers > 0 {
            self.cv.notify_one();
        }
    }

    /// Dequeue a runnable task for worker `w`, if any.
    fn try_pop(&self, w: usize) -> Option<usize> {
        let id = match self.policy {
            PolicyKind::Serial => {
                let mut sh = self.injector();
                if sh.queue.is_empty() {
                    return None;
                }
                let mut st = self.serial.lock();
                let i = if let Some(driver) = &self.driver {
                    // Driver mode: present the sorted runnable set and let
                    // the driver own the decision (DPOR forces prefixes
                    // this way). The preemption bound does not apply.
                    let mut cands: Vec<usize> = sh.queue.iter().copied().collect();
                    cands.sort_unstable();
                    cands.dedup();
                    let pick = driver.choose(st.steps, &cands);
                    sh.queue
                        .iter()
                        .position(|&t| t == pick)
                        .expect("driver chose one of the presented candidates")
                } else {
                    // Preemption budget spent and the last-polled task is
                    // still runnable: keep running it. Otherwise pick
                    // seeded-randomly, counting a preemption whenever the
                    // pick switches away from a runnable last task.
                    let continued = match st.last {
                        Some(last) if st.preemptions >= st.bound => {
                            sh.queue.iter().position(|&t| t == last)
                        }
                        _ => None,
                    };
                    continued.unwrap_or_else(|| {
                        let i = (splitmix64(&mut st.rng) % sh.queue.len() as u64) as usize;
                        if let Some(last) = st.last {
                            if sh.queue[i] != last && sh.queue.contains(&last) {
                                st.preemptions += 1;
                            }
                        }
                        i
                    })
                };
                let id = sh.queue.remove(i).expect("index in bounds");
                st.last = Some(id);
                st.steps += 1;
                if let Some(t) = &mut st.trace {
                    t.push(id);
                }
                id
            }
            PolicyKind::WorkSteal => {
                let own = self.locals[w].lock().pop_back();
                let found = own
                    .or_else(|| self.injector().queue.pop_front())
                    .or_else(|| {
                        (1..self.workers).find_map(|i| {
                            let v = (w + i) % self.workers;
                            let id = self.locals[v].lock().pop_front();
                            if id.is_some() {
                                self.steals.fetch_add(1, SeqCst);
                            }
                            id
                        })
                    });
                found?
            }
        };
        self.runnable.fetch_sub(1, SeqCst);
        Some(id)
    }

    /// Blocking dequeue; `None` means the world finished or deadlocked.
    ///
    /// The last worker to find nothing runnable while live tasks remain
    /// declares the deadlock: every other worker is parked inside this
    /// function, so no poll is in flight and no future wake can occur.
    fn next_task(&self, w: usize) -> Option<usize> {
        loop {
            if self.done.load(SeqCst) {
                return None;
            }
            if let Some(id) = self.try_pop(w) {
                return Some(id);
            }
            let mut sh = self.injector();
            if self.done.load(SeqCst) {
                return None;
            }
            if self.runnable.load(SeqCst) > 0 {
                drop(sh);
                continue;
            }
            if sh.sleepers + 1 == self.workers {
                if self.live.load(SeqCst) > 0 {
                    self.deadlocked.store(true, SeqCst);
                }
                self.done.store(true, SeqCst);
                self.cv.notify_all();
                return None;
            }
            sh.sleepers += 1;
            sh = self.cv.wait(sh).unwrap_or_else(|p| p.into_inner());
            sh.sleepers -= 1;
        }
    }

    /// Retire one finished task; the last one ends the run.
    fn finish_one(&self) {
        if self.live.fetch_sub(1, SeqCst) == 1 {
            self.done.store(true, SeqCst);
            let _sh = self.injector();
            self.cv.notify_all();
        }
    }

    fn report(&self) -> ExecReport {
        ExecReport {
            deadlocked: self.deadlocked.load(SeqCst),
            workers: self.workers,
            polls: self.polls.load(SeqCst),
            wakes: self.wakes.load(SeqCst),
            steals: self.steals.load(SeqCst),
            parks: self.parks.load(SeqCst),
            peak_runnable: self.peak_runnable.load(SeqCst),
            trace: self.serial.lock().trace.take().unwrap_or_default(),
        }
    }
}

/// Run `ntasks` rank futures (built by `make`, called once per rank in
/// rank order) to completion under `policy`.
///
/// Per-rank outcomes land in the returned vector: `Some(Ok(_))` is written
/// by the wrapper future on normal completion, `Some(Err(_))` records a
/// poll or teardown panic (merged exactly like the thread runtime's
/// body/teardown pair), and `None` marks a task still parked when the
/// world deadlocked. On deadlock, `on_deadlock` runs *before* the parked
/// futures (and the communicators they own) are dropped, so the comm layer
/// can flip into aborting mode and keep teardown hooks quiet.
pub(crate) fn execute<T, F, Fut>(
    policy: &SchedPolicy,
    ntasks: usize,
    hook: Option<Arc<dyn CheckHook>>,
    driver: Option<Arc<dyn ScheduleDriver>>,
    trace: bool,
    mut make: F,
    on_deadlock: impl FnOnce(),
) -> (Vec<Option<std::thread::Result<T>>>, ExecReport)
where
    T: Send,
    F: FnMut(usize) -> Fut,
    Fut: Future<Output = T> + Send,
{
    assert!(ntasks > 0, "world must have at least one task");
    let core = Arc::new(Core::new(policy, ntasks, trace, driver));
    let wakers: Vec<Waker> = (0..ntasks)
        .map(|id| Waker::from(Arc::new(TaskWaker { id, core: core.clone() })))
        .collect();
    let results: Vec<Mutex<Option<std::thread::Result<T>>>> =
        (0..ntasks).map(|_| Mutex::new(None)).collect();
    // The slab of suspended rank state machines. Each slot's future writes
    // its own Ok result before resolving; slots are cleared eagerly on
    // completion so finished ranks free their stack state immediately.
    let slots: Vec<_> = (0..ntasks)
        .map(|id| {
            let fut = make(id);
            let res = &results[id];
            Mutex::new(Some(Box::pin(async move {
                let v = fut.await;
                *res.lock() = Some(Ok(v));
            }) as Pin<Box<dyn Future<Output = ()> + Send + '_>>))
        })
        .collect();
    for id in 0..ntasks {
        core.enqueue(id);
    }

    let has_hook = hook.is_some();
    let run_worker = |w: usize| {
        let _g = WorkerGuard::enter(w);
        while let Some(id) = core.next_task(w) {
            let mut slot = slots[id].lock();
            let Some(fut) = slot.as_mut() else {
                // A duplicate wake raced with completion; nothing to poll.
                continue;
            };
            core.polls.fetch_add(1, SeqCst);
            if has_hook {
                hook::set_current_task(id);
            }
            let mut cx = Context::from_waker(&wakers[id]);
            match catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx))) {
                Ok(Poll::Pending) => {
                    core.parks.fetch_add(1, SeqCst);
                    continue;
                }
                Ok(Poll::Ready(())) => {
                    // The wrapper stored Ok; dropping the future runs the
                    // communicator teardown check, whose leak diagnosis
                    // panic replaces the result (the thread runtime's
                    // (Ok, Err(teardown)) merge).
                    if let Err(e) = catch_unwind(AssertUnwindSafe(|| *slot = None)) {
                        *results[id].lock() = Some(Err(e));
                    }
                }
                Err(e) => {
                    *results[id].lock() = Some(Err(e));
                    // Keep the poll panic as the primary result even if
                    // teardown of the half-run future also panics.
                    let _ = catch_unwind(AssertUnwindSafe(|| *slot = None));
                }
            }
            drop(slot);
            if let Some(h) = &hook {
                let panicked =
                    results[id].lock().as_ref().is_some_and(|r| r.is_err());
                h.on_task_finish(id, panicked);
            }
            core.finish_one();
        }
    };
    std::thread::scope(|s| {
        let run_worker = &run_worker;
        for w in 1..core.workers {
            s.spawn(move || run_worker(w));
        }
        run_worker(0);
    });

    if core.deadlocked.load(SeqCst) {
        on_deadlock();
    }
    drop(slots);
    let results = results.into_iter().map(Mutex::into_inner).collect();
    (results, core.report())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_futures_run_to_completion() {
        let (results, report) = execute(
            &SchedPolicy::WorkSteal { workers: 3 },
            16,
            None,
            None,
            false,
            |id| async move { id * 2 },
            || {},
        );
        assert!(!report.deadlocked);
        let got: Vec<usize> =
            results.into_iter().map(|r| r.unwrap().unwrap()).collect();
        assert_eq!(got, (0..16).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(report.polls, 16);
    }

    #[test]
    fn panics_are_captured_per_task() {
        let (results, report) = execute(
            &SchedPolicy::WorkSteal { workers: 2 },
            4,
            None,
            None,
            false,
            |id| async move {
                assert!(id != 2, "task two exploded");
                id
            },
            || {},
        );
        assert!(!report.deadlocked);
        for (id, r) in results.into_iter().enumerate() {
            let r = r.expect("all tasks finished");
            assert_eq!(r.is_err(), id == 2);
        }
    }

    #[test]
    fn forever_pending_future_is_declared_deadlocked() {
        struct Never;
        impl Future for Never {
            type Output = ();
            fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
                Poll::Pending
            }
        }
        let mut aborted = false;
        let (results, report) = execute(
            &SchedPolicy::WorkSteal { workers: 2 },
            3,
            None,
            None,
            false,
            |id| async move {
                if id == 1 {
                    Never.await;
                }
                id
            },
            || aborted = true,
        );
        assert!(report.deadlocked);
        assert!(aborted);
        assert!(results[0].is_some() && results[2].is_some());
        assert!(results[1].is_none(), "parked task has no result");
    }

    #[test]
    fn serial_policy_is_deterministic_and_traced() {
        let run = |seed| {
            execute(
                &SchedPolicy::Serial { seed, preemption_bound: usize::MAX },
                8,
                None,
                None,
                true,
                |id| async move { id },
                || {},
            )
            .1
            .trace
        };
        assert_eq!(run(42), run(42));
        // Across many seeds the pick order must not always be rank order.
        assert!((0..32).map(run).any(|t| t != (0..8).collect::<Vec<_>>()));
    }
}

//! Flat slot-and-barrier collectives on the task runtime.
//!
//! [`FlatTaskComm`] is the resumable twin of
//! [`FlatCommunicator`](crate::FlatCommunicator): the same P-slot exchange
//! array, the same double-rendezvous per collective, the same deposit and
//! scan order — only the rendezvous is an async generation-counting
//! barrier instead of `std::sync::Barrier`, so thousands of ranks can park
//! in it on a bounded worker pool. It exists so the O(P) baseline can be
//! measured at ranks far beyond what thread-per-rank sustains (the
//! `collective_scaling` sweep compares task-tree against task-flat up to
//! 64Ki ranks), and as a third independent reference for the byte-identity
//! property tests.
//!
//! The one departure from the thread-backed twin: rounds whose result is
//! identical on every rank (`allgather`, `allgather_shared`, `split`
//! membership) assemble that result **once** per round, in a shared cell
//! keyed by the lockstep collective sequence number, and hand the other
//! P−1 ranks `Arc` clones. Without it every rank re-scans all P slots —
//! O(P²) work per round, which is why flat-task sweeps beyond 8Ki ranks
//! used to stop terminating. The wire results are byte-identical; only
//! who computes them changed.

use super::comm::{mbox_send, mbox_try_take, Mbox, ParkKind, Parked, Recv, WorldRt};
use crate::co::{AllGathered, BoxFut, CoComm};
use crate::comm::CommStats;
use crate::hook::{self, CheckHook, CollKind, CommCtx, LeakedMsg};
use crate::ReduceOp;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Waker};

/// Generation-counting rendezvous: arrivals below `size` park; the last
/// arrival advances the generation and wakes everyone parked in it.
struct BarrierState {
    arrived: usize,
    generation: u64,
    wakers: Vec<Waker>,
}

/// The shared result one collective round produces, assembled from the
/// slot array exactly once per round (see [`FlatTaskComm::assemble`]).
#[derive(Clone)]
enum RoundResult {
    /// Every rank's contribution, rank-ordered, in one refcounted frame
    /// (`allgather`, `allgather_shared`).
    Frame(AllGathered),
    /// `split` membership: color → `(key, parent rank)` pairs, sorted —
    /// each rank resolves its sub-rank by binary search instead of
    /// re-scanning and re-sorting all P entries.
    Groups(Arc<HashMap<u64, Vec<(u64, u64)>>>),
}

/// One rank's deposit slot for the current collective round.
type Slot = Mutex<Option<Vec<u8>>>;

/// State shared by every rank of one flat task communicator.
pub(crate) struct FlatShared {
    size: usize,
    ctx: CommCtx,
    hook: Option<Arc<dyn CheckHook>>,
    world: Arc<WorldRt>,
    slots: Vec<Slot>,
    barrier: Mutex<BarrierState>,
    mboxes: Vec<Mutex<Mbox>>,
    splits: Mutex<HashMap<(u64, u64), Arc<FlatShared>>>,
    /// Per-round assembly cell, keyed by the collective sequence number.
    /// Collectives run in lockstep (every rank, same order), so one slot
    /// suffices: a new round simply overwrites the previous one, which the
    /// double rendezvous guarantees every rank has already consumed.
    cell: Mutex<Option<(u64, RoundResult)>>,
}

impl FlatShared {
    pub(crate) fn new(
        ctx: CommCtx,
        hook: Option<Arc<dyn CheckHook>>,
        world: Arc<WorldRt>,
    ) -> FlatShared {
        let size = ctx.size;
        assert!(size > 0, "communicator must have at least one rank");
        FlatShared {
            size,
            ctx,
            hook,
            world,
            slots: (0..size).map(|_| Mutex::new(None)).collect(),
            barrier: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                // Pre-sized once; `drain` on release keeps the capacity, so
                // the rendezvous allocates nothing in steady state.
                wakers: Vec::with_capacity(size.saturating_sub(1)),
            }),
            mboxes: (0..size).map(|_| Mutex::new(Mbox::for_world(size))).collect(),
            splits: Mutex::new(HashMap::new()),
            cell: Mutex::new(None),
        }
    }
}

/// Clone all P deposited slots into one rank-ordered shared frame.
fn assemble_frame(slots: &[Slot]) -> RoundResult {
    let parts: Vec<Vec<u8>> = slots
        .iter()
        .map(|s| s.lock().as_ref().expect("every rank deposited").clone())
        .collect();
    RoundResult::Frame(AllGathered::from_parts(&parts))
}

/// Partition all P deposited `(color, key, rank)` records into sorted
/// per-color membership lists.
fn assemble_groups(slots: &[Slot]) -> RoundResult {
    let mut groups: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    for s in slots {
        let guard = s.lock();
        let b = guard.as_ref().expect("every rank deposited");
        let c = u64::from_le_bytes(b[0..8].try_into().unwrap());
        let k = u64::from_le_bytes(b[8..16].try_into().unwrap());
        let r = u64::from_le_bytes(b[16..24].try_into().unwrap());
        groups.entry(c).or_default().push((k, r));
    }
    for members in groups.values_mut() {
        members.sort_unstable();
    }
    RoundResult::Groups(Arc::new(groups))
}

/// Rendezvous future; the flat runtime's collective parking point.
struct BarrierWait<'a> {
    comm: &'a FlatTaskComm,
    /// Generation we arrived in, once parked; the barrier has released us
    /// when the shared generation has moved past it.
    arrived_in: Option<u64>,
}

impl Future for BarrierWait<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let shared = &this.comm.shared;
        let mut st = shared.barrier.lock();
        if let Some(gen) = this.arrived_in {
            if st.generation != gen {
                drop(st);
                *shared.world.pending(this.comm.world_rank).lock() = None;
                return Poll::Ready(());
            }
            st.wakers.push(cx.waker().clone());
            return Poll::Pending;
        }
        if st.arrived + 1 == shared.size {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            let wakers: Vec<Waker> = st.wakers.drain(..).collect();
            drop(st);
            for w in wakers {
                w.wake();
            }
            return Poll::Ready(());
        }
        st.arrived += 1;
        this.arrived_in = Some(st.generation);
        st.wakers.push(cx.waker().clone());
        drop(st);
        *shared.world.pending(this.comm.world_rank).lock() = Some(Parked {
            comm: shared.ctx.name.clone(),
            comm_rank: this.comm.rank,
            kind: ParkKind::Rendezvous,
        });
        Poll::Pending
    }
}

/// One rank's handle onto the flat slot-and-barrier task communicator.
pub struct FlatTaskComm {
    rank: usize,
    world_rank: usize,
    shared: Arc<FlatShared>,
    coll_seq: AtomicU64,
    split_seq: Mutex<u64>,
    stats: Arc<CommStats>,
}

impl FlatTaskComm {
    pub(crate) fn new(rank: usize, world_rank: usize, shared: Arc<FlatShared>) -> FlatTaskComm {
        FlatTaskComm {
            rank,
            world_rank,
            shared,
            coll_seq: AtomicU64::new(0),
            split_seq: Mutex::new(0),
            stats: Arc::new(CommStats::default()),
        }
    }

    fn note_collective(&self, kind: CollKind, root: Option<usize>) -> u64 {
        let seq = self.coll_seq.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = &self.shared.hook {
            h.on_collective(&self.shared.ctx, self.rank, seq, kind, root);
        }
        seq
    }

    /// Report a collective exit. The flat task runtime's collectives move
    /// payloads through shared slots, so the entry/exit bracket is the
    /// only ordering signal a checker gets for them.
    fn note_collective_done(&self, seq: u64) {
        if let Some(h) = &self.shared.hook {
            h.on_collective_done(&self.shared.ctx, self.rank, seq);
        }
    }

    /// Between a collective's two rendezvous: the round's shared result,
    /// assembled from the slot array by the *first* rank to ask and handed
    /// to the other P−1 ranks as a clone of the cached `Arc` — the whole
    /// round costs O(P) work instead of the O(P²) of every rank scanning
    /// every slot. Rounds are identified by the lockstep collective
    /// sequence number, so a stale cell from the previous round is simply
    /// overwritten.
    fn assemble(&self, seq: u64, build: fn(&[Slot]) -> RoundResult) -> RoundResult {
        let mut cell = self.shared.cell.lock();
        if let Some((s, v)) = cell.as_ref() {
            if *s == seq {
                return v.clone();
            }
        }
        let v = build(&self.shared.slots);
        *cell = Some((seq, v.clone()));
        v
    }

    fn deposit(&self, data: Option<Vec<u8>>) {
        if let Some(d) = &data {
            self.stats.add_bytes(d.len() as u64);
        }
        *self.shared.slots[self.rank].lock() = data;
    }

    fn wait(&self) -> BarrierWait<'_> {
        BarrierWait { comm: self, arrived_in: None }
    }
}

impl CoComm for FlatTaskComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn stats(&self) -> Option<Arc<CommStats>> {
        Some(self.stats.clone())
    }

    fn send(&self, dest: usize, tag: u64, data: &[u8]) {
        assert!(dest < self.shared.size, "send dest {dest} out of range");
        if hook::rejected_user_tag(tag) {
            if let Some(h) = &self.shared.hook {
                h.on_reserved_tag(&self.shared.ctx, self.rank, dest, tag);
            }
            panic!("{}", hook::reserved_tag_panic_text(tag));
        }
        self.stats.bump_send();
        self.stats.add_bytes(data.len() as u64);
        if let Some(h) = &self.shared.hook {
            h.on_send(&self.shared.ctx, self.rank, dest, tag, data);
        }
        // Arena-backed payload: recycled by the receiver through the world
        // frame pool so steady-state p2p rounds allocate nothing.
        let mut payload = self.shared.world.arena().acquire(data.len());
        payload.extend_from_slice(data);
        mbox_send(
            &self.shared.mboxes,
            &self.shared.world,
            self.rank,
            dest,
            tag,
            payload.into(),
        );
    }

    fn recv<'a>(&'a self, src: usize, tag: u64) -> BoxFut<'a, Vec<u8>> {
        Box::pin(async move {
            assert!(src < self.shared.size, "recv src {src} out of range");
            self.stats.bump_recv();
            Recv::new(
                &self.shared.mboxes,
                &self.shared.world,
                &self.shared.ctx,
                &self.shared.hook,
                self.rank,
                self.world_rank,
                src,
                tag,
            )
            .await
            .into_vec()
        })
    }

    fn try_recv(&self, src: usize, tag: u64) -> Option<Vec<u8>> {
        assert!(src < self.shared.size, "try_recv src {src} out of range");
        let payload = mbox_try_take(&self.shared.mboxes, self.rank, src, tag);
        if let Some(h) = &self.shared.hook {
            h.on_try_recv(&self.shared.ctx, self.rank, src, tag, payload.is_some());
            if let Some(p) = &payload {
                h.on_recv_done(&self.shared.ctx, self.rank, src, tag, p);
            }
        }
        let payload = payload?;
        self.stats.bump_recv();
        Some(payload.into_vec())
    }

    fn recycle(&self, buf: Vec<u8>) {
        self.shared.world.arena().recycle(buf);
    }

    fn barrier<'a>(&'a self) -> BoxFut<'a, ()> {
        Box::pin(async move {
            self.stats.bump_barrier();
            let seq = self.note_collective(CollKind::Barrier, None);
            self.wait().await;
            self.note_collective_done(seq);
        })
    }

    fn gather<'a>(&'a self, data: &'a [u8], root: usize) -> BoxFut<'a, Option<Vec<Vec<u8>>>> {
        Box::pin(async move {
            assert!(root < self.shared.size, "gather root {root} out of range");
            self.stats.bump_gather();
            let seq = self.note_collective(CollKind::Gather, Some(root));
            self.deposit(Some(data.to_vec()));
            self.wait().await;
            let result = if self.rank == root {
                Some(
                    self.shared
                        .slots
                        .iter()
                        .map(|s| s.lock().take().expect("every rank deposited"))
                        .collect(),
                )
            } else {
                None
            };
            self.wait().await;
            self.note_collective_done(seq);
            result
        })
    }

    fn scatter<'a>(&'a self, parts: Option<Vec<Vec<u8>>>, root: usize) -> BoxFut<'a, Vec<u8>> {
        Box::pin(async move {
            assert!(root < self.shared.size, "scatter root {root} out of range");
            self.stats.bump_scatter();
            let seq = self.note_collective(CollKind::Scatter, Some(root));
            if self.rank == root {
                let parts = parts.expect("root must supply scatter parts");
                assert_eq!(parts.len(), self.shared.size, "scatter needs one part per rank");
                for (slot, part) in self.shared.slots.iter().zip(parts) {
                    self.stats.add_bytes(part.len() as u64);
                    *slot.lock() = Some(part);
                }
            }
            self.wait().await;
            let mine = self.shared.slots[self.rank]
                .lock()
                .take()
                .expect("root deposited a part for every rank");
            self.wait().await;
            self.note_collective_done(seq);
            mine
        })
    }

    fn bcast<'a>(&'a self, data: Option<Vec<u8>>, root: usize) -> BoxFut<'a, Vec<u8>> {
        Box::pin(async move {
            assert!(root < self.shared.size, "bcast root {root} out of range");
            self.stats.bump_bcast();
            let seq = self.note_collective(CollKind::Bcast, Some(root));
            if self.rank == root {
                self.deposit(Some(data.expect("root must supply bcast data")));
            }
            self.wait().await;
            let out = self.shared.slots[root]
                .lock()
                .as_ref()
                .expect("root deposited")
                .clone();
            // Same double rendezvous as the thread-backed flat runtime: the
            // payload stays in the slot; clearing it here would race against
            // a later collective's deposits.
            self.wait().await;
            self.note_collective_done(seq);
            out
        })
    }

    fn allgather<'a>(&'a self, data: &'a [u8]) -> BoxFut<'a, Vec<Vec<u8>>> {
        Box::pin(async move {
            self.stats.bump_allgather();
            let seq = self.note_collective(CollKind::Allgather, None);
            self.deposit(Some(data.to_vec()));
            self.wait().await;
            // One rank assembles the shared frame; this rank only pays for
            // materializing its own `Vec<Vec<u8>>` view of it.
            let RoundResult::Frame(all) = self.assemble(seq, assemble_frame) else {
                unreachable!("allgather round assembled a non-frame result")
            };
            self.wait().await;
            self.note_collective_done(seq);
            all.to_parts()
        })
    }

    fn allgather_shared<'a>(&'a self, data: &'a [u8]) -> BoxFut<'a, AllGathered> {
        // Override of the copying default: P−1 ranks get `Arc` clones of
        // the one frame the first rank assembled — O(P) work and O(1)
        // allocations per rank for the whole collective.
        Box::pin(async move {
            self.stats.bump_allgather();
            let seq = self.note_collective(CollKind::Allgather, None);
            self.deposit(Some(data.to_vec()));
            self.wait().await;
            let RoundResult::Frame(all) = self.assemble(seq, assemble_frame) else {
                unreachable!("allgather round assembled a non-frame result")
            };
            self.wait().await;
            self.note_collective_done(seq);
            all
        })
    }

    fn reduce_u64<'a>(
        &'a self,
        value: u64,
        op: ReduceOp,
        root: usize,
    ) -> BoxFut<'a, Option<u64>> {
        // The thread-backed flat runtime uses the `Comm` default
        // (gather-and-fold); mirror it exactly, counters included.
        Box::pin(async move {
            self.gather_u64(value, root).await.map(|vals| match op {
                ReduceOp::Sum => vals.iter().sum(),
                ReduceOp::Max => vals.into_iter().max().expect("non-empty communicator"),
                ReduceOp::Min => vals.into_iter().min().expect("non-empty communicator"),
            })
        })
    }

    fn split<'a>(&'a self, color: u64, key: u64) -> BoxFut<'a, Box<dyn CoComm>> {
        Box::pin(async move {
            self.stats.bump_split();
            let seq = self.note_collective(CollKind::Split, None);
            let mut payload = Vec::with_capacity(24);
            payload.extend_from_slice(&color.to_le_bytes());
            payload.extend_from_slice(&key.to_le_bytes());
            payload.extend_from_slice(&(self.rank as u64).to_le_bytes());
            self.deposit(Some(payload));
            self.wait().await;
            // One rank partitions and sorts the membership; every other
            // rank resolves its place by binary search in the shared map —
            // O(P log P) for the whole round instead of every rank paying
            // its own O(P log P) scan-and-sort.
            let RoundResult::Groups(groups) = self.assemble(seq, assemble_groups) else {
                unreachable!("split round assembled a non-membership result")
            };
            self.wait().await;
            let coll_seq = seq;
            let members = &groups[&color];
            let new_size = members.len();
            let new_rank = members
                .binary_search(&(key, self.rank as u64))
                .expect("caller is in its own color group");

            let seq = {
                let mut s = self.split_seq.lock();
                *s += 1;
                *s
            };

            let sub = {
                let mut splits = self.shared.splits.lock();
                splits
                    .entry((seq, color))
                    .or_insert_with(|| {
                        Arc::new(FlatShared::new(
                            self.shared.ctx.child(seq, color, new_size),
                            self.shared.hook.clone(),
                            self.shared.world.clone(),
                        ))
                    })
                    .clone()
            };
            let comm = FlatTaskComm::new(new_rank, self.world_rank, sub);
            self.wait().await;
            self.note_collective_done(coll_seq);
            if new_rank == 0 {
                self.shared.splits.lock().remove(&(seq, color));
            }
            Box::new(comm) as Box<dyn CoComm>
        })
    }
}

impl Drop for FlatTaskComm {
    /// Same teardown leak check as [`FlatTaskComm`]'s tree sibling; see
    /// [`super::comm::TaskComm`].
    fn drop(&mut self) {
        let Some(hook) = self.shared.hook.clone() else { return };
        if self.shared.world.is_aborting() {
            return;
        }
        let mut mb = self.shared.mboxes[self.rank].lock();
        let mut leaked: Vec<LeakedMsg> = mb
            .drain_messages()
            .map(|(from, tag, payload)| LeakedMsg {
                from,
                tag,
                len: payload.len(),
                stashed: false,
            })
            .collect();
        drop(mb);
        if !leaked.is_empty() {
            leaked.sort();
            hook.on_teardown(&self.shared.ctx, self.rank, &leaked);
        }
    }
}

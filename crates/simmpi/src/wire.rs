//! Edge framing shared by the thread-backed and task-backed tree
//! collectives.
//!
//! A gather/scatter tree edge carries a whole subtree as framed
//! `(id, payload)` pairs. Both runtimes must produce *byte-identical*
//! frames (byte identity against the thread runtime is the task runtime's
//! correctness bar), so the encoding lives here and nowhere else.

/// Exact encoded size of a frame over `entries`, for pre-sizing buffers.
pub(crate) fn frame_len(entries: &[(u64, &[u8])]) -> usize {
    8 + entries.iter().map(|(_, p)| p.len() + 16).sum::<usize>()
}

/// Serialize (id, payload) pairs for one tree edge:
/// `[count][(id, len, bytes)...]`, all integers little-endian `u64`.
pub(crate) fn frame(entries: &[(u64, &[u8])]) -> Vec<u8> {
    let mut out = Vec::with_capacity(frame_len(entries));
    frame_into(&mut out, entries);
    out
}

/// [`frame`], but encoding into a caller-supplied buffer — typically one
/// acquired from a [`crate::arena::FrameArena`]. The buffer is cleared
/// first, so a recycled (dirty) buffer yields a frame byte-identical to a
/// freshly allocated one.
pub(crate) fn frame_into(out: &mut Vec<u8>, entries: &[(u64, &[u8])]) {
    out.clear();
    out.reserve(frame_len(entries));
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (id, payload) in entries {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
    }
}

/// Inverse of [`frame`].
pub(crate) fn unframe(bytes: &[u8]) -> Vec<(u64, Vec<u8>)> {
    frame_iter(bytes).map(|(id, p)| (id, p.to_vec())).collect()
}

/// Zero-copy iterator over a [`frame`]'s `(id, payload)` entries — the
/// scan-in-place alternative to [`unframe`] for consumers that only need
/// to look at each payload once.
pub(crate) struct FrameIter<'a> {
    bytes: &'a [u8],
    at: usize,
    left: u64,
}

pub(crate) fn frame_iter(bytes: &[u8]) -> FrameIter<'_> {
    let count = u64::from_le_bytes(bytes[..8].try_into().expect("frame header"));
    FrameIter { bytes, at: 8, left: count }
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = (u64, &'a [u8]);

    fn next(&mut self) -> Option<(u64, &'a [u8])> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        let at = self.at;
        let id = u64::from_le_bytes(self.bytes[at..at + 8].try_into().expect("frame id"));
        let len =
            u64::from_le_bytes(self.bytes[at + 8..at + 16].try_into().expect("frame len")) as usize;
        let payload = &self.bytes[at + 16..at + 16 + len];
        self.at = at + 16 + len;
        Some((id, payload))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.left as usize, Some(self.left as usize))
    }
}

impl ExactSizeIterator for FrameIter<'_> {}

/// Number of vranks in the binomial subtree rooted at vrank `v` of a tree
/// over `size` vranks: `min(lowbit(v), size - v)` (the whole tree for the
/// root). Used to pre-size gather accumulators exactly.
pub(crate) fn subtree_size(v: usize, size: usize) -> usize {
    let span = if v == 0 { size.next_power_of_two() } else { v & v.wrapping_neg() };
    span.min(size - v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let entries: Vec<(u64, Vec<u8>)> =
            vec![(3, vec![1, 2, 3]), (0, Vec::new()), (7, vec![9; 40])];
        let framed =
            frame(&entries.iter().map(|(i, p)| (*i, p.as_slice())).collect::<Vec<_>>());
        assert_eq!(unframe(&framed), entries);
    }

    #[test]
    fn frame_into_dirty_buffer_is_byte_identical_to_fresh() {
        let entries: Vec<(u64, &[u8])> =
            vec![(1, b"alpha".as_slice()), (2, b"".as_slice()), (9, b"zz".as_slice())];
        let fresh = frame(&entries);
        let mut dirty = vec![0xAAu8; 777];
        frame_into(&mut dirty, &entries);
        assert_eq!(dirty, fresh);
        assert_eq!(fresh.len(), frame_len(&entries));
    }

    #[test]
    fn subtree_sizes_partition_the_tree() {
        for size in 1..=70usize {
            // Root covers everything.
            assert_eq!(subtree_size(0, size), size);
            // Children of the root partition the non-root vranks.
            let mut covered = 0;
            let mut mask = size.next_power_of_two() >> 1;
            while mask > 0 {
                if mask < size {
                    covered += subtree_size(mask, size);
                }
                mask >>= 1;
            }
            assert_eq!(covered, size - 1, "size={size}");
        }
    }
}
